"""Result containers and metric helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated interpreter run.

    All counters come from :class:`repro.uarch.stats.MachineStats`; the
    guest-side fields record what the functional VM did.
    """

    vm: str
    scheme: str
    workload: str
    config_name: str
    scale: str
    cycles: int
    instructions: int
    guest_steps: int
    cpi: float
    branch_mpki: float
    icache_mpki: float
    dcache_mpki: float
    dispatch_fraction: float
    bop_hits: int
    bop_misses: int
    jte_inserts: int
    mispredicts_by_category: dict = field(default_factory=dict)
    insts_by_category: dict = field(default_factory=dict)
    cycle_breakdown: dict = field(default_factory=dict)
    output: tuple = ()

    @property
    def bop_hit_rate(self) -> float:
        total = self.bop_hits + self.bop_misses
        return self.bop_hits / total if total else 0.0

    def dispatch_mpki(self) -> float:
        """Mispredictions of the dispatch indirect jump per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredicts_by_category.get("dispatch_jump", 0) / self.instructions

    def to_dict(self) -> dict:
        return {
            "vm": self.vm,
            "scheme": self.scheme,
            "workload": self.workload,
            "config_name": self.config_name,
            "scale": self.scale,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "guest_steps": self.guest_steps,
            "cpi": self.cpi,
            "branch_mpki": self.branch_mpki,
            "icache_mpki": self.icache_mpki,
            "dcache_mpki": self.dcache_mpki,
            "dispatch_fraction": self.dispatch_fraction,
            "bop_hits": self.bop_hits,
            "bop_misses": self.bop_misses,
            "jte_inserts": self.jte_inserts,
            "mispredicts_by_category": dict(self.mispredicts_by_category),
            "insts_by_category": dict(self.insts_by_category),
            "cycle_breakdown": dict(self.cycle_breakdown),
            "output": list(self.output),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        data = dict(data)
        data["output"] = tuple(data.get("output", ()))
        return cls(**data)


def speedup(baseline: SimResult, candidate: SimResult) -> float:
    """Cycle-count speedup of *candidate* over *baseline* (1.0 = equal)."""
    if candidate.cycles == 0:
        raise ValueError("candidate ran zero cycles")
    return baseline.cycles / candidate.cycles


def geomean(values) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_or_none(values) -> float | None:
    """:func:`geomean`, degraded to ``None`` on empty or non-positive input.

    Report and experiment code renders the ``None`` as ``"n/a"`` so one
    degenerate grid point (a zero speedup, an empty workload set) costs a
    summary cell instead of crashing the whole sweep.
    """
    values = list(values)
    if not values or any(v <= 0 for v in values):
        return None
    return geomean(values)
