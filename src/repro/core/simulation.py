"""Top-level simulation driver.

One :func:`simulate` call runs a workload functionally on the chosen guest
VM while replaying its trace through the native interpreter model onto the
embedded-core timing model, and returns a :class:`SimResult`.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.results import SimResult
from repro.native.model import ModelRunner, get_model
from repro.uarch.config import CoreConfig, cortex_a5
from repro.uarch.pipeline import Machine, SteadyStateMemo
from repro.vm.capture import (
    TraceMissError,
    TraceRecorder,
    replay_events,
    replay_events_memo,
    resolve_trace_mode,
    trace_key,
)
from repro.vm.js import JsVM
from repro.vm.lua import LuaVM
from repro.workloads import workload as get_workload

#: The paper's four evaluation schemes (Figures 7-10).
SCHEMES = ("baseline", "threaded", "vbbi", "scd")


def scheme_parts(scheme: str) -> tuple[str, str]:
    """Map an evaluation scheme to (code strategy, indirect predictor).

    VBBI is a *predictor*, not a code transformation: it runs the baseline
    dispatch code with the hashed (PC ⊕ hint) BTB index.
    """
    mapping = {
        "baseline": ("baseline", "btb"),
        "threaded": ("threaded", "btb"),
        "vbbi": ("baseline", "vbbi"),
        "scd": ("scd", "btb"),
        # Extra ablation schemes (not part of the paper's four): the tagged
        # target cache of Chang et al. and the ITTAGE predictor of Seznec &
        # Michaud.
        "ttc": ("baseline", "ttc"),
        "ittage": ("baseline", "ittage"),
        "superinst": ("superinst", "btb"),
        "cascaded": ("baseline", "cascaded"),
    }
    try:
        return mapping[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; expected one of {SCHEMES}"
        ) from None


def _make_vm(vm: str, source: str, max_steps: int):
    if vm == "lua":
        return LuaVM.from_source(source, max_steps=max_steps)
    if vm == "js":
        return JsVM.from_source(source, max_steps=max_steps)
    raise ValueError(f"unknown vm {vm!r}; expected 'lua' or 'js'")


def simulate(
    workload: str,
    vm: str = "lua",
    scheme: str = "scd",
    config: CoreConfig | None = None,
    scale: str = "sim",
    n: int | None = None,
    source: str | None = None,
    context_switch_interval: int | None = None,
    context_switch_policy: str = "flush",
    max_steps: int = 100_000_000,
    check_output: bool = True,
    metrics: dict | None = None,
    trace_store=None,
    trace_mode: str | None = None,
    replay_memo: bool = True,
    use_kernel: bool | None = None,
    use_batch: bool | None = None,
    memo_store=None,
    machine_factory=None,
    probe=None,
) -> SimResult:
    """Run one (workload, vm, scheme, machine) combination.

    Args:
        workload: Table III benchmark name (or a label when *source* given).
        vm: ``"lua"`` or ``"js"``.
        scheme: one of :data:`SCHEMES`.
        config: machine configuration (default: the Cortex-A5 simulator
            machine of Table II).  ``indirect_scheme`` is overridden to
            match *scheme*.
        scale: ``"sim"`` or ``"fpga"`` input scale.
        n: explicit input parameter (overrides *scale*).
        source: raw scriptlet source (overrides the workload registry).
        context_switch_interval: JTE/TLB/RAS flush period in guest
            bytecodes (Section IV OS-interaction model).
        context_switch_policy: ``"flush"`` (default) or ``"save"`` —
            whether the OS flushes JTEs or saves/restores them.
        max_steps: guest-step safety budget.
        check_output: verify the VM output against the workload's Python
            reference (skipped for raw sources or explicit *n*).
        metrics: optional dict that receives per-run throughput metadata
            (``wall_s``, ``events``, ``events_per_s``, ``replayed``,
            ``memo_hits``, ``memo_events``).  Kept out of
            :class:`SimResult` so the cached, deterministic experiment
            numbers never depend on wall-clock time.
        trace_store: optional :class:`repro.harness.cache.TraceStore`.
            When given, the functional event stream is recorded on the
            first run of a (vm, source) pair and replayed — skipping VM
            interpretation entirely — on every subsequent run, regardless
            of scheme or machine configuration (the stream depends on
            neither).  ``None`` (the default) keeps ``simulate`` pure:
            no trace files are read or written.
        trace_mode: ``"auto"`` (replay if recorded, else record),
            ``"record"`` (force re-interpretation and overwrite),
            ``"replay"`` (require a recorded trace, raise
            :class:`~repro.vm.capture.TraceMissError` otherwise) or
            ``"off"``.  ``None`` defers to
            :func:`repro.vm.capture.resolve_trace_mode` (CLI flags /
            ``SCD_REPRO_TRACE`` / ``"auto"``).
        replay_memo: enable the steady-state timing memo on replayed runs
            (exact by construction; set False for the belt-and-braces
            event-by-event replay path).
        use_kernel: force the exec-compiled replay kernels on (True) or
            off (False); ``None`` resolves through
            :func:`repro.native.kernel.kernel_enabled` (CLI default, then
            ``SCD_REPRO_KERNEL``, then on).
        use_batch: force chunk-compiled batch (superblock) replay on
            (True) or off (False) on top of the kernels; ``None``
            resolves through :func:`repro.native.batch.batch_enabled`
            (CLI default, then ``SCD_REPRO_BATCH``, then on).
        memo_store: optional :class:`repro.harness.cache.MemoStore`.  When
            given together with a replayed trace and ``replay_memo``, the
            steady-state memo's transition table is loaded from (and, when
            it learned new transitions, saved back to) the store — so a
            second process skips the warm-up chunks the first one already
            simulated.  Keys embed the memo format version, the trace key,
            the full timing config and the model's structural digest; any
            drift reads as a miss, never a mis-applied memo.
        machine_factory: callable building the timing machine from the
            resolved :class:`CoreConfig` (default :class:`Machine`).  The
            verify subsystem passes an instrumented subclass here.
        probe: optional callable invoked as ``probe(machine, runner)``
            after the machine is finalized and before the result is built
            — the invariant-checker hook.  Must not mutate either.

    Returns:
        A frozen :class:`SimResult`.
    """
    wall_start = time.perf_counter()
    strategy, indirect = scheme_parts(scheme)
    if config is None:
        config = cortex_a5()
    config = config.with_changes(indirect_scheme=indirect)

    expected = None
    if source is None:
        bench = get_workload(workload)
        source = bench.source(n=n, scale=scale)
        if check_output and n is None:
            expected = bench.expected_output(scale=scale)

    mode = resolve_trace_mode(trace_mode) if trace_store is not None else "off"
    with obs.span("compile", vm=vm, scheme=scheme):
        machine = (machine_factory or Machine)(config)
        model = get_model(vm, strategy)
        runner = ModelRunner(
            model,
            machine,
            context_switch_interval=context_switch_interval,
            context_switch_policy=context_switch_policy,
            use_kernel=use_kernel,
            use_batch=use_batch,
        )
    runner.start()

    recorded = None
    key = None
    if mode != "off":
        key = trace_key(vm, source, max_steps)
        if mode != "record":
            with obs.span("cache", store="traces") as cache_span:
                recorded = trace_store.get(key)
                cache_span.annotate(hit=recorded is not None)
        if recorded is None and mode == "replay":
            raise TraceMissError(
                f"no recorded trace for {vm}/{workload} "
                "(run once with --record or trace_mode='auto' first)"
            )
    memo = None
    memo_codec = memo_store_key = None
    if recorded is not None:
        # Replay the recorded columns; the guest VM never runs.
        with obs.span("replay", memo=replay_memo) as phase:
            if replay_memo:
                memo = SteadyStateMemo(machine, runner)
                if memo_store is not None:
                    from repro.harness.cache import memo_key
                    from repro.uarch.pipeline import MemoFormatError
                    from repro.vm.capture import MEMO_CHUNK_EVENTS

                    memo_codec = model.memo_codec()
                    memo_store_key = memo_key(
                        key,
                        scheme,
                        config,
                        context_switch_interval,
                        context_switch_policy,
                        model.structure_digest(),
                        MEMO_CHUNK_EVENTS,
                    )
                    with obs.span("cache", store="memos") as memo_span:
                        payload = memo_store.get(memo_store_key)
                        if payload is not None:
                            try:
                                memo.import_payload(
                                    payload, memo_codec, memo_store_key
                                )
                            except MemoFormatError as exc:
                                # Structurally valid frame, unbindable
                                # interior (e.g. a geometry-mismatched
                                # BTB digest): quarantine the shard and
                                # fall back to an empty memo.
                                memo_store.quarantine(
                                    memo_store_key, str(exc)
                                )
                        memo_span.annotate(entries=memo.loaded)
                replay_events_memo(recorded, runner, memo)
            else:
                replay_events(recorded, runner.on_event, runner=runner)
            phase.annotate(events=runner.events)
        if memo is not None and memo.dirty and memo_store_key is not None:
            with obs.span("cache", store="memos"):
                memo_store.put(
                    memo_store_key,
                    memo.export_payload(memo_codec, memo_store_key),
                )
        output = list(recorded.output)
        guest_steps = recorded.guest_steps
    else:
        with obs.span("compile", vm=vm, guest=True):
            guest = _make_vm(vm, source, max_steps)
        if mode != "off":
            with obs.span("record") as phase:
                recorder = TraceRecorder(runner.on_event)
                output = guest.run(trace=recorder.hook)
                phase.annotate(events=runner.events)
            with obs.span("cache", store="traces"):
                trace_store.put(key, recorder.seal(output, guest.steps))
        else:
            with obs.span("simulate") as phase:
                output = guest.run(trace=runner.on_event)
                phase.annotate(events=runner.events)
        guest_steps = guest.steps
    runner.finish()

    if expected is not None and list(output) != list(expected):
        raise AssertionError(
            f"{vm}/{workload}: functional output diverged from reference "
            f"(first line: {output[:1]} != {expected[:1]})"
        )

    stats = machine.finalize()
    if probe is not None:
        probe(machine, runner)
    if metrics is not None:
        wall = time.perf_counter() - wall_start
        metrics["wall_s"] = wall
        metrics["events"] = runner.events
        metrics["events_per_s"] = runner.events / wall if wall > 0 else 0.0
        metrics["replayed"] = recorded is not None
        metrics["memo_hits"] = memo.hits if memo is not None else 0
        metrics["memo_events"] = memo.events_skipped if memo is not None else 0
        metrics["memo_loaded"] = memo.loaded if memo is not None else 0
        kernel = runner.kernel
        metrics["kernel_events"] = kernel.kernel_events if kernel else 0
        metrics["fallback_events"] = kernel.fallback_events if kernel else 0
        metrics["batch_events"] = kernel.batch_events if kernel else 0
        metrics["superblocks"] = kernel.superblocks if kernel else 0
        # Per-component uarch counter export: the telemetry layer attaches
        # it to the job span, `scd-repro profile` prints it.  One small
        # dict per multi-second simulation — noise next to the run itself.
        metrics["uarch"] = stats.component_counters()
    return SimResult(
        vm=vm,
        scheme=scheme,
        workload=workload,
        config_name=config.name,
        scale=scale if n is None else f"n={n}",
        cycles=stats.cycles,
        instructions=stats.instructions,
        guest_steps=guest_steps,
        cpi=stats.cpi,
        branch_mpki=stats.branch_mpki,
        icache_mpki=stats.icache_mpki,
        dcache_mpki=stats.dcache_mpki,
        dispatch_fraction=stats.dispatch_fraction(),
        bop_hits=stats.bop_hits,
        bop_misses=stats.bop_misses,
        jte_inserts=stats.jte_inserts,
        mispredicts_by_category=dict(stats.mispredicts_by_category),
        insts_by_category=dict(stats.insts_by_category),
        cycle_breakdown=dict(stats.cycle_breakdown),
        output=tuple(output),
    )
