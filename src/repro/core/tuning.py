"""JTE-cap auto-tuning — the paper's stated future work.

Figure 11(c,d) shows that at small BTB sizes a cap on the number of
resident jump-table entries can help some programs substantially while
barely moving others; the paper "leave[s] selecting an optimal cap value
for future work".  This module implements that selection: an exhaustive
sweep (:func:`sweep_jte_caps`) and a cheaper golden-section-style search
over the cap lattice (:func:`find_optimal_jte_cap`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.simulation import simulate
from repro.uarch.config import CoreConfig, cortex_a5

#: Default cap lattice: powers of two up to "effectively unbounded".
DEFAULT_CAPS = (2, 4, 8, 16, 32, 64, None)


@dataclass(frozen=True)
class CapTuningResult:
    """Outcome of a JTE-cap search for one (workload, vm, machine) triple.

    Attributes:
        workload / vm: what was tuned.
        best_cap: cap with the fewest SCD cycles (``None`` = unbounded).
        best_speedup: speedup over the *baseline* scheme at that cap.
        cycles_by_cap: SCD cycle count per evaluated cap.
        evaluations: number of simulations run.
    """

    workload: str
    vm: str
    best_cap: int | None
    best_speedup: float
    cycles_by_cap: dict = field(default_factory=dict)
    evaluations: int = 0


def _cap_key(cap: int | None):
    return "inf" if cap is None else cap


def sweep_jte_caps(
    workload: str,
    vm: str = "lua",
    config: CoreConfig | None = None,
    caps: tuple = DEFAULT_CAPS,
    scale: str = "sim",
) -> CapTuningResult:
    """Evaluate every cap in *caps* and return the best.

    The baseline run (for the speedup denominator) uses the same machine
    with the cap left unbounded — caps only affect SCD.
    """
    if config is None:
        config = cortex_a5()
    baseline = simulate(workload, vm=vm, scheme="baseline", config=config, scale=scale)
    cycles_by_cap: dict = {}
    for cap in caps:
        scd = simulate(
            workload,
            vm=vm,
            scheme="scd",
            config=config.with_changes(jte_cap=cap),
            scale=scale,
        )
        cycles_by_cap[_cap_key(cap)] = scd.cycles
    best_key = min(cycles_by_cap, key=cycles_by_cap.get)
    best_cap = None if best_key == "inf" else best_key
    return CapTuningResult(
        workload=workload,
        vm=vm,
        best_cap=best_cap,
        best_speedup=baseline.cycles / cycles_by_cap[best_key],
        cycles_by_cap=cycles_by_cap,
        evaluations=len(caps) + 1,
    )


def find_optimal_jte_cap(
    workload: str,
    vm: str = "lua",
    config: CoreConfig | None = None,
    caps: tuple = DEFAULT_CAPS,
    scale: str = "sim",
) -> CapTuningResult:
    """Ternary search over the (unimodal in practice) cap lattice.

    Cycle count as a function of the cap is typically bowl-shaped: tiny
    caps forfeit fast-path coverage, huge caps evict branch targets.  A
    ternary search needs ~2*log3(n) simulations instead of n.  Falls back
    to returning whatever minimum it found; for guaranteed optimality use
    :func:`sweep_jte_caps`.
    """
    if config is None:
        config = cortex_a5()
    baseline = simulate(workload, vm=vm, scheme="baseline", config=config, scale=scale)
    lattice = list(caps)
    cycles_by_cap: dict = {}
    evaluations = 1

    def measure(position: int) -> int:
        nonlocal evaluations
        cap = lattice[position]
        key = _cap_key(cap)
        if key not in cycles_by_cap:
            result = simulate(
                workload,
                vm=vm,
                scheme="scd",
                config=config.with_changes(jte_cap=cap),
                scale=scale,
            )
            cycles_by_cap[key] = result.cycles
            evaluations += 1
        return cycles_by_cap[key]

    low, high = 0, len(lattice) - 1
    while high - low > 2:
        third = (high - low) // 3
        mid1, mid2 = low + third, high - third
        if measure(mid1) <= measure(mid2):
            high = mid2
        else:
            low = mid1
    for position in range(low, high + 1):
        measure(position)
    best_key = min(cycles_by_cap, key=cycles_by_cap.get)
    best_cap = None if best_key == "inf" else best_key
    return CapTuningResult(
        workload=workload,
        vm=vm,
        best_cap=best_cap,
        best_speedup=baseline.cycles / cycles_by_cap[best_key],
        cycles_by_cap=cycles_by_cap,
        evaluations=evaluations,
    )
