"""The paper's primary contribution, assembled.

``repro.core`` couples the functional guest VMs, the native interpreter
model and the embedded-core timing model into one call::

    from repro.core import simulate
    result = simulate("mandelbrot", vm="lua", scheme="scd")
    print(result.cycles, result.branch_mpki)

The four evaluation schemes of the paper are available:

* ``"baseline"`` — canonical switch dispatch (Figure 1(a/b)).
* ``"threaded"`` — jump threading (Figure 1(c), Rohou et al.).
* ``"vbbi"`` — baseline code with the VBBI indirect predictor (Farooq et
  al., HPCA 2010).
* ``"scd"`` — Short-Circuit Dispatch (this paper).
"""

from repro.core.simulation import simulate, SCHEMES, scheme_parts
from repro.core.results import SimResult, geomean, geomean_or_none, speedup
from repro.core.tuning import (
    CapTuningResult,
    find_optimal_jte_cap,
    sweep_jte_caps,
)

__all__ = [
    "simulate",
    "SCHEMES",
    "scheme_parts",
    "SimResult",
    "geomean",
    "geomean_or_none",
    "speedup",
    "CapTuningResult",
    "find_optimal_jte_cap",
    "sweep_jte_caps",
]
