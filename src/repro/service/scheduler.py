"""In-flight dedup scheduler: many clients, one backend, union cost.

The scheduler is the reason the service exists.  Every submitted grid
point is identified by its :meth:`SimJob.cache_key`; at any instant
each distinct key has at most one *flight* — a single backend execution
whose result feeds every waiter.  Two clients submitting 75%-overlapping
sweeps therefore cost the union of their unique grid points, not the
sum: the overlap is simulated exactly once and fanned out (the same
amortization inference stacks get from request dedup/batching in front
of an expensive model).

Execution reuses the harness engine untouched: queued flights are taken
in prioritized batches (most-waited-on first, FIFO within a tier) and
run through :func:`repro.harness.parallel.run_jobs_partial` on a single
worker thread, with a fresh per-batch :class:`ThroughputMetrics` (never
the process-wide singleton — concurrent sweeps must not contaminate
each other's counters) and the engine's incremental ``on_result``
callback marshalled onto the event loop, so every waiter streams each
grid point the moment it resolves rather than at batch end.

Admission control here is the global knob: :meth:`SweepScheduler.submit`
refuses new *unique* work once the number of unresolved flights would
exceed ``queue_depth`` (joining an existing flight is free — dedup adds
no backend load and is never refused).  Per-client budgets live in the
server (:mod:`repro.service.server`).

Tracing: when a log is configured the scheduler emits a ``service``
span for its lifetime, a ``request`` span per admitted submission, a
``flight`` span per unique grid point, and a ``batch`` span per backend
round; pool workers root their ``job`` spans under the current batch,
so the merged tree shows exactly which client paid for which
simulation and which ones rode along for free.
"""

from __future__ import annotations

import asyncio
import itertools
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields

from repro import obs
from repro.harness.cache import DEFAULT_CACHE, ResultCache
from repro.harness.parallel import (
    SimJob,
    ThroughputMetrics,
    run_jobs_partial,
)
from repro.service.protocol import (
    REJECT_QUEUE_FULL,
    ProtocolError,
)


class Rejected(ProtocolError):
    """An admission refusal (carries the structured rejection code)."""


#: Default cap on unresolved flights (queued + running unique grid
#: points) before new unique work is refused with ``queue-full``.
DEFAULT_QUEUE_DEPTH = 4096


@dataclass
class _Flight:
    """One unique in-flight grid point and everyone waiting on it."""

    key: str
    job: SimJob
    order: int
    waiters: list = field(default_factory=list)  # (Request, index) pairs
    span: object = None


class Request:
    """One admitted submission: its jobs, progress stream and tallies.

    The scheduler pushes protocol-shaped event dicts into
    :attr:`events` as grid points resolve (a ``job`` message per index,
    a ``done`` message, then ``None`` as the end-of-stream sentinel);
    the server's writer task drains the queue onto the socket.
    """

    def __init__(self, request_id: str, client: str, jobs: list[SimJob]):
        self.id = request_id
        self.client = client
        self.jobs = jobs
        self.results: list = [None] * len(jobs)
        self.events: asyncio.Queue = asyncio.Queue()
        self.pending = len(jobs)
        self.unique = 0
        self.deduped = 0
        self.cached = 0
        self.ok = 0
        self.failed = 0
        self.span = None

    @property
    def done(self) -> bool:
        return self.pending == 0

    def _resolve_index(
        self, index: int, result, detail: str | None, meta: dict,
        flight: _Flight, deduped: bool,
    ) -> None:
        cached = bool(meta.get("cached"))
        if result is not None:
            self.results[index] = result
            self.ok += 1
            if cached:
                self.cached += 1
        else:
            self.failed += 1
        event = {
            "type": "job",
            "id": self.id,
            "index": index,
            "ok": result is not None,
            "cached": cached,
            "deduped": deduped,
            "span": flight.span.id if flight.span is not None else None,
        }
        if result is not None:
            event["result"] = result.to_dict()
        else:
            event["detail"] = detail or "simulation failed"
        self.events.put_nowait(event)
        self.pending -= 1
        if self.pending == 0:
            self._finish()

    def _finish(self) -> None:
        summary = {
            "type": "done",
            "id": self.id,
            "jobs": len(self.jobs),
            "ok": self.ok,
            "failed": self.failed,
            "cached": self.cached,
            "unique": self.unique,
            "deduped": self.deduped,
        }
        self.events.put_nowait(summary)
        self.events.put_nowait(None)
        obs.end_span(
            self.span,
            ok=self.ok,
            failed=self.failed,
            cached=self.cached,
            unique=self.unique,
            deduped=self.deduped,
        )
        self.span = None


class SweepScheduler:
    """Owns the flight table, the batch loop and the backend thread.

    Single-threaded discipline: every mutation of the flight table and
    every Request resolution happens on the event loop thread — the
    backend thread only runs simulations and marshals completions back
    with ``call_soon_threadsafe``.  That makes the join-vs-create race
    (a client submitting key K while K's batch is completing) a
    non-issue: whichever callback runs first on the loop settles it.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | None = DEFAULT_CACHE,
        retries: int | None = None,
        job_timeout: float | None = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ):
        self.workers = workers
        self.cache = cache
        self.retries = retries
        self.job_timeout = job_timeout
        self.queue_depth = max(1, int(queue_depth))
        self._inflight: dict[str, _Flight] = {}
        self._queued: list[_Flight] = []
        self._order = itertools.count()
        self._request_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._drain_task: asyncio.Task | None = None
        # One thread: batches are serialized so the ambient span stack
        # (and the process pool) has a single backend owner.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="scd-batch"
        )
        self._service_span = None
        self._stopping = False
        # Lifetime counters, reported by the ``stats`` verb.
        self.requests = 0
        self.jobs_submitted = 0
        self.jobs_deduped = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.batches = 0
        self.metrics = ThroughputMetrics()  # aggregate across batches

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._service_span = obs.start_span(
            "service", parent=obs.current_span_id(),
            queue_depth=self.queue_depth,
        )
        self._drain_task = self._loop.create_task(self._drain())

    async def stop(self) -> None:
        """Finish the running batch, fail never-run flights, close up."""
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        # The batch thread cannot be cancelled; wait it out off-loop so
        # its call_soon_threadsafe completions still get serviced.
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown
        )
        await asyncio.sleep(0)  # deliver any just-marshalled completions
        for flight in list(self._inflight.values()):
            self._resolve_failure(flight.key, "scheduler stopped")
        obs.end_span(
            self._service_span,
            requests=self.requests,
            jobs=self.jobs_submitted,
            deduped=self.jobs_deduped,
            completed=self.jobs_completed,
            failed=self.jobs_failed,
            batches=self.batches,
        )
        self._service_span = None

    # -- submission --------------------------------------------------------

    def submit(self, jobs: list[SimJob], client: str = "?") -> Request:
        """Admit a sweep: join in-flight keys, queue the unique rest.

        Must be called from the event loop thread.  Raises
        :class:`Rejected` (``queue-full``) when the new unique keys
        would push unresolved flights past ``queue_depth``; dedup joins
        never count against the queue.
        """
        keys = [job.cache_key() for job in jobs]
        new_keys: dict[str, SimJob] = {}
        for key, job in zip(keys, jobs):
            if key not in self._inflight:
                new_keys.setdefault(key, job)
        if len(self._inflight) + len(new_keys) > self.queue_depth:
            raise Rejected(
                f"queue depth {self.queue_depth} would be exceeded "
                f"({len(self._inflight)} in flight, "
                f"{len(new_keys)} new unique)",
                code=REJECT_QUEUE_FULL,
            )
        request = Request(f"q{next(self._request_ids)}", client, list(jobs))
        request.span = obs.start_span(
            "request",
            parent=(
                self._service_span.id
                if self._service_span is not None else None
            ),
            client=client, jobs=len(jobs),
        )
        self.requests += 1
        self.jobs_submitted += len(jobs)
        for index, (key, job) in enumerate(zip(keys, jobs)):
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight(key=key, job=job, order=next(self._order))
                flight.span = obs.start_span(
                    "flight",
                    parent=(
                        self._service_span.id
                        if self._service_span is not None else None
                    ),
                    vm=job.vm, scheme=job.scheme, workload=job.workload,
                )
                self._inflight[key] = flight
                self._queued.append(flight)
                request.unique += 1
            else:
                request.deduped += 1
                self.jobs_deduped += 1
            flight.waiters.append((request, index))
        if self._wake is not None:
            self._wake.set()
        return request

    def pending_flights(self) -> int:
        """Unresolved unique grid points (queued + running)."""
        return len(self._inflight)

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "jobs_submitted": self.jobs_submitted,
            "jobs_deduped": self.jobs_deduped,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "batches": self.batches,
            "in_flight": len(self._inflight),
            "queued": len(self._queued),
            "metrics": self.metrics.as_dict(),
        }

    # -- batch loop --------------------------------------------------------

    def _take_batch(self) -> list[_Flight]:
        """Everything currently queued, most-waited-on first.

        Prioritizing by waiter count gets shared grid points (the ones
        several clients are blocked on) through the backend first; FIFO
        order breaks ties so no flight starves.
        """
        batch = sorted(
            self._queued, key=lambda f: (-len(f.waiters), f.order)
        )
        self._queued = []
        return batch

    async def _drain(self) -> None:
        assert self._wake is not None and self._loop is not None
        while not self._stopping:
            await self._wake.wait()
            self._wake.clear()
            while self._queued and not self._stopping:
                batch = self._take_batch()
                await self._loop.run_in_executor(
                    self._executor, self._run_batch, batch
                )

    def _run_batch(self, flights: list[_Flight]) -> None:
        """Backend-thread body: one run_jobs_partial over the batch.

        Per-batch metrics keep concurrent sweeps out of each other's
        counters; completions are marshalled to the loop thread as the
        engine reports them, so waiters see progress mid-batch.
        """
        assert self._loop is not None
        metrics = ThroughputMetrics()
        batch_span = obs.start_span(
            "batch",
            parent=(
                self._service_span.id
                if self._service_span is not None else None
            ),
            jobs=len(flights),
        )
        # Root this thread's ambient spans (serial cache probes, worker
        # job spans) under the batch, exactly like a pool worker does.
        obs.adopt_worker(batch_span.id if batch_span is not None else None)

        def on_result(key: str, result, meta: dict) -> None:
            self._loop.call_soon_threadsafe(
                self._resolve_success, key, result, dict(meta)
            )

        try:
            _, failures = run_jobs_partial(
                [flight.job for flight in flights],
                workers=self.workers,
                cache=self.cache,
                retries=self.retries,
                job_timeout=self.job_timeout,
                metrics=metrics,
                on_result=on_result,
            )
        except BaseException:
            # The engine itself blew up (not a per-job failure): every
            # flight in this batch fails with the same diagnosis.
            detail = traceback.format_exc()
            for flight in flights:
                self._loop.call_soon_threadsafe(
                    self._resolve_failure, flight.key, detail
                )
            obs.end_span(batch_span, error=detail.splitlines()[-1])
            # Swallow: the failure already reached every waiter; raising
            # here would kill the drain loop and strand later requests.
            return
        for job, detail in failures:
            self._loop.call_soon_threadsafe(
                self._resolve_failure, job.cache_key(), str(detail)
            )
        self._loop.call_soon_threadsafe(self._fold_metrics, metrics)
        obs.end_span(batch_span, **metrics.as_dict())

    def _fold_metrics(self, batch_metrics: ThroughputMetrics) -> None:
        """Fold one batch's counters into the service-lifetime aggregate."""
        self.batches += 1
        for spec in fields(ThroughputMetrics):
            setattr(
                self.metrics, spec.name,
                getattr(self.metrics, spec.name)
                + getattr(batch_metrics, spec.name),
            )

    # -- resolution (event loop thread only) -------------------------------

    def _pop_flight(self, key: str) -> _Flight | None:
        flight = self._inflight.pop(key, None)
        if flight is not None and flight in self._queued:
            # Failed before its batch ran (scheduler stopping).
            self._queued.remove(flight)
        return flight

    def _resolve_success(self, key: str, result, meta: dict) -> None:
        flight = self._pop_flight(key)
        if flight is None:
            return
        obs.end_span(
            flight.span,
            ok=True,
            cached=bool(meta.get("cached")),
            waiters=len(flight.waiters),
        )
        for request, index in flight.waiters:
            self.jobs_completed += 1
            request._resolve_index(
                index, result, None, meta, flight,
                self._is_dedup(flight, request, index),
            )

    def _resolve_failure(self, key: str, detail: str) -> None:
        flight = self._pop_flight(key)
        if flight is None:
            return
        obs.end_span(flight.span, ok=False, waiters=len(flight.waiters))
        for request, index in flight.waiters:
            self.jobs_failed += 1
            request._resolve_index(
                index, None, detail, {}, flight,
                self._is_dedup(flight, request, index),
            )

    @staticmethod
    def _is_dedup(flight: _Flight, request: Request, index: int) -> bool:
        """Whether (request, index) joined a flight someone else opened.

        The flight's first waiter is its creator; every other waiter —
        other requests, or duplicate indices within the same request —
        rode along without adding backend load.
        """
        return flight.waiters[0] != (request, index)
