"""Wire protocol of the sweep service: newline-delimited JSON.

Every message is one JSON object on one line, UTF-8, ``\\n``-terminated
— trivially debuggable with ``nc`` and safe to parse incrementally.
The protocol is versioned (:data:`PROTOCOL_VERSION`) and the server's
``hello`` message states its version plus the admission-control limits
in force, so clients can fail fast on a mismatch.

Client → server message types::

    submit    {"type": "submit", "id": "r1", "jobs": [...]}        or
              {"type": "submit", "id": "r1", "grid": {...}}
    ping      {"type": "ping"}
    stats     {"type": "stats"}
    shutdown  {"type": "shutdown"}

Server → client::

    hello     protocol version + limits (sent once per connection)
    accepted  the request was admitted; total/unique/deduped job counts
    rejected  structured admission refusal: code in {"bad-request",
              "over-budget", "over-inflight", "queue-full"}
    job       one grid point resolved (streamed as keys complete, out
              of input order); carries the original index, the result
              (or failure detail), cache/dedup provenance and the
              ``repro.obs`` span id of the grid point's flight
    done      every grid point of the request resolved; summary counts
    pong / stats-reply / bye / error

A *job entry* names one grid point::

    {"workload": "fibo", "vm": "lua", "scheme": "scd",
     "machine": "cortex-a5", "scale": "sim", "kwargs": {"n": 8}}

``grid`` is the cross-product shorthand the CLI uses: ``workloads`` x
``vms`` x ``schemes`` with shared ``machine``/``scale``/``kwargs``.
Expansion and validation live here (:func:`parse_submit`) so the server
and any future client agree on one definition of a well-formed sweep.
"""

from __future__ import annotations

import json

from repro.core.simulation import SCHEMES
from repro.harness.parallel import SimJob
from repro.uarch.config import CONFIG_PRESETS
from repro.workloads import workload_names

#: Bump on any incompatible wire change; the ``hello`` message carries it.
PROTOCOL_VERSION = 1

#: Generous per-line bound for the asyncio stream reader: a submit
#: message naming a few thousand grid points fits comfortably.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Default TCP endpoint — loopback only; the service is a local daemon,
#: not an internet-facing one.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7645

#: Dispatch schemes a job entry may name (the grid schemes plus the
#: extension schemes the CLI's ``run`` accepts).
ALL_SCHEMES = SCHEMES + ("ttc", "cascaded", "ittage", "superinst")

#: Rejection codes the server emits; ``rejected.code`` is always one of
#: these, so clients can switch on it instead of parsing prose.
REJECT_BAD_REQUEST = "bad-request"
REJECT_OVER_BUDGET = "over-budget"
REJECT_OVER_INFLIGHT = "over-inflight"
REJECT_QUEUE_FULL = "queue-full"


class ProtocolError(ValueError):
    """A malformed message or job spec; *code* is a rejection code."""

    def __init__(self, message: str, code: str = REJECT_BAD_REQUEST):
        self.code = code
        super().__init__(message)


def encode(message: dict) -> bytes:
    """One message as a compact JSON line (the only framing there is)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one received line; raises :class:`ProtocolError` if it is
    not a JSON object or carries no string ``type``."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    if not isinstance(message.get("type"), str):
        raise ProtocolError("message has no string 'type'")
    return message


def job_from_entry(entry: dict) -> SimJob:
    """Validate one job entry and build its :class:`SimJob`.

    Unknown workloads/VMs/schemes/machines and non-object kwargs are
    :class:`ProtocolError`, not server tracebacks: admission control
    should refuse a bad sweep before it costs anything.
    """
    if not isinstance(entry, dict):
        raise ProtocolError("job entry is not an object")
    workload = entry.get("workload")
    if workload not in workload_names():
        raise ProtocolError(f"unknown workload {workload!r}")
    vm = entry.get("vm", "lua")
    if vm not in ("lua", "js"):
        raise ProtocolError(f"unknown vm {vm!r}")
    scheme = entry.get("scheme", "scd")
    if scheme not in ALL_SCHEMES:
        raise ProtocolError(f"unknown scheme {scheme!r}")
    machine = entry.get("machine")
    if machine is not None and machine not in CONFIG_PRESETS:
        raise ProtocolError(f"unknown machine {machine!r}")
    scale = entry.get("scale", "sim")
    if scale not in ("sim", "fpga"):
        raise ProtocolError(f"unknown scale {scale!r}")
    kwargs = entry.get("kwargs") or {}
    if not isinstance(kwargs, dict):
        raise ProtocolError("kwargs is not an object")
    for name in kwargs:
        if not isinstance(name, str):
            raise ProtocolError(f"kwarg name {name!r} is not a string")
    # cortex-a5 is the default config; passing None keeps the cache key
    # identical to jobs submitted without a machine at all.
    config = None
    if machine is not None and machine != "cortex-a5":
        config = CONFIG_PRESETS[machine]()
    return SimJob(
        workload=workload,
        vm=vm,
        scheme=scheme,
        config=config,
        scale=scale,
        kwargs=tuple(sorted(kwargs.items())),
    )


def expand_grid(grid: dict) -> list[dict]:
    """Expand the ``grid`` shorthand into explicit job entries."""
    if not isinstance(grid, dict):
        raise ProtocolError("grid is not an object")
    workloads = grid.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ProtocolError("grid.workloads must be a non-empty list")
    vms = grid.get("vms", ["lua"])
    schemes = grid.get("schemes", ["scd"])
    if not isinstance(vms, list) or not vms:
        raise ProtocolError("grid.vms must be a non-empty list")
    if not isinstance(schemes, list) or not schemes:
        raise ProtocolError("grid.schemes must be a non-empty list")
    shared = {
        key: grid[key]
        for key in ("machine", "scale", "kwargs")
        if key in grid
    }
    return [
        {"workload": workload, "vm": vm, "scheme": scheme, **shared}
        for vm in vms
        for workload in workloads
        for scheme in schemes
    ]


def parse_submit(message: dict) -> list[SimJob]:
    """Expand and validate a ``submit`` message into its job list."""
    entries = message.get("jobs")
    if entries is None and "grid" in message:
        entries = expand_grid(message["grid"])
    if not isinstance(entries, list) or not entries:
        raise ProtocolError("submit carries no jobs (need 'jobs' or 'grid')")
    return [job_from_entry(entry) for entry in entries]
