"""The asyncio front-end: ``scd-repro serve``.

A long-running local TCP daemon speaking the newline-delimited JSON
protocol of :mod:`repro.service.protocol`.  The server owns nothing
clever — it authenticates nothing (loopback only), simulates nothing,
and keeps no results; it admits requests, hands their grids to the
:class:`~repro.service.scheduler.SweepScheduler`, and streams each
client its own view of the shared progress.

Per-client admission control lives here, on top of the scheduler's
global queue-depth backpressure:

* ``max_inflight`` — a connection may have at most this many grid
  points unresolved at once (``over-inflight`` rejection: back off and
  resubmit).
* ``budget`` — a connection may submit at most this many grid points
  over its lifetime (``over-budget`` rejection: the clear signal a
  runaway client gets instead of quietly starving everyone else).

A rejection refuses one submission; the connection stays usable and
other clients are untouched.  ``shutdown`` (or SIGINT/SIGTERM on the
process) drains the running batch, fails never-run flights, and exits.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass

from repro.service import protocol
from repro.service.scheduler import Rejected, Request, SweepScheduler


@dataclass
class ServiceLimits:
    """Per-connection admission knobs (``None`` = unlimited budget)."""

    max_inflight: int = 1024
    budget: int | None = None


class _Connection:
    """Book-keeping for one client socket."""

    _ids = 0

    def __init__(self, writer: asyncio.StreamWriter):
        _Connection._ids += 1
        self.name = f"client-{_Connection._ids}"
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight = 0
        self.budget_used = 0
        self.tasks: set[asyncio.Task] = set()

    async def send(self, message: dict) -> None:
        async with self.write_lock:
            self.writer.write(protocol.encode(message))
            await self.writer.drain()


class SweepServer:
    """Accepts connections and runs the message loop per client."""

    def __init__(
        self,
        scheduler: SweepScheduler,
        host: str = protocol.DEFAULT_HOST,
        port: int = protocol.DEFAULT_PORT,
        limits: ServiceLimits | None = None,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.limits = limits or ServiceLimits()
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative when port 0 was asked."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self.address[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` message (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Hang up on still-connected clients *before* the loop tears
        # down, so their handler tasks finish cleanly instead of being
        # cancelled mid-read by asyncio.run's shutdown sweep.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        await self.scheduler.stop()

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await conn.send(
                {
                    "type": "hello",
                    "v": protocol.PROTOCOL_VERSION,
                    "server": "scd-repro",
                    "client": conn.name,
                    "max_inflight": self.limits.max_inflight,
                    "budget": self.limits.budget,
                }
            )
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError, ValueError,
                ):  # oversized line
                    await conn.send(
                        {
                            "type": "error",
                            "code": protocol.REJECT_BAD_REQUEST,
                            "message": "message exceeds the line limit",
                        }
                    )
                    break
                if not line:
                    break
                await self._dispatch(conn, line)
        except (ConnectionError, BrokenPipeError):
            pass  # client vanished; its flights keep feeding other waiters
        except asyncio.CancelledError:
            pass  # server shutting down with this client still connected
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            for stream_task in conn.tasks:
                stream_task.cancel()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, conn: _Connection, line: bytes) -> None:
        try:
            message = protocol.decode(line)
        except protocol.ProtocolError as exc:
            await conn.send(
                {
                    "type": "error",
                    "code": exc.code,
                    "message": str(exc),
                }
            )
            return
        kind = message["type"]
        if kind == "ping":
            await conn.send({"type": "pong"})
        elif kind == "stats":
            await conn.send(
                {
                    "type": "stats-reply",
                    "scheduler": self.scheduler.stats(),
                    "client": {
                        "name": conn.name,
                        "inflight": conn.inflight,
                        "budget_used": conn.budget_used,
                    },
                }
            )
        elif kind == "shutdown":
            await conn.send({"type": "bye"})
            self.request_shutdown()
        elif kind == "submit":
            await self._submit(conn, message)
        else:
            await conn.send(
                {
                    "type": "error",
                    "code": protocol.REJECT_BAD_REQUEST,
                    "message": f"unknown message type {kind!r}",
                }
            )

    async def _submit(self, conn: _Connection, message: dict) -> None:
        client_id = message.get("id")
        try:
            jobs = protocol.parse_submit(message)
            self._admit(conn, len(jobs))
            request = self.scheduler.submit(jobs, client=conn.name)
        except protocol.ProtocolError as exc:  # includes Rejected
            await conn.send(
                {
                    "type": "rejected",
                    "id": client_id,
                    "code": exc.code,
                    "message": str(exc),
                }
            )
            return
        conn.inflight += len(jobs)
        conn.budget_used += len(jobs)
        await conn.send(
            {
                "type": "accepted",
                "id": client_id,
                "request": request.id,
                "jobs": len(jobs),
                "unique": request.unique,
                "deduped": request.deduped,
                "span": (
                    request.span.id if request.span is not None else None
                ),
            }
        )
        task = asyncio.get_running_loop().create_task(
            self._stream(conn, client_id, request)
        )
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    def _admit(self, conn: _Connection, jobs: int) -> None:
        """Per-client admission checks; raises :class:`Rejected`."""
        budget = self.limits.budget
        if budget is not None and conn.budget_used + jobs > budget:
            raise Rejected(
                f"per-client budget of {budget} job(s) exceeded "
                f"({conn.budget_used} used, {jobs} requested)",
                code=protocol.REJECT_OVER_BUDGET,
            )
        if conn.inflight + jobs > self.limits.max_inflight:
            raise Rejected(
                f"per-client in-flight limit of {self.limits.max_inflight} "
                f"job(s) exceeded ({conn.inflight} in flight, "
                f"{jobs} requested); wait for progress and resubmit",
                code=protocol.REJECT_OVER_INFLIGHT,
            )

    async def _stream(
        self, conn: _Connection, client_id, request: Request
    ) -> None:
        """Forward one request's event stream onto the client socket.

        The client's ``id`` is stamped over the scheduler's internal
        request id so responses correlate with what the client sent.  A
        dead socket stops the writes but the queue is still drained —
        the request's accounting (and every *other* waiter of its
        flights) must finish regardless.
        """
        dead = False
        while True:
            event = await request.events.get()
            if event is None:
                break
            if client_id is not None:
                event = {**event, "id": client_id}
            if event["type"] == "done":
                conn.inflight -= len(request.jobs)
            if not dead:
                try:
                    await conn.send(event)
                except (ConnectionError, BrokenPipeError, RuntimeError):
                    dead = True


async def run_service(
    *,
    host: str = protocol.DEFAULT_HOST,
    port: int = protocol.DEFAULT_PORT,
    workers: int | None = None,
    retries: int | None = None,
    job_timeout: float | None = None,
    queue_depth: int | None = None,
    max_inflight: int = 1024,
    budget: int | None = None,
    cache=None,
    ready=None,
) -> int:
    """Construct, announce and run the service until shutdown.

    *ready* is an optional callback invoked with the bound ``(host,
    port)`` once the socket is listening (the CLI prints it; tests grab
    the ephemeral port from it).
    """
    from repro.harness.cache import DEFAULT_CACHE
    from repro.service.scheduler import DEFAULT_QUEUE_DEPTH

    scheduler = SweepScheduler(
        workers=workers,
        cache=DEFAULT_CACHE if cache is None else cache,
        retries=retries,
        job_timeout=job_timeout,
        queue_depth=(
            DEFAULT_QUEUE_DEPTH if queue_depth is None else queue_depth
        ),
    )
    server = SweepServer(
        scheduler,
        host=host,
        port=port,
        limits=ServiceLimits(max_inflight=max_inflight, budget=budget),
    )
    await server.start()
    if ready is not None:
        ready(server.address)
    try:
        await server.serve_until_shutdown()
    finally:
        await server.stop()
    return 0
