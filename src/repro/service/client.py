"""Blocking client for the sweep service: ``scd-repro submit``.

A deliberately small synchronous client over a stdlib socket — the
asyncio machinery lives server-side; a submitting process just writes
one line and reads lines until its request is done.  Results arrive as
:class:`~repro.core.results.SimResult` objects rebuilt from the wire
(byte-identical to what a local :func:`run_jobs` of the same grid
returns), in the submitted order, with per-job provenance (cache hit?
deduped against another client's in-flight sweep?) and the ``repro.obs``
span id of each grid point's flight for trace correlation.
"""

from __future__ import annotations

import itertools
import socket

from repro.core.results import SimResult
from repro.service import protocol


class ServiceError(RuntimeError):
    """Transport- or protocol-level failure talking to the service."""


class SweepRejected(ServiceError):
    """The server refused a submission; carries the structured code."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(f"{code}: {message}")


class SubmitOutcome:
    """Everything one submission produced, in input order."""

    def __init__(self, accepted: dict, jobs: int):
        self.accepted = accepted
        self.results: list[SimResult | None] = [None] * jobs
        self.job_events: list[dict | None] = [None] * jobs
        self.done: dict = {}

    @property
    def ok(self) -> bool:
        return bool(self.done) and self.done.get("failed", 1) == 0

    @property
    def deduped(self) -> int:
        return int(self.accepted.get("deduped", 0))

    @property
    def unique(self) -> int:
        return int(self.accepted.get("unique", 0))

    def failures(self) -> list[tuple[int, str]]:
        return [
            (index, event.get("detail", ""))
            for index, event in enumerate(self.job_events)
            if event is not None and not event.get("ok")
        ]


class SweepClient:
    """One connection to a running sweep server.

    Usable as a context manager; one in-flight submission at a time
    (the server supports more per connection, but a blocking client
    has nothing to do with the interleaved stream).
    """

    def __init__(
        self,
        host: str = protocol.DEFAULT_HOST,
        port: int = protocol.DEFAULT_PORT,
        timeout: float | None = 600.0,
    ):
        try:
            self._sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach sweep service at {host}:{port}: {exc} "
                "(is 'scd-repro serve' running?)"
            ) from exc
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self.hello = self._read()
        if self.hello.get("type") != "hello":
            raise ServiceError(
                f"expected hello, got {self.hello.get('type')!r}"
            )
        if self.hello.get("v") != protocol.PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol version mismatch: server {self.hello.get('v')!r}"
                f" != client {protocol.PROTOCOL_VERSION}"
            )

    def __enter__(self) -> "SweepClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    # -- wire --------------------------------------------------------------

    def _send(self, message: dict) -> None:
        try:
            self._file.write(protocol.encode(message))
            self._file.flush()
        except OSError as exc:
            raise ServiceError(f"send failed: {exc}") from exc

    def _read(self) -> dict:
        try:
            line = self._file.readline()
        except OSError as exc:
            raise ServiceError(f"read failed: {exc}") from exc
        if not line:
            raise ServiceError("server closed the connection")
        try:
            return protocol.decode(line)
        except protocol.ProtocolError as exc:
            raise ServiceError(f"bad server message: {exc}") from exc

    # -- verbs -------------------------------------------------------------

    def ping(self) -> bool:
        self._send({"type": "ping"})
        return self._read().get("type") == "pong"

    def stats(self) -> dict:
        self._send({"type": "stats"})
        reply = self._read()
        if reply.get("type") != "stats-reply":
            raise ServiceError(f"expected stats-reply, got {reply!r}")
        return reply

    def shutdown(self) -> None:
        """Ask the server to drain and exit (acknowledged with ``bye``)."""
        self._send({"type": "shutdown"})
        self._read()

    def submit(
        self,
        jobs: list[dict] | None = None,
        grid: dict | None = None,
        on_event=None,
    ) -> SubmitOutcome:
        """Submit a sweep and block until every grid point resolves.

        Exactly one of *jobs* (explicit job entries) or *grid* (the
        cross-product shorthand) must be given.  *on_event* sees every
        raw ``job`` message as it streams in, before the outcome is
        complete — progress display hooks in there.

        Raises :class:`SweepRejected` on a structured admission refusal
        (over-budget / over-inflight / queue-full / bad-request); the
        connection remains usable afterwards.
        """
        if (jobs is None) == (grid is None):
            raise ValueError("submit needs exactly one of jobs= or grid=")
        request_id = f"c{next(self._ids)}"
        message: dict = {"type": "submit", "id": request_id}
        if jobs is not None:
            message["jobs"] = list(jobs)
            total = len(jobs)
        else:
            message["grid"] = grid
            total = len(protocol.expand_grid(grid))
        self._send(message)
        reply = self._read()
        if reply.get("type") == "rejected":
            raise SweepRejected(
                reply.get("code", "rejected"), reply.get("message", "")
            )
        if reply.get("type") != "accepted":
            raise ServiceError(f"expected accepted, got {reply!r}")
        outcome = SubmitOutcome(reply, total)
        while True:
            event = self._read()
            kind = event.get("type")
            if kind == "job":
                index = event.get("index")
                if not isinstance(index, int) or not (0 <= index < total):
                    raise ServiceError(f"job event with bad index: {event}")
                outcome.job_events[index] = event
                if event.get("ok"):
                    outcome.results[index] = SimResult.from_dict(
                        event["result"]
                    )
                if on_event is not None:
                    on_event(event)
            elif kind == "done":
                outcome.done = event
                return outcome
            else:
                raise ServiceError(
                    f"unexpected message mid-request: {event}"
                )
