"""``repro.service`` — sweep-as-a-service on top of the harness engine.

A long-running asyncio front-end (``scd-repro serve``) that accepts
sweep requests from many concurrent clients over a local TCP socket,
expands them to :class:`~repro.harness.parallel.SimJob` grids, and —
the point of the exercise — **deduplicates in-flight grid points across
clients by cache key**: at any instant each distinct simulation runs at
most once, and its result feeds every waiter.  N clients submitting
overlapping sweeps cost the union of their unique grid points, not the
sum.

Pieces:

* :mod:`repro.service.protocol` — the versioned newline-delimited JSON
  wire format, job-entry validation and grid expansion.
* :mod:`repro.service.scheduler` — the in-flight flight table, batch
  prioritization onto :func:`~repro.harness.parallel.run_jobs_partial`,
  per-batch metrics isolation and queue-depth backpressure.
* :mod:`repro.service.server` — the asyncio TCP server, per-client
  admission control (in-flight caps, lifetime job budgets) and result
  streaming.
* :mod:`repro.service.client` — the blocking client the ``scd-repro
  submit`` CLI uses.

See ``docs/SERVICE.md`` for the protocol reference and semantics.
"""

from repro.service.client import (
    ServiceError,
    SubmitOutcome,
    SweepClient,
    SweepRejected,
)
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.scheduler import Rejected, Request, SweepScheduler
from repro.service.server import (
    ServiceLimits,
    SweepServer,
    run_service,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Rejected",
    "Request",
    "ServiceError",
    "ServiceLimits",
    "SubmitOutcome",
    "SweepClient",
    "SweepRejected",
    "SweepScheduler",
    "SweepServer",
    "run_service",
]
