"""Branch target buffer with the SCD jump-table-entry (JTE) overlay.

The paper's key mechanism (Section III-B): every BTB entry carries a *J/B
bit*.  When set, the entry is a jump-table entry mapping an **opcode value**
(the masked bytecode in ``Rop``) to a handler address; when clear, it is an
ordinary PC-indexed branch-target entry.  ``bop`` searches only JTEs;
ordinary prediction searches only BTB entries; ``jte.flush`` invalidates only
JTEs.

Replacement follows the paper's default policy: an incoming JTE may evict a
BTB entry, but an incoming BTB entry may never evict a JTE.  A configurable
cap bounds the number of resident JTEs (the Section IV / Figure 11(c,d)
mitigation for small BTBs).

Beyond the paper's idealized single-level buffer, this module models the
front-end features reverse-engineered on real Arm cores ("Branch Target
Buffer Reverse Engineering on Arm", PAPERS.md): tree-pLRU way replacement
(``policy="plru"``), XOR-folded set indexing (``index="xor"``) and a
two-level nano/main hierarchy (:class:`MultiLevelBtb`) whose main-level
hits cost extra redirect bubbles.
"""

from __future__ import annotations


# Entry field indices (entries are small lists for speed).
_VALID, _JTE, _KEY, _TARGET = 0, 1, 2, 3


class BranchTargetBuffer:
    """Set-associative BTB shared between branch targets and SCD JTEs.

    Args:
        entries: total entry count (must be ``sets * ways``).
        ways: associativity; ``ways == entries`` gives a fully-associative
            buffer (the Rocket configuration).
        policy: ``"lru"``, ``"rr"`` (round-robin) or ``"plru"`` (tree
            pseudo-LRU; requires a power-of-two way count) way replacement.
        jte_cap: maximum simultaneous JTEs, or ``None`` for unbounded
            (the paper's default "∞" setting).
        index: ``"mod"`` (paper-style word-address modulo) or ``"xor"``
            (upper index bits folded in, as measured on Arm main BTBs;
            requires a power-of-two set count).
    """

    def __init__(
        self,
        entries: int = 256,
        ways: int = 2,
        policy: str = "lru",
        jte_cap: int | None = None,
        index: str = "mod",
    ):
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if entries % ways:
            raise ValueError(f"entries ({entries}) not divisible by ways ({ways})")
        if policy not in ("lru", "rr", "plru"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        if policy == "plru" and ways & (ways - 1):
            raise ValueError(
                f"plru needs a power-of-two way count, got {ways}"
            )
        if index not in ("mod", "xor"):
            raise ValueError(f"unknown index function {index!r}")
        self.entries = entries
        self.ways = ways
        self.policy = policy
        self.jte_cap = jte_cap
        self.index = index
        self.n_sets = entries // ways
        self._set_mask = self.n_sets - 1
        if self.n_sets & self._set_mask:
            # Non-power-of-two set counts (e.g. the 62-entry Rocket BTB,
            # fully associative so n_sets == 1) index by modulo instead.
            self._set_mask = None
        if index == "xor" and self._set_mask is None:
            raise ValueError(
                f"xor indexing needs a power-of-two set count, got {self.n_sets}"
            )
        self._set_bits = max(self.n_sets.bit_length() - 1, 1)
        self._sets: list[list[list]] = [
            [[False, False, 0, 0] for _ in range(ways)] for _ in range(self.n_sets)
        ]
        #: Physical index of the way most recently replaced by round-robin
        #: (the next victim search rotates onward from it).
        self._rr: list[int] = [0] * self.n_sets
        #: Per-set tree-pLRU bit vector (``ways - 1`` internal nodes; bit
        #: value 1 means the right subtree is the LRU side).
        self._plru: list[int] = [0] * self.n_sets
        self._jte_count = 0
        #: Ordinary inserts dropped because every way held a JTE (the
        #: JTE-priority starvation cost surfaced in component counters).
        self.install_blocked = 0

    # -- indexing ----------------------------------------------------------

    def _index_pc(self, pc: int) -> int:
        word = pc >> 2
        if self.index == "xor":
            return (word ^ (word >> self._set_bits)) & self._set_mask
        if self._set_mask is not None:
            return word & self._set_mask
        return word % self.n_sets

    def _index_jte(self, opcode: int) -> int:
        if self.index == "xor":
            return (opcode ^ (opcode >> self._set_bits)) & self._set_mask
        if self._set_mask is not None:
            return opcode & self._set_mask
        return opcode % self.n_sets

    @staticmethod
    def _jte_key(branch_id: int, opcode: int) -> int:
        return (branch_id << 32) | (opcode & 0xFFFF_FFFF)

    # -- replacement helpers ------------------------------------------------

    def _touch(self, set_index: int, ways: list[list], position: int) -> None:
        """Promote a hit entry to MRU (LRU reorders; pLRU flips tree bits)."""
        if self.policy == "lru":
            if position:
                entry = ways.pop(position)
                ways.insert(0, entry)
        elif self.policy == "plru":
            self._plru_touch(set_index, position)

    def _plru_touch(self, set_index: int, position: int) -> None:
        """Point every tree node on *position*'s path away from it."""
        bits = self._plru[set_index]
        node, lo, hi = 0, 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) >> 1
            if position < mid:
                bits |= 1 << node  # LRU side is now the right subtree
                node, hi = 2 * node + 1, mid
            else:
                bits &= ~(1 << node)  # LRU side is now the left subtree
                node, lo = 2 * node + 2, mid
        self._plru[set_index] = bits

    def _plru_victim(self, set_index: int, candidates: list[int]) -> int:
        """Walk the pLRU tree toward the LRU leaf, detouring around
        subtrees that hold no eligible candidate."""
        bits = self._plru[set_index]
        node, lo, hi = 0, 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) >> 1
            if (bits >> node) & 1:  # LRU side is the right subtree
                pick = (mid, hi, 2 * node + 2)
                alt = (lo, mid, 2 * node + 1)
            else:
                pick = (lo, mid, 2 * node + 1)
                alt = (mid, hi, 2 * node + 2)
            if any(pick[0] <= way < pick[1] for way in candidates):
                lo, hi, node = pick
            else:
                lo, hi, node = alt
        return lo

    def _victim(self, set_index: int, candidates: list[int]) -> int:
        """Pick a victim way index among *candidates* (non-empty)."""
        ways = self._sets[set_index]
        for position in candidates:
            if not ways[position][_VALID]:
                return position
        if self.policy == "rr":
            # Rotate over *physical* way indices starting after the last
            # replaced way, skipping ineligible ways.  The pointer always
            # names a physical way, so its meaning survives candidate
            # lists of different shapes (ordinary inserts exclude JTE
            # ways; at-cap JTE inserts include only JTE ways).
            pointer = self._rr[set_index]
            for offset in range(1, self.ways + 1):
                way = (pointer + offset) % self.ways
                if way in candidates:
                    self._rr[set_index] = way
                    return way
            raise AssertionError("non-empty candidate list had no way")
        if self.policy == "plru":
            return self._plru_victim(set_index, candidates)
        # LRU: list order is recency order, so the last candidate is LRU.
        return candidates[-1]

    def _install(self, set_index: int, position: int, entry: list) -> None:
        ways = self._sets[set_index]
        victim = ways[position]
        if victim[_VALID] and victim[_JTE]:
            self._jte_count -= 1
        if self.policy == "lru":
            ways.pop(position)
            ways.insert(0, entry)
        else:
            ways[position] = entry
            if self.policy == "plru":
                self._plru_touch(set_index, position)
        if entry[_JTE]:
            self._jte_count += 1

    # -- BTB (PC-indexed) side ----------------------------------------------

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the control transfer at *pc*, or ``None``."""
        set_index = self._index_pc(pc)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[_VALID] and not entry[_JTE] and entry[_KEY] == pc:
                self._touch(set_index, ways, position)
                return entry[_TARGET]
        return None

    def insert(self, pc: int, target: int) -> bool:
        """Install / update the branch-target entry for *pc*.

        Returns:
            True if the entry is resident afterwards.  False when every way
            of the set is occupied by JTEs, which (by the JTE-priority
            policy) an ordinary entry may not evict; such drops are counted
            in :attr:`install_blocked`.
        """
        set_index = self._index_pc(pc)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[_VALID] and not entry[_JTE] and entry[_KEY] == pc:
                entry[_TARGET] = target
                self._touch(set_index, ways, position)
                return True
        candidates = [
            position
            for position, entry in enumerate(ways)
            if not (entry[_VALID] and entry[_JTE])
        ]
        if not candidates:
            self.install_blocked += 1
            return False
        position = self._victim(set_index, candidates)
        self._install(set_index, position, [True, False, pc, target])
        return True

    def update_if_present(self, pc: int, target: int) -> bool:
        """Refresh the target of *pc* only when it is already resident.

        Used by :class:`MultiLevelBtb` to keep an upper level coherent on
        inserts without letting insert traffic allocate into it.
        """
        set_index = self._index_pc(pc)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[_VALID] and not entry[_JTE] and entry[_KEY] == pc:
                entry[_TARGET] = target
                self._touch(set_index, ways, position)
                return True
        return False

    # -- JTE (opcode-indexed) side -------------------------------------------

    def lookup_jte(self, opcode: int, branch_id: int = 0) -> int | None:
        """SCD fast path: target address for *opcode*, or ``None`` (bop miss)."""
        key = self._jte_key(branch_id, opcode)
        set_index = self._index_jte(opcode)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[_VALID] and entry[_JTE] and entry[_KEY] == key:
                self._touch(set_index, ways, position)
                return entry[_TARGET]
        return None

    def insert_jte(self, opcode: int, target: int, branch_id: int = 0) -> bool:
        """``jru``: install the (opcode -> target) jump-table entry.

        JTEs evict ordinary BTB entries but respect :attr:`jte_cap`: at the
        cap, a new JTE may only replace another JTE in its own set.

        Returns:
            True if the JTE is resident afterwards.
        """
        key = self._jte_key(branch_id, opcode)
        set_index = self._index_jte(opcode)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[_VALID] and entry[_JTE] and entry[_KEY] == key:
                entry[_TARGET] = target
                self._touch(set_index, ways, position)
                return True
        at_cap = self.jte_cap is not None and self._jte_count >= self.jte_cap
        if at_cap:
            candidates = [
                position
                for position, entry in enumerate(ways)
                if entry[_VALID] and entry[_JTE]
            ]
            if not candidates:
                return False
        else:
            candidates = list(range(self.ways))
        position = self._victim(set_index, candidates)
        self._install(set_index, position, [True, True, key, target])
        return True

    def flush_jtes(self) -> int:
        """``jte.flush``: invalidate every JTE.  Returns the count flushed."""
        flushed = 0
        for ways in self._sets:
            for entry in ways:
                if entry[_VALID] and entry[_JTE]:
                    entry[_VALID] = False
                    flushed += 1
        self._jte_count -= flushed
        return flushed

    def flush_all(self) -> None:
        """Invalidate everything (power-on state)."""
        for ways in self._sets:
            for entry in ways:
                entry[_VALID] = False
        self._jte_count = 0

    # -- inspection -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raises ``AssertionError`` on drift.

        Checked structurally (used by :mod:`repro.verify.invariants` after
        every SCD BTB interaction):

        * the incremental ``_jte_count`` equals a full recount;
        * the JTE population never exceeds ``jte_cap``;
        * every set holds exactly ``ways`` ways;
        * no two valid entries of a set share a (kind, key) pair;
        * every round-robin pointer names a physical way;
        * every pLRU bit vector fits the ``ways - 1`` tree nodes.
        """
        recount = 0
        for set_index, ways in enumerate(self._sets):
            assert len(ways) == self.ways, (
                f"set {set_index} holds {len(ways)} ways, expected {self.ways}"
            )
            seen = set()
            for entry in ways:
                if not entry[_VALID]:
                    continue
                if entry[_JTE]:
                    recount += 1
                identity = (entry[_JTE], entry[_KEY])
                assert identity not in seen, (
                    f"duplicate {'JTE' if entry[_JTE] else 'BTB'} key "
                    f"{entry[_KEY]:#x} in set {set_index}"
                )
                seen.add(identity)
        assert recount == self._jte_count, (
            f"JTE recount {recount} != incremental count {self._jte_count}"
        )
        assert self.jte_cap is None or recount <= self.jte_cap, (
            f"JTE population {recount} exceeds cap {self.jte_cap}"
        )
        assert len(self._rr) == self.n_sets and all(
            0 <= pointer < self.ways for pointer in self._rr
        ), "round-robin pointer outside the physical way range"
        tree_limit = 1 << (self.ways - 1)
        assert len(self._plru) == self.n_sets and all(
            0 <= bits < tree_limit for bits in self._plru
        ), "pLRU bit vector wider than the tree"

    def state_digest(self) -> tuple:
        """Structural snapshot: every entry (in recency order under LRU)
        plus the round-robin pointers and pLRU trees.  Equal digests
        guarantee identical future lookup/replacement behaviour."""
        return (
            tuple(
                tuple(entry) for ways in self._sets for entry in ways
            ),
            tuple(self._rr),
            tuple(self._plru),
        )

    def validate_digest(self, digest: tuple) -> None:
        """Check that *digest* fits this buffer's geometry without
        installing it.

        Raises:
            ValueError: when the digest's shape does not match (truncated
                or mis-keyed persisted state must quarantine, not silently
                resize the BTB).
        """
        if not isinstance(digest, tuple) or len(digest) != 3:
            raise ValueError(
                f"BTB digest must be a 3-tuple, got {type(digest).__name__}"
                f"[{len(digest) if isinstance(digest, tuple) else '?'}]"
            )
        entries, rr, plru = digest
        if len(entries) != self.entries:
            raise ValueError(
                f"BTB digest holds {len(entries)} entries, geometry has "
                f"{self.entries}"
            )
        if any(len(entry) != 4 for entry in entries):
            raise ValueError("malformed BTB digest entry (expected 4 fields)")
        if len(rr) != self.n_sets or any(
            not (0 <= pointer < self.ways) for pointer in rr
        ):
            raise ValueError(
                f"BTB digest round-robin state does not fit "
                f"{self.n_sets} sets x {self.ways} ways"
            )
        tree_limit = 1 << (self.ways - 1)
        if len(plru) != self.n_sets or any(
            not (0 <= bits < tree_limit) for bits in plru
        ):
            raise ValueError(
                f"BTB digest pLRU state does not fit {self.n_sets} sets "
                f"of {self.ways}-way trees"
            )

    def restore_state(self, digest: tuple) -> None:
        """Install a state captured by :meth:`state_digest`; validates the
        shape first (see :meth:`validate_digest`)."""
        self.validate_digest(digest)
        entries, rr, plru = digest
        ways = self.ways
        self._sets = [
            [list(entry) for entry in entries[base : base + ways]]
            for base in range(0, len(entries), ways)
        ]
        self._rr = list(rr)
        self._plru = list(plru)
        self._jte_count = sum(
            1 for entry in entries if entry[_VALID] and entry[_JTE]
        )

    @property
    def jte_count(self) -> int:
        """Number of resident JTEs."""
        return self._jte_count

    @property
    def btb_entry_count(self) -> int:
        """Number of resident ordinary branch-target entries."""
        total = 0
        for ways in self._sets:
            for entry in ways:
                if entry[_VALID] and not entry[_JTE]:
                    total += 1
        return total

    def occupancy(self) -> dict:
        return {
            "entries": self.entries,
            "jtes": self.jte_count,
            "btb_entries": self.btb_entry_count,
        }


class MultiLevelBtb:
    """A two-level nano/main BTB hierarchy with the SCD overlay in the main.

    Models the front ends measured on larger Arm cores: a tiny zero-bubble
    *nano* level backed by a large *main* level whose hits redirect fetch a
    few cycles late.  The public interface matches
    :class:`BranchTargetBuffer`, so :class:`~repro.uarch.pipeline.Machine`
    and :class:`~repro.uarch.scd.ScdUnit` drive either transparently.

    Semantics:

    * ``lookup`` probes nano then main; a main hit fills the nano level.
      :attr:`hit_level` records which level answered (-1 for a miss) so the
      pipeline can charge the main level's extra redirect latency.
    * ``insert`` allocates into main only; a nano-resident entry is
      refreshed in place (never newly allocated) so the levels cannot
      disagree about a target.
    * JTEs live exclusively in the main level (``bop``/``jru``/``jte.flush``
      address the large structure; the nano level holds branch targets
      only), so the JTE-priority and cap rules are unchanged.

    Args:
        levels: two level-geometry descriptors (``entries``, ``ways``,
            ``policy``, ``index``, ``latency`` attributes — see
            :class:`repro.uarch.config.BtbLevelConfig`), nano first.
        jte_cap: forwarded to the main level.
    """

    def __init__(self, levels, jte_cap: int | None = None):
        if len(levels) != 2:
            raise ValueError(
                f"MultiLevelBtb models exactly 2 levels, got {len(levels)}"
            )
        self.nano = BranchTargetBuffer(
            entries=levels[0].entries,
            ways=levels[0].ways,
            policy=levels[0].policy,
            index=levels[0].index,
        )
        self.main = BranchTargetBuffer(
            entries=levels[1].entries,
            ways=levels[1].ways,
            policy=levels[1].policy,
            jte_cap=jte_cap,
            index=levels[1].index,
        )
        self.levels = (self.nano, self.main)
        self.latencies = tuple(level.latency for level in levels)
        self.jte_cap = jte_cap
        self.entries = self.nano.entries + self.main.entries
        #: Level that answered the most recent lookup/lookup_jte
        #: (0 = nano, 1 = main, -1 = miss).  Transient — consumed by the
        #: pipeline immediately after the probe, never digested.
        self.hit_level = -1
        #: Hits per level, monotonic across a run (memo counter-delta'd).
        self.level_hits = [0, 0]

    # -- BTB (PC-indexed) side ----------------------------------------------

    def lookup(self, pc: int) -> int | None:
        target = self.nano.lookup(pc)
        if target is not None:
            self.hit_level = 0
            self.level_hits[0] += 1
            return target
        target = self.main.lookup(pc)
        if target is not None:
            self.hit_level = 1
            self.level_hits[1] += 1
            self.nano.insert(pc, target)
            return target
        self.hit_level = -1
        return None

    def insert(self, pc: int, target: int) -> bool:
        self.nano.update_if_present(pc, target)
        return self.main.insert(pc, target)

    # -- JTE (opcode-indexed) side -------------------------------------------

    def lookup_jte(self, opcode: int, branch_id: int = 0) -> int | None:
        target = self.main.lookup_jte(opcode, branch_id)
        if target is not None:
            self.hit_level = 1
            self.level_hits[1] += 1
        else:
            self.hit_level = -1
        return target

    def insert_jte(self, opcode: int, target: int, branch_id: int = 0) -> bool:
        return self.main.insert_jte(opcode, target, branch_id)

    def flush_jtes(self) -> int:
        return self.main.flush_jtes()

    def flush_all(self) -> None:
        self.nano.flush_all()
        self.main.flush_all()
        self.hit_level = -1

    # -- inspection -----------------------------------------------------------

    @property
    def install_blocked(self) -> int:
        """Blocked ordinary installs (main level only; the nano level holds
        no JTEs, so its inserts can never be blocked)."""
        return self.main.install_blocked + self.nano.install_blocked

    @property
    def jte_count(self) -> int:
        return self.main.jte_count

    @property
    def btb_entry_count(self) -> int:
        return self.nano.btb_entry_count + self.main.btb_entry_count

    def check_invariants(self) -> None:
        """Both levels' structural rules, plus the hierarchy's own:
        the nano level never holds a JTE."""
        self.nano.check_invariants()
        self.main.check_invariants()
        assert self.nano.jte_count == 0, (
            f"{self.nano.jte_count} JTEs resident in the nano level"
        )

    def state_digest(self) -> tuple:
        return (self.nano.state_digest(), self.main.state_digest())

    def validate_digest(self, digest: tuple) -> None:
        """Shape-check a digest against both levels (see
        :meth:`BranchTargetBuffer.validate_digest`)."""
        if not isinstance(digest, tuple) or len(digest) != 2:
            raise ValueError(
                "multi-level BTB digest must be a (nano, main) pair"
            )
        self.nano.validate_digest(digest[0])
        self.main.validate_digest(digest[1])

    def restore_state(self, digest: tuple) -> None:
        self.validate_digest(digest)
        self.nano.restore_state(digest[0])
        self.main.restore_state(digest[1])

    def occupancy(self) -> dict:
        return {
            "entries": self.entries,
            "jtes": self.jte_count,
            "btb_entries": self.btb_entry_count,
            "levels": [level.occupancy() for level in self.levels],
        }
