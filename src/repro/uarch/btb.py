"""Branch target buffer with the SCD jump-table-entry (JTE) overlay.

The paper's key mechanism (Section III-B): every BTB entry carries a *J/B
bit*.  When set, the entry is a jump-table entry mapping an **opcode value**
(the masked bytecode in ``Rop``) to a handler address; when clear, it is an
ordinary PC-indexed branch-target entry.  ``bop`` searches only JTEs;
ordinary prediction searches only BTB entries; ``jte.flush`` invalidates only
JTEs.

Replacement follows the paper's default policy: an incoming JTE may evict a
BTB entry, but an incoming BTB entry may never evict a JTE.  A configurable
cap bounds the number of resident JTEs (the Section IV / Figure 11(c,d)
mitigation for small BTBs).
"""

from __future__ import annotations


# Entry field indices (entries are small lists for speed).
_VALID, _JTE, _KEY, _TARGET = 0, 1, 2, 3


class BranchTargetBuffer:
    """Set-associative BTB shared between branch targets and SCD JTEs.

    Args:
        entries: total entry count (must be ``sets * ways``).
        ways: associativity; ``ways == entries`` gives a fully-associative
            buffer (the Rocket configuration).
        policy: ``"lru"`` or ``"rr"`` (round-robin) way replacement.
        jte_cap: maximum simultaneous JTEs, or ``None`` for unbounded
            (the paper's default "∞" setting).
    """

    def __init__(
        self,
        entries: int = 256,
        ways: int = 2,
        policy: str = "lru",
        jte_cap: int | None = None,
    ):
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if entries % ways:
            raise ValueError(f"entries ({entries}) not divisible by ways ({ways})")
        if policy not in ("lru", "rr"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.entries = entries
        self.ways = ways
        self.policy = policy
        self.jte_cap = jte_cap
        self.n_sets = entries // ways
        self._set_mask = self.n_sets - 1
        if self.n_sets & self._set_mask:
            # Non-power-of-two set counts (e.g. the 62-entry Rocket BTB,
            # fully associative so n_sets == 1) index by modulo instead.
            self._set_mask = None
        self._sets: list[list[list]] = [
            [[False, False, 0, 0] for _ in range(ways)] for _ in range(self.n_sets)
        ]
        self._rr: list[int] = [0] * self.n_sets
        self._jte_count = 0

    # -- indexing ----------------------------------------------------------

    def _index_pc(self, pc: int) -> int:
        word = pc >> 2
        if self._set_mask is not None:
            return word & self._set_mask
        return word % self.n_sets

    def _index_jte(self, opcode: int) -> int:
        if self._set_mask is not None:
            return opcode & self._set_mask
        return opcode % self.n_sets

    @staticmethod
    def _jte_key(branch_id: int, opcode: int) -> int:
        return (branch_id << 32) | (opcode & 0xFFFF_FFFF)

    # -- replacement helpers ------------------------------------------------

    def _touch(self, ways: list[list], position: int) -> None:
        """Promote a hit entry to MRU under LRU."""
        if self.policy == "lru" and position:
            entry = ways.pop(position)
            ways.insert(0, entry)

    def _victim(self, set_index: int, candidates: list[int]) -> int:
        """Pick a victim way index among *candidates* (non-empty)."""
        ways = self._sets[set_index]
        for position in candidates:
            if not ways[position][_VALID]:
                return position
        if self.policy == "rr":
            # Round-robin over the candidate list.
            self._rr[set_index] = (self._rr[set_index] + 1) % len(candidates)
            return candidates[self._rr[set_index]]
        # LRU: list order is recency order, so the last candidate is LRU.
        return candidates[-1]

    def _install(self, set_index: int, position: int, entry: list) -> None:
        ways = self._sets[set_index]
        victim = ways[position]
        if victim[_VALID] and victim[_JTE]:
            self._jte_count -= 1
        if self.policy == "lru":
            ways.pop(position)
            ways.insert(0, entry)
        else:
            ways[position] = entry
        if entry[_JTE]:
            self._jte_count += 1

    # -- BTB (PC-indexed) side ----------------------------------------------

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the control transfer at *pc*, or ``None``."""
        ways = self._sets[self._index_pc(pc)]
        for position, entry in enumerate(ways):
            if entry[_VALID] and not entry[_JTE] and entry[_KEY] == pc:
                self._touch(ways, position)
                return entry[_TARGET]
        return None

    def insert(self, pc: int, target: int) -> bool:
        """Install / update the branch-target entry for *pc*.

        Returns:
            True if the entry is resident afterwards.  False when every way
            of the set is occupied by JTEs, which (by the JTE-priority
            policy) an ordinary entry may not evict.
        """
        set_index = self._index_pc(pc)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[_VALID] and not entry[_JTE] and entry[_KEY] == pc:
                entry[_TARGET] = target
                self._touch(ways, position)
                return True
        candidates = [
            position
            for position, entry in enumerate(ways)
            if not (entry[_VALID] and entry[_JTE])
        ]
        if not candidates:
            return False
        position = self._victim(set_index, candidates)
        self._install(set_index, position, [True, False, pc, target])
        return True

    # -- JTE (opcode-indexed) side -------------------------------------------

    def lookup_jte(self, opcode: int, branch_id: int = 0) -> int | None:
        """SCD fast path: target address for *opcode*, or ``None`` (bop miss)."""
        key = self._jte_key(branch_id, opcode)
        ways = self._sets[self._index_jte(opcode)]
        for position, entry in enumerate(ways):
            if entry[_VALID] and entry[_JTE] and entry[_KEY] == key:
                self._touch(ways, position)
                return entry[_TARGET]
        return None

    def insert_jte(self, opcode: int, target: int, branch_id: int = 0) -> bool:
        """``jru``: install the (opcode -> target) jump-table entry.

        JTEs evict ordinary BTB entries but respect :attr:`jte_cap`: at the
        cap, a new JTE may only replace another JTE in its own set.

        Returns:
            True if the JTE is resident afterwards.
        """
        key = self._jte_key(branch_id, opcode)
        set_index = self._index_jte(opcode)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[_VALID] and entry[_JTE] and entry[_KEY] == key:
                entry[_TARGET] = target
                self._touch(ways, position)
                return True
        at_cap = self.jte_cap is not None and self._jte_count >= self.jte_cap
        if at_cap:
            candidates = [
                position
                for position, entry in enumerate(ways)
                if entry[_VALID] and entry[_JTE]
            ]
            if not candidates:
                return False
        else:
            candidates = list(range(self.ways))
        position = self._victim(set_index, candidates)
        self._install(set_index, position, [True, True, key, target])
        return True

    def flush_jtes(self) -> int:
        """``jte.flush``: invalidate every JTE.  Returns the count flushed."""
        flushed = 0
        for ways in self._sets:
            for entry in ways:
                if entry[_VALID] and entry[_JTE]:
                    entry[_VALID] = False
                    flushed += 1
        self._jte_count -= flushed
        return flushed

    def flush_all(self) -> None:
        """Invalidate everything (power-on state)."""
        for ways in self._sets:
            for entry in ways:
                entry[_VALID] = False
        self._jte_count = 0

    # -- inspection -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raises ``AssertionError`` on drift.

        Checked structurally (used by :mod:`repro.verify.invariants` after
        every SCD BTB interaction):

        * the incremental ``_jte_count`` equals a full recount;
        * the JTE population never exceeds ``jte_cap``;
        * every set holds exactly ``ways`` ways;
        * no two valid entries of a set share a (kind, key) pair.
        """
        recount = 0
        for set_index, ways in enumerate(self._sets):
            assert len(ways) == self.ways, (
                f"set {set_index} holds {len(ways)} ways, expected {self.ways}"
            )
            seen = set()
            for entry in ways:
                if not entry[_VALID]:
                    continue
                if entry[_JTE]:
                    recount += 1
                identity = (entry[_JTE], entry[_KEY])
                assert identity not in seen, (
                    f"duplicate {'JTE' if entry[_JTE] else 'BTB'} key "
                    f"{entry[_KEY]:#x} in set {set_index}"
                )
                seen.add(identity)
        assert recount == self._jte_count, (
            f"JTE recount {recount} != incremental count {self._jte_count}"
        )
        assert self.jte_cap is None or recount <= self.jte_cap, (
            f"JTE population {recount} exceeds cap {self.jte_cap}"
        )

    def state_digest(self) -> tuple:
        """Structural snapshot: every entry (in recency order under LRU)
        plus the round-robin pointers.  Equal digests guarantee identical
        future lookup/replacement behaviour."""
        return (
            tuple(
                tuple(entry) for ways in self._sets for entry in ways
            ),
            tuple(self._rr),
        )

    def restore_state(self, digest: tuple) -> None:
        """Install a state captured by :meth:`state_digest`."""
        entries, rr = digest
        ways = self.ways
        self._sets = [
            [list(entry) for entry in entries[base : base + ways]]
            for base in range(0, len(entries), ways)
        ]
        self._rr = list(rr)
        self._jte_count = sum(
            1 for entry in entries if entry[_VALID] and entry[_JTE]
        )

    @property
    def jte_count(self) -> int:
        """Number of resident JTEs."""
        return self._jte_count

    @property
    def btb_entry_count(self) -> int:
        """Number of resident ordinary branch-target entries."""
        total = 0
        for ways in self._sets:
            for entry in ways:
                if entry[_VALID] and not entry[_JTE]:
                    total += 1
        return total

    def occupancy(self) -> dict:
        return {
            "entries": self.entries,
            "jtes": self.jte_count,
            "btb_entries": self.btb_entry_count,
        }
