"""Machine configurations mirroring Table II of the paper.

Three presets:

* :func:`cortex_a5` — the gem5/MinorCPU "Simulator" column: single-issue
  4-stage in-order core at 1 GHz, tournament predictor (512 global /
  128 local), 256-entry 2-way BTB with round-robin replacement, 8-entry RAS,
  16 KB/2-way I-cache, 32 KB/4-way D-cache, 3-cycle branch penalty,
  DDR3-1600.
* :func:`rocket` — the "FPGA" column: single-issue 5-stage RISC-V Rocket at
  50 MHz, 128-entry gshare, 62-entry fully-associative BTB with LRU,
  2-entry RAS, 16 KB/4-way caches, 2-cycle branch penalty, DDR3-1066.
* :func:`cortex_a8` — Section VI-C2's higher-end core: dual-issue, 32 KB
  4-way I-cache, 256 KB L2, 512-entry BTB.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.uarch.memory import DramTimings


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 1  # extra cycles beyond the pipelined access


@dataclass(frozen=True)
class BtbLevelConfig:
    """Geometry of one level of a multi-level BTB hierarchy.

    Attributes:
        entries / ways: level capacity and associativity.
        policy: way-replacement policy (``lru`` / ``rr`` / ``plru``).
        index: set-index function (``mod`` / ``xor``).
        latency: extra redirect bubbles when this level (and not a faster
            one) supplies the target — 0 for a nano level that steers the
            very next fetch, 2-3 for a large main level.
    """

    entries: int
    ways: int
    policy: str = "plru"
    index: str = "mod"
    latency: int = 0

    def validate(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("BTB level entries and ways must be positive")
        if self.entries % self.ways:
            raise ValueError(
                f"BTB level entries ({self.entries}) not divisible by "
                f"ways ({self.ways})"
            )
        if self.policy not in ("lru", "rr", "plru"):
            raise ValueError(f"unknown BTB level policy {self.policy!r}")
        if self.index not in ("mod", "xor"):
            raise ValueError(f"unknown BTB level index {self.index!r}")
        if self.latency < 0:
            raise ValueError("BTB level latency must be non-negative")


@dataclass(frozen=True)
class CoreConfig:
    """Complete parameter bundle for one simulated machine.

    Attributes mirror Table II plus the SCD-specific knobs of Sections III-B
    and IV.  Instances are frozen; derive variants with :meth:`with_changes`.
    """

    name: str = "cortex-a5"
    clock_mhz: float = 1000.0
    issue_width: int = 1
    pipeline_stages: int = 4
    #: Effective mispredict cost: the architectural 3-cycle redirect of
    #: Table II plus ~2 cycles of front-end refill (MinorCPU-style fetch
    #: queue drain), which is what the misprediction actually costs.
    branch_penalty: int = 5
    #: Taken control transfer whose target misses the BTB: the front end
    #: redirects after decode (~2 fetch bubbles on a 4-stage core).
    decode_redirect_penalty: int = 2
    direction_predictor: str = "tournament"
    predictor_params: dict = field(default_factory=dict)
    btb_entries: int = 256
    btb_ways: int = 2
    btb_policy: str = "rr"
    btb_index: str = "mod"
    #: Multi-level BTB hierarchy (nano, main), or empty for the paper's
    #: single-level model.  When set, the flat ``btb_*`` fields are ignored
    #: by the machine (``with_btb_geometry`` keeps them mirroring the main
    #: level for reporting) and JTEs live in the main level.
    btb_levels: tuple = ()
    ras_depth: int = 8
    icache: CacheConfig = CacheConfig(16 * 1024, 2)
    dcache: CacheConfig = CacheConfig(32 * 1024, 4)
    l2: CacheConfig | None = None
    l2_latency: int = 8
    itlb_entries: int = 10
    dtlb_entries: int = 10
    tlb_miss_penalty: int = 20
    dram: DramTimings = DramTimings(1600, 11, 11, 11, ranks=2)
    indirect_scheme: str = "btb"      #: "btb" (baseline), "vbbi", "ttc", "ittage" or "cascaded"
    # SCD knobs ----------------------------------------------------------
    scd_stall_policy: str = "stall"   #: "stall" (default) or "fallthrough"
    scd_stall_cycles: int = 2         #: bubbles while bop waits for Rop
    scd_tables: int = 4               #: replicated (Rop, Rmask, Rbop-pc) sets
    jte_cap: int | None = None        #: max resident JTEs (None = unbounded)

    def with_changes(self, **changes) -> "CoreConfig":
        """Return a copy with *changes* applied (frozen-dataclass replace)."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        """Raise ValueError on inconsistent parameters."""
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.branch_penalty < 0 or self.decode_redirect_penalty < 0:
            raise ValueError("penalties must be non-negative")
        if self.btb_entries % self.btb_ways:
            raise ValueError("btb_entries must be divisible by btb_ways")
        if self.btb_policy not in ("lru", "rr", "plru"):
            raise ValueError(f"unknown BTB policy {self.btb_policy!r}")
        if self.btb_index not in ("mod", "xor"):
            raise ValueError(f"unknown BTB index function {self.btb_index!r}")
        if self.btb_levels and len(self.btb_levels) != 2:
            raise ValueError(
                f"btb_levels must be empty or (nano, main), got "
                f"{len(self.btb_levels)} levels"
            )
        for level in self.btb_levels:
            level.validate()
        if self.indirect_scheme not in ("btb", "vbbi", "ttc", "ittage", "cascaded"):
            raise ValueError(f"unknown indirect scheme {self.indirect_scheme!r}")
        if self.scd_stall_policy not in ("stall", "fallthrough"):
            raise ValueError(f"unknown stall policy {self.scd_stall_policy!r}")
        if self.jte_cap is not None and self.jte_cap < 0:
            raise ValueError("jte_cap must be None or non-negative")


def cortex_a5() -> CoreConfig:
    """The paper's simulator machine (Table II, left column)."""
    return CoreConfig()


def rocket() -> CoreConfig:
    """The paper's FPGA machine (Table II, right column)."""
    return CoreConfig(
        name="rocket",
        clock_mhz=50.0,
        issue_width=1,
        pipeline_stages=5,
        branch_penalty=3,  # 2-cycle redirect + 1 refill bubble
        decode_redirect_penalty=2,
        direction_predictor="gshare",
        predictor_params={"entries": 128},
        btb_entries=62,
        btb_ways=62,
        btb_policy="lru",
        ras_depth=2,
        icache=CacheConfig(16 * 1024, 4, hit_latency=0),
        dcache=CacheConfig(16 * 1024, 4, hit_latency=0),
        itlb_entries=8,
        dtlb_entries=8,
        dram=DramTimings(1066, 7, 7, 7, ranks=1),
    )


def cortex_a8() -> CoreConfig:
    """Section VI-C2's higher-performance dual-issue in-order core."""
    return CoreConfig(
        name="cortex-a8",
        clock_mhz=1000.0,
        issue_width=2,
        pipeline_stages=13,
        branch_penalty=6,
        decode_redirect_penalty=2,
        direction_predictor="tournament",
        btb_entries=512,
        btb_ways=2,
        btb_policy="rr",
        ras_depth=8,
        icache=CacheConfig(32 * 1024, 4),
        dcache=CacheConfig(32 * 1024, 4),
        l2=CacheConfig(256 * 1024, 8),
        l2_latency=8,
    )


#: Registry used by the CLI and the harness.
CONFIG_PRESETS = {
    "cortex-a5": cortex_a5,
    "rocket": rocket,
    "cortex-a8": cortex_a8,
}


#: Measured two-level (nano, main) BTB geometries for real Arm cores, from
#: "Branch Target Buffer Reverse Engineering on Arm" (PAPERS.md) cross-checked
#: against Arm's software optimization guides.  Simplifications relative to
#: the measurements: the nano and micro levels of the larger cores are merged
#: into one zero-bubble level, the main level's measured 2-3 cycle redirect
#: cost is modelled as whole bubbles, and banking/port conflicts are ignored.
#: The main levels use the XOR-folded set index and tree-pLRU replacement
#: observed in the reverse-engineering study; the Cortex-A76 main level is
#: 6-way (not a power of two), so its tree-pLRU is approximated by true LRU.
BTB_GEOMETRIES = {
    "cortex-a72": (
        BtbLevelConfig(entries=64, ways=4, policy="lru", index="mod", latency=0),
        BtbLevelConfig(entries=2048, ways=4, policy="plru", index="xor", latency=2),
    ),
    "cortex-a76": (
        BtbLevelConfig(entries=64, ways=4, policy="lru", index="mod", latency=0),
        BtbLevelConfig(entries=6144, ways=6, policy="lru", index="xor", latency=2),
    ),
}


def with_btb_geometry(config: CoreConfig, geometry: str) -> CoreConfig:
    """Return *config* fronted by a measured multi-level BTB geometry.

    The flat ``btb_*`` fields are mirrored from the main level so existing
    reporting (config signatures, tables keyed on ``btb_entries``) stays
    meaningful; the machine itself builds from ``btb_levels``.
    """
    try:
        levels = BTB_GEOMETRIES[geometry]
    except KeyError:
        raise ValueError(
            f"unknown BTB geometry {geometry!r}; "
            f"known: {', '.join(sorted(BTB_GEOMETRIES))}"
        ) from None
    main = levels[1]
    return config.with_changes(
        name=f"{config.name}+{geometry}-btb",
        btb_levels=levels,
        btb_entries=main.entries,
        btb_ways=main.ways,
        btb_policy=main.policy,
        btb_index=main.index,
    )
