"""Set-associative cache and TLB models.

The timing model only needs hit/miss decisions and counts; contents are
never stored.  Caches use true-LRU within a set (list order is recency
order), matching Table II's "LRU replacement policy" for both machines.
"""

from __future__ import annotations


class Cache:
    """Set-associative cache with LRU replacement.

    Args:
        size_bytes: total capacity.
        ways: associativity.
        line_bytes: line size (Table II: 64 B for both machines).
        name: label used in error messages and stats.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        name: str = "cache",
    ):
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.line_shift = line_bytes.bit_length() - 1
        if (1 << self.line_shift) != line_bytes:
            raise ValueError(f"{name}: line size must be a power of two")
        self.n_sets = size_bytes // (ways * line_bytes)
        self._set_mask = self.n_sets - 1
        if self.n_sets & self._set_mask:
            raise ValueError(f"{name}: set count must be a power of two")
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address.  Returns True on hit."""
        line = address >> self.line_shift
        ways = self._sets[line & self._set_mask]
        self.accesses += 1
        if ways and ways[0] == line:  # MRU fast path
            return True
        try:
            position = ways.index(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.ways:
                ways.pop()
            return False
        if position:
            ways.pop(position)
            ways.insert(0, line)
        return True

    def access_line(self, line: int) -> bool:
        """Access a pre-shifted line number (hot path for I-fetch)."""
        ways = self._sets[line & self._set_mask]
        self.accesses += 1
        if ways and ways[0] == line:  # MRU fast path
            return True
        try:
            position = ways.index(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.ways:
                ways.pop()
            return False
        if position:
            ways.pop(position)
            ways.insert(0, line)
        return True

    def probe_line(self, line: int) -> bool:
        """:meth:`access_line` with the access count deferred to the
        caller.  The replay kernels inline the MRU fast path and batch
        access counts per kernel invocation; this services the non-MRU
        remainder (LRU update, miss count)."""
        ways = self._sets[line & self._set_mask]
        if ways and ways[0] == line:
            return True
        try:
            position = ways.index(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.ways:
                ways.pop()
            return False
        if position:
            ways.pop(position)
            ways.insert(0, line)
        return True

    def probe(self, address: int) -> bool:
        """:meth:`access` with the access count deferred to the caller."""
        return self.probe_line(address >> self.line_shift)

    def contains(self, address: int) -> bool:
        """Non-updating probe (testing aid)."""
        line = address >> self.line_shift
        return line in self._sets[line & self._set_mask]

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    def state_digest(self) -> tuple:
        """Structural snapshot of the replacement state (tags in recency
        order per set); counters excluded.  Two equal digests mean every
        future access sequence behaves identically."""
        return tuple(tuple(ways) for ways in self._sets)

    def restore_state(self, digest: tuple) -> None:
        """Install a replacement state captured by :meth:`state_digest`
        (counters are left untouched).  Mutates ``_sets`` in place — the
        replay kernels bind the set list by identity."""
        sets = self._sets
        for index, ways in enumerate(digest):
            sets[index] = list(ways)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Small fully-associative TLB with LRU replacement.

    Table II: 10-entry I-/D-TLBs on the simulator machine, 8-entry on the
    FPGA machine.  Pages are 4 KiB.
    """

    PAGE_SHIFT = 12

    def __init__(self, entries: int = 10, name: str = "tlb"):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.name = name
        self.entries = entries
        self._pages: list[int] = []
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate one byte address.  Returns True on hit."""
        page = address >> self.PAGE_SHIFT
        self.accesses += 1
        try:
            position = self._pages.index(page)
        except ValueError:
            self.misses += 1
            self._pages.insert(0, page)
            if len(self._pages) > self.entries:
                self._pages.pop()
            return False
        if position:
            self._pages.pop(position)
            self._pages.insert(0, page)
        return True

    def flush(self) -> None:
        self._pages.clear()

    def state_digest(self) -> tuple:
        """Resident pages in recency order; counters excluded."""
        return tuple(self._pages)

    def restore_state(self, digest: tuple) -> None:
        """Install a state captured by :meth:`state_digest`."""
        self._pages = list(digest)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
