"""The SCD architectural register state and its BTB interactions.

Implements the three registers of Section III-A, replicated ``n`` times for
the multiple-jump-table extension of Section IV:

* ``Rop`` — opcode register: a valid bit and a 32-bit data field written by
  ``<inst>.op`` loads after masking with ``Rmask``.
* ``Rmask`` — mask register written by ``setmask``.
* ``Rbop-pc`` — PC of the dispatching indirect jump (book-keeping only in
  this model: the driver identifies bop sites by table id).

The unit owns the *architectural* part of SCD; the BTB overlay storage lives
in :class:`repro.uarch.btb.BranchTargetBuffer`, which this unit queries and
updates.  Hit/miss decisions made here are the single source of truth for
both the executed path (fast vs. slow) and the timing model.
"""

from __future__ import annotations

from repro.uarch.btb import BranchTargetBuffer


class ScdStateError(RuntimeError):
    """Raised on architecturally invalid SCD usage (e.g. bad table id)."""


class ScdUnit:
    """SCD register file and BTB-overlay operations.

    Args:
        btb: the branch target buffer holding the JTE overlay.
        tables: number of replicated register sets (jump tables tracked
            simultaneously; Section IV suggests one-hot IDs, we use small
            integers).
    """

    def __init__(self, btb: BranchTargetBuffer, tables: int = 4):
        if tables <= 0:
            raise ScdStateError("at least one SCD register set is required")
        self.btb = btb
        self.tables = tables
        self._masks = [0xFFFF_FFFF] * tables
        self._rop_valid = [False] * tables
        self._rop_data = [0] * tables
        self._rbop_pc = [-1] * tables

    def _check(self, table: int) -> None:
        if not 0 <= table < self.tables:
            raise ScdStateError(
                f"jump-table id {table} out of range (0..{self.tables - 1})"
            )

    # -- Table I instructions ------------------------------------------------

    def setmask(self, mask: int, table: int = 0) -> None:
        """``setmask Rn``: load the opcode-extraction mask."""
        self._check(table)
        self._masks[table] = mask & 0xFFFF_FFFF

    def set_bop_pc(self, pc: int, table: int = 0) -> None:
        """Record the PC of the bop site (``Rbop-pc``)."""
        self._check(table)
        self._rbop_pc[table] = pc

    def load_op(self, bytecode: int, table: int = 0) -> int:
        """``<inst>.op``: deposit the masked bytecode into ``Rop``.

        Returns the extracted opcode (``Rop.d``).
        """
        self._check(table)
        opcode = bytecode & self._masks[table]
        self._rop_data[table] = opcode
        self._rop_valid[table] = True
        return opcode

    def bop(self, table: int = 0) -> int | None:
        """``bop``: BTB lookup keyed by ``Rop.d``.

        Returns the handler target address on a hit (and invalidates
        ``Rop``), or ``None`` on a miss / invalid ``Rop`` (the dispatcher
        falls through to the slow path; ``Rop`` stays valid for ``jru``).
        """
        self._check(table)
        if not self._rop_valid[table]:
            return None
        target = self.btb.lookup_jte(self._rop_data[table], table)
        if target is not None:
            self._rop_valid[table] = False
        return target

    def jru(self, target: int, table: int = 0) -> bool:
        """``jru Rn``: jump and install a (``Rop.d`` -> target) JTE.

        Returns True if a new JTE was installed (``Rop`` was valid and the
        BTB accepted the entry).
        """
        self._check(table)
        if not self._rop_valid[table]:
            return False
        installed = self.btb.insert_jte(self._rop_data[table], target, table)
        self._rop_valid[table] = False
        return installed

    def jte_flush(self) -> int:
        """``jte.flush``: drop every JTE and invalidate all ``Rop``s.

        Returns the number of JTEs flushed.  Called at context switches and
        interpreter exit (Section IV).
        """
        for table in range(self.tables):
            self._rop_valid[table] = False
        return self.btb.flush_jtes()

    # -- inspection ------------------------------------------------------------

    def state_digest(self) -> tuple:
        """Architectural register state (the BTB overlay digests itself)."""
        return (
            tuple(self._masks),
            tuple(self._rop_valid),
            tuple(self._rop_data),
            tuple(self._rbop_pc),
        )

    def restore_state(self, digest: tuple) -> None:
        """Install a state captured by :meth:`state_digest`."""
        self._masks = list(digest[0])
        self._rop_valid = list(digest[1])
        self._rop_data = list(digest[2])
        self._rbop_pc = list(digest[3])

    def rop(self, table: int = 0) -> tuple[bool, int]:
        """Return (``Rop.v``, ``Rop.d``) for *table*."""
        self._check(table)
        return self._rop_valid[table], self._rop_data[table]

    def mask(self, table: int = 0) -> int:
        self._check(table)
        return self._masks[table]

    def bop_pc(self, table: int = 0) -> int:
        self._check(table)
        return self._rbop_pc[table]
