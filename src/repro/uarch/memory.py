"""DRAM latency model.

A last-level miss pays a latency derived from the DDR3 timing parameters of
Table II (tCL/tRCD/tRP in memory-clock cycles), converted to core cycles and
adjusted for row-buffer locality: a hit in the open row pays only CAS
latency, a row conflict pays precharge + activate + CAS.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTimings:
    """DDR3 timing bundle.

    Attributes:
        mt_per_s: transfer rate (DDR3-1600 -> 1600 MT/s; I/O clock is half).
        t_cl / t_rcd / t_rp: CAS, RAS-to-CAS and precharge delays, in memory
            clock cycles.
        ranks: rank count (affects nothing but reporting here).
    """

    mt_per_s: int = 1600
    t_cl: int = 11
    t_rcd: int = 11
    t_rp: int = 11
    ranks: int = 2

    @property
    def clock_mhz(self) -> float:
        return self.mt_per_s / 2.0


class DramModel:
    """Open-page DRAM with per-bank row tracking.

    Args:
        timings: DDR3 parameters.
        core_clock_mhz: core frequency, used to convert memory-clock
            latencies into core stall cycles.
        banks: row-buffer count.
        row_bytes: bytes per DRAM row.
    """

    def __init__(
        self,
        timings: DramTimings,
        core_clock_mhz: float,
        banks: int = 8,
        row_bytes: int = 8192,
    ):
        if banks <= 0 or row_bytes <= 0:
            raise ValueError("banks and row_bytes must be positive")
        self.timings = timings
        self.core_clock_mhz = core_clock_mhz
        self.banks = banks
        self.row_shift = row_bytes.bit_length() - 1
        if (1 << self.row_shift) != row_bytes:
            raise ValueError("row_bytes must be a power of two")
        self._open_rows = [-1] * banks
        scale = core_clock_mhz / timings.clock_mhz
        # Fixed command/bus overhead of ~4 memory cycles covers burst time.
        self._hit_cycles = max(1, round((timings.t_cl + 4) * scale))
        self._miss_cycles = max(
            1, round((timings.t_rcd + timings.t_cl + 4) * scale)
        )
        self._conflict_cycles = max(
            1, round((timings.t_rp + timings.t_rcd + timings.t_cl + 4) * scale)
        )
        self.accesses = 0
        self.row_hits = 0

    def access(self, address: int) -> int:
        """Return the core-cycle latency of a memory access at *address*."""
        row = address >> self.row_shift
        bank = row % self.banks
        self.accesses += 1
        open_row = self._open_rows[bank]
        if open_row == row:
            self.row_hits += 1
            return self._hit_cycles
        self._open_rows[bank] = row
        if open_row < 0:
            return self._miss_cycles
        return self._conflict_cycles

    def state_digest(self) -> tuple:
        """Open row per bank; counters excluded."""
        return tuple(self._open_rows)

    def restore_state(self, digest: tuple) -> None:
        """Install a state captured by :meth:`state_digest`."""
        self._open_rows = list(digest)

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0
