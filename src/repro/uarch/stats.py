"""Statistics counters for a simulated machine.

Counters follow the paper's reporting units: MPKI (misses per
kilo-instruction) for branch mispredictions and I-cache misses, dynamic
instruction counts by category (Figure 3's dispatch fraction), and a cycle
breakdown that attributes stall cycles to their source.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Plain-int counter fields, in a fixed order for snapshot/delta tuples.
SCALAR_FIELDS = (
    "cycles",
    "instructions",
    "branches",
    "branch_mispredicts",
    "indirect_jumps",
    "indirect_mispredicts",
    "btb_target_misses",
    "ras_mispredicts",
    "bop_hits",
    "bop_misses",
    "jte_inserts",
    "jte_flushes",
    "scd_stall_cycles",
    "btb_late_hits",
    "icache_accesses",
    "icache_misses",
    "dcache_accesses",
    "dcache_misses",
    "itlb_misses",
    "dtlb_misses",
)


def _counter_diff(after: Counter, before: dict) -> dict:
    """Per-key increase of a monotonic counter since *before*."""
    return {
        key: value - before.get(key, 0)
        for key, value in after.items()
        if value != before.get(key, 0)
    }


@dataclass
class MachineStats:
    """Mutable counter block updated by :class:`repro.uarch.pipeline.Machine`.

    Attributes:
        cycles: total simulated cycles.
        instructions: total retired host instructions.
        insts_by_category: instruction counts per statistics bucket
            (``dispatch``, ``handler``, ...).
        branches: dynamic conditional branches seen.
        branch_mispredicts: direction mispredictions.
        mispredicts_by_category: mispredictions bucketed by branch role
            (``dispatch_jump``, ``guest_branch``, ``bound_check``, ...);
            drives Figure 2.
        indirect_jumps / indirect_mispredicts: dynamic indirect jumps and
            their target mispredictions.
        btb_target_misses: taken direct control transfers that missed the
            BTB (the contention cost of JTE priority, Section IV).
        ras_mispredicts: return-address-stack target mispredictions.
        bop_hits / bop_misses: SCD fast-path vs. slow-path dispatches.
        jte_inserts / jte_flushes: SCD BTB-overlay maintenance events.
        scd_stall_cycles: bubbles inserted waiting for ``Rop`` (stall
            policy, Section III-B).
        btb_late_hits: correct predictions supplied by a slower BTB level
            (multi-level geometries only), each costing that level's
            redirect latency.
        btb_install_blocked: ordinary BTB installs dropped because every
            way of the set held a JTE (folded from the BTB at finalize;
            shows JTE-priority starvation).
        btb_level_hits: per-level hit counts, nano first (folded from the
            BTB at finalize; ``(0, 0)`` for single-level models, which do
            not track per-level hits).
        icache_*/dcache_*: cache accesses and misses.
        itlb_misses / dtlb_misses: TLB misses.
        cycle_breakdown: cycles attributed to ``base``, ``branch_penalty``,
            ``icache_stall``, ``dcache_stall``, ``scd_stall``.
    """

    cycles: int = 0
    instructions: int = 0
    insts_by_category: Counter = field(default_factory=Counter)
    branches: int = 0
    branch_mispredicts: int = 0
    mispredicts_by_category: Counter = field(default_factory=Counter)
    indirect_jumps: int = 0
    indirect_mispredicts: int = 0
    btb_target_misses: int = 0
    ras_mispredicts: int = 0
    bop_hits: int = 0
    bop_misses: int = 0
    jte_inserts: int = 0
    jte_flushes: int = 0
    scd_stall_cycles: int = 0
    btb_late_hits: int = 0
    btb_install_blocked: int = 0
    btb_level_hits: tuple = (0, 0)
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    cycle_breakdown: Counter = field(default_factory=Counter)

    # -- derived metrics ---------------------------------------------------

    def mpki(self, events: int) -> float:
        """Events per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * events / self.instructions

    @property
    def branch_mpki(self) -> float:
        """All control-flow mispredictions per kilo-instruction.

        Matches the paper's Figure 2/9 definition: conditional direction
        mispredictions, indirect-target mispredictions, BTB target misses
        for taken direct transfers and RAS mispredictions all redirect the
        front end and are counted together.
        """
        total = (
            self.branch_mispredicts
            + self.indirect_mispredicts
            + self.btb_target_misses
            + self.ras_mispredicts
        )
        return self.mpki(total)

    @property
    def icache_mpki(self) -> float:
        return self.mpki(self.icache_misses)

    @property
    def dcache_mpki(self) -> float:
        return self.mpki(self.dcache_misses)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def dispatch_fraction(self) -> float:
        """Fraction of dynamic instructions spent in dispatcher code.

        Figure 3 of the paper: all instructions between the interpreter loop
        header and the indirect jump to a handler count as dispatch.
        """
        if not self.instructions:
            return 0.0
        dispatch = sum(
            count
            for category, count in self.insts_by_category.items()
            if category.startswith("dispatch")
        )
        return dispatch / self.instructions

    def component_counters(self) -> dict:
        """Counters grouped by microarchitectural structure.

        The telemetry layer (:mod:`repro.obs`) attaches this export to
        every job span, so a per-job BTB/JTE, cache, predictor and
        stall-breakdown record survives the sweep instead of being
        collapsed into the handful of summary metrics in
        :class:`~repro.core.results.SimResult`.  Derived rates are
        rounded so the JSONL records stay compact and diff cleanly.
        """
        return {
            "pipeline": {
                "cycles": self.cycles,
                "instructions": self.instructions,
                "cpi": round(self.cpi, 6),
                "stall_breakdown": dict(self.cycle_breakdown),
            },
            "predictors": {
                "branches": self.branches,
                "branch_mispredicts": self.branch_mispredicts,
                "indirect_jumps": self.indirect_jumps,
                "indirect_mispredicts": self.indirect_mispredicts,
                "ras_mispredicts": self.ras_mispredicts,
                "branch_mpki": round(self.branch_mpki, 4),
                "mispredicts_by_category": dict(self.mispredicts_by_category),
            },
            "btb": {
                "target_misses": self.btb_target_misses,
                "jte_inserts": self.jte_inserts,
                "jte_flushes": self.jte_flushes,
                "bop_hits": self.bop_hits,
                "bop_misses": self.bop_misses,
                "scd_stall_cycles": self.scd_stall_cycles,
                "install_blocked": self.btb_install_blocked,
                "late_hits": self.btb_late_hits,
                "level_hits": list(self.btb_level_hits),
            },
            "caches": {
                "icache_accesses": self.icache_accesses,
                "icache_misses": self.icache_misses,
                "icache_mpki": round(self.icache_mpki, 4),
                "dcache_accesses": self.dcache_accesses,
                "dcache_misses": self.dcache_misses,
                "dcache_mpki": round(self.dcache_mpki, 4),
            },
            "tlb": {
                "itlb_misses": self.itlb_misses,
                "dtlb_misses": self.dtlb_misses,
            },
        }

    # -- delta support (steady-state replay memo) --------------------------

    def counter_snapshot(self) -> tuple:
        """Capture every counter (scalars + Counter buckets) for
        :meth:`counter_delta`.  All counters are monotonic during a run."""
        return (
            tuple(getattr(self, name) for name in SCALAR_FIELDS),
            dict(self.insts_by_category),
            dict(self.mispredicts_by_category),
            dict(self.cycle_breakdown),
        )

    def counter_delta(self, before: tuple) -> tuple:
        """The increase of every counter since *before* (a
        :meth:`counter_snapshot`)."""
        scalars_before, insts_before, misp_before, cycle_before = before
        scalars = tuple(
            getattr(self, name) - prev
            for name, prev in zip(SCALAR_FIELDS, scalars_before)
        )
        return (
            scalars,
            _counter_diff(self.insts_by_category, insts_before),
            _counter_diff(self.mispredicts_by_category, misp_before),
            _counter_diff(self.cycle_breakdown, cycle_before),
        )

    def apply_counter_delta(self, delta: tuple) -> None:
        """Add a :meth:`counter_delta` as one batched increment.

        ``apply_counter_delta(m.counter_delta(s))`` after re-simulating the
        same chunk from the same state is byte-identical to the
        re-simulation (counters are plain sums)."""
        scalars, insts_delta, misp_delta, cycle_delta = delta
        for name, increment in zip(SCALAR_FIELDS, scalars):
            if increment:
                setattr(self, name, getattr(self, name) + increment)
        if insts_delta:
            self.insts_by_category.update(insts_delta)
        if misp_delta:
            self.mispredicts_by_category.update(misp_delta)
        if cycle_delta:
            self.cycle_breakdown.update(cycle_delta)

    def snapshot(self) -> dict:
        """Plain-dict summary used by results and the harness."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi": self.cpi,
            "branch_mpki": self.branch_mpki,
            "icache_mpki": self.icache_mpki,
            "dcache_mpki": self.dcache_mpki,
            "dispatch_fraction": self.dispatch_fraction(),
            "bop_hits": self.bop_hits,
            "bop_misses": self.bop_misses,
            "insts_by_category": dict(self.insts_by_category),
            "mispredicts_by_category": dict(self.mispredicts_by_category),
            "cycle_breakdown": dict(self.cycle_breakdown),
        }
