"""Block-driven in-order pipeline timing model.

The machine consumes basic-block executions produced by the native
interpreter model (:mod:`repro.core.simulation` orchestrates) and accounts
cycles the way the paper's Section II-A CPI formula decomposes them::

    cycles = issue slots                     (instructions / width)
           + I-cache / I-TLB stalls          (per fetched line)
           + D-cache / D-TLB stalls          (per load/store)
           + branch-resolution penalties     (mispredicted direction or
                                              target; BTB miss on a taken
                                              transfer redirects at decode)
           + SCD bop stall bubbles           (Section III-B stall logic)

Every penalty source is also counted in :class:`~repro.uarch.stats.MachineStats`
so MPKI figures (Figures 2, 9, 10) fall out of the same run.
"""

from __future__ import annotations

import pickle
import struct
import textwrap
import zlib

from repro.isa.program import BasicBlock
from repro.uarch.btb import BranchTargetBuffer, MultiLevelBtb
from repro.uarch.caches import Cache, Tlb
from repro.uarch.config import CoreConfig
from repro.uarch.memory import DramModel
from repro.uarch.predictors import (
    CascadedPredictor,
    ItTagePredictor,
    ReturnAddressStack,
    TaggedTargetCache,
    make_direction_predictor,
)
from repro.uarch.scd import ScdUnit
from repro.uarch.stats import MachineStats

#: Multiplier mixing the VBBI hint value into the BTB key space; any odd
#: constant that spreads opcodes across sets works.
_VBBI_HASH = 0x9E3779B1


class Machine:
    """One simulated embedded core.

    Args:
        config: machine parameters (see :mod:`repro.uarch.config`).

    The driver calls :meth:`exec_block` for every basic block the modelled
    interpreter executes, then one of the control-transfer methods for the
    block's terminator.  SCD interactions go through :meth:`bop`,
    :meth:`jru` and :meth:`jte_flush`.
    """

    def __init__(self, config: CoreConfig):
        config.validate()
        self.config = config
        self.stats = MachineStats()
        self.predictor = make_direction_predictor(
            config.direction_predictor, **config.predictor_params
        )
        if config.btb_levels:
            self.btb = MultiLevelBtb(config.btb_levels, jte_cap=config.jte_cap)
            #: Per-level extra redirect bubbles; ``None`` marks the
            #: single-level model (no late-hit charging, BTB ops inlinable).
            self._btb_latency: tuple | None = self.btb.latencies
        else:
            self.btb = BranchTargetBuffer(
                entries=config.btb_entries,
                ways=config.btb_ways,
                policy=config.btb_policy,
                jte_cap=config.jte_cap,
                index=config.btb_index,
            )
            self._btb_latency = None
        self.ras = ReturnAddressStack(config.ras_depth)
        self.ttc = TaggedTargetCache() if config.indirect_scheme == "ttc" else None
        self.ittage = (
            ItTagePredictor() if config.indirect_scheme == "ittage" else None
        )
        self.cascaded = (
            CascadedPredictor() if config.indirect_scheme == "cascaded" else None
        )
        self.icache = Cache(
            config.icache.size_bytes,
            config.icache.ways,
            config.icache.line_bytes,
            name="icache",
        )
        self.dcache = Cache(
            config.dcache.size_bytes,
            config.dcache.ways,
            config.dcache.line_bytes,
            name="dcache",
        )
        self.l2 = (
            Cache(config.l2.size_bytes, config.l2.ways, config.l2.line_bytes, "l2")
            if config.l2
            else None
        )
        self.itlb = Tlb(config.itlb_entries, name="itlb")
        self.dtlb = Tlb(config.dtlb_entries, name="dtlb")
        self.dram = DramModel(config.dram, config.clock_mhz)
        self.scd = ScdUnit(self.btb, tables=config.scd_tables)
        self._issue_width = config.issue_width
        self._line_shift = self.icache.line_shift
        self._last_ipage = -1
        self._last_dpage = -1
        # Deferred retirement accounting: per-block execution counts are
        # folded into instruction/category totals by finalize().
        self._block_counts: dict = {}
        self._finalized = False
        if self._line_shift != 6:
            raise ValueError(
                "the block line-footprint cache assumes 64-byte I-cache lines"
            )

    # -- stall helpers ---------------------------------------------------------

    def _stall(self, cycles: int, reason: str) -> None:
        if cycles:
            self.stats.cycles += cycles
            self.stats.cycle_breakdown[reason] += cycles

    def _fill_latency(self, address: int) -> int:
        """Latency of servicing an L1 miss at *address*."""
        if self.l2 is not None:
            if self.l2.access(address):
                return self.config.l2_latency
            return self.config.l2_latency + self.dram.access(address)
        return self.dram.access(address)

    # -- instruction execution ---------------------------------------------------
    #
    # ``exec_block`` / ``exec_blocks`` are generated from the shared
    # accounting templates below (see ``_build_exec_methods``) so the
    # line-footprint / ITLB logic exists exactly once — the same source of
    # truth the replay-kernel compiler (:mod:`repro.native.kernel`) inlines
    # via the ``kernel_*_lines`` specializers.

    def finalize(self) -> MachineStats:
        """Fold deferred per-block counts into the statistics and return them.

        Idempotent; call after the run (``simulate`` does) and before
        reading instruction counts, MPKI values or the cycle breakdown.
        """
        stats = self.stats
        stats.instructions = 0
        stats.insts_by_category.clear()
        stats.icache_accesses = self.icache.accesses
        stats.icache_misses = self.icache.misses
        by_category = stats.insts_by_category
        for block, count in self._block_counts.items():
            retired = block.n_insts * count
            stats.instructions += retired
            by_category[block.category] += retired
        stats.btb_install_blocked = self.btb.install_blocked
        stats.btb_level_hits = (
            tuple(self.btb.level_hits)
            if isinstance(self.btb, MultiLevelBtb)
            else (0, 0)
        )
        stalls = sum(
            cycles
            for reason, cycles in stats.cycle_breakdown.items()
            if reason != "base"
        )
        stats.cycle_breakdown["base"] = stats.cycles - stalls
        self._finalized = True
        return stats

    # -- steady-state replay memo support ---------------------------------------

    def state_digest(self) -> tuple:
        """Structural snapshot of every behaviour-affecting mutable
        component: predictor tables, BTB entries (including JTEs and
        round-robin pointers), RAS, caches, TLBs, DRAM open rows and the
        SCD registers — everything whose content can change a *future*
        hit/miss/predict decision.  Counters are deliberately excluded
        (they are handled by :meth:`counter_delta`).

        Digests are full structural tuples, not hashes, so equality is
        exact by construction: two runs of the same event chunk from equal
        digests retire identical cycles and counter increments.
        """
        parts = [
            self._last_ipage,
            self._last_dpage,
            self.predictor.state_digest(),
            self.btb.state_digest(),
            self.ras.state_digest(),
            self.icache.state_digest(),
            self.dcache.state_digest(),
            self.l2.state_digest() if self.l2 is not None else None,
            self.itlb.state_digest(),
            self.dtlb.state_digest(),
            self.dram.state_digest(),
            self.scd.state_digest(),
            self.ttc.state_digest() if self.ttc is not None else None,
            self.ittage.state_digest() if self.ittage is not None else None,
            self.cascaded.state_digest() if self.cascaded is not None else None,
        ]
        return tuple(parts)

    def restore_state(self, digest: tuple) -> None:
        """Install a state captured by :meth:`state_digest` on this same
        machine (counters are left untouched; the memo applies those as
        deltas)."""
        (self._last_ipage, self._last_dpage, predictor, btb, ras, icache,
         dcache, l2, itlb, dtlb, dram, scd, ttc, ittage, cascaded) = digest
        self.predictor.restore_state(predictor)
        self.btb.restore_state(btb)
        self.ras.restore_state(ras)
        self.icache.restore_state(icache)
        self.dcache.restore_state(dcache)
        if l2 is not None:
            self.l2.restore_state(l2)
        self.itlb.restore_state(itlb)
        self.dtlb.restore_state(dtlb)
        self.dram.restore_state(dram)
        self.scd.restore_state(scd)
        if ttc is not None:
            self.ttc.restore_state(ttc)
        if ittage is not None:
            self.ittage.restore_state(ittage)
        if cascaded is not None:
            self.cascaded.restore_state(cascaded)

    def _btb_counters(self) -> tuple:
        """BTB-local monotonic counters ``finalize`` folds in afterwards:
        blocked installs plus the per-level hit counts (zero for the
        single-level model, which does not track them)."""
        btb = self.btb
        if isinstance(btb, MultiLevelBtb):
            return (btb.install_blocked, btb.level_hits[0], btb.level_hits[1])
        return (btb.install_blocked, 0, 0)

    def counter_snapshot(self) -> tuple:
        """Every counter the memo must replay as a delta: the stats block,
        the deferred per-block retirement counts, and the component-local
        access/miss counters ``finalize`` folds in afterwards."""
        l2 = self.l2
        return (
            self.stats.counter_snapshot(),
            dict(self._block_counts),
            (
                self.icache.accesses, self.icache.misses,
                self.dcache.accesses, self.dcache.misses,
                l2.accesses if l2 is not None else 0,
                l2.misses if l2 is not None else 0,
                self.itlb.accesses, self.itlb.misses,
                self.dtlb.accesses, self.dtlb.misses,
                self.dram.accesses, self.dram.row_hits,
            )
            + self._btb_counters(),
        )

    def counter_delta(self, before: tuple) -> tuple:
        stats_before, blocks_before, flat_before = before
        blocks = self._block_counts
        block_delta = tuple(
            (block, count - blocks_before.get(block, 0))
            for block, count in blocks.items()
            if count != blocks_before.get(block, 0)
        )
        l2 = self.l2
        flat_now = (
            self.icache.accesses, self.icache.misses,
            self.dcache.accesses, self.dcache.misses,
            l2.accesses if l2 is not None else 0,
            l2.misses if l2 is not None else 0,
            self.itlb.accesses, self.itlb.misses,
            self.dtlb.accesses, self.dtlb.misses,
            self.dram.accesses, self.dram.row_hits,
        ) + self._btb_counters()
        flat_delta = tuple(now - prev for now, prev in zip(flat_now, flat_before))
        return (
            self.stats.counter_delta(stats_before),
            block_delta,
            flat_delta,
        )

    def apply_counter_delta(self, delta: tuple) -> None:
        stats_delta, block_delta, flat_delta = delta
        self.stats.apply_counter_delta(stats_delta)
        counts = self._block_counts
        for block, increment in block_delta:
            counts[block] = counts.get(block, 0) + increment
        (ic_a, ic_m, dc_a, dc_m, l2_a, l2_m,
         it_a, it_m, dt_a, dt_m, dr_a, dr_h,
         btb_blocked, nano_hits, main_hits) = flat_delta
        self.icache.accesses += ic_a
        self.icache.misses += ic_m
        self.dcache.accesses += dc_a
        self.dcache.misses += dc_m
        if self.l2 is not None:
            self.l2.accesses += l2_a
            self.l2.misses += l2_m
        self.itlb.accesses += it_a
        self.itlb.misses += it_m
        self.dtlb.accesses += dt_a
        self.dtlb.misses += dt_m
        self.dram.accesses += dr_a
        self.dram.row_hits += dr_h
        btb = self.btb
        if isinstance(btb, MultiLevelBtb):
            btb.main.install_blocked += btb_blocked
            btb.level_hits[0] += nano_hits
            btb.level_hits[1] += main_hits
        else:
            btb.install_blocked += btb_blocked

    # -- control transfers ---------------------------------------------------------

    def _btb_level_stall(self) -> None:
        """Charge the redirect bubbles of a prediction supplied by a slow
        BTB level.  Multi-level geometries only — reads the transient
        ``hit_level`` left by the immediately preceding lookup."""
        level = self.btb.hit_level
        if level >= 0:
            latency = self._btb_latency[level]
            if latency:
                self.stats.btb_late_hits += 1
                self._stall(latency, "btb_late_hit")

    def cond_branch(self, pc: int, taken: bool, category: str = "branch") -> bool:
        """Resolve a conditional direct branch.  Returns True on mispredict."""
        stats = self.stats
        stats.branches += 1
        if not self.predictor.observe(pc, taken):
            stats.branch_mispredicts += 1
            stats.mispredicts_by_category[category] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            if taken:
                self.btb.insert(pc, pc + 8)  # target value is opaque here
            return True
        if taken:
            if self.btb.lookup(pc) is None:
                # Predicted taken but the front end had no target: redirect
                # at decode.  This is the JTE-contention cost of Section IV.
                stats.btb_target_misses += 1
                stats.mispredicts_by_category["btb_target_miss"] += 1
                self._stall(self.config.decode_redirect_penalty, "branch_penalty")
                self.btb.insert(pc, pc + 8)
            elif self._btb_latency is not None:
                self._btb_level_stall()
        return False

    def direct_jump(self, pc: int, target: int) -> None:
        """Unconditional direct jump: one decode bubble unless BTB-resident."""
        if self.btb.lookup(pc) is None:
            self.stats.btb_target_misses += 1
            self.stats.mispredicts_by_category["btb_target_miss"] += 1
            self._stall(self.config.decode_redirect_penalty, "branch_penalty")
            self.btb.insert(pc, target)
        elif self._btb_latency is not None:
            self._btb_level_stall()

    def indirect_jump(
        self,
        pc: int,
        target: int,
        hint: int | None = None,
        category: str = "indirect",
    ) -> bool:
        """Resolve an indirect jump.  Returns True on target mispredict.

        The prediction scheme comes from the configuration:

        * ``"btb"`` — last-target prediction, PC-indexed (baseline).
        * ``"vbbi"`` — BTB indexed by PC ⊕ hash(hint); *hint* is the opcode
          value, per Farooq et al.
        * ``"ttc"`` — history-based tagged target cache.
        """
        stats = self.stats
        stats.indirect_jumps += 1
        scheme = self.config.indirect_scheme
        if scheme == "vbbi" and hint is not None:
            key = pc ^ ((hint * _VBBI_HASH) & 0xFFFF_FFFC)
            predicted = self.btb.lookup(key)
            if predicted != target:
                self.btb.insert(key, target)
            elif self._btb_latency is not None:
                self._btb_level_stall()
        elif scheme == "ttc":
            predicted = self.ttc.predict(pc)
            self.ttc.update(pc, target)
        elif scheme == "ittage":
            predicted = self.ittage.predict(pc)
            self.ittage.update(pc, target)
        elif scheme == "cascaded":
            predicted = self.cascaded.predict(pc)
            self.cascaded.update(pc, target)
        else:
            predicted = self.btb.lookup(pc)
            if predicted != target:
                self.btb.insert(pc, target)
            elif self._btb_latency is not None:
                self._btb_level_stall()
        if predicted != target:
            stats.indirect_mispredicts += 1
            stats.mispredicts_by_category[category] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            return True
        return False

    def call(self, pc: int, target: int, return_pc: int, indirect: bool = False) -> None:
        """Direct or indirect call: pushes the RAS, predicts the target."""
        self.ras.push(return_pc)
        if indirect:
            self.indirect_jump(pc, target, category="indirect_call")
        else:
            self.direct_jump(pc, target)

    def ret(self, pc: int, return_pc: int) -> bool:
        """Return: pops the RAS.  Returns True on mispredict."""
        predicted = self.ras.pop()
        if predicted != return_pc:
            self.stats.ras_mispredicts += 1
            self.stats.mispredicts_by_category["return"] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            return True
        return False

    # -- SCD operations ---------------------------------------------------------------

    def load_op(self, bytecode: int, table: int = 0) -> int:
        """Model an ``<inst>.op`` load depositing into ``Rop``."""
        return self.scd.load_op(bytecode, table)

    def bop(self, pc: int, table: int = 0) -> int | None:
        """Execute a ``bop``: returns the fast-path target or ``None``.

        Under the default "stall" policy the front end waits for the in-
        flight ``.op`` load, costing ``scd_stall_cycles`` bubbles but
        enabling the fast path.  Under "fallthrough" the bop issues
        immediately with ``Rop`` not yet valid and always takes the slow
        path (Section III-B's first option).
        """
        if self.config.scd_stall_policy == "fallthrough":
            self.stats.bop_misses += 1
            return None
        self._stall(self.config.scd_stall_cycles, "scd_stall")
        self.stats.scd_stall_cycles += self.config.scd_stall_cycles
        target = self.scd.bop(table)
        if target is not None:
            self.stats.bop_hits += 1
            if self._btb_latency is not None:
                self._btb_level_stall()
        else:
            self.stats.bop_misses += 1
        return target

    def jru(self, pc: int, target: int, table: int = 0) -> bool:
        """Execute a ``jru``: indirect jump + JTE installation.

        Returns True if the jump's target was mispredicted.
        """
        mispredicted = self.indirect_jump(pc, target, category="dispatch_jump")
        if self.scd.jru(target, table):
            self.stats.jte_inserts += 1
        return mispredicted

    def jte_flush(self) -> int:
        flushed = self.scd.jte_flush()
        self.stats.jte_flushes += 1
        return flushed

    def context_switch(self, save_jtes: bool = False) -> None:
        """Model an OS context switch (Section IV).

        Two policies for the architecturally-visible JTEs:

        * ``save_jtes=False`` (the paper's preferred policy): execute
          ``jte.flush``; the interpreter repopulates JTEs through slow-path
          dispatches after resumption.
        * ``save_jtes=True``: the OS saves and restores every JTE (and the
          SCD registers), costing roughly a load+store pair per entry each
          way but preserving the fast path immediately on resumption.

        Either way the RAS empties and the TLBs lose their translations;
        ``Rmask`` is saved/restored by the OS in both policies.
        """
        if save_jtes:
            resident = self.btb.jte_count
            # ~4 instructions per JTE per direction (read/format/store and
            # reload/insert), charged as OS overhead cycles.
            self._stall(8 * resident, "os_jte_save_restore")
        else:
            self.jte_flush()
        while self.ras.pop() is not None:
            pass
        self.itlb.flush()
        self.dtlb.flush()
        self._last_ipage = -1
        self._last_dpage = -1


# -- generated block-retirement accounting ------------------------------------
#
# One template is the single source of truth for per-block instruction-fetch
# accounting (issue slots, line footprint, ITLB page check, I-cache probes)
# and one for data accesses (DTLB page check, D-cache probes).  Both
# ``Machine.exec_block`` and ``Machine.exec_blocks`` are exec-compiled from
# them, and the ``kernel_*_lines`` specializers below emit constant-folded
# projections of the same logic for the replay-kernel compiler
# (:mod:`repro.native.kernel`).  Keeping every copy generated from one
# fragment is what makes kernel inlining trustworthy: there is no second
# hand-maintained implementation to drift.

#: Instruction-side accounting for one block.  Free names: ``self``,
#: ``block``, ``counts``, ``stats``, ``width``, ``itlb_access``,
#: ``icache_access`` (bound in the generated preamble) and ``PAGE_SHIFT``
#: (exec global).  The ``<< 6`` line-to-address shift is guaranteed by the
#: constructor's 64-byte-line check.
_IFETCH_SRC = """\
counts[block] = counts.get(block, 0) + 1
n = block.n_insts
stats.cycles += n if width == 1 else (n + width - 1) // width
lines = block.lines_cache
if lines is None:
    lines = tuple(range(block.start_pc >> 6, (block.end_pc - 1 >> 6) + 1))
    block.lines_cache = lines
    block.page_cache = block.start_pc >> PAGE_SHIFT
if block.page_cache != self._last_ipage:
    self._last_ipage = block.page_cache
    if not itlb_access(block.start_pc):
        stats.itlb_misses += 1
        self._stall(self.config.tlb_miss_penalty, "itlb_stall")
for line in lines:
    if not icache_access(line):
        stats.icache_misses += 1
        self._stall(
            self.config.icache.hit_latency + self._fill_latency(line << 6),
            "icache_stall",
        )
"""

#: Data-side accounting for one ``daddrs`` tuple.  Free names: ``self``,
#: ``daddrs``, ``stats``, ``PAGE_SHIFT``.
_DACCESS_SRC = """\
if daddrs:
    dcache_access = self.dcache.access
    dcache_hit_latency = self.config.dcache.hit_latency
    for address in daddrs:
        dpage = address >> PAGE_SHIFT
        if dpage != self._last_dpage:
            self._last_dpage = dpage
            if not self.dtlb.access(address):
                stats.dtlb_misses += 1
                self._stall(self.config.tlb_miss_penalty, "dtlb_stall")
        stats.dcache_accesses += 1
        if not dcache_access(address):
            stats.dcache_misses += 1
            self._stall(
                dcache_hit_latency + self._fill_latency(address),
                "dcache_stall",
            )
"""


def _build_exec_methods():
    """Exec-compile ``exec_block`` / ``exec_blocks`` from the templates."""
    source = (
        "def exec_block(self, block, daddrs=()):\n"
        "    counts = self._block_counts\n"
        "    stats = self.stats\n"
        "    width = self._issue_width\n"
        "    itlb_access = self.itlb.access\n"
        "    icache_access = self.icache.access_line\n"
        + textwrap.indent(_IFETCH_SRC, "    ")
        + textwrap.indent(_DACCESS_SRC, "    ")
        + "\n"
        "def exec_blocks(self, blocks):\n"
        "    counts = self._block_counts\n"
        "    stats = self.stats\n"
        "    width = self._issue_width\n"
        "    itlb_access = self.itlb.access\n"
        "    icache_access = self.icache.access_line\n"
        "    for block in blocks:\n"
        + textwrap.indent(_IFETCH_SRC, "        ")
    )
    namespace = {"PAGE_SHIFT": Tlb.PAGE_SHIFT}
    code = compile(source, "<repro.uarch.pipeline generated>", "exec")
    exec(code, namespace)
    exec_block = namespace["exec_block"]
    exec_blocks = namespace["exec_blocks"]
    exec_block.__qualname__ = "Machine.exec_block"
    exec_block.__doc__ = (
        "Retire one basic block plus its data accesses.\n\n"
        "Args:\n"
        "    block: the static block being executed.\n"
        "    daddrs: byte addresses of this execution's loads/stores (the\n"
        "        native model supplies them; order does not matter).\n\n"
        "Instruction and category totals are accumulated as per-block\n"
        "execution counts and folded in by :meth:`finalize` (hot-path\n"
        "optimisation); cycles and miss events are exact as they happen.\n"
        "Generated from ``_IFETCH_SRC`` / ``_DACCESS_SRC``."
    )
    exec_blocks.__qualname__ = "Machine.exec_blocks"
    exec_blocks.__doc__ = (
        "Retire several data-access-free blocks back to back.\n\n"
        "Accounting is identical to calling :meth:`exec_block` on each\n"
        "element in order with empty ``daddrs``; batching exists purely to\n"
        "cut per-event Python call overhead on the replay hot path.\n"
        "Generated from ``_IFETCH_SRC``."
    )
    return exec_block, exec_blocks


Machine.exec_block, Machine.exec_blocks = _build_exec_methods()


# -- kernel specializers -------------------------------------------------------
#
# Constant-folded projections of the templates above, emitted as source
# lines for the replay-kernel compiler.  Name contract (bound in every
# kernel's closure preamble): ``m`` (machine), ``stats``, ``counts``
# (``m._block_counts``), ``IS`` / ``DS`` (``icache._sets`` /
# ``dcache._sets`` — identity-stable, see ``Cache.restore_state``),
# ``icp`` / ``dcp`` (``icache.probe_line`` / ``dcache.probe``), ``itlb``
# (``itlb.access``), ``dtlb`` (``dtlb.access``), ``stall`` (``m._stall``),
# ``fill`` (``m._fill_latency``), ``TLBP`` (``config.tlb_miss_penalty``),
# ``ICLAT`` / ``DCLAT`` (L1 hit latencies).
#
# The cache MRU fast path (``ways and ways[0] == line``, the overwhelmingly
# common case on the replay hot path) is inlined; the count-deferred
# ``probe``/``probe_line`` methods service the remainder.  Issue-slot
# cycles, ``counts[block]`` increments and cache access counts are *not*
# emitted here — the compiler merges the constants across a straight-line
# region and defers them into per-kernel cells (every emitter returns its
# access count for that purpose).


def block_issue_slots(block, width: int) -> int:
    """Issue slots one execution of *block* retires (templates' first line)."""
    n = block.n_insts
    return n if width == 1 else (n + width - 1) // width


def block_footprint(block):
    """(lines, page) footprint of *block*, priming the per-block caches the
    same way the generated methods do."""
    lines = block.lines_cache
    if lines is None:
        lines = tuple(range(block.start_pc >> 6, (block.end_pc - 1 >> 6) + 1))
        block.lines_cache = lines
        block.page_cache = block.start_pc >> Tlb.PAGE_SHIFT
    return lines, block.page_cache


def kernel_ifetch_lines(block, known_ipage, set_mask: int):
    """Source lines for one block's instruction-side probes.

    Args:
        block: the static block.
        known_ipage: the I-page statically guaranteed current when these
            lines run (page-check elision), or ``None`` if unknown.
        set_mask: the I-cache's set index mask (config shape).

    Returns:
        ``(lines, page, accesses)``: emitted source lines, the I-page
        current after they run (feed it forward as the next block's
        ``known_ipage``) and the number of I-cache accesses the caller
        must account.
    """
    footprint, page = block_footprint(block)
    start_pc = block.start_pc
    out = []
    if known_ipage is None:
        out += [
            f"if m._last_ipage != {page}:",
            f"    m._last_ipage = {page}",
            f"    if not itlb({start_pc}):",
            "        stats.itlb_misses += 1",
            "        stall(TLBP, 'itlb_stall')",
        ]
    elif known_ipage != page:
        out += [
            f"m._last_ipage = {page}",
            f"if not itlb({start_pc}):",
            "    stats.itlb_misses += 1",
            "    stall(TLBP, 'itlb_stall')",
        ]
    for line in footprint:
        out += [
            f"_w = IS[{line & set_mask}]",
            f"if not _w or _w[0] != {line}:",
            f"    if not icp({line}):",
            "        stats.icache_misses += 1",
            f"        stall(ICLAT + fill({line << 6}), 'icache_stall')",
        ]
    return out, page, len(footprint)


def kernel_daccess_const_lines(address: int, known_dpage, shift: int, set_mask: int):
    """Source lines for one compile-time-constant data access.

    Returns ``(lines, page)`` with the D-page current afterwards; the
    access itself is one deferred D-cache access for the caller.
    """
    page = address >> Tlb.PAGE_SHIFT
    line = address >> shift
    out = []
    if known_dpage is None:
        out += [
            f"if m._last_dpage != {page}:",
            f"    m._last_dpage = {page}",
            f"    if not dtlb({address}):",
            "        stats.dtlb_misses += 1",
            "        stall(TLBP, 'dtlb_stall')",
        ]
    elif known_dpage != page:
        out += [
            f"m._last_dpage = {page}",
            f"if not dtlb({address}):",
            "    stats.dtlb_misses += 1",
            "    stall(TLBP, 'dtlb_stall')",
        ]
    out += [
        f"_w = DS[{line & set_mask}]",
        f"if not _w or _w[0] != {line}:",
        f"    if not dcp({address}):",
        "        stats.dcache_misses += 1",
        f"        stall(DCLAT + fill({address}), 'dcache_stall')",
    ]
    return out, page


def kernel_daccess_expr_lines(expr: str, shift: int, set_mask: int):
    """Source lines for one data access whose address is the runtime
    expression *expr* (e.g. the guest-code fetch address).  Leaves the
    D-page unknown; one deferred D-cache access for the caller."""
    return [
        f"_a = {expr}",
        f"_p = _a >> {Tlb.PAGE_SHIFT}",
        "if _p != m._last_dpage:",
        "    m._last_dpage = _p",
        "    if not dtlb(_a):",
        "        stats.dtlb_misses += 1",
        "        stall(TLBP, 'dtlb_stall')",
        f"_l = _a >> {shift}",
        f"_w = DS[_l & {set_mask}]",
        "if not _w or _w[0] != _l:",
        "    if not dcp(_a):",
        "        stats.dcache_misses += 1",
        "        stall(DCLAT + fill(_a), 'dcache_stall')",
    ]


def kernel_daddrs_loop_lines(var: str, shift: int, set_mask: int):
    """Source lines for a runtime ``daddrs`` tuple (the dynamic remainder
    the constant specializer cannot fold).  Leaves the D-page unknown.
    Accesses are variable-count, so they are accounted inline here (both
    the stats counter and the cache object's own counter)."""
    return [
        f"if {var}:",
        f"    for _a in {var}:",
        f"        _p = _a >> {Tlb.PAGE_SHIFT}",
        "        if _p != m._last_dpage:",
        "            m._last_dpage = _p",
        "            if not dtlb(_a):",
        "                stats.dtlb_misses += 1",
        "                stall(TLBP, 'dtlb_stall')",
        f"        _l = _a >> {shift}",
        f"        _w = DS[_l & {set_mask}]",
        "        if not _w or _w[0] != _l:",
        "            if not dcp(_a):",
        "                stats.dcache_misses += 1",
        "                stall(DCLAT + fill(_a), 'dcache_stall')",
        f"    _n = len({var})",
        "    stats.dcache_accesses += _n",
        "    DCO.accesses += _n",
    ]


# Control-transfer specializers.  Additional preamble names: ``PRED``
# (``m.predictor``), ``PG`` / ``PL`` (its tournament components, or
# ``None``), ``BTBO`` (``m.btb``), ``btbl`` / ``btbi``
# (``btb.lookup`` / ``btb.insert``), ``SCDU`` (``m.scd``), ``BRP`` /
# ``DRP`` (branch / decode-redirect penalties).  Predictor tables and BTB
# sets are read through the owning object per use (one attribute load)
# so ``restore_state`` replacing them cannot stale a binding.


def kernel_predictor_sig(predictor):
    """Geometry signature of a direction predictor, or ``None`` when the
    kind is not inlinable (the compiler falls back to method calls)."""
    from repro.uarch.predictors import (
        BimodalPredictor,
        GsharePredictor,
        LocalPredictor,
        TournamentPredictor,
    )

    kind = type(predictor)
    if kind is TournamentPredictor:
        g, l = predictor.global_component, predictor.local_component
        return (
            "tournament",
            g.entries, g._history_mask,
            l.entries, l._history_mask,
            predictor.choice_entries,
        )
    if kind is GsharePredictor:
        return ("gshare", predictor.entries, predictor._history_mask)
    if kind is BimodalPredictor:
        return ("bimodal", predictor.entries)
    if kind is LocalPredictor:
        return ("local", predictor.entries, predictor._history_mask)
    return None


def btb_inline_sig(btb):
    """Inline signature ``(n_sets, ways, policy)`` of a BTB whose
    operations the kernel/batch compilers may open-code, or ``None`` when
    they must stay :class:`Machine` method calls.

    The BTB specializers below assume a single-level, modulo-indexed
    buffer under LRU or round-robin replacement.  Multi-level hierarchies
    (late-hit stall charging), XOR indexing and tree-pLRU replacement all
    fall outside that shape, so such configurations keep every
    BTB-touching event on the method path — the ladder rungs then agree
    by construction because they run the same code.
    """
    if type(btb) is not BranchTargetBuffer:
        return None
    if btb.index != "mod" or btb.policy not in ("lru", "rr"):
        return None
    return (btb.n_sets, btb.ways, btb.policy)


def _btb_pc_index(pc: int, btb_sets: int) -> int:
    """Compile-time ``BranchTargetBuffer._index_pc`` (``mod`` indexing —
    :func:`btb_inline_sig` gates the xor case off the inline path)."""
    word = pc >> 2
    if not (btb_sets & (btb_sets - 1)):
        return word & (btb_sets - 1)
    return word % btb_sets


def _counter_lines(table_expr: str, index: str, counter: str, taken: bool):
    """2-bit saturating counter update: read into *counter*, then train."""
    if taken:
        return [
            f"{counter} = {table_expr}[{index}]",
            f"if {counter} < 3:",
            f"    {table_expr}[{index}] = {counter} + 1",
        ]
    return [
        f"{counter} = {table_expr}[{index}]",
        f"if {counter} > 0:",
        f"    {table_expr}[{index}] = {counter} - 1",
    ]


def _observe_lines(pc: int, taken: bool, pred_sig, fold=None, hoist=False):
    """Inline ``predictor.observe(pc, taken)`` for a constant branch;
    leaves the correctness flag in ``_ok``.  Returns ``None`` when the
    predictor kind is not inlinable.

    *fold* is the superblock compiler's history constant-fold: a
    ``(global_index, local_history)`` pair whose non-``None`` entries
    are the compile-time-known table indices at this observe (the
    history registers sit at their per-repetition fixed point, so the
    shift-register updates are elided entirely — the rep maps the fixed
    point to itself).  *hoist* switches table references to the
    ``_GT``/``_LHS``/``_LCS``/``_CH``/``_BT`` locals a superblock binds
    once per call instead of per-branch attribute loads.

    The chooser read is deferred into the disagreement arm: when both
    components agree the outcome does not depend on the choice counter
    and no update happens, matching ``TournamentPredictor.observe``
    (which reads the pre-update counter) statement-for-statement.
    """
    word = pc >> 2
    bit = 1 if taken else 0
    verdict = ">= 2" if taken else "< 2"
    kind = pred_sig[0] if pred_sig else None
    gi, lh = (fold[0], fold[1]) if fold is not None else (None, None)
    if kind == "tournament":
        _, ge, ghm, le, lhm, ce = pred_sig
        li = word % le
        ci = word % ce
        gt = "_GT" if hoist else "PG._table"
        lhs = "_LHS" if hoist else "PL._histories"
        lcs = "_LCS" if hoist else "PL._counters"
        ch = "_CH" if hoist else "PRED._choice"
        out = []
        if gi is not None:
            out += _counter_lines(gt, str(gi), "_gc", taken)
        else:
            out += [
                "_gh = PG.history",
                f"_gi = ({word} ^ _gh) % {ge}",
            ]
            out += _counter_lines(gt, "_gi", "_gc", taken)
            out.append(f"PG.history = ((_gh << 1) | {bit}) & {ghm}")
        if lh is not None:
            out += _counter_lines(lcs, str(lh), "_lc", taken)
        else:
            out.append(f"_lh = {lhs}[{li}]")
            out += _counter_lines(lcs, "_lh", "_lc", taken)
            out.append(f"{lhs}[{li}] = ((_lh << 1) | {bit}) & {lhm}")
        out += [
            f"_gok = _gc {verdict}",
            f"_lok = _lc {verdict}",
            "if _gok == _lok:",
            "    _ok = _gok",
            "else:",
            f"    _cc = {ch}[{ci}]",
            "    _ok = _gok if _cc >= 2 else _lok",
            "    if _gok:",
            "        if _cc < 3:",
            f"            {ch}[{ci}] = _cc + 1",
            "    elif _cc > 0:",
            f"        {ch}[{ci}] = _cc - 1",
        ]
        return out
    if kind == "gshare":
        _, ge, ghm = pred_sig
        gt = "_GT" if hoist else "PRED._table"
        out = []
        if gi is not None:
            out += _counter_lines(gt, str(gi), "_gc", taken)
        else:
            out += [
                "_gh = PRED.history",
                f"_gi = ({word} ^ _gh) % {ge}",
            ]
            out += _counter_lines(gt, "_gi", "_gc", taken)
            out.append(f"PRED.history = ((_gh << 1) | {bit}) & {ghm}")
        out.append(f"_ok = _gc {verdict}")
        return out
    if kind == "bimodal":
        _, entries = pred_sig
        bi = word % entries
        bt = "_BT" if hoist else "PRED._table"
        out = _counter_lines(bt, str(bi), "_bc", taken)
        out += [f"_ok = _bc {verdict}"]
        return out
    if kind == "local":
        _, le, lhm = pred_sig
        li = word % le
        lhs = "_LHS" if hoist else "PRED._histories"
        lcs = "_LCS" if hoist else "PRED._counters"
        if lh is not None:
            out = _counter_lines(lcs, str(lh), "_lc", taken)
        else:
            out = [f"_lh = {lhs}[{li}]"]
            out += _counter_lines(lcs, "_lh", "_lc", taken)
            out.append(f"{lhs}[{li}] = ((_lh << 1) | {bit}) & {lhm}")
        out.append(f"_ok = _lc {verdict}")
        return out
    return None


def _btb_mru_lookup_lines(key: int, btb_sets: int, jte: bool = False):
    """MRU-way fast path of ``btb.lookup``/``lookup_jte`` for a constant
    key: leaves the predicted target (or ``None``) in ``_t``.  A hit in
    way 0 needs no LRU touch; anything else takes the method."""
    if jte:
        opcode = key & 0xFFFF_FFFF
        if not (btb_sets & (btb_sets - 1)):
            index = opcode & (btb_sets - 1)
        else:
            index = opcode % btb_sets
        flag = "_e[1]"
        call = f"jtel({opcode}, {key >> 32})"
    else:
        index = _btb_pc_index(key, btb_sets)
        flag = "not _e[1]"
        call = f"btbl({key})"
    return [
        f"_e = BTBO._sets[{index}][0]",
        f"if _e[0] and {flag} and _e[2] == {key}:",
        "    _t = _e[3]",
        "else:",
        f"    _t = {call}",
    ]


def kernel_cond_lines(pc: int, taken: bool, category: str, pred_sig, btb_sets: int):
    """Inline ``m.cond_branch(pc, taken, category)`` for constant
    arguments.  Does NOT emit ``stats.branches += 1`` — the caller defers
    it (always-executed) or emits it inline (conditional region).
    Returns ``None`` when the predictor is not inlinable, or when a taken
    branch would touch a non-inlinable BTB (``btb_sets is None``)."""
    if btb_sets is None and taken:
        return None
    observe = _observe_lines(pc, taken, pred_sig)
    if observe is None:
        return None
    out = list(observe)
    if taken:
        out += [
            "if _ok:",
        ]
        out += ["    " + line for line in _btb_mru_lookup_lines(pc, btb_sets)]
        out += [
            "    if _t is None:",
            "        stats.btb_target_misses += 1",
            "        stats.mispredicts_by_category['btb_target_miss'] += 1",
            "        stall(DRP, 'branch_penalty')",
            f"        btbi({pc}, {pc + 8})",
            "else:",
            "    stats.branch_mispredicts += 1",
            f"    stats.mispredicts_by_category[{category!r}] += 1",
            "    stall(BRP, 'branch_penalty')",
            f"    btbi({pc}, {pc + 8})",
        ]
    else:
        out += [
            "if not _ok:",
            "    stats.branch_mispredicts += 1",
            f"    stats.mispredicts_by_category[{category!r}] += 1",
            "    stall(BRP, 'branch_penalty')",
        ]
    return out


def kernel_direct_jump_lines(pc: int, target: int, btb_sets: int):
    """Inline ``m.direct_jump(pc, target)`` for constant arguments.
    A non-inlinable BTB reduces to the bound method call (the method does
    all its own accounting)."""
    if btb_sets is None:
        return [f"dj({pc}, {target})"]
    out = list(_btb_mru_lookup_lines(pc, btb_sets))
    out += [
        "if _t is None:",
        "    stats.btb_target_misses += 1",
        "    stats.mispredicts_by_category['btb_target_miss'] += 1",
        "    stall(DRP, 'branch_penalty')",
        f"    btbi({pc}, {target})",
    ]
    return out


def kernel_indirect_jump_lines(
    pc: int, target: int, hint, category: str, scheme: str, btb_sets: int
):
    """Inline ``m.indirect_jump(pc, target, hint, category)`` for the BTB
    and VBBI schemes (constant key either way).  Does NOT emit
    ``stats.indirect_jumps += 1`` — caller's responsibility, as with
    :func:`kernel_cond_lines`.  Returns ``None`` for history-based
    schemes (ttc/ittage/cascaded) and non-inlinable BTBs, which stay
    method calls."""
    if btb_sets is None:
        return None
    if scheme == "vbbi" and hint is not None:
        key = pc ^ ((hint * _VBBI_HASH) & 0xFFFF_FFFC)
    elif scheme in ("btb", "vbbi"):
        key = pc
    else:
        return None
    out = list(_btb_mru_lookup_lines(key, btb_sets))
    out += [
        f"if _t != {target}:",
        f"    btbi({key}, {target})",
        "    stats.indirect_mispredicts += 1",
        f"    stats.mispredicts_by_category[{category!r}] += 1",
        "    stall(BRP, 'branch_penalty')",
    ]
    return out


def kernel_load_op_lines(bytecode: int, table: int, scd_tables: int):
    """Inline ``m.load_op(bytecode, table)``: deposit the masked opcode
    into ``Rop``.  The mask register is runtime state (``setmask``), so
    the AND stays dynamic."""
    if not 0 <= table < scd_tables:
        raise ValueError(f"jump-table id {table} out of range")
    return [
        f"SCDU._rop_data[{table}] = {bytecode} & SCDU._masks[{table}]",
        f"SCDU._rop_valid[{table}] = True",
    ]


# Batch-replay projections: the same specializations with every slow path
# inlined.  A single-event kernel body runs once per event sighting, so
# its non-MRU cache probes, TLB walks, BTB scans and stall bookkeeping
# stay method calls to bound code size; a superblock body runs for whole
# steady-state runs, so these variants inline the full LRU update, miss
# fill and stall accounting.  Additional preamble names: ``CB``
# (``stats.cycle_breakdown``), ``ITLBO`` / ``DTLBO`` (the TLB objects).
# Mutable containers (cache way lists, BTB sets, TLB page lists) are
# re-read through the owning object per use — ``restore_state`` and the
# context-switch paths replace or clear the inner lists, so no list may
# be cached across an access.


def batch_stall_const_lines(amount: str, reason: str):
    """Inline ``m._stall(<bound constant>, reason)``.  The guard mirrors
    ``_stall``'s: zero-penalty configs must not grow 0-valued breakdown
    keys (``cycle_breakdown`` is a Counter whose item set is compared)."""
    return [
        f"if {amount}:",
        f"    stats.cycles += {amount}",
        f"    CB[{reason!r}] += {amount}",
    ]


def _batch_tlb_lines(obj: str, page, kind: str, pages_var=None):
    """Inline ``Tlb.access`` for *page* (a literal or expression); *kind*
    is ``'i'`` or ``'d'``.  Includes the caller-side miss accounting the
    kernel helpers emit around the ``itlb``/``dtlb`` call.  *pages_var*
    names a page list the superblock hoisted once per call (the list is
    only ever mutated in place within a call — ``flush`` clears it,
    ``restore_state`` rebinds only between calls)."""
    ps = pages_var or "_ps"
    out = [f"{obj}.accesses += 1"]
    if pages_var is None:
        out.append(f"_ps = {obj}._pages")
    out += [
        f"if not {ps} or {ps}[0] != {page}:",
        f"    if {page} in {ps}:",
        f"        {ps}.remove({page})",
        f"        {ps}.insert(0, {page})",
        "    else:",
        f"        {obj}.misses += 1",
        f"        {ps}.insert(0, {page})",
        f"        if len({ps}) > {obj}.entries:",
        f"            {ps}.pop()",
        f"        stats.{kind}tlb_misses += 1",
    ]
    out += [
        "        " + line
        for line in batch_stall_const_lines("TLBP", f"{kind}tlb_stall")
    ]
    return out


def _batch_icache_probe_lines(line: int, set_mask: int, ways: int,
                              setvar=None):
    """Inline ``icache.probe_line`` + miss stall for a constant line.

    Two-way sets replace the O(n) ``remove``/``insert`` promote with an
    index swap: given ``_w[0] != line``, membership in a 2-entry set is
    exactly ``_w[1] == line``, and promotion of ``[x, line]`` is
    ``[line, x]`` either way.  *setvar* names a way list the superblock
    hoisted once per call (way lists are only ever mutated in place
    within a call; ``restore_state`` rebinds only between calls)."""
    w = setvar or "_w"
    if ways == 2:
        promote = [
            f"    if len({w}) > 1 and {w}[1] == {line}:",
            f"        {w}[1] = {w}[0]",
            f"        {w}[0] = {line}",
        ]
    else:
        promote = [
            f"    if {line} in {w}:",
            f"        {w}.remove({line})",
            f"        {w}.insert(0, {line})",
        ]
    head = [] if setvar else [f"_w = IS[{line & set_mask}]"]
    return head + [
        f"if not {w} or {w}[0] != {line}:",
    ] + promote + [
        "    else:",
        "        ICO.misses += 1",
        f"        {w}.insert(0, {line})",
        f"        if len({w}) > {ways}:",
        f"            {w}.pop()",
        "        stats.icache_misses += 1",
        f"        _c = ICLAT + fill({line << 6})",
        "        if _c:",
        "            stats.cycles += _c",
        "            CB['icache_stall'] += _c",
    ]


def _batch_dcache_probe_lines(line_expr, idx_expr, addr_expr, ways: int,
                              setvar=None):
    """Inline ``dcache.probe`` + miss stall; operands may be literals or
    expression strings.  *setvar* as in
    :func:`_batch_icache_probe_lines`."""
    w = setvar or "_w"
    if ways == 2:
        promote = [
            f"    if len({w}) > 1 and {w}[1] == {line_expr}:",
            f"        {w}[1] = {w}[0]",
            f"        {w}[0] = {line_expr}",
        ]
    else:
        promote = [
            f"    if {line_expr} in {w}:",
            f"        {w}.remove({line_expr})",
            f"        {w}.insert(0, {line_expr})",
        ]
    head = [] if setvar else [f"_w = DS[{idx_expr}]"]
    return head + [
        f"if not {w} or {w}[0] != {line_expr}:",
    ] + promote + [
        "    else:",
        "        DCO.misses += 1",
        f"        {w}.insert(0, {line_expr})",
        f"        if len({w}) > {ways}:",
        f"            {w}.pop()",
        "        stats.dcache_misses += 1",
        f"        _c = DCLAT + fill({addr_expr})",
        "        if _c:",
        "            stats.cycles += _c",
        "            CB['dcache_stall'] += _c",
    ]


def batch_ifetch_lines(block, known_ipage, set_mask: int, ways: int,
                       known=None, cond=False, setvars=None, pages_var=None,
                       record=None, fold=None):
    """:func:`kernel_ifetch_lines` with TLB walk, LRU update, miss fill
    and stalls inlined.  Same contract: ``(lines, page, accesses)``.

    *known* is the emitter's per-set MRU map (``set -> line``): a probe
    whose line is already MRU in its set is a complete no-op in the
    model (access counts ride the deferred cell, the MRU check fails
    closed, no list mutates), so it can be elided at compile time; any
    emitted probe leaves its line MRU regardless of hit or miss, so the
    map is refreshed in emission order.  *cond* marks a conditionally-
    executed context: facts may be consumed (they were established
    unconditionally before the arm) but not asserted, and a probe inside
    the arm invalidates its set's fact.  *setvars* maps set index to a
    hoisted way-list name (filled here, bound once in the superblock
    prologue); *pages_var* names the hoisted ITLB page list.

    *record* (pass one of the superblock steady-state fold) is a list
    that receives one ``(page_form, page, probes)`` entry describing
    this call: ``page_form`` is ``'check'`` (runtime page test),
    ``'forced'`` (known page transition) or ``None``, and ``probes`` are
    the ``(set, line)`` pairs actually emitted after MRU elision.
    *fold* (pass two) is ``(folded_sets, page_action)``: probes of a
    folded set elide — the superblock guard pins the set to its
    per-repetition LRU fixed point, on which every probe is an MRU-order
    hit cycling the list back to itself — but still assert MRU facts;
    ``page_action`` resolves the page test against the guarded entry
    page (``'skip'``/``'static'`` elide it, ``'probe'`` forces the
    transition with a runtime TLB walk, ``'keep'`` leaves it alone)."""
    footprint, page = block_footprint(block)
    out = []
    action = fold[1] if fold is not None else "keep"
    probes = []
    if known_ipage is None:
        page_form = "check"
        if action == "keep":
            out.append(f"if m._last_ipage != {page}:")
            out.append(f"    m._last_ipage = {page}")
            out += ["    " + line
                    for line in _batch_tlb_lines("ITLBO", page, "i",
                                                 pages_var)]
        elif action == "probe":
            out.append(f"m._last_ipage = {page}")
            out += _batch_tlb_lines("ITLBO", page, "i", pages_var)
    elif known_ipage != page:
        page_form = "forced"
        if action in ("keep", "probe"):
            out.append(f"m._last_ipage = {page}")
            out += _batch_tlb_lines("ITLBO", page, "i", pages_var)
    else:
        page_form = None
    if record is not None:
        record.append((page_form, page, probes))
    for line in footprint:
        index = line & set_mask
        if known is not None:
            if known.get(index) == line:
                continue
            if cond:
                known.pop(index, None)
            else:
                known[index] = line
        probes.append((index, line))
        if fold is not None and index in fold[0]:
            continue
        setvar = None
        if setvars is not None:
            setvar = setvars.setdefault(index, f"_wi{index}")
        out += _batch_icache_probe_lines(line, set_mask, ways, setvar)
    return out, page, len(footprint)


def batch_daccess_const_lines(
    address: int, known_dpage, shift: int, set_mask: int, ways: int,
    known=None, cond=False, setvars=None, pages_var=None,
):
    """:func:`kernel_daccess_const_lines`, slow paths inlined.  *known*,
    *cond*, *setvars* and *pages_var* behave as in
    :func:`batch_ifetch_lines`."""
    page = address >> Tlb.PAGE_SHIFT
    line = address >> shift
    out = []
    if known_dpage is None:
        out.append(f"if m._last_dpage != {page}:")
        out.append(f"    m._last_dpage = {page}")
        out += ["    " + line
                for line in _batch_tlb_lines("DTLBO", page, "d", pages_var)]
    elif known_dpage != page:
        out.append(f"m._last_dpage = {page}")
        out += _batch_tlb_lines("DTLBO", page, "d", pages_var)
    index = line & set_mask
    if known is not None:
        if known.get(index) == line:
            return out, page
        if cond:
            known.pop(index, None)
        else:
            known[index] = line
    setvar = None
    if setvars is not None:
        setvar = setvars.setdefault(index, f"_wd{index}")
    out += _batch_dcache_probe_lines(line, index, address, ways, setvar)
    return out, page


def batch_daccess_expr_lines(expr: str, shift: int, set_mask: int, ways: int):
    """:func:`kernel_daccess_expr_lines`, slow paths inlined."""
    out = [
        f"_a = {expr}",
        f"_p = _a >> {Tlb.PAGE_SHIFT}",
        "if _p != m._last_dpage:",
        "    m._last_dpage = _p",
    ]
    out += ["    " + line for line in _batch_tlb_lines("DTLBO", "_p", "d")]
    out.append(f"_l = _a >> {shift}")
    out += _batch_dcache_probe_lines("_l", f"_l & {set_mask}", "_a", ways)
    return out


def batch_daddrs_loop_lines(var: str, shift: int, set_mask: int, ways: int):
    """:func:`kernel_daddrs_loop_lines`, slow paths inlined."""
    out = [
        f"if {var}:",
        f"    for _a in {var}:",
        f"        _p = _a >> {Tlb.PAGE_SHIFT}",
        "        if _p != m._last_dpage:",
        "            m._last_dpage = _p",
    ]
    out += [
        "            " + line for line in _batch_tlb_lines("DTLBO", "_p", "d")
    ]
    out.append(f"        _l = _a >> {shift}")
    out += [
        "        " + line
        for line in _batch_dcache_probe_lines("_l", f"_l & {set_mask}", "_a", ways)
    ]
    out += [
        f"    _n = len({var})",
        "    stats.dcache_accesses += _n",
        "    DCO.accesses += _n",
    ]
    return out


def _batch_btb_lookup_lines(key: int, btb_sets: int, btb_ways: int, policy: str):
    """Inline ``btb.lookup(key)``: MRU probe, then scan with (LRU-policy)
    promotion.  Leaves the predicted target or ``None`` in ``_t``."""
    index = _btb_pc_index(key, btb_sets)
    out = [
        f"_e = BTBO._sets[{index}][0]",
        f"if _e[0] and not _e[1] and _e[2] == {key}:",
        "    _t = _e[3]",
        "else:",
        "    _t = None",
        f"    _s = BTBO._sets[{index}]",
        f"    for _bp in range(1, {btb_ways}):",
        "        _e = _s[_bp]",
        f"        if _e[0] and not _e[1] and _e[2] == {key}:",
        "            _t = _e[3]",
    ]
    if policy == "lru":
        out += [
            "            _s.pop(_bp)",
            "            _s.insert(0, _e)",
        ]
    out.append("            break")
    return out


def batch_btb_insert_lines(
    key: int, target: int, btb_sets: int, btb_ways: int, policy: str
):
    """Inline ``btb.insert(key, target)``.

    Mirrors ``insert`` exactly: a hit updates the target (and promotes
    under LRU); otherwise the victim is the first invalid non-JTE way,
    else the LRU (last) non-JTE way or the round-robin rotation over
    *physical* way indices skipping JTE-held ways (matching ``_victim`` —
    the pointer names the last-replaced physical way); a set full of JTEs
    installs nothing and counts ``install_blocked``.  Victims are never
    valid JTEs, so ``_jte_count`` needs no adjustment.  ``_rr`` is
    re-read per use (``restore_state`` replaces the list)."""
    if policy == "rr":
        index = _btb_pc_index(key, btb_sets)
        return [
            f"_s = BTBO._sets[{index}]",
            f"for _bp in range({btb_ways}):",
            "    _e = _s[_bp]",
            f"    if _e[0] and not _e[1] and _e[2] == {key}:",
            f"        _e[3] = {target}",
            "        break",
            "else:",
            f"    _cl = [_bp for _bp in range({btb_ways})"
            " if not (_s[_bp][0] and _s[_bp][1])]",
            "    if _cl:",
            "        _v = -1",
            "        for _bp in _cl:",
            "            if not _s[_bp][0]:",
            "                _v = _bp",
            "                break",
            "        if _v < 0:",
            "            _r = BTBO._rr",
            f"            _p = _r[{index}]",
            f"            for _o in range(1, {btb_ways} + 1):",
            f"                _bp = (_p + _o) % {btb_ways}",
            "                if _bp in _cl:",
            f"                    _r[{index}] = _bp",
            "                    _v = _bp",
            "                    break",
            f"        _s[_v] = [True, False, {key}, {target}]",
            "    else:",
            "        BTBO.install_blocked += 1",
        ]
    if policy != "lru":
        return None
    index = _btb_pc_index(key, btb_sets)
    return [
        f"_s = BTBO._sets[{index}]",
        f"for _bp in range({btb_ways}):",
        "    _e = _s[_bp]",
        f"    if _e[0] and not _e[1] and _e[2] == {key}:",
        f"        _e[3] = {target}",
        "        if _bp:",
        "            _s.pop(_bp)",
        "            _s.insert(0, _e)",
        "        break",
        "else:",
        "    _v = _lv = -1",
        f"    for _bp in range({btb_ways}):",
        "        _e = _s[_bp]",
        "        if not (_e[0] and _e[1]):",
        "            _lv = _bp",
        "            if not _e[0]:",
        "                _v = _bp",
        "                break",
        "    if _v < 0:",
        "        _v = _lv",
        "    if _v >= 0:",
        "        _s.pop(_v)",
        f"        _s.insert(0, [True, False, {key}, {target}])",
        "    else:",
        "        BTBO.install_blocked += 1",
    ]


def _batch_btb_insert_or_call(
    key: int, target: int, btb_sets: int, btb_ways: int, policy: str
):
    lines = batch_btb_insert_lines(key, target, btb_sets, btb_ways, policy)
    return lines if lines is not None else [f"btbi({key}, {target})"]


def batch_cond_lines(
    pc: int, taken: bool, category: str, pred_sig,
    btb_sets: int, btb_ways: int, policy: str,
    fold=None, hoist=False,
):
    """:func:`kernel_cond_lines` with BTB scan, insert and stalls inlined.
    Same contract (``stats.branches`` stays the caller's); *fold* and
    *hoist* pass through to :func:`_observe_lines`.

    A three-element *fold* whose third entry is true marks a
    saturation-elided observe: the superblock's runtime guard has proved
    every counter this branch reads sits at its agreeing saturated fixed
    point, so the prediction is correct, no predictor state changes
    (saturating writes are no-ops, histories are at their fixed points,
    agreeing components never touch the chooser) and the whole observe
    reduces to the correctly-predicted outcome.  A not-taken branch then
    emits nothing at all; a taken branch keeps only the BTB MRU check
    (a pure read when it hits) with the full lookup/miss/insert path
    behind it."""
    if btb_sets is None and taken:
        return None
    if fold is not None and len(fold) > 2 and fold[2]:
        if not taken:
            return []
        index = _btb_pc_index(pc, btb_sets)
        cold = list(_batch_btb_lookup_lines(pc, btb_sets, btb_ways, policy))
        cold += [
            "if _t is None:",
            "    stats.btb_target_misses += 1",
            "    stats.mispredicts_by_category['btb_target_miss'] += 1",
        ]
        cold += [
            "    " + line
            for line in batch_stall_const_lines("DRP", "branch_penalty")
        ]
        cold += [
            "    " + line
            for line in _batch_btb_insert_or_call(
                pc, pc + 8, btb_sets, btb_ways, policy
            )
        ]
        return [
            f"_e = BTBO._sets[{index}][0]",
            f"if not (_e[0] and not _e[1] and _e[2] == {pc}):",
        ] + ["    " + line for line in cold]
    observe = _observe_lines(pc, taken, pred_sig, fold=fold, hoist=hoist)
    if observe is None:
        return None
    out = list(observe)
    if taken:
        insert = _batch_btb_insert_or_call(
            pc, pc + 8, btb_sets, btb_ways, policy
        )
        out.append("if _ok:")
        out += [
            "    " + line
            for line in _batch_btb_lookup_lines(pc, btb_sets, btb_ways, policy)
        ]
        out += [
            "    if _t is None:",
            "        stats.btb_target_misses += 1",
            "        stats.mispredicts_by_category['btb_target_miss'] += 1",
        ]
        out += [
            "        " + line
            for line in batch_stall_const_lines("DRP", "branch_penalty")
        ]
        out += ["        " + line for line in insert]
        out += [
            "else:",
            "    stats.branch_mispredicts += 1",
            f"    stats.mispredicts_by_category[{category!r}] += 1",
        ]
        out += [
            "    " + line
            for line in batch_stall_const_lines("BRP", "branch_penalty")
        ]
        out += ["    " + line for line in insert]
    else:
        out += [
            "if not _ok:",
            "    stats.branch_mispredicts += 1",
            f"    stats.mispredicts_by_category[{category!r}] += 1",
        ]
        out += [
            "    " + line
            for line in batch_stall_const_lines("BRP", "branch_penalty")
        ]
    return out


def batch_direct_jump_lines(
    pc: int, target: int, btb_sets: int, btb_ways: int, policy: str
):
    """:func:`kernel_direct_jump_lines` with scan/insert/stall inlined."""
    if btb_sets is None:
        return [f"dj({pc}, {target})"]
    out = list(_batch_btb_lookup_lines(pc, btb_sets, btb_ways, policy))
    out += [
        "if _t is None:",
        "    stats.btb_target_misses += 1",
        "    stats.mispredicts_by_category['btb_target_miss'] += 1",
    ]
    out += [
        "    " + line
        for line in batch_stall_const_lines("DRP", "branch_penalty")
    ]
    out += [
        "    " + line
        for line in _batch_btb_insert_or_call(pc, target, btb_sets, btb_ways, policy)
    ]
    return out


def batch_bop_lines(table: int, btb_sets: int, btb_ways: int, policy: str):
    """Inline ``m.bop(pc, table)`` + ``Scd.bop`` + ``Btb.lookup_jte``.

    Leaves the fast-path target or ``None`` in ``_t``.  ``Rop`` data is
    runtime state (the mask register), so the JTE key and set index stay
    dynamic; everything else — the stall, the hit/miss accounting, the
    JTE set scan — is open-coded.  The fallthrough stall policy is a
    config constant (``SSP``) hoisted into the preamble.  Returns ``None``
    for non-inlinable BTBs (the caller falls back to ``m.bop``)."""
    if btb_sets is None:
        return None
    if not (btb_sets & (btb_sets - 1)):
        index = f"_d & {btb_sets - 1}"
    else:
        index = f"_d % {btb_sets}"
    key = (
        f"({table} << 32) | (_d & 4294967295)" if table
        else "_d & 4294967295"
    )
    out = [
        "if SSP:",
        "    stats.bop_misses += 1",
        "    _t = None",
        "else:",
        "    if SSC:",
        "        stats.cycles += SSC",
        "        CB['scd_stall'] += SSC",
        "    stats.scd_stall_cycles += SSC",
        "    _t = None",
        f"    if SCDU._rop_valid[{table}]:",
        f"        _d = SCDU._rop_data[{table}]",
        f"        _s = BTBO._sets[{index}]",
        f"        _k = {key}",
        f"        for _bp in range({btb_ways}):",
        "            _e = _s[_bp]",
        "            if _e[0] and _e[1] and _e[2] == _k:",
        "                _t = _e[3]",
    ]
    if policy == "lru":
        out += [
            "                if _bp:",
            "                    _s.pop(_bp)",
            "                    _s.insert(0, _e)",
        ]
    out += [
        "                break",
        "        if _t is not None:",
        f"            SCDU._rop_valid[{table}] = False",
        "            stats.bop_hits += 1",
        "        else:",
        "            stats.bop_misses += 1",
        "    else:",
        "        stats.bop_misses += 1",
    ]
    return out


def batch_indirect_jump_lines(
    pc: int, target: int, hint, category: str, scheme: str,
    btb_sets: int, btb_ways: int, policy: str,
):
    """:func:`kernel_indirect_jump_lines` with scan/insert/stall inlined.
    Same contract (``stats.indirect_jumps`` stays the caller's; history-
    based schemes and non-inlinable BTBs return ``None``)."""
    if btb_sets is None:
        return None
    if scheme == "vbbi" and hint is not None:
        key = pc ^ ((hint * _VBBI_HASH) & 0xFFFF_FFFC)
    elif scheme in ("btb", "vbbi"):
        key = pc
    else:
        return None
    out = list(_batch_btb_lookup_lines(key, btb_sets, btb_ways, policy))
    out.append(f"if _t != {target}:")
    out += [
        "    " + line
        for line in _batch_btb_insert_or_call(key, target, btb_sets, btb_ways, policy)
    ]
    out += [
        "    stats.indirect_mispredicts += 1",
        f"    stats.mispredicts_by_category[{category!r}] += 1",
    ]
    out += [
        "    " + line
        for line in batch_stall_const_lines("BRP", "branch_penalty")
    ]
    return out


# -- memo persistence format ---------------------------------------------------

#: Bump on ANY change to memo entry structure, state-digest layout, counter
#: layout, or the replay semantics they summarize.  The version is embedded
#: both in the frame header and in the store key, so stale shards read as
#: misses rather than poisoning replay.
#: v2: BTB digests grew pLRU state (3-tuple), the flat counter tuple grew
#: the blocked-install / per-level-hit slots, and ``btb_late_hits`` joined
#: the stats scalars.
MEMO_FORMAT_VERSION = 2

_MEMO_MAGIC = b"SCDMEM"
_MEMO_FRAME = struct.Struct("<6sHI")  # magic, version, payload CRC-32


class MemoFormatError(ValueError):
    """A persisted memo payload is corrupt, stale, or mis-keyed."""


def check_memo_frame(data: bytes) -> None:
    """Validate a serialized memo's magic/version/CRC frame.

    Raises :class:`MemoFormatError` on any defect; cheap enough for the
    store to run on every read so corruption quarantines instead of
    propagating.
    """
    try:
        magic, version, crc = _MEMO_FRAME.unpack_from(data, 0)
    except struct.error as exc:
        raise MemoFormatError(f"short memo frame: {exc}") from exc
    if magic != _MEMO_MAGIC:
        raise MemoFormatError("bad memo magic")
    if version != MEMO_FORMAT_VERSION:
        raise MemoFormatError(
            f"memo format v{version}, expected v{MEMO_FORMAT_VERSION}"
        )
    if zlib.crc32(data[_MEMO_FRAME.size:]) != crc:
        raise MemoFormatError("memo payload CRC mismatch")


class SteadyStateMemo:
    """Steady-state timing memo for recorded-trace replay.

    Exactness argument: replaying an event chunk is a deterministic
    function of (chunk content, machine mutable state, runner replay
    state); its effect splits into a state transition and monotonic
    counter increments, both pure functions of that input.  :meth:`commit`
    memoizes the *transition*: the entry stores the begin digest, the
    counter delta, the machine end digest and the runner end state.
    :meth:`try_apply` replays the memo only when the current full digest
    equals the stored begin digest — the chunk would deterministically
    drive the machine to exactly the stored end state and retire exactly
    the stored counter increments, so installing the end state
    (:meth:`Machine.restore_state`) and adding the delta is byte-identical
    to re-simulating.  Steady-state interpreter loops reach a small set of
    recurring (chunk content, begin state) pairs even when the chunk size
    is not a multiple of the loop period (the begin state simply carries
    the loop phase, and recurring content implies recurring phase);
    warm-up and phase changes miss and run normally, so the memo can
    change no counter (the identity test in ``tests/test_trace_capture.py``
    asserts this per scheme).

    The entry table is capped at :attr:`MAX_ENTRIES` distinct chunk keys
    (steady-state streams cycle through a handful; the cap only bounds
    memory on long non-repetitive traces, whose chunks would never hit
    anyway).  Entries hold two full state digests (~tens of KB), so the
    cap bounds the memo at a few MB.

    Digests are structural tuples of a few thousand small ints; building
    one costs microseconds against milliseconds of chunk simulation, so a
    hit is a large constant-factor win.
    """

    #: Maximum distinct chunk keys memoized (first come, first kept).
    MAX_ENTRIES = 512

    __slots__ = (
        "machine",
        "runner",
        "hits",
        "misses",
        "events_skipped",
        "dirty",
        "loaded",
        "_entries",
        "_flush",
        "_probe_digest",
        "_begin_digest",
        "_begin_counters",
    )

    def __init__(self, machine: Machine, runner):
        self.machine = machine
        self.runner = runner
        self.hits = 0
        self.misses = 0
        self.events_skipped = 0
        #: True once this session memoized a transition not present at
        #: import time — i.e. the persisted payload would gain entries.
        self.dirty = False
        #: Entries installed from a persisted payload.
        self.loaded = 0
        self._entries: dict = {}
        # Replay kernels defer per-block counts and event tallies into
        # cells; they must land before any digest/snapshot is taken.
        self._flush = getattr(runner, "flush_pending_counts", None)
        self._probe_digest: tuple | None = None
        self._begin_digest: tuple | None = None
        self._begin_counters: tuple | None = None

    def _digest(self) -> tuple:
        return (self.machine.state_digest(), self.runner.replay_digest())

    def try_apply(self, key: bytes, n_events: int) -> bool:
        """Apply the memoized effect of chunk *key* if the current state
        matches the entry's begin state.  Returns True when applied."""
        if self._flush is not None:
            self._flush()
        entry = self._entries.get(key)
        if entry is None:
            self._probe_digest = None
            return False
        digest = self._digest()
        begin_digest, counter_delta, machine_end, runner_end = entry
        if digest != begin_digest:
            # Nothing mutates between this probe and the caller's begin();
            # stash the digest so begin() does not recompute it.
            self._probe_digest = digest
            return False
        self.machine.apply_counter_delta(counter_delta)
        if machine_end is not None:
            self.machine.restore_state(machine_end)
        self.runner.apply_memo_end(runner_end, n_events)
        self.hits += 1
        self.events_skipped += n_events
        return True

    def begin(self) -> None:
        """Snapshot state and counters before simulating a chunk live."""
        if self._flush is not None:
            self._flush()
        probe = self._probe_digest
        self._begin_digest = probe if probe is not None else self._digest()
        self._probe_digest = None
        self._begin_counters = self.machine.counter_snapshot()

    def commit(self, key: bytes) -> None:
        """Memoize the transition of the chunk just simulated live."""
        if self._flush is not None:
            self._flush()
        self.misses += 1
        begin_digest = self._begin_digest
        self._begin_digest = None
        if begin_digest is None:
            return
        entries = self._entries
        if key not in entries and len(entries) >= self.MAX_ENTRIES:
            self._begin_counters = None
            return
        end = self.machine.state_digest()
        if key not in entries:
            self.dirty = True
        entries[key] = (
            begin_digest,
            self.machine.counter_delta(self._begin_counters),
            # None marks a fixed point: try_apply skips the restore.
            None if end == begin_digest[0] else end,
            self.runner.memo_end_state(),
        )
        self._begin_counters = None

    # -- persistence -----------------------------------------------------------

    def export_payload(self, codec, key: str) -> bytes:
        """Serialize the entry table for the harness MemoStore.

        Model-identity objects (handler runtimes, basic blocks) are
        tokenized through *codec* (see
        :meth:`repro.native.model.NativeInterpreterModel.memo_codec`) so a
        fresh process — whose model objects have different identities but
        identical structure — can re-bind them.  *key* is the store key;
        it is embedded so a hash-colliding shard is rejected on import.
        """
        entries = []
        for chunk_key, (begin, delta, machine_end, runner_end) in self._entries.items():
            entries.append((
                chunk_key,
                (begin[0], codec.tokenize_runner_digest(begin[1])),
                _tokenize_delta(delta, codec),
                machine_end,
                codec.tokenize_runner_end(runner_end),
            ))
        blob = pickle.dumps(
            (MEMO_FORMAT_VERSION, key, entries),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        payload = zlib.compress(blob, 6)
        return _MEMO_FRAME.pack(
            _MEMO_MAGIC, MEMO_FORMAT_VERSION, zlib.crc32(payload)
        ) + payload

    def import_payload(self, data: bytes, codec, key: str) -> int:
        """Install entries persisted by :meth:`export_payload`.

        Returns the number of entries installed.  Raises
        :class:`MemoFormatError` on any structural defect (the store
        quarantines frame-level corruption before we get here, but the
        pickled interior can still disappoint).  Entries already present
        live win — they are equal by construction when keys match.
        """
        check_memo_frame(data)
        try:
            version, stored_key, entries = pickle.loads(
                zlib.decompress(data[_MEMO_FRAME.size:])
            )
        except Exception as exc:
            raise MemoFormatError(f"undecodable memo payload: {exc}") from exc
        if version != MEMO_FORMAT_VERSION:
            raise MemoFormatError(f"memo payload format v{version}")
        if stored_key != key:
            raise MemoFormatError("memo payload key mismatch")
        installed = 0
        table = self._entries
        n_parts = len(self.machine.state_digest())
        try:
            for chunk_key, begin, delta, machine_end, runner_end in entries:
                if chunk_key in table:
                    continue
                if len(table) >= self.MAX_ENTRIES:
                    break
                if machine_end is not None:
                    # A truncated or mis-keyed shard must quarantine, not
                    # silently install a wrong-shaped machine state.  The
                    # BTB check is the deep one (restore_state would
                    # otherwise rebuild its sets from whatever it gets).
                    if (
                        not isinstance(machine_end, tuple)
                        or len(machine_end) != n_parts
                    ):
                        raise ValueError("machine end-state digest shape")
                    self.machine.btb.validate_digest(machine_end[3])
                table[chunk_key] = (
                    (begin[0], codec.bind_runner_digest(begin[1])),
                    _bind_delta(delta, codec),
                    machine_end,
                    codec.bind_runner_end(runner_end),
                )
                installed += 1
        except Exception as exc:
            raise MemoFormatError(f"unbindable memo entry: {exc}") from exc
        self.loaded += installed
        return installed


def _tokenize_delta(delta: tuple, codec) -> tuple:
    stats_delta, block_delta, flat_delta = delta
    return (
        stats_delta,
        tuple((codec.block_token(b), inc) for b, inc in block_delta),
        flat_delta,
    )


def _bind_delta(delta: tuple, codec) -> tuple:
    stats_delta, block_delta, flat_delta = delta
    return (
        stats_delta,
        tuple((codec.block(name), inc) for name, inc in block_delta),
        flat_delta,
    )
