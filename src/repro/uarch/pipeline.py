"""Block-driven in-order pipeline timing model.

The machine consumes basic-block executions produced by the native
interpreter model (:mod:`repro.core.simulation` orchestrates) and accounts
cycles the way the paper's Section II-A CPI formula decomposes them::

    cycles = issue slots                     (instructions / width)
           + I-cache / I-TLB stalls          (per fetched line)
           + D-cache / D-TLB stalls          (per load/store)
           + branch-resolution penalties     (mispredicted direction or
                                              target; BTB miss on a taken
                                              transfer redirects at decode)
           + SCD bop stall bubbles           (Section III-B stall logic)

Every penalty source is also counted in :class:`~repro.uarch.stats.MachineStats`
so MPKI figures (Figures 2, 9, 10) fall out of the same run.
"""

from __future__ import annotations

from repro.isa.program import BasicBlock
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import Cache, Tlb
from repro.uarch.config import CoreConfig
from repro.uarch.memory import DramModel
from repro.uarch.predictors import (
    CascadedPredictor,
    ItTagePredictor,
    ReturnAddressStack,
    TaggedTargetCache,
    make_direction_predictor,
)
from repro.uarch.scd import ScdUnit
from repro.uarch.stats import MachineStats

#: Multiplier mixing the VBBI hint value into the BTB key space; any odd
#: constant that spreads opcodes across sets works.
_VBBI_HASH = 0x9E3779B1


class Machine:
    """One simulated embedded core.

    Args:
        config: machine parameters (see :mod:`repro.uarch.config`).

    The driver calls :meth:`exec_block` for every basic block the modelled
    interpreter executes, then one of the control-transfer methods for the
    block's terminator.  SCD interactions go through :meth:`bop`,
    :meth:`jru` and :meth:`jte_flush`.
    """

    def __init__(self, config: CoreConfig):
        config.validate()
        self.config = config
        self.stats = MachineStats()
        self.predictor = make_direction_predictor(
            config.direction_predictor, **config.predictor_params
        )
        self.btb = BranchTargetBuffer(
            entries=config.btb_entries,
            ways=config.btb_ways,
            policy=config.btb_policy,
            jte_cap=config.jte_cap,
        )
        self.ras = ReturnAddressStack(config.ras_depth)
        self.ttc = TaggedTargetCache() if config.indirect_scheme == "ttc" else None
        self.ittage = (
            ItTagePredictor() if config.indirect_scheme == "ittage" else None
        )
        self.cascaded = (
            CascadedPredictor() if config.indirect_scheme == "cascaded" else None
        )
        self.icache = Cache(
            config.icache.size_bytes,
            config.icache.ways,
            config.icache.line_bytes,
            name="icache",
        )
        self.dcache = Cache(
            config.dcache.size_bytes,
            config.dcache.ways,
            config.dcache.line_bytes,
            name="dcache",
        )
        self.l2 = (
            Cache(config.l2.size_bytes, config.l2.ways, config.l2.line_bytes, "l2")
            if config.l2
            else None
        )
        self.itlb = Tlb(config.itlb_entries, name="itlb")
        self.dtlb = Tlb(config.dtlb_entries, name="dtlb")
        self.dram = DramModel(config.dram, config.clock_mhz)
        self.scd = ScdUnit(self.btb, tables=config.scd_tables)
        self._issue_width = config.issue_width
        self._line_shift = self.icache.line_shift
        self._last_ipage = -1
        self._last_dpage = -1
        # Deferred retirement accounting: per-block execution counts are
        # folded into instruction/category totals by finalize().
        self._block_counts: dict = {}
        self._finalized = False
        if self._line_shift != 6:
            raise ValueError(
                "the block line-footprint cache assumes 64-byte I-cache lines"
            )

    # -- stall helpers ---------------------------------------------------------

    def _stall(self, cycles: int, reason: str) -> None:
        if cycles:
            self.stats.cycles += cycles
            self.stats.cycle_breakdown[reason] += cycles

    def _fill_latency(self, address: int) -> int:
        """Latency of servicing an L1 miss at *address*."""
        if self.l2 is not None:
            if self.l2.access(address):
                return self.config.l2_latency
            return self.config.l2_latency + self.dram.access(address)
        return self.dram.access(address)

    # -- instruction execution ---------------------------------------------------

    def exec_block(self, block: BasicBlock, daddrs: tuple = ()) -> None:
        """Retire one basic block plus its data accesses.

        Args:
            block: the static block being executed.
            daddrs: byte addresses of this execution's loads/stores (the
                native model supplies them; order does not matter).

        Instruction and category totals are accumulated as per-block
        execution counts and folded in by :meth:`finalize` (hot-path
        optimisation); cycles and miss events are exact as they happen.
        """
        counts = self._block_counts
        counts[block] = counts.get(block, 0) + 1
        stats = self.stats
        width = self._issue_width
        n = block.n_insts
        stats.cycles += n if width == 1 else (n + width - 1) // width

        # Instruction fetch: every line the block spans (cached footprint).
        lines = block.lines_cache
        if lines is None:
            lines = tuple(
                range(block.start_pc >> 6, (block.end_pc - 1 >> 6) + 1)
            )
            block.lines_cache = lines
            block.page_cache = block.start_pc >> Tlb.PAGE_SHIFT
        if block.page_cache != self._last_ipage:
            self._last_ipage = block.page_cache
            if not self.itlb.access(block.start_pc):
                stats.itlb_misses += 1
                self._stall(self.config.tlb_miss_penalty, "itlb_stall")
        icache = self.icache
        for line in lines:
            if not icache.access_line(line):
                stats.icache_misses += 1
                self._stall(
                    self.config.icache.hit_latency
                    + self._fill_latency(line << self._line_shift),
                    "icache_stall",
                )

        # Data accesses.
        if daddrs:
            dcache = self.dcache
            dcache_hit_latency = self.config.dcache.hit_latency
            for address in daddrs:
                dpage = address >> Tlb.PAGE_SHIFT
                if dpage != self._last_dpage:
                    self._last_dpage = dpage
                    if not self.dtlb.access(address):
                        stats.dtlb_misses += 1
                        self._stall(self.config.tlb_miss_penalty, "dtlb_stall")
                stats.dcache_accesses += 1
                if not dcache.access(address):
                    stats.dcache_misses += 1
                    self._stall(
                        dcache_hit_latency + self._fill_latency(address),
                        "dcache_stall",
                    )

    def exec_blocks(self, blocks: tuple) -> None:
        """Retire several data-access-free blocks back to back.

        Accounting is identical to calling :meth:`exec_block` on each
        element in order with empty ``daddrs``; batching exists purely to
        cut per-event Python call overhead on the replay hot path (the
        dispatch-slow-path and operand blocks of every guest bytecode).
        """
        counts = self._block_counts
        stats = self.stats
        width = self._issue_width
        icache = self.icache
        itlb = self.itlb
        config = self.config
        for block in blocks:
            counts[block] = counts.get(block, 0) + 1
            n = block.n_insts
            stats.cycles += n if width == 1 else (n + width - 1) // width
            lines = block.lines_cache
            if lines is None:
                lines = tuple(
                    range(block.start_pc >> 6, (block.end_pc - 1 >> 6) + 1)
                )
                block.lines_cache = lines
                block.page_cache = block.start_pc >> Tlb.PAGE_SHIFT
            if block.page_cache != self._last_ipage:
                self._last_ipage = block.page_cache
                if not itlb.access(block.start_pc):
                    stats.itlb_misses += 1
                    self._stall(config.tlb_miss_penalty, "itlb_stall")
            for line in lines:
                if not icache.access_line(line):
                    stats.icache_misses += 1
                    self._stall(
                        config.icache.hit_latency
                        + self._fill_latency(line << self._line_shift),
                        "icache_stall",
                    )

    def finalize(self) -> MachineStats:
        """Fold deferred per-block counts into the statistics and return them.

        Idempotent; call after the run (``simulate`` does) and before
        reading instruction counts, MPKI values or the cycle breakdown.
        """
        stats = self.stats
        stats.instructions = 0
        stats.insts_by_category.clear()
        stats.icache_accesses = self.icache.accesses
        stats.icache_misses = self.icache.misses
        by_category = stats.insts_by_category
        for block, count in self._block_counts.items():
            retired = block.n_insts * count
            stats.instructions += retired
            by_category[block.category] += retired
        stalls = sum(
            cycles
            for reason, cycles in stats.cycle_breakdown.items()
            if reason != "base"
        )
        stats.cycle_breakdown["base"] = stats.cycles - stalls
        self._finalized = True
        return stats

    # -- control transfers ---------------------------------------------------------

    def cond_branch(self, pc: int, taken: bool, category: str = "branch") -> bool:
        """Resolve a conditional direct branch.  Returns True on mispredict."""
        stats = self.stats
        stats.branches += 1
        if not self.predictor.observe(pc, taken):
            stats.branch_mispredicts += 1
            stats.mispredicts_by_category[category] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            if taken:
                self.btb.insert(pc, pc + 8)  # target value is opaque here
            return True
        if taken and self.btb.lookup(pc) is None:
            # Predicted taken but the front end had no target: redirect at
            # decode.  This is the JTE-contention cost of Section IV.
            stats.btb_target_misses += 1
            stats.mispredicts_by_category["btb_target_miss"] += 1
            self._stall(self.config.decode_redirect_penalty, "branch_penalty")
            self.btb.insert(pc, pc + 8)
        return False

    def direct_jump(self, pc: int, target: int) -> None:
        """Unconditional direct jump: one decode bubble unless BTB-resident."""
        if self.btb.lookup(pc) is None:
            self.stats.btb_target_misses += 1
            self.stats.mispredicts_by_category["btb_target_miss"] += 1
            self._stall(self.config.decode_redirect_penalty, "branch_penalty")
            self.btb.insert(pc, target)

    def indirect_jump(
        self,
        pc: int,
        target: int,
        hint: int | None = None,
        category: str = "indirect",
    ) -> bool:
        """Resolve an indirect jump.  Returns True on target mispredict.

        The prediction scheme comes from the configuration:

        * ``"btb"`` — last-target prediction, PC-indexed (baseline).
        * ``"vbbi"`` — BTB indexed by PC ⊕ hash(hint); *hint* is the opcode
          value, per Farooq et al.
        * ``"ttc"`` — history-based tagged target cache.
        """
        stats = self.stats
        stats.indirect_jumps += 1
        scheme = self.config.indirect_scheme
        if scheme == "vbbi" and hint is not None:
            key = pc ^ ((hint * _VBBI_HASH) & 0xFFFF_FFFC)
            predicted = self.btb.lookup(key)
            if predicted != target:
                self.btb.insert(key, target)
        elif scheme == "ttc":
            predicted = self.ttc.predict(pc)
            self.ttc.update(pc, target)
        elif scheme == "ittage":
            predicted = self.ittage.predict(pc)
            self.ittage.update(pc, target)
        elif scheme == "cascaded":
            predicted = self.cascaded.predict(pc)
            self.cascaded.update(pc, target)
        else:
            predicted = self.btb.lookup(pc)
            if predicted != target:
                self.btb.insert(pc, target)
        if predicted != target:
            stats.indirect_mispredicts += 1
            stats.mispredicts_by_category[category] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            return True
        return False

    def call(self, pc: int, target: int, return_pc: int, indirect: bool = False) -> None:
        """Direct or indirect call: pushes the RAS, predicts the target."""
        self.ras.push(return_pc)
        if indirect:
            self.indirect_jump(pc, target, category="indirect_call")
        else:
            self.direct_jump(pc, target)

    def ret(self, pc: int, return_pc: int) -> bool:
        """Return: pops the RAS.  Returns True on mispredict."""
        predicted = self.ras.pop()
        if predicted != return_pc:
            self.stats.ras_mispredicts += 1
            self.stats.mispredicts_by_category["return"] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            return True
        return False

    # -- SCD operations ---------------------------------------------------------------

    def load_op(self, bytecode: int, table: int = 0) -> int:
        """Model an ``<inst>.op`` load depositing into ``Rop``."""
        return self.scd.load_op(bytecode, table)

    def bop(self, pc: int, table: int = 0) -> int | None:
        """Execute a ``bop``: returns the fast-path target or ``None``.

        Under the default "stall" policy the front end waits for the in-
        flight ``.op`` load, costing ``scd_stall_cycles`` bubbles but
        enabling the fast path.  Under "fallthrough" the bop issues
        immediately with ``Rop`` not yet valid and always takes the slow
        path (Section III-B's first option).
        """
        if self.config.scd_stall_policy == "fallthrough":
            self.stats.bop_misses += 1
            return None
        self._stall(self.config.scd_stall_cycles, "scd_stall")
        self.stats.scd_stall_cycles += self.config.scd_stall_cycles
        target = self.scd.bop(table)
        if target is not None:
            self.stats.bop_hits += 1
        else:
            self.stats.bop_misses += 1
        return target

    def jru(self, pc: int, target: int, table: int = 0) -> bool:
        """Execute a ``jru``: indirect jump + JTE installation.

        Returns True if the jump's target was mispredicted.
        """
        mispredicted = self.indirect_jump(pc, target, category="dispatch_jump")
        if self.scd.jru(target, table):
            self.stats.jte_inserts += 1
        return mispredicted

    def jte_flush(self) -> int:
        flushed = self.scd.jte_flush()
        self.stats.jte_flushes += 1
        return flushed

    def context_switch(self, save_jtes: bool = False) -> None:
        """Model an OS context switch (Section IV).

        Two policies for the architecturally-visible JTEs:

        * ``save_jtes=False`` (the paper's preferred policy): execute
          ``jte.flush``; the interpreter repopulates JTEs through slow-path
          dispatches after resumption.
        * ``save_jtes=True``: the OS saves and restores every JTE (and the
          SCD registers), costing roughly a load+store pair per entry each
          way but preserving the fast path immediately on resumption.

        Either way the RAS empties and the TLBs lose their translations;
        ``Rmask`` is saved/restored by the OS in both policies.
        """
        if save_jtes:
            resident = self.btb.jte_count
            # ~4 instructions per JTE per direction (read/format/store and
            # reload/insert), charged as OS overhead cycles.
            self._stall(8 * resident, "os_jte_save_restore")
        else:
            self.jte_flush()
        while self.ras.pop() is not None:
            pass
        self.itlb.flush()
        self.dtlb.flush()
        self._last_ipage = -1
        self._last_dpage = -1
