"""Block-driven in-order pipeline timing model.

The machine consumes basic-block executions produced by the native
interpreter model (:mod:`repro.core.simulation` orchestrates) and accounts
cycles the way the paper's Section II-A CPI formula decomposes them::

    cycles = issue slots                     (instructions / width)
           + I-cache / I-TLB stalls          (per fetched line)
           + D-cache / D-TLB stalls          (per load/store)
           + branch-resolution penalties     (mispredicted direction or
                                              target; BTB miss on a taken
                                              transfer redirects at decode)
           + SCD bop stall bubbles           (Section III-B stall logic)

Every penalty source is also counted in :class:`~repro.uarch.stats.MachineStats`
so MPKI figures (Figures 2, 9, 10) fall out of the same run.
"""

from __future__ import annotations

from repro.isa.program import BasicBlock
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import Cache, Tlb
from repro.uarch.config import CoreConfig
from repro.uarch.memory import DramModel
from repro.uarch.predictors import (
    CascadedPredictor,
    ItTagePredictor,
    ReturnAddressStack,
    TaggedTargetCache,
    make_direction_predictor,
)
from repro.uarch.scd import ScdUnit
from repro.uarch.stats import MachineStats

#: Multiplier mixing the VBBI hint value into the BTB key space; any odd
#: constant that spreads opcodes across sets works.
_VBBI_HASH = 0x9E3779B1


class Machine:
    """One simulated embedded core.

    Args:
        config: machine parameters (see :mod:`repro.uarch.config`).

    The driver calls :meth:`exec_block` for every basic block the modelled
    interpreter executes, then one of the control-transfer methods for the
    block's terminator.  SCD interactions go through :meth:`bop`,
    :meth:`jru` and :meth:`jte_flush`.
    """

    def __init__(self, config: CoreConfig):
        config.validate()
        self.config = config
        self.stats = MachineStats()
        self.predictor = make_direction_predictor(
            config.direction_predictor, **config.predictor_params
        )
        self.btb = BranchTargetBuffer(
            entries=config.btb_entries,
            ways=config.btb_ways,
            policy=config.btb_policy,
            jte_cap=config.jte_cap,
        )
        self.ras = ReturnAddressStack(config.ras_depth)
        self.ttc = TaggedTargetCache() if config.indirect_scheme == "ttc" else None
        self.ittage = (
            ItTagePredictor() if config.indirect_scheme == "ittage" else None
        )
        self.cascaded = (
            CascadedPredictor() if config.indirect_scheme == "cascaded" else None
        )
        self.icache = Cache(
            config.icache.size_bytes,
            config.icache.ways,
            config.icache.line_bytes,
            name="icache",
        )
        self.dcache = Cache(
            config.dcache.size_bytes,
            config.dcache.ways,
            config.dcache.line_bytes,
            name="dcache",
        )
        self.l2 = (
            Cache(config.l2.size_bytes, config.l2.ways, config.l2.line_bytes, "l2")
            if config.l2
            else None
        )
        self.itlb = Tlb(config.itlb_entries, name="itlb")
        self.dtlb = Tlb(config.dtlb_entries, name="dtlb")
        self.dram = DramModel(config.dram, config.clock_mhz)
        self.scd = ScdUnit(self.btb, tables=config.scd_tables)
        self._issue_width = config.issue_width
        self._line_shift = self.icache.line_shift
        self._last_ipage = -1
        self._last_dpage = -1
        # Deferred retirement accounting: per-block execution counts are
        # folded into instruction/category totals by finalize().
        self._block_counts: dict = {}
        self._finalized = False
        if self._line_shift != 6:
            raise ValueError(
                "the block line-footprint cache assumes 64-byte I-cache lines"
            )

    # -- stall helpers ---------------------------------------------------------

    def _stall(self, cycles: int, reason: str) -> None:
        if cycles:
            self.stats.cycles += cycles
            self.stats.cycle_breakdown[reason] += cycles

    def _fill_latency(self, address: int) -> int:
        """Latency of servicing an L1 miss at *address*."""
        if self.l2 is not None:
            if self.l2.access(address):
                return self.config.l2_latency
            return self.config.l2_latency + self.dram.access(address)
        return self.dram.access(address)

    # -- instruction execution ---------------------------------------------------

    def exec_block(self, block: BasicBlock, daddrs: tuple = ()) -> None:
        """Retire one basic block plus its data accesses.

        Args:
            block: the static block being executed.
            daddrs: byte addresses of this execution's loads/stores (the
                native model supplies them; order does not matter).

        Instruction and category totals are accumulated as per-block
        execution counts and folded in by :meth:`finalize` (hot-path
        optimisation); cycles and miss events are exact as they happen.
        """
        counts = self._block_counts
        counts[block] = counts.get(block, 0) + 1
        stats = self.stats
        width = self._issue_width
        n = block.n_insts
        stats.cycles += n if width == 1 else (n + width - 1) // width

        # Instruction fetch: every line the block spans (cached footprint).
        lines = block.lines_cache
        if lines is None:
            lines = tuple(
                range(block.start_pc >> 6, (block.end_pc - 1 >> 6) + 1)
            )
            block.lines_cache = lines
            block.page_cache = block.start_pc >> Tlb.PAGE_SHIFT
        if block.page_cache != self._last_ipage:
            self._last_ipage = block.page_cache
            if not self.itlb.access(block.start_pc):
                stats.itlb_misses += 1
                self._stall(self.config.tlb_miss_penalty, "itlb_stall")
        icache = self.icache
        for line in lines:
            if not icache.access_line(line):
                stats.icache_misses += 1
                self._stall(
                    self.config.icache.hit_latency
                    + self._fill_latency(line << self._line_shift),
                    "icache_stall",
                )

        # Data accesses.
        if daddrs:
            dcache = self.dcache
            dcache_hit_latency = self.config.dcache.hit_latency
            for address in daddrs:
                dpage = address >> Tlb.PAGE_SHIFT
                if dpage != self._last_dpage:
                    self._last_dpage = dpage
                    if not self.dtlb.access(address):
                        stats.dtlb_misses += 1
                        self._stall(self.config.tlb_miss_penalty, "dtlb_stall")
                stats.dcache_accesses += 1
                if not dcache.access(address):
                    stats.dcache_misses += 1
                    self._stall(
                        dcache_hit_latency + self._fill_latency(address),
                        "dcache_stall",
                    )

    def exec_blocks(self, blocks: tuple) -> None:
        """Retire several data-access-free blocks back to back.

        Accounting is identical to calling :meth:`exec_block` on each
        element in order with empty ``daddrs``; batching exists purely to
        cut per-event Python call overhead on the replay hot path (the
        dispatch-slow-path and operand blocks of every guest bytecode).
        """
        counts = self._block_counts
        stats = self.stats
        width = self._issue_width
        icache = self.icache
        itlb = self.itlb
        config = self.config
        for block in blocks:
            counts[block] = counts.get(block, 0) + 1
            n = block.n_insts
            stats.cycles += n if width == 1 else (n + width - 1) // width
            lines = block.lines_cache
            if lines is None:
                lines = tuple(
                    range(block.start_pc >> 6, (block.end_pc - 1 >> 6) + 1)
                )
                block.lines_cache = lines
                block.page_cache = block.start_pc >> Tlb.PAGE_SHIFT
            if block.page_cache != self._last_ipage:
                self._last_ipage = block.page_cache
                if not itlb.access(block.start_pc):
                    stats.itlb_misses += 1
                    self._stall(config.tlb_miss_penalty, "itlb_stall")
            for line in lines:
                if not icache.access_line(line):
                    stats.icache_misses += 1
                    self._stall(
                        config.icache.hit_latency
                        + self._fill_latency(line << self._line_shift),
                        "icache_stall",
                    )

    def finalize(self) -> MachineStats:
        """Fold deferred per-block counts into the statistics and return them.

        Idempotent; call after the run (``simulate`` does) and before
        reading instruction counts, MPKI values or the cycle breakdown.
        """
        stats = self.stats
        stats.instructions = 0
        stats.insts_by_category.clear()
        stats.icache_accesses = self.icache.accesses
        stats.icache_misses = self.icache.misses
        by_category = stats.insts_by_category
        for block, count in self._block_counts.items():
            retired = block.n_insts * count
            stats.instructions += retired
            by_category[block.category] += retired
        stalls = sum(
            cycles
            for reason, cycles in stats.cycle_breakdown.items()
            if reason != "base"
        )
        stats.cycle_breakdown["base"] = stats.cycles - stalls
        self._finalized = True
        return stats

    # -- steady-state replay memo support ---------------------------------------

    def state_digest(self) -> tuple:
        """Structural snapshot of every behaviour-affecting mutable
        component: predictor tables, BTB entries (including JTEs and
        round-robin pointers), RAS, caches, TLBs, DRAM open rows and the
        SCD registers — everything whose content can change a *future*
        hit/miss/predict decision.  Counters are deliberately excluded
        (they are handled by :meth:`counter_delta`).

        Digests are full structural tuples, not hashes, so equality is
        exact by construction: two runs of the same event chunk from equal
        digests retire identical cycles and counter increments.
        """
        parts = [
            self._last_ipage,
            self._last_dpage,
            self.predictor.state_digest(),
            self.btb.state_digest(),
            self.ras.state_digest(),
            self.icache.state_digest(),
            self.dcache.state_digest(),
            self.l2.state_digest() if self.l2 is not None else None,
            self.itlb.state_digest(),
            self.dtlb.state_digest(),
            self.dram.state_digest(),
            self.scd.state_digest(),
            self.ttc.state_digest() if self.ttc is not None else None,
            self.ittage.state_digest() if self.ittage is not None else None,
            self.cascaded.state_digest() if self.cascaded is not None else None,
        ]
        return tuple(parts)

    def restore_state(self, digest: tuple) -> None:
        """Install a state captured by :meth:`state_digest` on this same
        machine (counters are left untouched; the memo applies those as
        deltas)."""
        (self._last_ipage, self._last_dpage, predictor, btb, ras, icache,
         dcache, l2, itlb, dtlb, dram, scd, ttc, ittage, cascaded) = digest
        self.predictor.restore_state(predictor)
        self.btb.restore_state(btb)
        self.ras.restore_state(ras)
        self.icache.restore_state(icache)
        self.dcache.restore_state(dcache)
        if l2 is not None:
            self.l2.restore_state(l2)
        self.itlb.restore_state(itlb)
        self.dtlb.restore_state(dtlb)
        self.dram.restore_state(dram)
        self.scd.restore_state(scd)
        if ttc is not None:
            self.ttc.restore_state(ttc)
        if ittage is not None:
            self.ittage.restore_state(ittage)
        if cascaded is not None:
            self.cascaded.restore_state(cascaded)

    def counter_snapshot(self) -> tuple:
        """Every counter the memo must replay as a delta: the stats block,
        the deferred per-block retirement counts, and the component-local
        access/miss counters ``finalize`` folds in afterwards."""
        l2 = self.l2
        return (
            self.stats.counter_snapshot(),
            dict(self._block_counts),
            (
                self.icache.accesses, self.icache.misses,
                self.dcache.accesses, self.dcache.misses,
                l2.accesses if l2 is not None else 0,
                l2.misses if l2 is not None else 0,
                self.itlb.accesses, self.itlb.misses,
                self.dtlb.accesses, self.dtlb.misses,
                self.dram.accesses, self.dram.row_hits,
            ),
        )

    def counter_delta(self, before: tuple) -> tuple:
        stats_before, blocks_before, flat_before = before
        blocks = self._block_counts
        block_delta = tuple(
            (block, count - blocks_before.get(block, 0))
            for block, count in blocks.items()
            if count != blocks_before.get(block, 0)
        )
        l2 = self.l2
        flat_now = (
            self.icache.accesses, self.icache.misses,
            self.dcache.accesses, self.dcache.misses,
            l2.accesses if l2 is not None else 0,
            l2.misses if l2 is not None else 0,
            self.itlb.accesses, self.itlb.misses,
            self.dtlb.accesses, self.dtlb.misses,
            self.dram.accesses, self.dram.row_hits,
        )
        flat_delta = tuple(now - prev for now, prev in zip(flat_now, flat_before))
        return (
            self.stats.counter_delta(stats_before),
            block_delta,
            flat_delta,
        )

    def apply_counter_delta(self, delta: tuple) -> None:
        stats_delta, block_delta, flat_delta = delta
        self.stats.apply_counter_delta(stats_delta)
        counts = self._block_counts
        for block, increment in block_delta:
            counts[block] = counts.get(block, 0) + increment
        (ic_a, ic_m, dc_a, dc_m, l2_a, l2_m,
         it_a, it_m, dt_a, dt_m, dr_a, dr_h) = flat_delta
        self.icache.accesses += ic_a
        self.icache.misses += ic_m
        self.dcache.accesses += dc_a
        self.dcache.misses += dc_m
        if self.l2 is not None:
            self.l2.accesses += l2_a
            self.l2.misses += l2_m
        self.itlb.accesses += it_a
        self.itlb.misses += it_m
        self.dtlb.accesses += dt_a
        self.dtlb.misses += dt_m
        self.dram.accesses += dr_a
        self.dram.row_hits += dr_h

    # -- control transfers ---------------------------------------------------------

    def cond_branch(self, pc: int, taken: bool, category: str = "branch") -> bool:
        """Resolve a conditional direct branch.  Returns True on mispredict."""
        stats = self.stats
        stats.branches += 1
        if not self.predictor.observe(pc, taken):
            stats.branch_mispredicts += 1
            stats.mispredicts_by_category[category] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            if taken:
                self.btb.insert(pc, pc + 8)  # target value is opaque here
            return True
        if taken and self.btb.lookup(pc) is None:
            # Predicted taken but the front end had no target: redirect at
            # decode.  This is the JTE-contention cost of Section IV.
            stats.btb_target_misses += 1
            stats.mispredicts_by_category["btb_target_miss"] += 1
            self._stall(self.config.decode_redirect_penalty, "branch_penalty")
            self.btb.insert(pc, pc + 8)
        return False

    def direct_jump(self, pc: int, target: int) -> None:
        """Unconditional direct jump: one decode bubble unless BTB-resident."""
        if self.btb.lookup(pc) is None:
            self.stats.btb_target_misses += 1
            self.stats.mispredicts_by_category["btb_target_miss"] += 1
            self._stall(self.config.decode_redirect_penalty, "branch_penalty")
            self.btb.insert(pc, target)

    def indirect_jump(
        self,
        pc: int,
        target: int,
        hint: int | None = None,
        category: str = "indirect",
    ) -> bool:
        """Resolve an indirect jump.  Returns True on target mispredict.

        The prediction scheme comes from the configuration:

        * ``"btb"`` — last-target prediction, PC-indexed (baseline).
        * ``"vbbi"`` — BTB indexed by PC ⊕ hash(hint); *hint* is the opcode
          value, per Farooq et al.
        * ``"ttc"`` — history-based tagged target cache.
        """
        stats = self.stats
        stats.indirect_jumps += 1
        scheme = self.config.indirect_scheme
        if scheme == "vbbi" and hint is not None:
            key = pc ^ ((hint * _VBBI_HASH) & 0xFFFF_FFFC)
            predicted = self.btb.lookup(key)
            if predicted != target:
                self.btb.insert(key, target)
        elif scheme == "ttc":
            predicted = self.ttc.predict(pc)
            self.ttc.update(pc, target)
        elif scheme == "ittage":
            predicted = self.ittage.predict(pc)
            self.ittage.update(pc, target)
        elif scheme == "cascaded":
            predicted = self.cascaded.predict(pc)
            self.cascaded.update(pc, target)
        else:
            predicted = self.btb.lookup(pc)
            if predicted != target:
                self.btb.insert(pc, target)
        if predicted != target:
            stats.indirect_mispredicts += 1
            stats.mispredicts_by_category[category] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            return True
        return False

    def call(self, pc: int, target: int, return_pc: int, indirect: bool = False) -> None:
        """Direct or indirect call: pushes the RAS, predicts the target."""
        self.ras.push(return_pc)
        if indirect:
            self.indirect_jump(pc, target, category="indirect_call")
        else:
            self.direct_jump(pc, target)

    def ret(self, pc: int, return_pc: int) -> bool:
        """Return: pops the RAS.  Returns True on mispredict."""
        predicted = self.ras.pop()
        if predicted != return_pc:
            self.stats.ras_mispredicts += 1
            self.stats.mispredicts_by_category["return"] += 1
            self._stall(self.config.branch_penalty, "branch_penalty")
            return True
        return False

    # -- SCD operations ---------------------------------------------------------------

    def load_op(self, bytecode: int, table: int = 0) -> int:
        """Model an ``<inst>.op`` load depositing into ``Rop``."""
        return self.scd.load_op(bytecode, table)

    def bop(self, pc: int, table: int = 0) -> int | None:
        """Execute a ``bop``: returns the fast-path target or ``None``.

        Under the default "stall" policy the front end waits for the in-
        flight ``.op`` load, costing ``scd_stall_cycles`` bubbles but
        enabling the fast path.  Under "fallthrough" the bop issues
        immediately with ``Rop`` not yet valid and always takes the slow
        path (Section III-B's first option).
        """
        if self.config.scd_stall_policy == "fallthrough":
            self.stats.bop_misses += 1
            return None
        self._stall(self.config.scd_stall_cycles, "scd_stall")
        self.stats.scd_stall_cycles += self.config.scd_stall_cycles
        target = self.scd.bop(table)
        if target is not None:
            self.stats.bop_hits += 1
        else:
            self.stats.bop_misses += 1
        return target

    def jru(self, pc: int, target: int, table: int = 0) -> bool:
        """Execute a ``jru``: indirect jump + JTE installation.

        Returns True if the jump's target was mispredicted.
        """
        mispredicted = self.indirect_jump(pc, target, category="dispatch_jump")
        if self.scd.jru(target, table):
            self.stats.jte_inserts += 1
        return mispredicted

    def jte_flush(self) -> int:
        flushed = self.scd.jte_flush()
        self.stats.jte_flushes += 1
        return flushed

    def context_switch(self, save_jtes: bool = False) -> None:
        """Model an OS context switch (Section IV).

        Two policies for the architecturally-visible JTEs:

        * ``save_jtes=False`` (the paper's preferred policy): execute
          ``jte.flush``; the interpreter repopulates JTEs through slow-path
          dispatches after resumption.
        * ``save_jtes=True``: the OS saves and restores every JTE (and the
          SCD registers), costing roughly a load+store pair per entry each
          way but preserving the fast path immediately on resumption.

        Either way the RAS empties and the TLBs lose their translations;
        ``Rmask`` is saved/restored by the OS in both policies.
        """
        if save_jtes:
            resident = self.btb.jte_count
            # ~4 instructions per JTE per direction (read/format/store and
            # reload/insert), charged as OS overhead cycles.
            self._stall(8 * resident, "os_jte_save_restore")
        else:
            self.jte_flush()
        while self.ras.pop() is not None:
            pass
        self.itlb.flush()
        self.dtlb.flush()
        self._last_ipage = -1
        self._last_dpage = -1


class SteadyStateMemo:
    """Steady-state timing memo for recorded-trace replay.

    Exactness argument: replaying an event chunk is a deterministic
    function of (chunk content, machine mutable state, runner replay
    state); its effect splits into a state transition and monotonic
    counter increments, both pure functions of that input.  :meth:`commit`
    memoizes the *transition*: the entry stores the begin digest, the
    counter delta, the machine end digest and the runner end state.
    :meth:`try_apply` replays the memo only when the current full digest
    equals the stored begin digest — the chunk would deterministically
    drive the machine to exactly the stored end state and retire exactly
    the stored counter increments, so installing the end state
    (:meth:`Machine.restore_state`) and adding the delta is byte-identical
    to re-simulating.  Steady-state interpreter loops reach a small set of
    recurring (chunk content, begin state) pairs even when the chunk size
    is not a multiple of the loop period (the begin state simply carries
    the loop phase, and recurring content implies recurring phase);
    warm-up and phase changes miss and run normally, so the memo can
    change no counter (the identity test in ``tests/test_trace_capture.py``
    asserts this per scheme).

    The entry table is capped at :attr:`MAX_ENTRIES` distinct chunk keys
    (steady-state streams cycle through a handful; the cap only bounds
    memory on long non-repetitive traces, whose chunks would never hit
    anyway).  Entries hold two full state digests (~tens of KB), so the
    cap bounds the memo at a few MB.

    Digests are structural tuples of a few thousand small ints; building
    one costs microseconds against milliseconds of chunk simulation, so a
    hit is a large constant-factor win.
    """

    #: Maximum distinct chunk keys memoized (first come, first kept).
    MAX_ENTRIES = 512

    __slots__ = (
        "machine",
        "runner",
        "hits",
        "misses",
        "events_skipped",
        "_entries",
        "_probe_digest",
        "_begin_digest",
        "_begin_counters",
    )

    def __init__(self, machine: Machine, runner):
        self.machine = machine
        self.runner = runner
        self.hits = 0
        self.misses = 0
        self.events_skipped = 0
        self._entries: dict = {}
        self._probe_digest: tuple | None = None
        self._begin_digest: tuple | None = None
        self._begin_counters: tuple | None = None

    def _digest(self) -> tuple:
        return (self.machine.state_digest(), self.runner.replay_digest())

    def try_apply(self, key: bytes, n_events: int) -> bool:
        """Apply the memoized effect of chunk *key* if the current state
        matches the entry's begin state.  Returns True when applied."""
        entry = self._entries.get(key)
        if entry is None:
            self._probe_digest = None
            return False
        digest = self._digest()
        begin_digest, counter_delta, machine_end, runner_end = entry
        if digest != begin_digest:
            # Nothing mutates between this probe and the caller's begin();
            # stash the digest so begin() does not recompute it.
            self._probe_digest = digest
            return False
        self.machine.apply_counter_delta(counter_delta)
        if machine_end is not None:
            self.machine.restore_state(machine_end)
        self.runner.apply_memo_end(runner_end, n_events)
        self.hits += 1
        self.events_skipped += n_events
        return True

    def begin(self) -> None:
        """Snapshot state and counters before simulating a chunk live."""
        probe = self._probe_digest
        self._begin_digest = probe if probe is not None else self._digest()
        self._probe_digest = None
        self._begin_counters = self.machine.counter_snapshot()

    def commit(self, key: bytes) -> None:
        """Memoize the transition of the chunk just simulated live."""
        self.misses += 1
        begin_digest = self._begin_digest
        self._begin_digest = None
        if begin_digest is None:
            return
        entries = self._entries
        if key not in entries and len(entries) >= self.MAX_ENTRIES:
            self._begin_counters = None
            return
        end = self.machine.state_digest()
        entries[key] = (
            begin_digest,
            self.machine.counter_delta(self._begin_counters),
            # None marks a fixed point: try_apply skips the restore.
            None if end == begin_digest[0] else end,
            self.runner.memo_end_state(),
        )
        self._begin_counters = None
