"""Cycle-approximate embedded-core microarchitecture models.

This package is the substrate the paper's evaluation runs on: an in-order
embedded pipeline with a branch target buffer (extended with the SCD J/B
bit), direction predictors, return-address stack, I-/D-caches, TLBs and a
DRAM latency model.  Three presets mirror the paper's Table II:

* :func:`repro.uarch.config.cortex_a5` — the gem5 "simulator" machine
  (4-stage, single issue, tournament predictor, 256-entry 2-way BTB).
* :func:`repro.uarch.config.rocket` — the RISC-V Rocket "FPGA" machine
  (5-stage, gshare-128, 62-entry fully-associative BTB).
* :func:`repro.uarch.config.cortex_a8` — the higher-end dual-issue core of
  Section VI-C2 (512-entry BTB, 32 KB I-cache, 256 KB L2).
"""

from repro.uarch.config import CoreConfig, cortex_a5, rocket, cortex_a8
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.predictors import (
    BimodalPredictor,
    CascadedPredictor,
    GsharePredictor,
    ItTagePredictor,
    LocalPredictor,
    ReturnAddressStack,
    TaggedTargetCache,
    TournamentPredictor,
    make_direction_predictor,
)
from repro.uarch.caches import Cache, Tlb
from repro.uarch.memory import DramModel
from repro.uarch.pipeline import Machine
from repro.uarch.scd import ScdUnit
from repro.uarch.stats import MachineStats

__all__ = [
    "CoreConfig",
    "cortex_a5",
    "rocket",
    "cortex_a8",
    "BranchTargetBuffer",
    "BimodalPredictor",
    "CascadedPredictor",
    "ItTagePredictor",
    "GsharePredictor",
    "LocalPredictor",
    "TournamentPredictor",
    "ReturnAddressStack",
    "TaggedTargetCache",
    "make_direction_predictor",
    "Cache",
    "Tlb",
    "DramModel",
    "Machine",
    "ScdUnit",
    "MachineStats",
]
