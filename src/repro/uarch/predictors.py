"""Branch direction predictors, return-address stack and indirect schemes.

The simulator configuration of the paper (Table II) uses a tournament
predictor (512-entry global, 128-entry local); the FPGA configuration uses a
128-entry gshare.  VBBI [Farooq et al., HPCA 2010] — the paper's
state-of-the-art comparison — is realised as a hashed (PC ⊕ hint) BTB index
and lives in the pipeline; the tagged target cache (TTC) of Chang et al. is
provided for completeness and ablations.
"""

from __future__ import annotations


def _saturate_up(counter: int, maximum: int = 3) -> int:
    return counter + 1 if counter < maximum else counter


def _saturate_down(counter: int, minimum: int = 0) -> int:
    return counter - 1 if counter > minimum else counter


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int = 512):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._mask = entries - 1 if not (entries & (entries - 1)) else None
        self._table = [2] * entries  # weakly taken

    def _index(self, pc: int) -> int:
        word = pc >> 2
        if self._mask is not None:
            return word & self._mask
        return word % self.entries

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = (
            _saturate_up(counter) if taken else _saturate_down(counter)
        )

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict and train in one pass.  Returns True when correct."""
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = (
            _saturate_up(counter) if taken else _saturate_down(counter)
        )
        return (counter >= 2) == taken

    def state_digest(self) -> tuple:
        return (tuple(self._table),)

    def restore_state(self, digest: tuple) -> None:
        self._table = list(digest[0])


class GsharePredictor:
    """Global-history XOR PC indexed 2-bit counters (Rocket's 32 B predictor)."""

    def __init__(self, entries: int = 128, history_bits: int | None = None):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.history_bits = (
            history_bits if history_bits is not None else max(1, entries.bit_length() - 1)
        )
        self._history_mask = (1 << self.history_bits) - 1
        self.history = 0
        self._table = [2] * entries

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) % self.entries

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = (
            _saturate_up(counter) if taken else _saturate_down(counter)
        )
        self.history = ((self.history << 1) | int(taken)) & self._history_mask

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict and train in one pass.  Returns True when correct."""
        index = ((pc >> 2) ^ self.history) % self.entries
        counter = self._table[index]
        self._table[index] = (
            _saturate_up(counter) if taken else _saturate_down(counter)
        )
        self.history = ((self.history << 1) | int(taken)) & self._history_mask
        return (counter >= 2) == taken

    def state_digest(self) -> tuple:
        return (self.history, tuple(self._table))

    def restore_state(self, digest: tuple) -> None:
        self.history = digest[0]
        self._table = list(digest[1])


class LocalPredictor:
    """Two-level local predictor: per-PC history feeding a counter table."""

    def __init__(self, entries: int = 128, history_bits: int = 10):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._histories = [0] * entries
        self._counters = [2] * (1 << history_bits)

    def _history_index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> bool:
        history = self._histories[self._history_index(pc)]
        return self._counters[history] >= 2

    def update(self, pc: int, taken: bool) -> None:
        history_index = self._history_index(pc)
        history = self._histories[history_index]
        counter = self._counters[history]
        self._counters[history] = (
            _saturate_up(counter) if taken else _saturate_down(counter)
        )
        self._histories[history_index] = (
            (history << 1) | int(taken)
        ) & self._history_mask

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict and train in one pass.  Returns True when correct."""
        history_index = (pc >> 2) % self.entries
        history = self._histories[history_index]
        counter = self._counters[history]
        self._counters[history] = (
            _saturate_up(counter) if taken else _saturate_down(counter)
        )
        self._histories[history_index] = (
            (history << 1) | int(taken)
        ) & self._history_mask
        return (counter >= 2) == taken

    def state_digest(self) -> tuple:
        return (tuple(self._histories), tuple(self._counters))

    def restore_state(self, digest: tuple) -> None:
        self._histories = list(digest[0])
        self._counters = list(digest[1])


class TournamentPredictor:
    """Alpha-21264-style chooser between a global and a local component.

    Matches the simulator configuration of Table II: a 512-entry global
    (gshare) component and a 128-entry local component, with a choice table
    trained toward whichever component was correct.
    """

    def __init__(
        self,
        global_entries: int = 512,
        local_entries: int = 128,
        choice_entries: int = 512,
    ):
        self.global_component = GsharePredictor(global_entries)
        self.local_component = LocalPredictor(local_entries)
        self.choice_entries = choice_entries
        self._choice = [2] * choice_entries  # >=2 prefers global

    def _choice_index(self, pc: int) -> int:
        return (pc >> 2) % self.choice_entries

    def predict(self, pc: int) -> bool:
        if self._choice[self._choice_index(pc)] >= 2:
            return self.global_component.predict(pc)
        return self.local_component.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        global_correct = self.global_component.predict(pc) == taken
        local_correct = self.local_component.predict(pc) == taken
        if global_correct != local_correct:
            index = self._choice_index(pc)
            counter = self._choice[index]
            self._choice[index] = (
                _saturate_up(counter) if global_correct else _saturate_down(counter)
            )
        self.global_component.update(pc, taken)
        self.local_component.update(pc, taken)

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict and train in one pass.  Returns True when correct."""
        use_global = self._choice[self._choice_index(pc)] >= 2
        global_correct = self.global_component.observe(pc, taken)
        local_correct = self.local_component.observe(pc, taken)
        if global_correct != local_correct:
            index = self._choice_index(pc)
            counter = self._choice[index]
            self._choice[index] = (
                _saturate_up(counter) if global_correct else _saturate_down(counter)
            )
        return global_correct if use_global else local_correct

    def state_digest(self) -> tuple:
        return (
            self.global_component.state_digest(),
            self.local_component.state_digest(),
            tuple(self._choice),
        )

    def restore_state(self, digest: tuple) -> None:
        self.global_component.restore_state(digest[0])
        self.local_component.restore_state(digest[1])
        self._choice = list(digest[2])


def make_direction_predictor(spec: str, **overrides):
    """Factory used by :class:`repro.uarch.config.CoreConfig`.

    Args:
        spec: ``"tournament"``, ``"gshare"``, ``"bimodal"`` or ``"local"``.
        **overrides: constructor arguments for the chosen predictor.
    """
    factories = {
        "tournament": TournamentPredictor,
        "gshare": GsharePredictor,
        "bimodal": BimodalPredictor,
        "local": LocalPredictor,
    }
    try:
        factory = factories[spec]
    except KeyError:
        raise ValueError(f"unknown direction predictor {spec!r}") from None
    return factory(**overrides)


class ReturnAddressStack:
    """Bounded circular return-address stack.

    Overflow wraps (overwriting the oldest entry) and underflow predicts
    nothing — both behaviours of real shallow embedded RASes (2 entries on
    Rocket, 8 on the A5 model).
    """

    def __init__(self, depth: int = 8):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> int | None:
        if self._stack:
            return self._stack.pop()
        return None

    def state_digest(self) -> tuple:
        return tuple(self._stack)

    def restore_state(self, digest: tuple) -> None:
        self._stack = list(digest)

    def __len__(self) -> int:
        return len(self._stack)


class TaggedTargetCache:
    """History-based tagged target cache for indirect jumps (Chang et al.).

    Indexed by PC XOR a path history of recent indirect targets; tagged so
    different (PC, history) pairs do not alias silently.  Provided as an
    ablation comparison point for VBBI and SCD.
    """

    def __init__(self, entries: int = 256, history_bits: int = 8):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._history_mask = (1 << history_bits) - 1
        self.history = 0
        self._tags = [-1] * entries
        self._targets = [0] * entries

    def _index_tag(self, pc: int) -> tuple[int, int]:
        key = (pc >> 2) ^ self.history
        return key % self.entries, key

    def predict(self, pc: int) -> int | None:
        index, tag = self._index_tag(pc)
        if self._tags[index] == tag:
            return self._targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        index, tag = self._index_tag(pc)
        self._tags[index] = tag
        self._targets[index] = target
        self.history = ((self.history << 2) ^ (target >> 2)) & self._history_mask

    def state_digest(self) -> tuple:
        return (self.history, tuple(self._tags), tuple(self._targets))

    def restore_state(self, digest: tuple) -> None:
        self.history = digest[0]
        self._tags = list(digest[1])
        self._targets = list(digest[2])


class ItTagePredictor:
    """Simplified ITTAGE indirect-target predictor (Seznec & Michaud).

    A tagless base table (last-target, PC-indexed) backed by several tagged
    tables indexed with geometrically growing global-history lengths; the
    longest matching component provides the prediction.  The paper cites
    ITTAGE as "the most accurate branch predictor" among related work — we
    provide it as an upper-bound comparison point for prediction-only
    schemes (it still cannot remove the dispatch instructions SCD elides).
    """

    #: Geometric history lengths of the tagged components.
    HISTORY_LENGTHS = (4, 8, 16, 32, 64)

    def __init__(self, base_entries: int = 256, tagged_entries: int = 128):
        if base_entries <= 0 or tagged_entries <= 0:
            raise ValueError("table sizes must be positive")
        self.base_entries = base_entries
        self.tagged_entries = tagged_entries
        self._base = [0] * base_entries
        self._base_valid = [False] * base_entries
        # Per component: parallel tag/target/confidence arrays.
        self._tags = [[-1] * tagged_entries for _ in self.HISTORY_LENGTHS]
        self._targets = [[0] * tagged_entries for _ in self.HISTORY_LENGTHS]
        self._confidence = [[0] * tagged_entries for _ in self.HISTORY_LENGTHS]
        self.history = 0

    def _fold(self, pc: int, bits: int) -> int:
        history = self.history & ((1 << bits) - 1)
        folded = 0
        while history:
            folded ^= history & 0xFFFF
            history >>= 16
        return folded ^ (pc >> 2)

    def _slot(self, component: int, pc: int) -> tuple[int, int]:
        bits = self.HISTORY_LENGTHS[component]
        key = self._fold(pc, bits)
        index = key % self.tagged_entries
        tag = (key // self.tagged_entries) & 0x3FF
        return index, tag

    def predict(self, pc: int) -> int | None:
        """Target from the longest matching component, else the base table."""
        for component in reversed(range(len(self.HISTORY_LENGTHS))):
            index, tag = self._slot(component, pc)
            if self._tags[component][index] == tag:
                return self._targets[component][index]
        base_index = (pc >> 2) % self.base_entries
        if self._base_valid[base_index]:
            return self._base[base_index]
        return None

    def update(self, pc: int, target: int) -> None:
        """Train the matching component; allocate one level up on a miss."""
        provider = None
        for component in reversed(range(len(self.HISTORY_LENGTHS))):
            index, tag = self._slot(component, pc)
            if self._tags[component][index] == tag:
                provider = (component, index)
                break
        base_index = (pc >> 2) % self.base_entries
        if provider is not None:
            component, index = provider
            if self._targets[component][index] == target:
                if self._confidence[component][index] < 3:
                    self._confidence[component][index] += 1
            else:
                if self._confidence[component][index] > 0:
                    self._confidence[component][index] -= 1
                else:
                    self._targets[component][index] = target
                # Mispredicted: allocate in a longer-history component.
                if component + 1 < len(self.HISTORY_LENGTHS):
                    up_index, up_tag = self._slot(component + 1, pc)
                    if self._confidence[component + 1][up_index] == 0:
                        self._tags[component + 1][up_index] = up_tag
                        self._targets[component + 1][up_index] = target
        else:
            predicted = self._base[base_index] if self._base_valid[base_index] else None
            if predicted != target:
                # Allocate in the shortest tagged component.
                index, tag = self._slot(0, pc)
                if self._confidence[0][index] == 0:
                    self._tags[0][index] = tag
                    self._targets[0][index] = target
        self._base[base_index] = target
        self._base_valid[base_index] = True
        self.history = ((self.history << 2) ^ (target >> 4)) & (1 << 64) - 1

    def state_digest(self) -> tuple:
        return (
            self.history,
            tuple(self._base),
            tuple(self._base_valid),
            tuple(tuple(tags) for tags in self._tags),
            tuple(tuple(targets) for targets in self._targets),
            tuple(tuple(conf) for conf in self._confidence),
        )

    def restore_state(self, digest: tuple) -> None:
        self.history = digest[0]
        self._base = list(digest[1])
        self._base_valid = list(digest[2])
        self._tags = [list(tags) for tags in digest[3]]
        self._targets = [list(targets) for targets in digest[4]]
        self._confidence = [list(conf) for conf in digest[5]]


class CascadedPredictor:
    """Two-stage cascaded indirect predictor (Driesen & Holzle, MICRO '98).

    An economical hybrid: a tagless first-stage table predicts the last
    target per PC; a tagged, history-indexed second stage is *only*
    allocated for jumps the first stage mispredicts (filtering easy,
    monomorphic jumps away from the expensive structure).
    """

    def __init__(self, stage1_entries: int = 256, stage2_entries: int = 256,
                 history_bits: int = 6):
        if stage1_entries <= 0 or stage2_entries <= 0:
            raise ValueError("table sizes must be positive")
        self.stage1_entries = stage1_entries
        self.stage2_entries = stage2_entries
        self._stage1 = [0] * stage1_entries
        self._stage1_valid = [False] * stage1_entries
        self._tags = [-1] * stage2_entries
        self._targets = [0] * stage2_entries
        self._history_mask = (1 << history_bits) - 1
        self.history = 0

    def _stage1_index(self, pc: int) -> int:
        return (pc >> 2) % self.stage1_entries

    def _stage2_slot(self, pc: int) -> tuple[int, int]:
        key = (pc >> 2) ^ (self.history << 3)
        return key % self.stage2_entries, key

    def predict(self, pc: int) -> int | None:
        index, tag = self._stage2_slot(pc)
        if self._tags[index] == tag:
            return self._targets[index]
        s1 = self._stage1_index(pc)
        if self._stage1_valid[s1]:
            return self._stage1[s1]
        return None

    def update(self, pc: int, target: int) -> None:
        predicted = self.predict(pc)
        s1 = self._stage1_index(pc)
        if predicted != target:
            # Second stage is allocated only on first-stage failure —
            # the "cascade" filter.
            if self._stage1_valid[s1] and self._stage1[s1] != target:
                index, tag = self._stage2_slot(pc)
                self._tags[index] = tag
                self._targets[index] = target
        else:
            index, tag = self._stage2_slot(pc)
            if self._tags[index] == tag:
                self._targets[index] = target
        self._stage1[s1] = target
        self._stage1_valid[s1] = True
        self.history = ((self.history << 2) ^ (target >> 4)) & self._history_mask

    def state_digest(self) -> tuple:
        return (
            self.history,
            tuple(self._stage1),
            tuple(self._stage1_valid),
            tuple(self._tags),
            tuple(self._targets),
        )

    def restore_state(self, digest: tuple) -> None:
        self.history = digest[0]
        self._stage1 = list(digest[1])
        self._stage1_valid = list(digest[2])
        self._tags = list(digest[3])
        self._targets = list(digest[4])
