"""Seeded random guest-program generator over the :mod:`repro.lang` AST.

The generator is the input half of the differential verification loop
(:mod:`repro.verify.differential`): it produces deterministic, *terminating*
scriptlet programs that exercise loops, calls, arrays/maps, strings and
builtins on both guest VMs, while staying inside the semantic subset the
two VMs are guaranteed to agree on.

Design rules that keep every generated program valid and cross-VM
deterministic:

* **Type-directed expressions.**  Every expression is generated against a
  known static type (int/float/str/bool), so no run can raise a guest
  ``VmTypeError``.  Ordering comparisons only pair numbers with numbers or
  strings with strings; ``..`` only sees strings and numbers.
* **Total arithmetic.**  Divisors (``/``, ``//``, ``%``) are non-zero
  integer literals; ``sqrt`` arguments go through ``abs``; ``%`` with a
  positive literal also canonicalizes array indices into range (floored
  modulo, like Lua).
* **Bounded control flow.**  ``for`` loops use literal bounds with small
  trip counts; ``while`` loops decrement a dedicated guard variable that
  nothing else writes; functions only call previously declared functions
  (the call graph is a DAG), so every program terminates well inside the
  step budget.
* **Stable aggregates.**  Arrays keep their creation length (indices are
  reduced mod the length; ``push`` is immediately paired with ``pop``) and
  maps are only written through their literal key set, so reads never
  produce ``nil``.
* **Printable values only.**  ``print`` is applied to scalars, never to
  arrays/maps (whose ``tostring`` embeds a Python ``id``), and the
  epilogue prints every live scalar and container element so the output
  oracle is sensitive to nearly all computed state.
* **Integer growth control.**  Accumulators assigned inside loops are
  wrapped ``% 100003``, so bignum digit counts cannot explode.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.unparse import unparse

#: Scalar types the generator tracks statically.
SCALARS = ("int", "str", "bool", "float")

#: Modulus applied to loop-carried integer accumulators.
_WRAP = 100003

_STRING_POOL = (
    "a", "b", "xy", "scd", "btb", "dispatch", "jte", "loop",
    "q0", "zz9", "interp", "-", "_",
)

#: Size profiles: (step budget, max functions, max block depth).
SIZE_PROFILES = {
    "tiny": (300, 1, 2),
    "small": (1200, 2, 3),
    "medium": (4000, 3, 3),
}


@dataclass(frozen=True)
class Stratum:
    """An opcode-mix stratum: multiplicative biases on statement choice.

    ``stmt_weights`` maps a statement kind (the keys used by
    :meth:`ProgramGenerator._gen_statement`) to a multiplier applied on
    top of the base weight; absent kinds keep weight ``1.0``.  The
    multipliers reshape the *probabilities* of each statement kind
    without changing how many RNG draws are consumed, so the default
    ``mixed`` stratum is byte-identical to the historical generator.
    """

    name: str
    stmt_weights: dict = field(default_factory=dict)
    #: Pool ``_declare_scalar`` draws the declared type from.
    scalar_types: tuple = ("int", "int", "int", "str", "bool", "float")
    #: Probability gate for emitting a bare call statement.
    callstmt_p: float = 0.25
    #: Probability gate for offering an early return inside functions.
    return_p: float = 0.15
    #: Added to the size profile's max function count.
    extra_functions: int = 0
    #: Lower bound on the number of generated functions.
    min_functions: int = 0


#: Opcode-mix strata for corpus stratification.  ``mixed`` preserves the
#: historical (unbiased) distribution; the others skew the statement mix
#: toward one opcode class (arithmetic, calls, branches, tables/strings).
STRATA = {
    "mixed": Stratum(name="mixed"),
    "arith": Stratum(
        name="arith",
        stmt_weights={
            "scalar": 2.5, "assign": 4.0, "array": 0.2, "map": 0.1,
            "container": 0.25, "pushpop": 0.1, "print": 0.4,
            "if": 0.3, "while": 0.5, "for": 1.5,
        },
        scalar_types=("int", "int", "int", "int", "float", "float"),
        callstmt_p=0.1,
    ),
    "call": Stratum(
        name="call",
        stmt_weights={
            "callstmt": 4.0, "scalar": 0.8, "array": 0.5, "map": 0.3,
            "container": 0.5, "pushpop": 0.3, "if": 0.8,
        },
        callstmt_p=0.9,
        extra_functions=2,
        min_functions=1,
    ),
    "branch": Stratum(
        name="branch",
        stmt_weights={
            "if": 4.0, "while": 3.5, "for": 2.5, "exit": 3.0,
            "assign": 0.8, "array": 0.4, "map": 0.2, "container": 0.4,
            "pushpop": 0.2, "print": 0.5,
        },
    ),
    "table-str": Stratum(
        name="table-str",
        stmt_weights={
            "array": 5.0, "map": 4.0, "container": 5.0, "pushpop": 4.0,
            "scalar": 1.2, "assign": 0.7, "if": 0.6, "for": 1.2,
        },
        scalar_types=("str", "str", "str", "int", "bool", "float"),
    ),
}

#: Strata a stratified corpus cycles through (``mixed`` is the verify
#: sweep's default and deliberately not part of the skewed rotation).
CORPUS_STRATA = ("arith", "call", "branch", "table-str")


def resolve_stratum(stratum) -> Stratum:
    """Coerce a stratum name or :class:`Stratum` into a :class:`Stratum`."""
    if isinstance(stratum, Stratum):
        return stratum
    if stratum is None:
        return STRATA["mixed"]
    try:
        return STRATA[stratum]
    except KeyError:
        raise ValueError(
            f"unknown stratum {stratum!r}; expected one of {tuple(STRATA)}"
        ) from None


@dataclass
class _Scope:
    """Visible names with their static types."""

    scalars: dict = field(default_factory=dict)   # name -> scalar type
    arrays: dict = field(default_factory=dict)    # name -> (elem type, length)
    maps: dict = field(default_factory=dict)      # name -> (value type, keys)
    parent: "._Scope | None" = None

    def child(self) -> "_Scope":
        return _Scope(
            scalars=dict(self.scalars),
            arrays=dict(self.arrays),
            maps=dict(self.maps),
            parent=self,
        )

    def scalar_names(self, type_: str) -> list:
        return [name for name, t in self.scalars.items() if t == type_]


@dataclass
class _Function:
    name: str
    param_types: tuple
    return_type: str
    est_cost: int


@dataclass
class GeneratedProgram:
    """One generated guest program.

    Attributes:
        seed: the generator seed that produced it.
        size: the size-profile name.
        module: the AST module.
        source: rendered source text (what the VMs compile).
        est_steps: static upper-bound estimate of executed guest steps.
        stratum: name of the opcode-mix stratum that shaped it.
    """

    seed: int
    size: str
    module: ast.Module
    source: str
    est_steps: int
    stratum: str = "mixed"


class ProgramGenerator:
    """Deterministic random program builder.

    Args:
        seed: RNG seed; equal (seed, size, stratum) triples produce
            byte-identical programs.
        size: one of :data:`SIZE_PROFILES`.
        stratum: a :data:`STRATA` name or :class:`Stratum` instance
            biasing the statement mix toward one opcode class.
    """

    def __init__(self, seed: int, size: str = "small", stratum="mixed"):
        if size not in SIZE_PROFILES:
            raise ValueError(f"unknown size {size!r}; expected {tuple(SIZE_PROFILES)}")
        self.seed = seed
        self.size = size
        self.stratum = resolve_stratum(stratum)
        self.rng = random.Random(seed)
        self.budget, self.max_functions, self.max_depth = SIZE_PROFILES[size]
        self.max_functions += self.stratum.extra_functions
        self.spent = 0
        self._names = 0
        self._mult = 1
        self._no_call = 0
        self.functions: list[_Function] = []

    # -- small helpers -----------------------------------------------------

    @contextmanager
    def _forbid_calls(self):
        """Disallow Call/Logical nodes in the generated subtree.

        The Lua compiler requires call arguments in consecutive registers,
        and its call/logical expression compilers leave ``free_reg``
        elevated; a Call (or call-carrying Logical) inside a *non-final*
        argument of another call therefore fails to compile.  Arguments
        other than the last are generated under this guard.
        """
        self._no_call += 1
        try:
            yield
        finally:
            self._no_call -= 1

    def _fresh(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}{self._names}"

    def _lit(self, value) -> ast.Literal:
        return ast.Literal(value=value)

    def _spend(self, cost: int, mult: int) -> None:
        self.spent += cost * mult

    def _exhausted(self, mult: int) -> bool:
        return self.spent + 4 * mult > self.budget

    # -- expressions -------------------------------------------------------

    def expr(self, type_: str, scope: _Scope, depth: int = 0) -> ast.Node:
        if type_ == "int":
            return self._int_expr(scope, depth)
        if type_ == "str":
            return self._str_expr(scope, depth)
        if type_ == "bool":
            return self._bool_expr(scope, depth)
        if type_ == "float":
            return self._float_expr(scope, depth)
        raise ValueError(f"unknown type {type_!r}")

    def _var_or_none(self, scope: _Scope, type_: str) -> ast.Node | None:
        names = scope.scalar_names(type_)
        if names:
            return ast.Name(id=self.rng.choice(names))
        return None

    def _container_int_read(self, scope: _Scope) -> ast.Node | None:
        """A read of an int array element or int map value, if one exists."""
        rng = self.rng
        candidates = []
        for name, (elem, length) in scope.arrays.items():
            if elem == "int":
                candidates.append(("arr", name, length))
        for name, (value_type, keys) in scope.maps.items():
            if value_type == "int":
                candidates.append(("map", name, keys))
        if not candidates:
            return None
        kind, name, extra = rng.choice(candidates)
        if kind == "arr":
            return self._array_read(scope, name, extra)
        return ast.Index(obj=ast.Name(id=name), key=self._lit(rng.choice(extra)))

    def _array_read(self, scope: _Scope, name: str, length: int) -> ast.Node:
        index = self._index_expr(scope, length)
        return ast.Index(obj=ast.Name(id=name), key=index)

    def _index_expr(self, scope: _Scope, length: int) -> ast.Node:
        """An always-in-range array index: literal or ``(e % length)``."""
        rng = self.rng
        if rng.random() < 0.6:
            return self._lit(rng.randrange(length))
        inner = self._int_expr(scope, depth=3)
        return ast.BinOp(op="%", left=inner, right=self._lit(length))

    def _int_expr(self, scope: _Scope, depth: int) -> ast.Node:
        rng = self.rng
        leaf = depth >= 3 or rng.random() < 0.3
        if leaf:
            var = self._var_or_none(scope, "int")
            if var is not None and rng.random() < 0.7:
                return var
            return self._lit(rng.randint(-50, 99))
        roll = rng.random()
        if self._no_call:
            roll *= 0.66  # calls and logicals are off-limits in this subtree
        if roll < 0.45:
            op = rng.choice(("+", "-", "*", "+", "-"))
            return ast.BinOp(
                op=op,
                left=self._int_expr(scope, depth + 1),
                right=self._int_expr(scope, depth + 1),
            )
        if roll < 0.58:
            op = rng.choice(("//", "%"))
            return ast.BinOp(
                op=op,
                left=self._int_expr(scope, depth + 1),
                right=self._lit(rng.randint(2, 9)),
            )
        if roll < 0.66:
            read = self._container_int_read(scope)
            if read is not None:
                return read
            return self._int_expr(scope, depth + 1)
        if roll < 0.74:
            builtin = rng.choice(("abs", "min", "max"))
            if builtin == "abs":
                args = [self._int_expr(scope, depth + 1)]
            else:
                with self._forbid_calls():
                    first = self._int_expr(scope, depth + 1)
                args = [first, self._int_expr(scope, depth + 1)]
            return ast.Call(callee=builtin, args=args)
        if roll < 0.80:
            # len of an array, map or string.
            pools = list(scope.arrays) + list(scope.maps)
            if pools:
                return ast.Call(callee="len", args=[ast.Name(id=rng.choice(pools))])
            return ast.Call(callee="len", args=[self._str_expr(scope, depth + 1)])
        if roll < 0.86:
            return ast.Call(
                callee="ord",
                args=[
                    ast.BinOp(
                        op="..",
                        left=self._lit(rng.choice(_STRING_POOL)),
                        right=self._str_expr(scope, depth + 1),
                    )
                ],
            )
        if roll < 0.92:
            fn = self._callable(returning="int")
            if fn is not None:
                return self._call(fn, scope, depth)
            return self._int_expr(scope, depth + 1)
        # floor/ceil of a float expression.
        return ast.Call(
            callee=rng.choice(("floor", "ceil")),
            args=[self._float_expr(scope, depth + 1)],
        )

    def _float_expr(self, scope: _Scope, depth: int) -> ast.Node:
        rng = self.rng
        leaf = depth >= 3 or rng.random() < 0.4
        if leaf:
            var = self._var_or_none(scope, "float")
            if var is not None and rng.random() < 0.6:
                return var
            return self._lit(rng.choice((0.5, 1.25, 2.75, 3.5, 0.125, 10.0)))
        roll = rng.random()
        if roll < 0.35:
            return ast.BinOp(
                op=rng.choice(("+", "-", "*")),
                left=self._float_expr(scope, depth + 1),
                right=self._float_expr(scope, depth + 1),
            )
        if roll < 0.6:
            return ast.BinOp(
                op="/",
                left=self._int_expr(scope, depth + 1),
                right=self._lit(rng.randint(2, 9)),
            )
        if roll < 0.8 and not self._no_call:
            return ast.Call(
                callee="sqrt",
                args=[ast.Call(callee="abs", args=[self._int_expr(scope, depth + 1)])],
            )
        return ast.BinOp(
            op="*",
            left=self._float_expr(scope, depth + 1),
            right=self._lit(rng.choice((0.5, 2.0, 1.5))),
        )

    def _str_expr(self, scope: _Scope, depth: int) -> ast.Node:
        rng = self.rng
        leaf = depth >= 3 or rng.random() < 0.35
        if leaf:
            var = self._var_or_none(scope, "str")
            if var is not None and rng.random() < 0.6:
                return var
            return self._lit(rng.choice(_STRING_POOL))
        roll = rng.random()
        if self._no_call:
            roll = 0.0  # only concat is allowed in a call-free subtree
        if roll < 0.4:
            right_type = rng.choice(("str", "int"))
            return ast.BinOp(
                op="..",
                left=self._str_expr(scope, depth + 1),
                right=self.expr(right_type, scope, depth + 1),
            )
        if roll < 0.55:
            with self._forbid_calls():
                subject = self._str_expr(scope, depth + 1)
            return ast.Call(
                callee="substr",
                args=[
                    subject,
                    self._lit(rng.randrange(4)),
                    self._lit(rng.randrange(5)),
                ],
            )
        if roll < 0.7:
            return ast.Call(callee="tostring", args=[self._int_expr(scope, depth + 1)])
        if roll < 0.8:
            # chr(65 + e % 26): floored modulo keeps the code point valid.
            offset = ast.BinOp(
                op="%", left=self._int_expr(scope, depth + 1), right=self._lit(26)
            )
            return ast.Call(
                callee="chr", args=[ast.BinOp(op="+", left=self._lit(65), right=offset)]
            )
        fn = self._callable(returning="str")
        if fn is not None:
            return self._call(fn, scope, depth)
        return self._str_expr(scope, depth + 1)

    def _bool_expr(self, scope: _Scope, depth: int) -> ast.Node:
        rng = self.rng
        leaf = depth >= 3 or rng.random() < 0.3
        if leaf:
            var = self._var_or_none(scope, "bool")
            if var is not None and rng.random() < 0.5:
                return var
            return self._lit(rng.random() < 0.5)
        roll = rng.random()
        if self._no_call and roll >= 0.55:
            roll = 0.55 + (roll - 0.55) * (0.35 / 0.45) + 0.2  # skip Logical
        if roll < 0.55:
            if rng.random() < 0.75:
                op = rng.choice(("==", "!=", "<", "<=", ">", ">="))
                left = self._int_expr(scope, depth + 1)
                right = self._int_expr(scope, depth + 1)
            else:
                op = rng.choice(("==", "!="))
                left = self._str_expr(scope, depth + 1)
                right = self._str_expr(scope, depth + 1)
            return ast.BinOp(op=op, left=left, right=right)
        if roll < 0.75:
            return ast.Logical(
                op=rng.choice(("and", "or")),
                left=self._bool_expr(scope, depth + 1),
                right=self._bool_expr(scope, depth + 1),
            )
        if roll < 0.9 or self._no_call:
            return ast.UnOp(op="not", operand=self._bool_expr(scope, depth + 1))
        fn = self._callable(returning="bool")
        if fn is not None:
            return self._call(fn, scope, depth)
        return self._bool_expr(scope, depth + 1)

    # -- calls -------------------------------------------------------------

    def _callable(self, returning: str) -> _Function | None:
        options = [fn for fn in self.functions if fn.return_type == returning]
        if not options:
            return None
        return self.rng.choice(options)

    def _call(self, fn: _Function, scope: _Scope, depth: int) -> ast.Call:
        args = []
        for position, type_ in enumerate(fn.param_types):
            if position < len(fn.param_types) - 1:
                with self._forbid_calls():
                    args.append(self.expr(type_, scope, depth + 1))
            else:
                args.append(self.expr(type_, scope, depth + 1))
        self._spend(2 + fn.est_cost, self._mult)
        return ast.Call(callee=fn.name, args=args)

    # -- statements --------------------------------------------------------

    def _declare_scalar(self, scope: _Scope, mult: int, in_loop: bool) -> ast.Node:
        type_ = self.rng.choice(self.stratum.scalar_types)
        name = self._fresh("v")
        self._spend(3, mult)
        # Generate the initializer before registering the name: the new
        # variable must not appear in its own right-hand side.
        value = self.expr(type_, scope, 1)
        scope.scalars[name] = type_
        return ast.VarDecl(name=name, value=value)

    def _declare_array(self, scope: _Scope, mult: int) -> ast.Node:
        elem = self.rng.choice(("int", "int", "str"))
        length = self.rng.randint(1, 5)
        name = self._fresh("a")
        items = [self.expr(elem, scope, 2) for _ in range(length)]
        scope.arrays[name] = (elem, length)
        self._spend(2 + length, mult)
        return ast.VarDecl(name=name, value=ast.ArrayLit(items=items))

    def _declare_map(self, scope: _Scope, mult: int) -> ast.Node:
        value_type = self.rng.choice(("int", "str"))
        n_keys = self.rng.randint(1, 4)
        keys = tuple(self._fresh("k") for _ in range(n_keys))
        name = self._fresh("m")
        pairs = [(self._lit(key), self.expr(value_type, scope, 2)) for key in keys]
        scope.maps[name] = (value_type, keys)
        self._spend(2 + 2 * n_keys, mult)
        return ast.VarDecl(name=name, value=ast.MapLit(pairs=pairs))

    def _assign_scalar(self, scope: _Scope, mult: int, in_loop: bool) -> ast.Node | None:
        # Only ordinary locals and parameters are writable: guard variables
        # ("g") pace while loops and loop variables ("i") are desugared
        # differently by the two VMs, so mutating either diverges.
        writable = [
            (name, t)
            for name, t in scope.scalars.items()
            if name[0] in ("v", "p")
        ]
        if not writable:
            return None
        name, type_ = self.rng.choice(writable)
        value = self.expr(type_, scope, 1)
        if type_ == "int" and in_loop:
            # Wrap loop-carried accumulators so bignums stay small.
            value = ast.BinOp(op="%", left=value, right=self._lit(_WRAP))
        self._spend(3, mult)
        return ast.Assign(target=ast.Name(id=name), value=value)

    def _assign_container(self, scope: _Scope, mult: int) -> ast.Node | None:
        rng = self.rng
        options = []
        for name, (elem, length) in scope.arrays.items():
            options.append(("arr", name, elem, length))
        for name, (value_type, keys) in scope.maps.items():
            options.append(("map", name, value_type, keys))
        if not options:
            return None
        kind, name, value_type, extra = rng.choice(options)
        if kind == "arr":
            target = ast.Index(
                obj=ast.Name(id=name), key=self._index_expr(scope, extra)
            )
        else:
            target = ast.Index(obj=ast.Name(id=name), key=self._lit(rng.choice(extra)))
        self._spend(4, mult)
        return ast.Assign(target=target, value=self.expr(value_type, scope, 1))

    def _push_pop_pair(self, scope: _Scope, mult: int) -> list:
        """``push(a, e);`` immediately followed by a ``pop`` into a fresh
        var, preserving the array's tracked length."""
        arrays = list(scope.arrays.items())
        if not arrays:
            return []
        name, (elem, _length) = self.rng.choice(arrays)
        self._spend(8, mult)
        push = ast.ExprStmt(
            expr=ast.Call(callee="push", args=[ast.Name(id=name), self.expr(elem, scope, 1)])
        )
        out = self._fresh("v")
        pop = ast.VarDecl(name=out, value=ast.Call(callee="pop", args=[ast.Name(id=name)]))
        scope.scalars[out] = elem
        return [push, pop]

    def _print_stmt(self, scope: _Scope, mult: int) -> ast.Node:
        type_ = self.rng.choice(("int", "int", "str", "bool", "float"))
        self._spend(3, mult)
        return ast.ExprStmt(
            expr=ast.Call(callee="print", args=[self.expr(type_, scope, 1)])
        )

    def _if_stmt(self, scope: _Scope, mult: int, depth: int, ctx: dict) -> ast.Node:
        cond = self._bool_expr(scope, 1)
        self._spend(2, mult)
        then = self._gen_block(scope.child(), mult, depth + 1, ctx, max_statements=3)
        orelse = None
        if self.rng.random() < 0.5:
            orelse = self._gen_block(
                scope.child(), mult, depth + 1, ctx, max_statements=3
            )
        return ast.If(cond=cond, then=then, orelse=orelse)

    def _for_stmt(self, scope: _Scope, mult: int, depth: int, ctx: dict) -> ast.Node:
        rng = self.rng
        start = rng.randint(0, 4)
        trips = rng.randint(1, 6)
        if rng.random() < 0.2:
            step, stop = -1, start - trips + 1
        else:
            step, stop = rng.choice((1, 1, 2)), start + (trips - 1) * 1
        var = self._fresh("i")
        body_scope = scope.child()
        body_scope.scalars[var] = "int"
        self._spend(3 + trips, mult)
        inner_ctx = dict(ctx, in_loop=True)
        body = self._gen_block(
            body_scope, mult * trips, depth + 1, inner_ctx, max_statements=4
        )
        return ast.ForNum(
            var=var,
            start=self._lit(start),
            stop=self._lit(stop),
            step=self._lit(step) if step != 1 else None,
            body=body,
        )

    def _while_stmt(self, scope: _Scope, mult: int, depth: int, ctx: dict) -> ast.Node:
        trips = self.rng.randint(1, 6)
        guard = self._fresh("g")
        decl = ast.VarDecl(name=guard, value=self._lit(trips))
        scope.scalars[guard] = "int"  # readable; _assign_scalar skips g* names
        cond = ast.BinOp(op=">", left=ast.Name(id=guard), right=self._lit(0))
        if self.rng.random() < 0.3:
            cond = ast.Logical(op="and", left=cond, right=self._bool_expr(scope, 2))
        decrement = ast.Assign(
            target=ast.Name(id=guard),
            value=ast.BinOp(op="-", left=ast.Name(id=guard), right=self._lit(1)),
        )
        self._spend(4 + 2 * trips, mult)
        inner_ctx = dict(ctx, in_loop=True)
        body = self._gen_block(
            scope.child(), mult * trips, depth + 1, inner_ctx, max_statements=4
        )
        body.statements.insert(0, decrement)
        return ast.Block(statements=[decl, ast.While(cond=cond, body=body)])

    def _loop_exit(self, scope: _Scope, mult: int) -> ast.Node:
        """A guarded ``break`` or ``continue`` (only generated inside loops)."""
        kind = ast.Break() if self.rng.random() < 0.6 else ast.Continue()
        self._spend(2, mult)
        return ast.If(
            cond=self._bool_expr(scope, 2),
            then=ast.Block(statements=[kind]),
            orelse=None,
        )

    def _early_return(self, scope: _Scope, mult: int, ctx: dict) -> ast.Node:
        self._spend(2, mult)
        return ast.If(
            cond=self._bool_expr(scope, 2),
            then=ast.Block(
                statements=[ast.Return(value=self.expr(ctx["return_type"], scope, 1))]
            ),
            orelse=None,
        )

    def _gen_statement(self, scope: _Scope, mult: int, depth: int, ctx: dict) -> list:
        rng = self.rng
        in_loop = ctx.get("in_loop", False)
        options = [
            ("scalar", 5),
            ("assign", 5),
            ("print", 3),
            ("array", 2),
            ("map", 1),
            ("container", 3),
            ("pushpop", 1),
        ]
        if depth < self.max_depth:
            options += [("if", 3), ("for", 3), ("while", 2)]
        if in_loop:
            options.append(("exit", 1))
        if ctx.get("return_type") and rng.random() < self.stratum.return_p:
            options.append(("return", 2))
        if rng.random() < self.stratum.callstmt_p and self.functions:
            options.append(("callstmt", 2))
        # Stratum bias: rescale weights without touching the RNG stream,
        # so the default (all-1.0) stratum reproduces historical programs.
        bias = self.stratum.stmt_weights
        options = [(kind, weight * bias.get(kind, 1.0)) for kind, weight in options]
        total = sum(weight for _, weight in options)
        pick = rng.random() * total
        for kind, weight in options:
            pick -= weight
            if pick <= 0:
                break
        if kind == "scalar":
            return [self._declare_scalar(scope, mult, in_loop)]
        if kind == "assign":
            stmt = self._assign_scalar(scope, mult, in_loop)
            return [stmt] if stmt is not None else []
        if kind == "print":
            return [self._print_stmt(scope, mult)]
        if kind == "array":
            return [self._declare_array(scope, mult)]
        if kind == "map":
            return [self._declare_map(scope, mult)]
        if kind == "container":
            stmt = self._assign_container(scope, mult)
            return [stmt] if stmt is not None else []
        if kind == "pushpop":
            return self._push_pop_pair(scope, mult)
        if kind == "if":
            return [self._if_stmt(scope, mult, depth, ctx)]
        if kind == "for":
            return [self._for_stmt(scope, mult, depth, ctx)]
        if kind == "while":
            return [self._while_stmt(scope, mult, depth, ctx)]
        if kind == "exit":
            return [self._loop_exit(scope, mult)]
        if kind == "return":
            return [self._early_return(scope, mult, ctx)]
        if kind == "callstmt":
            fn = rng.choice(self.functions)
            self._spend(2, mult)
            return [ast.ExprStmt(expr=self._call(fn, scope, 1))]
        return []

    def _gen_block(
        self,
        scope: _Scope,
        mult: int,
        depth: int,
        ctx: dict,
        max_statements: int,
    ) -> ast.Block:
        statements: list = []
        outer_mult, self._mult = self._mult, mult
        try:
            n = self.rng.randint(1, max_statements)
            for _ in range(n):
                if self._exhausted(mult):
                    break
                statements.extend(self._gen_statement(scope, mult, depth, ctx))
        finally:
            self._mult = outer_mult
        return ast.Block(statements=statements)

    # -- program assembly --------------------------------------------------

    def _gen_function(self) -> ast.FuncDecl:
        rng = self.rng
        name = self._fresh("f")
        n_params = rng.randint(0, 3)
        param_types = tuple(rng.choice(("int", "int", "str", "bool")) for _ in range(n_params))
        return_type = rng.choice(("int", "int", "str", "bool"))
        params = [self._fresh("p") for _ in param_types]
        scope = _Scope()
        for param, type_ in zip(params, param_types):
            scope.scalars[param] = type_
        spent_before = self.spent
        ctx = {"return_type": return_type, "in_loop": False}
        body = self._gen_block(scope, 1, 1, ctx, max_statements=4)
        body.statements.append(ast.Return(value=self.expr(return_type, scope, 1)))
        est_cost = max(3, self.spent - spent_before)
        # The body estimate was provisional (functions are charged at their
        # call sites); roll it back and remember the per-call cost.
        self.spent = spent_before
        self.functions.append(_Function(name, param_types, return_type, est_cost))
        return ast.FuncDecl(name=name, params=params, body=body)

    def generate(self) -> GeneratedProgram:
        rng = self.rng
        body: list = []
        lo = min(self.stratum.min_functions, self.max_functions)
        for _ in range(rng.randint(lo, self.max_functions)):
            body.append(self._gen_function())
        scope = _Scope()
        # Always seed at least one int so the epilogue prints something.
        seed_var = self._fresh("v")
        scope.scalars[seed_var] = "int"
        body.append(ast.VarDecl(name=seed_var, value=self._lit(rng.randint(0, 99))))
        ctx = {"return_type": None, "in_loop": False}
        while not self._exhausted(1):
            body.extend(self._gen_statement(scope, 1, 0, ctx))
        body.extend(self._epilogue(scope))
        module = ast.Module(body=body)
        return GeneratedProgram(
            seed=self.seed,
            size=self.size,
            module=module,
            source=unparse(module),
            est_steps=self.spent,
            stratum=self.stratum.name,
        )

    def _epilogue(self, scope: _Scope) -> list:
        """Print every live scalar and container element (the checksum)."""

        def print_of(expr: ast.Node) -> ast.Node:
            return ast.ExprStmt(expr=ast.Call(callee="print", args=[expr]))

        statements = []
        for name in sorted(scope.scalars):
            statements.append(print_of(ast.Name(id=name)))
        for name, (elem, length) in sorted(scope.arrays.items()):
            statements.append(
                print_of(ast.Call(callee="len", args=[ast.Name(id=name)]))
            )
            for index in range(length):
                statements.append(
                    print_of(ast.Index(obj=ast.Name(id=name), key=self._lit(index)))
                )
        for name, (value_type, keys) in sorted(scope.maps.items()):
            for key in keys:
                statements.append(
                    print_of(ast.Index(obj=ast.Name(id=name), key=self._lit(key)))
                )
        return statements


def generate_program(
    seed: int, size: str | None = None, stratum=None
) -> GeneratedProgram:
    """Generate the deterministic program for *seed*.

    When *size* is ``None``, the profile is itself drawn from the seed
    (favouring small programs), so a verify sweep mixes sizes without any
    extra configuration.  *stratum* (a :data:`STRATA` name or
    :class:`Stratum`) biases the opcode mix; ``None`` keeps the historic
    unbiased ``mixed`` distribution.
    """
    if size is None:
        size = random.Random(("size", seed).__repr__()).choice(
            ("tiny", "small", "small", "small", "medium")
        )
    return ProgramGenerator(seed, size, stratum=stratum).generate()
