"""Cross-path differential execution of generated guest programs.

One generated program is pushed through the full cross-product of
execution paths the harness supports:

* every dispatch scheme in :data:`repro.core.simulation.SCHEMES`;
* live interpretation vs a forced ``--record`` run vs trace replay vs
  memoized (steady-state) trace replay;
* serial in-process execution vs the process-pool fan-out of
  :mod:`repro.harness.parallel` (``workers=1`` vs ``workers=N``);
* both guest VMs.

and every pair of paths that the model guarantees agree is asserted
identical:

* all paths of one (vm, scheme) pair must produce *the same frozen
  ``SimResult``* — architectural output AND every timing statistic;
* all schemes of one vm must agree on architectural output and guest
  step count (dispatch must be semantically invisible);
* both VMs must agree on architectural output (same guest semantics).

Every run also passes the invariant checks of
:mod:`repro.verify.invariants`, and each program gets one instrumented
SCD run whose dispatch log is verified against the recorded event stream
(the handler-sequence oracle).  Failures come back as
:class:`Discrepancy` records; :mod:`repro.verify.shrink` minimizes them.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

from repro.core.simulation import SCHEMES, simulate
from repro.harness.cache import ResultCache, TraceStore
from repro.harness.parallel import SimJob, run_jobs
from repro.verify.generator import generate_program
from repro.verify.invariants import (
    CheckedMachine,
    InvariantViolation,
    check_dispatch_log,
    check_result,
    end_state_probe,
)
from repro.vm.capture import trace_key

#: Guest-step safety budget for generated programs (generator budgets top
#: out around ~20k actual steps; anything past this is a runaway).
VERIFY_MAX_STEPS = 2_000_000

#: The execution paths every (vm, scheme) pair is run through.  The
#: ``-nokernel`` variants force the event-by-event interpreted replay
#: path (``use_kernel=False``), pinning the exec-compiled kernels'
#: byte-identity against the reference implementation.  The ``-nobatch``
#: variants keep the kernels but disable superblock batch replay
#: (``use_batch=False``), pinning the chunk-compiled path — which the
#: plain ``replay``/``replay-memo`` runs exercise by default — against
#: the per-event kernel ladder.
PATHS = (
    "live",
    "record",
    "replay",
    "replay-memo",
    "replay-nobatch",
    "replay-memo-nobatch",
    "replay-nokernel",
    "replay-memo-nokernel",
)


@dataclass
class Discrepancy:
    """One verified-property violation for one generated program."""

    seed: int
    vm: str
    scheme: str
    kind: str
    detail: str
    source: str = ""

    def describe(self) -> str:
        return (
            f"seed={self.seed} vm={self.vm} scheme={self.scheme} "
            f"[{self.kind}] {self.detail}"
        )


@dataclass
class VerifyReport:
    """Outcome of one verify sweep."""

    seed: int
    iterations: int
    programs: int = 0
    runs: int = 0
    pool_checks: int = 0
    discrepancies: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.discrepancies)} DISCREPANCIES"
        return (
            f"verify seed={self.seed}: {self.programs} programs, "
            f"{self.runs} simulations, {self.pool_checks} pool checks "
            f"across {len(SCHEMES)} schemes x {len(PATHS)} paths x 2 VMs "
            f"-> {status}"
        )


def _diff_results(label_a: str, a, label_b: str, b) -> str | None:
    """Human-readable field-level diff of two SimResults, or ``None``."""
    if a == b:
        return None
    fields = []
    for name in vars(a):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            shown_a = repr(va) if len(repr(va)) < 120 else f"<{name}…>"
            shown_b = repr(vb) if len(repr(vb)) < 120 else f"<{name}…>"
            fields.append(f"{name}: {label_a}={shown_a} {label_b}={shown_b}")
    return "; ".join(fields) or "results differ (no field-level diff)"


class DifferentialRunner:
    """Drives generated programs through every execution path.

    Args:
        seed: base seed; program ``i`` uses seed ``seed + i``.
        iters: number of programs to generate and verify.
        vms: guest VMs to cover.
        schemes: dispatch schemes to cover.
        pool_every: run the serial-vs-pool equivalence check on every
            *pool_every*-th program (the pool spin-up dominates its cost).
        pool_workers: worker count for the pooled side of that check.
        progress: optional callable receiving one status line per program.
    """

    def __init__(
        self,
        seed: int = 0,
        iters: int = 50,
        vms: tuple = ("lua", "js"),
        schemes: tuple = SCHEMES,
        pool_every: int = 10,
        pool_workers: int = 2,
        progress=None,
    ):
        self.seed = seed
        self.iters = iters
        self.vms = tuple(vms)
        self.schemes = tuple(schemes)
        self.pool_every = pool_every
        self.pool_workers = pool_workers
        self.progress = progress or (lambda line: None)

    # -- one program ------------------------------------------------------

    def check_source(self, source: str, seed: int = -1) -> list:
        """Verify one program source across all paths; returns discrepancies."""
        found: list = []
        report = VerifyReport(seed=seed, iterations=1)
        self._check_program(source, seed, found, report)
        return found

    def _sim(self, source, vm, scheme, store, mode, memo=False, **kwargs):
        return simulate(
            "verify",
            vm=vm,
            scheme=scheme,
            source=source,
            check_output=False,
            max_steps=VERIFY_MAX_STEPS,
            trace_store=store,
            trace_mode=mode,
            replay_memo=memo,
            probe=end_state_probe,
            **kwargs,
        )

    def _check_program(
        self, source: str, seed: int, found: list, report: VerifyReport
    ) -> None:
        def fail(vm: str, scheme: str, kind: str, detail: str) -> None:
            found.append(
                Discrepancy(
                    seed=seed, vm=vm, scheme=scheme, kind=kind,
                    detail=detail, source=source,
                )
            )

        outputs: dict = {}
        with tempfile.TemporaryDirectory(prefix="scd-verify-") as tmp:
            store = TraceStore(root=tmp)
            for vm in self.vms:
                per_scheme: dict = {}
                for scheme in self.schemes:
                    results: dict = {}
                    try:
                        # "record" forces live interpretation and
                        # (over)writes the trace; the first scheme's record
                        # run seeds the store for every replay below.
                        mode = "record" if scheme == self.schemes[0] else None
                        if mode:
                            results["record"] = self._sim(
                                source, vm, scheme, store, "record"
                            )
                        results["live"] = self._sim(
                            source, vm, scheme, None, None
                        )
                        results["replay"] = self._sim(
                            source, vm, scheme, store, "replay", memo=False
                        )
                        results["replay-memo"] = self._sim(
                            source, vm, scheme, store, "replay", memo=True
                        )
                        results["replay-nobatch"] = self._sim(
                            source, vm, scheme, store, "replay",
                            memo=False, use_batch=False,
                        )
                        results["replay-memo-nobatch"] = self._sim(
                            source, vm, scheme, store, "replay",
                            memo=True, use_batch=False,
                        )
                        results["replay-nokernel"] = self._sim(
                            source, vm, scheme, store, "replay",
                            memo=False, use_kernel=False,
                        )
                        results["replay-memo-nokernel"] = self._sim(
                            source, vm, scheme, store, "replay",
                            memo=True, use_kernel=False,
                        )
                    except InvariantViolation as exc:
                        fail(vm, scheme, "invariant", str(exc))
                        continue
                    except Exception as exc:
                        fail(vm, scheme, "error", f"{type(exc).__name__}: {exc}")
                        continue
                    report.runs += len(results)
                    for path, result in results.items():
                        try:
                            check_result(result, scheme)
                        except InvariantViolation as exc:
                            fail(vm, scheme, "invariant", f"[{path}] {exc}")
                    base = results["live"]
                    for path, result in results.items():
                        if path == "live":
                            continue
                        diff = _diff_results("live", base, path, result)
                        if diff is not None:
                            fail(vm, scheme, "path-mismatch",
                                 f"live vs {path}: {diff}")
                    per_scheme[scheme] = base

                # SCD handler-sequence oracle: replay the recorded stream
                # onto an instrumented machine and audit its dispatch log.
                if "scd" in self.schemes and per_scheme:
                    try:
                        self._scd_oracle(source, vm, store)
                        report.runs += 1
                    except InvariantViolation as exc:
                        fail(vm, "scd", "scd-oracle", str(exc))
                    except Exception as exc:
                        fail(vm, "scd", "error", f"{type(exc).__name__}: {exc}")

                # Cross-scheme: dispatch must be architecturally invisible.
                if per_scheme:
                    reference_scheme = next(iter(per_scheme))
                    reference = per_scheme[reference_scheme]
                    outputs[vm] = reference.output
                    for scheme, result in per_scheme.items():
                        if result.output != reference.output:
                            fail(vm, scheme, "scheme-mismatch",
                                 f"output differs from {reference_scheme}")
                        if result.guest_steps != reference.guest_steps:
                            fail(vm, scheme, "scheme-mismatch",
                                 f"guest_steps {result.guest_steps} != "
                                 f"{reference.guest_steps} ({reference_scheme})")

        # Cross-VM: both interpreters implement the same guest semantics.
        if len(outputs) == len(self.vms) == 2:
            vm_a, vm_b = self.vms
            if outputs[vm_a] != outputs[vm_b]:
                lines_a, lines_b = outputs[vm_a], outputs[vm_b]
                detail = f"{len(lines_a)} vs {len(lines_b)} lines"
                for i, (la, lb) in enumerate(zip(lines_a, lines_b)):
                    if la != lb:
                        detail = f"line {i}: {la!r} vs {lb!r}"
                        break
                fail("*", "*", "vm-mismatch", detail)

    def _scd_oracle(self, source: str, vm: str, store: TraceStore) -> None:
        recorded = store.get(trace_key(vm, source, VERIFY_MAX_STEPS))
        if recorded is None:
            raise InvariantViolation("no recorded trace for the SCD oracle")

        def probe(machine, runner):
            end_state_probe(machine, runner)
            check_dispatch_log(machine, recorded, runner.model)

        simulate(
            "verify",
            vm=vm,
            scheme="scd",
            source=source,
            check_output=False,
            max_steps=VERIFY_MAX_STEPS,
            trace_store=store,
            trace_mode="replay",
            replay_memo=False,
            machine_factory=CheckedMachine,
            probe=probe,
        )

    # -- serial vs pool ----------------------------------------------------

    def _check_pool(self, source: str, seed: int, found: list) -> None:
        jobs = [
            SimJob(
                workload="verify",
                vm=vm,
                scheme=scheme,
                kwargs=(
                    ("source", source),
                    ("max_steps", VERIFY_MAX_STEPS),
                    ("check_output", False),
                ),
            )
            for vm in self.vms
            for scheme in self.schemes
        ]
        with tempfile.TemporaryDirectory(prefix="scd-verify-pool-") as tmp:
            serial = run_jobs(
                jobs, workers=1, cache=ResultCache("serial", root=tmp)
            )
            pooled = run_jobs(
                jobs,
                workers=self.pool_workers,
                cache=ResultCache("pooled", root=tmp),
            )
        for job, a, b in zip(jobs, serial, pooled):
            diff = _diff_results("workers=1", a, f"workers={self.pool_workers}", b)
            if diff is not None:
                found.append(
                    Discrepancy(
                        seed=seed, vm=job.vm, scheme=job.scheme,
                        kind="pool-mismatch", detail=diff, source=source,
                    )
                )

    # -- the sweep ---------------------------------------------------------

    def run(self) -> VerifyReport:
        report = VerifyReport(seed=self.seed, iterations=self.iters)
        for index in range(self.iters):
            program_seed = self.seed + index
            program = generate_program(program_seed)
            found: list = []
            self._check_program(program.source, program_seed, found, report)
            if self.pool_every and index % self.pool_every == 0:
                self._check_pool(program.source, program_seed, found)
                report.pool_checks += 1
            report.programs += 1
            report.discrepancies.extend(found)
            status = "ok" if not found else f"{len(found)} FAILURES"
            self.progress(
                f"[{index + 1}/{self.iters}] seed {program_seed} "
                f"({program.size}): {status}"
            )
        return report


def run_verify(seed: int = 0, iters: int = 50, **kwargs) -> VerifyReport:
    """Convenience wrapper: one full differential sweep."""
    return DifferentialRunner(seed=seed, iters=iters, **kwargs).run()
