"""Microarchitectural invariant checks for verified simulation runs.

Three layers, all driven by :mod:`repro.verify.differential`:

* :func:`check_result` — invariants expressible on a frozen
  :class:`~repro.core.results.SimResult` alone (cycle accounting sums to
  total cycles, scheme-appropriate SCD counters, sane cache figures).
* :func:`end_state_probe` — a ``simulate(probe=...)`` hook inspecting the
  machine after the run retires (caches count misses within accesses, the
  BTB is structurally consistent, every JTE is gone and every ``Rop`` is
  invalid after the final ``jte.flush``).
* :class:`CheckedMachine` + :func:`check_dispatch_log` — an instrumented
  :class:`~repro.uarch.pipeline.Machine` that logs every SCD interaction
  so the *handler-sequence oracle* can assert the paper's core semantic
  claim: the bop fast path and the jru slow path retire exactly the
  handler the dispatch table maps each opcode to, in event order
  (Section III — SCD must be semantically invisible).
"""

from __future__ import annotations

from repro.uarch.btb import MultiLevelBtb
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import Machine


class InvariantViolation(AssertionError):
    """A microarchitectural invariant failed during or after a run."""


class CheckedMachine(Machine):
    """A :class:`Machine` that logs and self-checks its SCD traffic.

    Every ``bop``/``jru``/``jte_flush`` appends one entry to
    :attr:`dispatch_log` — ``("bop", table, opcode, target)``,
    ``("jru", table, opcode, target, installed)`` or
    ``("flush", flushed_count)`` — and re-validates the BTB's structural
    invariants plus the JTE cap immediately, so a violation surfaces at
    the exact interaction that caused it rather than at end of run.
    """

    def __init__(self, config: CoreConfig):
        super().__init__(config)
        self.dispatch_log: list = []

    def _check_btb(self, context: str) -> None:
        try:
            self.btb.check_invariants()
        except AssertionError as exc:
            raise InvariantViolation(f"after {context}: {exc}") from exc

    def bop(self, pc: int, table: int = 0):
        valid, opcode = self.scd.rop(table)
        target = super().bop(pc, table)
        self.dispatch_log.append(("bop", table, opcode if valid else None, target))
        self._check_btb("bop")
        return target

    def jru(self, pc: int, target: int, table: int = 0) -> bool:
        valid, opcode = self.scd.rop(table)
        inserts_before = self.stats.jte_inserts
        mispredicted = super().jru(pc, target, table)
        installed = self.stats.jte_inserts > inserts_before
        self.dispatch_log.append(
            ("jru", table, opcode if valid else None, target, installed)
        )
        self._check_btb("jru")
        cap = self.config.jte_cap
        if cap is not None and self.btb.jte_count > cap:
            raise InvariantViolation(
                f"jru left {self.btb.jte_count} JTEs resident, cap is {cap}"
            )
        return mispredicted

    def jte_flush(self) -> int:
        resident = self.btb.jte_count
        flushed = super().jte_flush()
        self.dispatch_log.append(("flush", flushed))
        if flushed != resident:
            raise InvariantViolation(
                f"jte_flush flushed {flushed} JTEs but {resident} were resident"
            )
        if self.btb.jte_count != 0:
            raise InvariantViolation(
                f"jte_flush left {self.btb.jte_count} JTEs resident"
            )
        for table in range(self.scd.tables):
            valid, _ = self.scd.rop(table)
            if valid:
                raise InvariantViolation(
                    f"jte_flush left Rop[{table}] valid"
                )
        self._check_btb("jte_flush")
        return flushed


def check_result(result, scheme: str) -> None:
    """Invariants on a frozen :class:`~repro.core.results.SimResult`.

    Raises :class:`InvariantViolation` when:

    * the per-reason cycle breakdown does not sum to total cycles;
    * any breakdown bucket is negative;
    * a non-SCD scheme reports bop/JTE activity, or an SCD run with
      events reports none;
    * the run retired no instructions or cycles.
    """
    label = f"{result.vm}/{result.scheme}/{result.workload}"
    breakdown_total = sum(result.cycle_breakdown.values())
    if breakdown_total != result.cycles:
        raise InvariantViolation(
            f"{label}: cycle breakdown sums to {breakdown_total}, "
            f"total cycles are {result.cycles}"
        )
    for reason, cycles in result.cycle_breakdown.items():
        if cycles < 0:
            raise InvariantViolation(
                f"{label}: negative cycle bucket {reason!r} = {cycles}"
            )
    if result.cycles <= 0 or result.instructions <= 0:
        raise InvariantViolation(
            f"{label}: empty run (cycles={result.cycles}, "
            f"instructions={result.instructions})"
        )
    scd_activity = result.bop_hits + result.bop_misses + result.jte_inserts
    if scheme != "scd" and scd_activity:
        raise InvariantViolation(
            f"{label}: non-SCD scheme reports SCD activity "
            f"(bop_hits={result.bop_hits}, bop_misses={result.bop_misses}, "
            f"jte_inserts={result.jte_inserts})"
        )
    if scheme == "scd" and result.guest_steps > 0 and not scd_activity:
        raise InvariantViolation(f"{label}: SCD run retired no bop/jru traffic")


def end_state_probe(machine: Machine, runner) -> None:
    """``simulate(probe=...)`` hook: end-of-run machine-state invariants.

    * every cache/TLB counts ``0 <= misses <= accesses``;
    * the finalized stats mirror the component counters they are derived
      from (I-cache, D-cache, TLBs, BTB blocked installs and level hits);
    * the BTB is structurally consistent and respects the JTE cap (for
      multi-level geometries this includes the per-level rules: every
      replacement pointer in range, no JTE in the nano level — see
      :meth:`~repro.uarch.btb.MultiLevelBtb.check_invariants`);
    * a multi-level front end never charges more late hits than its slow
      levels answered; a single-level front end charges none;
    * after the interpreter-exit ``jte.flush`` of an SCD run, no JTE is
      resident and every ``Rop`` is invalid.
    """
    stats = machine.stats
    components = (
        ("icache", machine.icache),
        ("dcache", machine.dcache),
        ("itlb", machine.itlb),
        ("dtlb", machine.dtlb),
    )
    if machine.l2 is not None:
        components += (("l2", machine.l2),)
    for name, component in components:
        if not 0 <= component.misses <= component.accesses:
            raise InvariantViolation(
                f"{name}: misses ({component.misses}) outside "
                f"[0, accesses={component.accesses}]"
            )
    mirrored = (
        ("icache_accesses", stats.icache_accesses, machine.icache.accesses),
        ("icache_misses", stats.icache_misses, machine.icache.misses),
        ("dcache_accesses", stats.dcache_accesses, machine.dcache.accesses),
        ("dcache_misses", stats.dcache_misses, machine.dcache.misses),
        ("itlb_misses", stats.itlb_misses, machine.itlb.misses),
        ("dtlb_misses", stats.dtlb_misses, machine.dtlb.misses),
    )
    for name, stat_value, component_value in mirrored:
        if stat_value != component_value:
            raise InvariantViolation(
                f"stats.{name} = {stat_value} but the component counted "
                f"{component_value}"
            )
    try:
        machine.btb.check_invariants()
    except AssertionError as exc:
        raise InvariantViolation(f"end-of-run BTB check: {exc}") from exc
    if stats.btb_install_blocked != machine.btb.install_blocked:
        raise InvariantViolation(
            f"stats.btb_install_blocked = {stats.btb_install_blocked} but "
            f"the BTB counted {machine.btb.install_blocked}"
        )
    if isinstance(machine.btb, MultiLevelBtb):
        if tuple(stats.btb_level_hits) != tuple(machine.btb.level_hits):
            raise InvariantViolation(
                f"stats.btb_level_hits = {stats.btb_level_hits} but the "
                f"BTB counted {tuple(machine.btb.level_hits)}"
            )
        if any(hits < 0 for hits in machine.btb.level_hits):
            raise InvariantViolation(
                f"negative BTB level hit count: {machine.btb.level_hits}"
            )
        if stats.btb_late_hits > machine.btb.level_hits[1]:
            raise InvariantViolation(
                f"{stats.btb_late_hits} late hits charged but the main "
                f"level only answered {machine.btb.level_hits[1]} lookups"
            )
    elif stats.btb_late_hits:
        raise InvariantViolation(
            f"single-level BTB charged {stats.btb_late_hits} late hits"
        )
    if runner.model.strategy == "scd":
        if machine.btb.jte_count != 0:
            raise InvariantViolation(
                f"{machine.btb.jte_count} JTEs resident after the "
                "interpreter-exit jte.flush"
            )
        for table in range(machine.scd.tables):
            valid, _ = machine.scd.rop(table)
            if valid:
                raise InvariantViolation(
                    f"Rop[{table}] still valid after the interpreter-exit "
                    "jte.flush"
                )


def check_dispatch_log(machine: CheckedMachine, recorded, model) -> None:
    """The handler-sequence oracle (SCD semantic invisibility).

    Walks the recorded event stream in lockstep with the machine's SCD
    dispatch log and asserts, for every event at an SCD-covered site:

    * exactly one ``bop`` was issued, keyed by the event's masked opcode;
    * a ``bop`` hit jumped directly to the handler
      :meth:`~repro.native.model.NativeInterpreterModel.replay_plan` maps
      the (opcode, site) pair to;
    * a ``bop`` miss fell through to exactly one ``jru`` that jumped to —
      and installed a JTE for — that same handler.

    Together with the architectural-result equality of the differential
    runner this is the paper's core claim: the fast path and the slow
    path retire the same handler sequence.
    """
    strategy = model.strategy
    if strategy != "scd":
        raise ValueError("the dispatch-log oracle only applies to scheme 'scd'")
    covered = model.covered_sites
    mask = model.opcode_mask
    log = machine.dispatch_log
    cursor = 0
    for index, (op, site, _taken, _callee, _daddrs, _builtin, _cost) in enumerate(
        recorded.iter_events()
    ):
        if site not in covered:
            continue
        expected_handler = model.replay_plan(op, site)[1].pc
        expected_opcode = op & mask

        # Skip interleaved flushes (context switches).
        while cursor < len(log) and log[cursor][0] == "flush":
            cursor += 1
        if cursor >= len(log) or log[cursor][0] != "bop":
            raise InvariantViolation(
                f"event {index}: expected a bop, log has "
                f"{log[cursor] if cursor < len(log) else 'nothing'}"
            )
        _, table, opcode, target = log[cursor]
        cursor += 1
        if table != site:
            raise InvariantViolation(
                f"event {index}: bop on table {table}, event site is {site}"
            )
        if opcode is not None and opcode != expected_opcode:
            raise InvariantViolation(
                f"event {index}: bop keyed by Rop={opcode:#x}, event opcode "
                f"is {expected_opcode:#x}"
            )
        if target is not None:
            # Fast path: the predicted-and-taken target IS the handler.
            if target != expected_handler:
                raise InvariantViolation(
                    f"event {index}: bop hit jumped to {target:#x}, handler "
                    f"for opcode {expected_opcode:#x} is {expected_handler:#x}"
                )
            continue
        # Slow path: the very next SCD interaction must be the jru that
        # retires this event's handler and installs its JTE.
        while cursor < len(log) and log[cursor][0] == "flush":
            cursor += 1
        if cursor >= len(log) or log[cursor][0] != "jru":
            raise InvariantViolation(
                f"event {index}: bop missed but no jru followed (log has "
                f"{log[cursor] if cursor < len(log) else 'nothing'})"
            )
        _, table, opcode, target, _installed = log[cursor]
        cursor += 1
        if table != site:
            raise InvariantViolation(
                f"event {index}: jru on table {table}, event site is {site}"
            )
        if opcode is not None and opcode != expected_opcode:
            raise InvariantViolation(
                f"event {index}: jru keyed by Rop={opcode:#x}, event opcode "
                f"is {expected_opcode:#x}"
            )
        if target != expected_handler:
            raise InvariantViolation(
                f"event {index}: jru (slow path) jumped to {target:#x}, "
                f"handler for opcode {expected_opcode:#x} is "
                f"{expected_handler:#x}"
            )
    while cursor < len(log) and log[cursor][0] == "flush":
        cursor += 1
    if cursor != len(log):
        raise InvariantViolation(
            f"{len(log) - cursor} unconsumed SCD interactions after the "
            "last covered event"
        )
