"""Differential verification subsystem.

Seeded random guest programs (:mod:`repro.verify.generator`) are executed
through every (scheme x execution-path x VM) combination the harness
supports (:mod:`repro.verify.differential`) under microarchitectural
invariant checks (:mod:`repro.verify.invariants`); failures are minimized
(:mod:`repro.verify.shrink`) into the committed regression corpus at
``tests/corpus/``.

Entry points: ``python -m repro.harness verify --seed S --iters N`` and
``tests/test_verify.py`` / ``tests/test_corpus.py``.
"""

from repro.verify.differential import (
    PATHS,
    VERIFY_MAX_STEPS,
    DifferentialRunner,
    Discrepancy,
    VerifyReport,
    run_verify,
)
from repro.verify.generator import (
    SIZE_PROFILES,
    GeneratedProgram,
    ProgramGenerator,
    generate_program,
)
from repro.verify.invariants import (
    CheckedMachine,
    InvariantViolation,
    check_dispatch_log,
    check_result,
    end_state_probe,
)
from repro.verify.shrink import (
    CORPUS_DIR,
    load_corpus,
    minimize,
    minimize_and_record,
    same_failure_predicate,
    shrink_source,
    write_corpus_entry,
)

__all__ = [
    "PATHS",
    "VERIFY_MAX_STEPS",
    "DifferentialRunner",
    "Discrepancy",
    "VerifyReport",
    "run_verify",
    "SIZE_PROFILES",
    "GeneratedProgram",
    "ProgramGenerator",
    "generate_program",
    "CheckedMachine",
    "InvariantViolation",
    "check_dispatch_log",
    "check_result",
    "end_state_probe",
    "CORPUS_DIR",
    "load_corpus",
    "minimize",
    "minimize_and_record",
    "same_failure_predicate",
    "shrink_source",
    "write_corpus_entry",
]
