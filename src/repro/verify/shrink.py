"""Greedy minimization of failing generated programs.

When the differential runner finds a discrepancy, the generated program
is usually hundreds of statements long.  :func:`shrink_source` deletes
statements (at every nesting depth, from the end of each block first)
and tightens loop bounds as long as a caller-supplied predicate keeps
reporting the *same* failure, iterating to a fixpoint.  Candidates that
merely change the failure (for example, a deletion that makes the
program stop compiling) are rejected, so the minimized program still
reproduces the original bug.

:func:`write_corpus_entry` writes the survivor into the committed
regression corpus at ``tests/corpus/``; ``tests/test_corpus.py`` replays
every corpus file through the differential checks on each pytest run.
"""

from __future__ import annotations

import copy
import re
from pathlib import Path

from repro.lang import parse, unparse
from repro.lang.ast import Block, ForNum, FuncDecl, If, Literal, Module, While

#: Repository-relative home of the regression corpus.
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"


def _blocks(module: Module):
    """Yield every statement list in the tree (module body last-first)."""
    pending = [module.body]
    while pending:
        statements = pending.pop()
        yield statements
        for node in statements:
            if isinstance(node, FuncDecl) and node.body is not None:
                pending.append(node.body.statements)
            elif isinstance(node, (While, ForNum)) and node.body is not None:
                pending.append(node.body.statements)
            elif isinstance(node, Block):
                pending.append(node.statements)
            elif isinstance(node, If):
                if node.then is not None:
                    pending.append(node.then.statements)
                orelse = node.orelse
                while isinstance(orelse, If):
                    if orelse.then is not None:
                        pending.append(orelse.then.statements)
                    orelse = orelse.orelse
                if isinstance(orelse, Block):
                    pending.append(orelse.statements)


def _loop_bounds(module: Module):
    """Yield every literal ForNum stop expression in the tree."""
    for statements in _blocks(module):
        for node in statements:
            if (
                isinstance(node, ForNum)
                and isinstance(node.stop, Literal)
                and isinstance(node.stop.value, int)
                and not isinstance(node.stop.value, bool)
            ):
                yield node


def shrink_source(source: str, still_fails, max_rounds: int = 20) -> str:
    """Greedily minimize *source* while ``still_fails(candidate)`` holds.

    Args:
        source: program text that currently fails.
        still_fails: predicate on candidate source text; must be True for
            *source* itself (checked) and is re-evaluated for every
            mutation.  The caller bakes "fails the same way" in here.
        max_rounds: fixpoint iteration bound (each round re-walks the
            whole tree).

    Returns:
        The smallest failing variant found (at worst *source* unchanged).
    """
    if not still_fails(source):
        raise ValueError("shrink_source needs a failing input to start from")
    module = parse(source)
    best = unparse(module)

    def attempt(candidate_module: Module) -> bool:
        nonlocal module, best
        try:
            candidate = unparse(candidate_module)
        except Exception:
            return False
        if candidate == best:
            return False
        if still_fails(candidate):
            module, best = candidate_module, candidate
            return True
        return False

    for _ in range(max_rounds):
        changed = False
        # Statement deletion, innermost blocks and trailing statements
        # first (epilogue prints usually carry the mismatch, so deletions
        # that keep failing tend to be the setup noise near the end).
        block_index = 0
        while True:
            # Deletions can remove whole nested blocks, so the block list
            # is re-enumerated on every step; indices that slide between
            # rounds are caught by the fixpoint loop.
            blocks = list(_blocks(module))
            if block_index >= len(blocks):
                break
            position = len(blocks[block_index]) - 1
            while position >= 0:
                candidate_module = copy.deepcopy(module)
                candidate_blocks = list(_blocks(candidate_module))
                if block_index < len(candidate_blocks) and position < len(
                    candidate_blocks[block_index]
                ):
                    del candidate_blocks[block_index][position]
                    if attempt(candidate_module):
                        changed = True
                position -= 1
            block_index += 1
        # Loop-bound reduction: halve literal trip counts.
        for loop_index, _ in enumerate(_loop_bounds(module)):
            candidate_module = copy.deepcopy(module)
            loops = list(_loop_bounds(candidate_module))
            if loop_index >= len(loops):
                continue
            stop = loops[loop_index].stop
            if abs(stop.value) <= 1:
                continue
            stop.value //= 2
            if attempt(candidate_module):
                changed = True
        if not changed:
            break
    return best


def same_failure_predicate(runner, kind: str, detail: str = ""):
    """Build a ``still_fails`` predicate around a DifferentialRunner.

    A candidate passes when the runner reports at least one discrepancy
    of the original *kind*; for ``kind == "error"`` the exception name
    (the ``detail`` prefix up to the first colon) must match too, so a
    deletion that introduces an unrelated ``CompileError`` is rejected
    rather than mistaken for the original failure.
    """
    error_name = detail.split(":", 1)[0] if kind == "error" else None

    def still_fails(candidate: str) -> bool:
        for found in runner.check_source(candidate):
            if found.kind != kind:
                continue
            if error_name is not None and not found.detail.startswith(error_name):
                continue
            return True
        return False

    return still_fails


def minimize(discrepancy, max_rounds: int = 8):
    """Shrink one :class:`~repro.verify.differential.Discrepancy`.

    The re-check runner is narrowed to the failing VM and scheme (plus the
    recording scheme) so each shrink probe costs a handful of simulations
    rather than the full cross-product.  Returns the minimized source (the
    original source when the failure stops reproducing).
    """
    from repro.core.simulation import SCHEMES
    from repro.verify.differential import DifferentialRunner

    vms = ("lua", "js") if discrepancy.vm == "*" else (discrepancy.vm,)
    if discrepancy.scheme in ("*", SCHEMES[0]):
        schemes = SCHEMES if discrepancy.scheme == "*" else (SCHEMES[0],)
    else:
        schemes = (SCHEMES[0], discrepancy.scheme)
    runner = DifferentialRunner(vms=vms, schemes=schemes, pool_every=0)
    predicate = same_failure_predicate(
        runner, discrepancy.kind, discrepancy.detail
    )
    try:
        return shrink_source(
            discrepancy.source, predicate, max_rounds=max_rounds
        )
    except ValueError:
        # Not reproducible under the narrowed runner (e.g. a pool-only or
        # flaky failure): keep the original program.
        return discrepancy.source


def minimize_and_record(
    discrepancies, corpus_dir: Path | None = None, max_rounds: int = 8
):
    """Shrink failures and commit them to the regression corpus.

    One corpus entry per (seed, kind) pair — the remaining discrepancies
    of a program are usually echoes of the same root cause.  Returns the
    list of paths written.
    """
    written = []
    seen = set()
    for discrepancy in discrepancies:
        identity = (discrepancy.seed, discrepancy.kind)
        if identity in seen or not discrepancy.source:
            continue
        seen.add(identity)
        minimized = minimize(discrepancy, max_rounds=max_rounds)
        written.append(
            write_corpus_entry(
                minimized,
                discrepancy.seed,
                discrepancy.kind,
                discrepancy.detail,
                corpus_dir=corpus_dir,
            )
        )
    return written


def write_corpus_entry(
    source: str,
    seed: int,
    kind: str,
    detail: str,
    corpus_dir: Path | None = None,
) -> Path:
    """Write a minimized failing program into the regression corpus.

    The file is self-describing: a ``#`` comment header records the seed,
    failure kind and first line of detail, followed by the program text.
    Returns the path written.
    """
    corpus_dir = Path(corpus_dir) if corpus_dir is not None else CORPUS_DIR
    corpus_dir.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", kind.lower()).strip("-") or "failure"
    path = corpus_dir / f"seed{seed}-{slug}.src"
    first_line = detail.splitlines()[0] if detail else ""
    header = (
        f"# verify regression: seed={seed} kind={kind}\n"
        f"# {first_line}\n"
    )
    path.write_text(header + source)
    return path


def load_corpus(corpus_dir: Path | None = None):
    """Yield ``(path, source)`` for every committed corpus program."""
    corpus_dir = Path(corpus_dir) if corpus_dir is not None else CORPUS_DIR
    if not corpus_dir.is_dir():
        return
    for path in sorted(corpus_dir.glob("*.src")):
        text = path.read_text()
        body = "\n".join(
            line for line in text.splitlines() if not line.startswith("#")
        )
        yield path, body.strip() + "\n"
