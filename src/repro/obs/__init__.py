"""``repro.obs`` — structured telemetry for the reproduction harness.

Three pieces:

* :mod:`repro.obs.trace` — hierarchical timed spans (sweep → experiment
  → job → phases) written as versioned JSONL through a process-safe
  sink that merges worker-process events into the parent's log.
* :mod:`repro.obs.schema` — the read side: parse a log, rebuild the
  span tree, and validate it (``python -m repro.obs trace.jsonl``).
* :mod:`repro.obs.regress` — diff a run's throughput summary against
  ``BENCH_dispatch.json`` for the report's "Telemetry" section.

The tracer is off by default and every instrumentation point costs one
attribute check when off, so telemetry-free runs keep their throughput.
Enable it with ``scd-repro --trace-log PATH <command>`` or the
``SCD_TRACE_LOG`` environment variable; see ``docs/OBSERVABILITY.md``.
"""

from repro.obs.trace import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TRACE_ENV,
    TRACER,
    active,
    adopt_worker,
    close,
    configure,
    current_span_id,
    end_span,
    event,
    span,
    start_span,
)

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TRACE_ENV",
    "TRACER",
    "active",
    "adopt_worker",
    "close",
    "configure",
    "current_span_id",
    "end_span",
    "event",
    "span",
    "start_span",
]
