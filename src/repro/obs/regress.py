"""Telemetry-driven regression checking against ``BENCH_dispatch.json``.

The perf-smoke suite (``benchmarks/test_perf_smoke.py``) refreshes
``BENCH_dispatch.json`` with the host's reference throughput numbers.
This module diffs a live run's :class:`~repro.harness.parallel.
ThroughputMetrics` against that baseline and renders the "Telemetry"
section of the generated report, so a sweep that got slower says so in
the same document that shows its figures.

Verdicts are deliberately coarse: ``ok`` (at or above the guard floor),
``REGRESSED`` (below it — the same floor the perf smoke enforces), and
``n/a`` (this run did no comparable work, e.g. everything was cached).
Rate comparisons against the recorded reference are informational — the
reference was measured on some other host — but the guard floor is
portable by construction.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Environment override for the benchmark-baseline location.
BENCH_ENV = "SCD_BENCH_PATH"

#: Default baseline file name, searched in cwd and the repo root.
BENCH_NAME = "BENCH_dispatch.json"


def find_bench(path: str | Path | None = None) -> Path | None:
    """Locate the benchmark baseline: explicit arg, ``SCD_BENCH_PATH``,
    the working directory, then the repository root (when running from a
    source checkout).  Returns ``None`` when nowhere to be found."""
    candidates = []
    if path is not None:
        candidates.append(Path(path))
    env = os.environ.get(BENCH_ENV)
    if env:
        candidates.append(Path(env))
    candidates.append(Path.cwd() / BENCH_NAME)
    candidates.append(Path(__file__).resolve().parents[3] / BENCH_NAME)
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def load_bench(path: str | Path | None = None) -> dict | None:
    """Parse the baseline, or ``None`` when missing/corrupt (a telemetry
    section without a baseline column beats a crashed report)."""
    found = find_bench(path)
    if found is None:
        return None
    try:
        return json.loads(found.read_text())
    except (OSError, ValueError):
        return None


def _rate(events: float, wall_s: float) -> float | None:
    return events / wall_s if events and wall_s > 0 else None


def telemetry_diff(metrics, bench: dict | None) -> list[dict]:
    """Rows of ``{metric, measured, reference, verdict}`` for this run.

    *metrics* is a :class:`~repro.harness.parallel.ThroughputMetrics`;
    *bench* the parsed ``BENCH_dispatch.json`` (or ``None``)."""
    bench = bench or {}
    guard_floor = bench.get("guard", {}).get("min_events_per_s")
    hot_rate = bench.get("hot_path", {}).get("events_per_s")
    replay_ref = bench.get("trace_replay", {}).get("replay_events_per_s")

    rows = []
    sim_rate = _rate(metrics.events, metrics.sim_wall_s)
    verdict = "n/a"
    if sim_rate is not None and guard_floor:
        verdict = "ok" if sim_rate >= guard_floor else "REGRESSED"
    rows.append(
        {
            "metric": "simulation events/s",
            "measured": sim_rate,
            "reference": hot_rate,
            "verdict": verdict,
        }
    )

    interp_rate = _rate(metrics.events_interpreted, metrics.interp_wall_s)
    rows.append(
        {
            "metric": "interpreted events/s",
            "measured": interp_rate,
            "reference": hot_rate,
            "verdict": "n/a" if interp_rate is None else "ok",
        }
    )

    replay_rate = _rate(metrics.events_replayed, metrics.replay_wall_s)
    rows.append(
        {
            "metric": "replayed events/s",
            "measured": replay_rate,
            "reference": replay_ref,
            "verdict": "n/a" if replay_rate is None else "ok",
        }
    )

    # Kernel- and batch-replay floors: the measured column is this run's
    # replayed rate attributed to each tier (they share the replay wall
    # clock, so rates are indicative); the verdict checks the *recorded*
    # baseline speedup against its guard floor, which is portable.
    kernel = bench.get("kernel_replay", {})
    kernel_floor = bench.get("guard", {}).get("min_kernel_speedup")
    kernel_rate = _rate(metrics.kernel_events, metrics.replay_wall_s)
    verdict = "n/a"
    if kernel_rate is not None:
        speedup = kernel.get("speedup_kernel_over_interpreted")
        verdict = "ok"
        if kernel_floor and speedup is not None and speedup < kernel_floor:
            verdict = "REGRESSED"
    rows.append(
        {
            "metric": "kernel replay events/s",
            "measured": kernel_rate,
            "reference": kernel.get("replay_events_per_s_kernel_on"),
            "verdict": verdict,
        }
    )

    batch = bench.get("batch_replay", {})
    batch_floor = bench.get("guard", {}).get("min_batch_speedup")
    batch_rate = _rate(metrics.batch_events, metrics.replay_wall_s)
    verdict = "n/a"
    if batch_rate is not None:
        speedup = batch.get("speedup_batch_over_kernel")
        verdict = "ok"
        if batch_floor and speedup is not None and speedup < batch_floor:
            verdict = "REGRESSED"
    rows.append(
        {
            "metric": "batch replay events/s",
            "measured": batch_rate,
            "reference": batch.get("replay_events_per_s_batch_on"),
            "verdict": verdict,
        }
    )
    return rows


def _fmt_rate(value: float | None) -> str:
    return "n/a" if value is None else f"{value:,.0f}"


def render_telemetry_section(
    metrics, wall_s: float | None = None, bench_path: str | Path | None = None
) -> str:
    """The report's "## Telemetry" section body (without the header)."""
    from repro.harness.tables import format_table

    bench = load_bench(bench_path)
    rows = [
        [
            row["metric"],
            _fmt_rate(row["measured"]),
            _fmt_rate(row["reference"]),
            row["verdict"],
        ]
        for row in telemetry_diff(metrics, bench)
    ]
    table = format_table(
        ["throughput", "this run", "baseline", "verdict"],
        rows,
        aligns=["l", "r", "r", "l"],
    )
    lines = [
        f"This regeneration ran {metrics.sims} simulation(s) and served "
        f"{metrics.cache_hits} grid point(s) from cache"
        + (f" in {wall_s:.2f}s." if wall_s is not None else "."),
        "",
        table,
    ]
    if bench is None:
        lines.append(
            f"\n(no {BENCH_NAME} baseline found; run "
            "`python -m pytest benchmarks/test_perf_smoke.py` to create one)"
        )
    return "\n".join(lines)
