"""Trace-log validator CLI: ``python -m repro.obs TRACE.jsonl``.

Exit status 0 when the log parses, every span is closed and every
worker event is rooted in the parent process; 1 otherwise (CI fails the
build on that).  ``--expect-workers N`` additionally requires spans
from at least N distinct worker processes — the parallel-sweep smoke
uses it to prove the merge actually happened.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.schema import summarize, validate_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="validate a scd-trace JSONL span log",
    )
    parser.add_argument("trace", help="path to the JSONL trace log")
    parser.add_argument(
        "--expect-workers",
        type=int,
        default=0,
        metavar="N",
        help="require spans from at least N worker processes",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary"
    )
    args = parser.parse_args(argv)

    log = validate_file(args.trace)
    if not args.quiet:
        print(summarize(log))
    workers = len(log.worker_pids())
    if workers < args.expect_workers:
        log.errors.append(
            f"expected spans from >= {args.expect_workers} worker "
            f"process(es), found {workers}"
        )
    for error in log.errors:
        print(f"ERROR: {error}", file=sys.stderr)
    return 1 if log.errors else 0


if __name__ == "__main__":
    sys.exit(main())
