"""Reading and validating the span-trace JSONL format.

The format is defined by :mod:`repro.obs.trace` (see
``docs/OBSERVABILITY.md`` for the full field reference).  This module is
the read side: parse a log, rebuild the span tree across processes, and
report every structural violation — unknown kinds, missing fields,
version mismatches, unclosed spans, dangling parents, and worker events
whose ancestry never reaches the parent process ("orphans").  CI runs it
(via ``python -m repro.obs``) on the log of a parallel sweep and fails
the build on any error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import SCHEMA_NAME, SCHEMA_VERSION

#: Required fields per record kind (beyond the common ``v``/``kind``).
REQUIRED_FIELDS = {
    "meta": ("schema", "pid", "t"),
    "span_start": ("id", "parent", "name", "pid", "t"),
    "span_end": ("id", "name", "pid", "t", "dur_s"),
    "event": ("parent", "name", "pid", "t"),
}

#: Span names the harness emits, outermost first.  Extra names are
#: allowed (the validator checks structure, not vocabulary); this tuple
#: is the reference for docs and golden tests.
KNOWN_SPANS = (
    "sweep",
    "corpus",
    "experiment",
    "job",
    "cache",
    "compile",
    "record",
    "replay",
    "simulate",
    # Sweep-service spans (repro.service): the daemon lifetime, one per
    # admitted submission, one per unique in-flight grid point, and one
    # per backend round over run_jobs_partial.
    "service",
    "request",
    "flight",
    "batch",
)


@dataclass
class SpanNode:
    """One reconstructed span with its children."""

    id: str
    name: str
    pid: int
    parent: str | None
    t_start: float
    t_end: float | None = None
    dur_s: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.t_end is not None


@dataclass
class TraceLog:
    """A parsed trace: records, the span index, and validation errors."""

    records: list[dict]
    spans: dict[str, SpanNode]
    roots: list[SpanNode]
    errors: list[str]
    root_pid: int | None

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_name(self, name: str) -> list[SpanNode]:
        return [s for s in self.spans.values() if s.name == name]

    def pids(self) -> set[int]:
        return {s.pid for s in self.spans.values()}

    def worker_pids(self) -> set[int]:
        return {
            s.pid for s in self.spans.values() if s.pid != self.root_pid
        }


def read_records(path: str | Path) -> list[dict]:
    """Parse *path* as JSONL; raises ``ValueError`` on unparseable lines."""
    records = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: record is not an object")
        records.append(record)
    return records


def validate_records(records: list[dict]) -> TraceLog:
    """Structural validation; returns the parsed log with its errors.

    Checks, in order: a leading ``meta`` record with the right schema
    name and version; per-record version tags and required fields;
    unique span ids; every ``span_end`` matching a ``span_start``; every
    span closed; every non-null parent reference resolving to a known
    span; and every worker-process record (pid differing from the meta
    record's) rooted — possibly through ancestors — in a span of the
    parent process.  An unclosed span or an orphaned worker record is an
    error, not a warning: both mean the merged tree lies about what ran.
    """
    errors: list[str] = []
    spans: dict[str, SpanNode] = {}
    root_pid: int | None = None

    if not records:
        return TraceLog([], {}, [], ["empty trace (no records)"], None)

    head = records[0]
    if head.get("kind") != "meta":
        errors.append(f"first record must be meta, got {head.get('kind')!r}")
    else:
        if head.get("schema") != SCHEMA_NAME:
            errors.append(f"unknown schema {head.get('schema')!r}")
        root_pid = head.get("pid")
    for index, record in enumerate(records):
        kind = record.get("kind")
        if kind not in REQUIRED_FIELDS:
            errors.append(f"record {index}: unknown kind {kind!r}")
            continue
        if record.get("v") != SCHEMA_VERSION:
            errors.append(
                f"record {index}: version {record.get('v')!r} != "
                f"{SCHEMA_VERSION}"
            )
        missing = [f for f in REQUIRED_FIELDS[kind] if f not in record]
        if missing:
            errors.append(f"record {index}: {kind} missing {missing}")
            continue
        if kind == "meta" and index > 0:
            errors.append(f"record {index}: duplicate meta record")
        elif kind == "span_start":
            span_id = record["id"]
            if span_id in spans:
                errors.append(f"record {index}: duplicate span id {span_id}")
                continue
            spans[span_id] = SpanNode(
                id=span_id,
                name=record["name"],
                pid=record["pid"],
                parent=record["parent"],
                t_start=record["t"],
                attrs=dict(record.get("attrs") or {}),
            )
        elif kind == "span_end":
            node = spans.get(record["id"])
            if node is None:
                errors.append(
                    f"record {index}: span_end for unknown id {record['id']}"
                )
                continue
            if node.closed:
                errors.append(f"record {index}: span {node.id} ended twice")
            node.t_end = record["t"]
            node.dur_s = record["dur_s"]
            node.attrs.update(record.get("attrs") or {})

    roots: list[SpanNode] = []
    for node in spans.values():
        if not node.closed:
            errors.append(f"unclosed span {node.id} ({node.name})")
        if node.parent is None:
            roots.append(node)
        elif node.parent not in spans:
            errors.append(
                f"span {node.id} ({node.name}) has dangling parent "
                f"{node.parent}"
            )
        else:
            spans[node.parent].children.append(node)

    for record in records:
        if record.get("kind") != "event":
            continue
        parent = record.get("parent")
        if parent is not None and parent not in spans:
            errors.append(
                f"event {record.get('name')!r} has dangling parent {parent}"
            )

    if root_pid is not None:
        for node in spans.values():
            if node.pid == root_pid:
                continue
            # Walk up: a worker span must hang (transitively) off a span
            # of the parent process, or it was never merged — orphaned.
            seen = set()
            cursor = node
            while (
                cursor.parent in spans
                and cursor.pid != root_pid
                and cursor.id not in seen
            ):
                seen.add(cursor.id)
                cursor = spans[cursor.parent]
            if cursor.pid != root_pid:
                errors.append(
                    f"orphaned worker span {node.id} ({node.name}, pid "
                    f"{node.pid}): no ancestry into pid {root_pid}"
                )

    return TraceLog(records, spans, roots, errors, root_pid)


def validate_file(path: str | Path) -> TraceLog:
    """Read and validate *path* in one call."""
    try:
        records = read_records(path)
    except (OSError, ValueError) as exc:
        return TraceLog([], {}, [], [str(exc)], None)
    return validate_records(records)


def summarize(log: TraceLog) -> str:
    """Human summary: span counts and total durations per name."""
    counts: dict[str, list] = {}
    for node in log.spans.values():
        entry = counts.setdefault(node.name, [0, 0.0])
        entry[0] += 1
        entry[1] += node.dur_s or 0.0
    lines = [
        f"{len(log.records)} records, {len(log.spans)} spans, "
        f"{len(log.pids())} process(es)"
    ]
    for name in sorted(counts, key=lambda n: -counts[n][1]):
        count, total = counts[name]
        lines.append(f"  {name:<12} x{count:<4} {total:9.3f}s total")
    return "\n".join(lines)
