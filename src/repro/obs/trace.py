"""Hierarchical span tracing with a process-safe JSONL sink.

The harness runs sweeps as trees of timed work — sweep → experiment →
job → {cache, compile, record, replay, simulate} — across several
processes at once.  This module records that tree as versioned JSONL so
a slow sweep, a wrong counter or a diverging figure can be interrogated
after the fact (see ``docs/OBSERVABILITY.md`` for the schema).

One :class:`Tracer` per process writes to a shared log file:

* The parent process calls :func:`configure`, which truncates the log,
  writes the ``meta`` record and exports the path via ``SCD_TRACE_LOG``
  — the same export discipline the fault-injection layer uses for
  ``SCD_FAULT_DIR`` (:mod:`repro.harness.faults`), so pool workers see
  it whether they were forked or spawned.
* Worker processes call :func:`adopt_worker` with the span id the
  parent was inside at submission time; their spans append to the same
  file, rooted under that remote parent, so one log holds the whole
  merged tree.

Every record is serialized to one line and written with a single
``os.write`` on an ``O_APPEND`` descriptor, which the kernel applies
atomically, so concurrent writers interleave whole lines, never bytes.
Records are kept small (attribute payloads are bounded counter dicts)
to stay comfortably within that guarantee.

When no log is configured, :func:`span` returns a shared no-op context
manager and :func:`event` returns immediately — telemetry-off runs pay
one attribute check per call site, nothing more.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time

#: Stamped on every record as ``"v"``; bump when a field changes meaning.
SCHEMA_VERSION = 1

#: Schema family name stamped on the ``meta`` record.
SCHEMA_NAME = "scd-trace"

#: Environment variable carrying the active log path into workers.
TRACE_ENV = "SCD_TRACE_LOG"


class Span:
    """One open span.  Close it with :meth:`Tracer.end` (the context
    manager from :func:`span` does this for you)."""

    __slots__ = ("id", "name", "parent", "t0", "attrs")

    def __init__(self, span_id: str, name: str, parent: str | None, t0: float):
        self.id = span_id
        self.name = name
        self.parent = parent
        self.t0 = t0
        self.attrs: dict = {}


class Tracer:
    """Per-process span stack writing to one shared JSONL sink."""

    def __init__(self):
        self._fd: int | None = None
        self.path: str | None = None
        self._stack: list[Span] = []
        # itertools.count: a single C-level next() per id, so two threads
        # (the sweep service writes detached spans from the event loop
        # while a batch thread writes ambient ones) can never mint the
        # same sequence number.  Never reset: ids only need uniqueness
        # within one process, not to restart per log.
        self._seq = itertools.count(1)
        self._adopted: str | None = None
        self._pid: int | None = None
        self._exported = False

    @property
    def active(self) -> bool:
        return self._fd is not None

    @property
    def current_id(self) -> str | None:
        """The innermost open span id (falling back to the adopted remote
        parent in worker processes), or ``None`` at the root."""
        if self._stack:
            return self._stack[-1].id
        return self._adopted

    # -- lifecycle ---------------------------------------------------------

    def configure(self, path: str | os.PathLike) -> None:
        """Start a fresh trace log at *path* and export it to workers."""
        self.close()
        self._open(os.fspath(path), truncate=True)
        os.environ[TRACE_ENV] = self.path
        self._exported = True
        self._write(
            {
                "v": SCHEMA_VERSION,
                "kind": "meta",
                "schema": SCHEMA_NAME,
                "pid": os.getpid(),
                "t": time.time(),
                "argv": list(sys.argv),
            }
        )

    def adopt(self, parent_id: str | None) -> bool:
        """Enter worker mode: append to the parent's exported log, rooting
        new spans under the remote *parent_id*.  No-op (returning False)
        when no log is exported.  Safe to call once per job on a reused
        pool worker; only the first call in a process opens the file."""
        path = os.environ.get(TRACE_ENV, "")
        if not path:
            return False
        pid = os.getpid()
        if self._fd is None or self.path != path or self._pid != pid:
            # A forked child inherits the parent's descriptor and span
            # stack; the descriptor would be safe to share (O_APPEND),
            # but the stack belongs to the parent — start clean.
            self._open(path, truncate=False)
        self._stack = []
        self._adopted = parent_id
        return True

    def close(self) -> None:
        """Stop tracing: close the sink and drop the exported path.

        Idempotent and safe at any point in the lifecycle — after a
        failed :meth:`configure`, called twice in a row, or while spans
        are still open (their eventual ``end`` becomes a no-op rather
        than a write to a dead or recycled descriptor)."""
        if self._fd is not None:
            fd, self._fd = self._fd, None
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already-closed fd
                pass
        self.path = None
        self._stack = []
        self._adopted = None
        self._pid = None
        if self._exported:
            os.environ.pop(TRACE_ENV, None)
            self._exported = False

    def _open(self, path: str, truncate: bool) -> None:
        if self._fd is not None:
            # E.g. a forked worker replacing the descriptor it inherited.
            # Drop the attribute *before* closing so a failure below can
            # never leave a stale fd number behind (closing it again
            # later would hit EBADF — or worse, a recycled descriptor).
            fd, self._fd = self._fd, None
            os.close(fd)
        self.path = None
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if truncate:
            flags |= os.O_TRUNC
        self._fd = os.open(path, flags, 0o644)
        self.path = path
        self._pid = os.getpid()
        self._exported = False

    # -- records -----------------------------------------------------------

    def _write(self, record: dict) -> None:
        if self._fd is None:
            # The sink was closed (or never opened) while this span was
            # in flight — e.g. the sweep service shutting down with a
            # request still draining.  Dropping the record is the only
            # safe option; raising would turn teardown into a crash.
            return
        line = json.dumps(record, separators=(",", ":"), default=repr) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._seq):x}"

    def start(self, name: str, attrs: dict | None = None) -> Span:
        span = Span(self._next_id(), name, self.current_id, time.perf_counter())
        record = {
            "v": SCHEMA_VERSION,
            "kind": "span_start",
            "id": span.id,
            "parent": span.parent,
            "name": name,
            "pid": os.getpid(),
            "t": time.time(),
        }
        if attrs:
            record["attrs"] = attrs
        self._stack.append(span)
        self._write(record)
        return span

    def end(self, span: Span) -> None:
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()  # mismatched ends: drop abandoned children
        if self._stack:
            self._stack.pop()
        record = {
            "v": SCHEMA_VERSION,
            "kind": "span_end",
            "id": span.id,
            "name": span.name,
            "pid": os.getpid(),
            "t": time.time(),
            "dur_s": round(time.perf_counter() - span.t0, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)

    def start_detached(
        self, name: str, parent: str | None = None, attrs: dict | None = None
    ) -> Span:
        """Open a span with an explicit *parent*, bypassing the ambient
        stack.

        The ambient stack is per-process, which makes it wrong for code
        whose spans overlap rather than nest — the asyncio sweep service
        keeps many request spans open at once across tasks and threads.
        A detached span never touches the stack, so it is safe to start
        and end from any thread; close it with :meth:`end_detached`.
        """
        span = Span(self._next_id(), name, parent, time.perf_counter())
        record = {
            "v": SCHEMA_VERSION,
            "kind": "span_start",
            "id": span.id,
            "parent": span.parent,
            "name": name,
            "pid": os.getpid(),
            "t": time.time(),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        return span

    def end_detached(self, span: Span) -> None:
        """Close a span from :meth:`start_detached` (stack untouched)."""
        record = {
            "v": SCHEMA_VERSION,
            "kind": "span_end",
            "id": span.id,
            "name": span.name,
            "pid": os.getpid(),
            "t": time.time(),
            "dur_s": round(time.perf_counter() - span.t0, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)

    def event(self, name: str, **attrs) -> None:
        """A point-in-time record attached to the current span."""
        if not self.active:
            return
        record = {
            "v": SCHEMA_VERSION,
            "kind": "event",
            "parent": self.current_id,
            "name": name,
            "pid": os.getpid(),
            "t": time.time(),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)


#: The process-wide tracer (one sink per process, like ``METRICS``).
TRACER = Tracer()


class _NullSpan:
    """Shared no-op returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager opening a span on entry and closing it on exit.

    :meth:`annotate` accumulates attributes onto the ``span_end`` record
    — counters measured *during* the span land on its close, so readers
    get one record per finished unit of work."""

    __slots__ = ("_name", "_start_attrs", "_span")

    def __init__(self, name: str, attrs: dict):
        self._name = name
        self._start_attrs = attrs
        self._span: Span | None = None

    def __enter__(self):
        self._span = TRACER.start(self._name, self._start_attrs or None)
        return self

    def annotate(self, **attrs) -> None:
        if self._span is not None:
            self._span.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb):
        if self._span is not None:
            if exc_type is not None:
                self._span.attrs["error"] = f"{exc_type.__name__}: {exc}"
            TRACER.end(self._span)
        return False


def configure(path: str | os.PathLike) -> None:
    """Start tracing this process (and its future workers) into *path*."""
    TRACER.configure(path)


def close() -> None:
    """Stop tracing and close the sink (idempotent)."""
    TRACER.close()


def active() -> bool:
    """Whether a trace log is currently configured in this process."""
    return TRACER.active


def span(name: str, **attrs):
    """Open a timed span named *name*; use as a context manager.

    Attributes passed here land on the ``span_start`` record; attributes
    added through ``annotate`` land on ``span_end``.  Returns a shared
    no-op when tracing is off."""
    if not TRACER.active:
        return _NULL_SPAN
    return _SpanContext(name, attrs)


def event(name: str, **attrs) -> None:
    """Emit a point-in-time event under the current span (no-op when off)."""
    TRACER.event(name, **attrs)


def start_span(name: str, parent: str | None = None, **attrs):
    """Open a detached span under *parent* (an explicit span id).

    Unlike :func:`span`, the handle is a plain object you may carry
    across asyncio tasks and threads and close later with
    :func:`end_span`; the ambient span stack is never involved.  Returns
    ``None`` when tracing is off (and :func:`end_span` accepts that).
    """
    if not TRACER.active:
        return None
    return TRACER.start_detached(name, parent, attrs or None)


def end_span(span, **attrs) -> None:
    """Close a detached span from :func:`start_span` (no-op on ``None``).

    *attrs* are merged onto the ``span_end`` record.  Ending a span
    after :func:`close` is a silent no-op — the record is dropped, never
    written to a dead descriptor.
    """
    if span is None:
        return
    if attrs:
        span.attrs.update(attrs)
    TRACER.end_detached(span)


def current_span_id() -> str | None:
    """The ambient span id to hand to workers, or ``None`` when off."""
    if not TRACER.active:
        return None
    return TRACER.current_id


def adopt_worker(parent_id: str | None) -> bool:
    """Join the parent's exported trace log from a worker process."""
    return TRACER.adopt(parent_id)
