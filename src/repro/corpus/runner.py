"""Batch corpus ingestion through the fault-tolerant job pool.

Walks a built corpus (see :mod:`repro.corpus.builder`), verifies each
program's manifest digest, and runs every intact program on the
requested VMs x dispatch schemes through
:func:`repro.harness.parallel.run_jobs_partial` — the same retry /
salvage / degrade ladder as figure sweeps, but failures come back as
per-file accounting instead of aborting the batch.

Every program ends in exactly one state:

* ``ok`` — all its grid points simulated (and, with two VMs, both VMs
  printed identical output);
* ``error`` — integrity failure (missing file, digest mismatch), any
  grid point exhausted its retry budget, or a cross-VM output mismatch.
  The reason lands in ``<root>/quarantine/<name>.reason.txt``;
* ``skipped`` — excluded by a ``--stratum``/``--limit`` filter.

``ok + error + skipped == corpus size`` always.  Results are written to
``<root>/results.json`` canonically (sorted keys, rounded floats, no
wall-clock), so a serial run and a ``-j2`` run of the same corpus are
byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.core.simulation import SCHEMES
from repro.harness.cache import ResultCache
from repro.harness.parallel import METRICS, SimJob, run_jobs_partial
from repro.workloads.synthetic import program_digest

from repro.corpus.builder import load_manifest

#: Results format identity; bump on layout changes.
RESULTS_FORMAT = "scd-corpus-results"
RESULTS_VERSION = 1

#: Step ceiling per program (generated programs terminate far below it;
#: the ceiling converts a generator bug into an ``error`` row, not a hang).
CORPUS_MAX_STEPS = 2_000_000

#: Default VM pair (both guest VMs, as the paper evaluates).
DEFAULT_VMS = ("lua", "js")


@dataclass
class CorpusRunSummary:
    """Per-file accounting of one corpus run.

    ``ok + error + skipped == total`` (the corpus size); *quarantined*
    counts cache shards the cache layer quarantined during the run
    (corrupt/torn entries — degraded but recovered, reported so faults
    are never silent).
    """

    root: Path
    total: int = 0
    ok: int = 0
    error: int = 0
    skipped: int = 0
    by_stratum: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)   # name -> first reason line
    quarantined: int = 0

    def check(self) -> None:
        if self.ok + self.error + self.skipped != self.total:
            raise AssertionError(
                f"corpus accounting does not sum: ok={self.ok} + "
                f"error={self.error} + skipped={self.skipped} != "
                f"total={self.total}"
            )


def _quarantine(root: Path, name: str, reason: str) -> None:
    """Drop a reason sidecar for a failed program (mirrors the cache
    layer's quarantine discipline)."""
    quarantine = root / "quarantine"
    quarantine.mkdir(parents=True, exist_ok=True)
    (quarantine / f"{name}.reason.txt").write_text(
        reason.rstrip() + "\n", encoding="utf-8"
    )
    obs.event("corpus_quarantine", program=name, reason=reason.splitlines()[0])


def _result_row(name: str, row: dict, vm: str, scheme: str, result) -> dict:
    mpki_denom = max(result.instructions, 1)
    btb_mpki = 1000.0 * result.mispredicts_by_category.get(
        "btb_target_miss", 0
    ) / mpki_denom
    return {
        "program": name,
        "stratum": row["stratum"],
        "size": row["size"],
        "vm": vm,
        "scheme": scheme,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "guest_steps": result.guest_steps,
        "dispatch_mpki": round(result.dispatch_mpki(), 6),
        "branch_mpki": round(result.branch_mpki, 6),
        "btb_miss_mpki": round(btb_mpki, 6),
    }


def run_corpus(
    root,
    vms=DEFAULT_VMS,
    schemes=SCHEMES,
    workers: int | None = None,
    limit: int | None = None,
    strata=None,
    cache: ResultCache | None = None,
    retries: int | None = None,
    job_timeout: float | None = None,
) -> CorpusRunSummary:
    """Run every corpus program on *vms* x *schemes*; never aborts on one
    bad file.  Returns the per-file accounting summary; detailed rows land
    in ``<root>/results.json``.

    *cache* defaults to a corpus-private result cache under
    ``<root>/cache`` (which also auto-wires the trace/memo stores, so one
    VM records each program once and every other scheme replays it).
    """
    root = Path(root)
    manifest = load_manifest(root)
    vms = tuple(vms)
    schemes = tuple(schemes)
    strata = tuple(strata) if strata else None
    if cache is None:
        cache = ResultCache("corpus", root=root / "cache")

    programs = manifest["programs"]
    summary = CorpusRunSummary(root=root, total=len(programs))
    quarantined_before = METRICS.quarantined

    with obs.span(
        "corpus", op="run", root=str(root), programs=len(programs),
        vms=",".join(vms), schemes=",".join(schemes),
    ) as span:
        # -- select + integrity-check --------------------------------------
        outcomes: dict[str, str] = {}
        reasons: dict[str, str] = {}
        sources: dict[str, str] = {}
        selected = []
        taken = 0
        for row in programs:
            name = row["name"]
            stratum = row["stratum"]
            tally = summary.by_stratum.setdefault(
                stratum, {"total": 0, "ok": 0, "error": 0, "skipped": 0}
            )
            tally["total"] += 1
            if (strata and stratum not in strata) or (
                limit is not None and taken >= limit
            ):
                outcomes[name] = "skipped"
                continue
            taken += 1
            path = root / row["path"]
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                outcomes[name] = "error"
                reasons[name] = f"unreadable program file {row['path']}: {exc}"
                continue
            if program_digest(source) != row["digest"]:
                outcomes[name] = "error"
                reasons[name] = (
                    f"digest mismatch for {row['path']}: file does not match "
                    "manifest (corrupted or tampered source)"
                )
                continue
            sources[name] = source
            selected.append(row)

        # -- simulate through the fault-tolerant pool ----------------------
        jobs = []
        grid = []
        for row in selected:
            for vm in vms:
                for scheme in schemes:
                    jobs.append(SimJob(
                        workload=f"corpus:{row['name']}",
                        vm=vm,
                        scheme=scheme,
                        kwargs=(
                            ("source", sources[row["name"]]),
                            ("check_output", False),
                            ("max_steps", CORPUS_MAX_STEPS),
                        ),
                    ))
                    grid.append((row, vm, scheme))
        results, failures = run_jobs_partial(
            jobs, workers=workers, cache=cache, retries=retries,
            job_timeout=job_timeout,
        )
        failed_names: dict[str, str] = {}
        for job, detail in failures:
            name = job.workload.split(":", 1)[1]
            line = (
                f"simulation failed (vm={job.vm}, scheme={job.scheme}): "
                + str(detail).strip().splitlines()[-1]
            )
            failed_names.setdefault(name, line)

        # -- fold grid points into per-program outcomes --------------------
        by_program: dict[str, dict] = {}
        for (row, vm, scheme), result in zip(grid, results):
            if result is not None:
                by_program.setdefault(row["name"], {})[(vm, scheme)] = result
        rows_out = []
        for row in selected:
            name = row["name"]
            if name in failed_names:
                outcomes[name] = "error"
                reasons[name] = failed_names[name]
                continue
            cells = by_program.get(name, {})
            # Cross-VM oracle: with both VMs present, their printed output
            # must agree (scheme choice cannot change guest semantics, so
            # one scheme's comparison covers them all).
            if len(vms) > 1:
                outputs = {vm: cells[(vm, schemes[0])].output for vm in vms}
                if len(set(outputs.values())) > 1:
                    outcomes[name] = "error"
                    reasons[name] = (
                        "cross-VM output mismatch: "
                        + " vs ".join(
                            f"{vm}:{len(out)} line(s)"
                            for vm, out in outputs.items()
                        )
                    )
                    continue
            outcomes[name] = "ok"
            for vm in vms:
                baseline = cells.get((vm, "baseline"))
                for scheme in schemes:
                    out = _result_row(name, row, vm, scheme, cells[(vm, scheme)])
                    if baseline is not None:
                        out["speedup"] = round(
                            baseline.cycles / max(cells[(vm, scheme)].cycles, 1),
                            6,
                        )
                    rows_out.append(out)

        # -- accounting + artifacts ----------------------------------------
        for row in programs:
            name = row["name"]
            outcome = outcomes[name]
            summary.by_stratum[row["stratum"]][outcome] += 1
            setattr(summary, outcome, getattr(summary, outcome) + 1)
            if outcome == "error":
                reason = reasons.get(name, "unknown failure")
                summary.errors[name] = reason.splitlines()[0]
                _quarantine(root, name, reason)
        summary.quarantined = METRICS.quarantined - quarantined_before
        summary.check()

        payload = {
            "format": RESULTS_FORMAT,
            "version": RESULTS_VERSION,
            "corpus_seed": manifest["seed"],
            "vms": list(vms),
            "schemes": list(schemes),
            "accounting": {
                "total": summary.total,
                "ok": summary.ok,
                "error": summary.error,
                "skipped": summary.skipped,
                "by_stratum": summary.by_stratum,
            },
            "outcomes": outcomes,
            "rows": sorted(
                rows_out,
                key=lambda r: (r["program"], r["vm"], r["scheme"]),
            ),
        }
        (root / "results.json").write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        span.annotate(
            ok=summary.ok, error=summary.error, skipped=summary.skipped,
            quarantined=summary.quarantined,
            **{
                f"stratum_{name}_ok": tally["ok"]
                for name, tally in sorted(summary.by_stratum.items())
            },
        )
    return summary
