"""Corpus aggregation: stratified geomeans and MPKI distributions.

Reads ``<root>/results.json`` (written by :mod:`repro.corpus.runner`)
and renders the "Corpus" report section: per-stratum and whole-corpus
geomean speedup per (vm, scheme), and dispatch-MPKI / BTB-miss-MPKI
distributions as p10/p50/p90 percentiles — distributions, not means,
because the population view is the point of running a corpus at all.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.results import geomean_or_none
from repro.harness.tables import fmt, format_table

from repro.corpus.runner import RESULTS_FORMAT, RESULTS_VERSION

#: Percentiles rendered for every MPKI distribution row.
PERCENTILES = (10, 50, 90)


def load_results(root) -> dict:
    """Load and sanity-check a corpus results file."""
    root = Path(root)
    path = root / "results.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no corpus results at {path}; run `scd-repro corpus run` first"
        ) from None
    if payload.get("format") != RESULTS_FORMAT:
        raise ValueError(f"{path} is not a {RESULTS_FORMAT} file")
    if payload.get("version") != RESULTS_VERSION:
        raise ValueError(
            f"unsupported corpus results version {payload.get('version')!r} "
            f"(expected {RESULTS_VERSION})"
        )
    return payload


def percentile(values, q: float) -> float | None:
    """Deterministic linear-interpolation percentile (``q`` in 0..100)."""
    ordered = sorted(values)
    if not ordered:
        return None
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _strata_order(payload: dict) -> list[str]:
    """Strata present in the rows, sorted, with the whole-corpus
    pseudo-stratum ``all`` appended."""
    present = sorted({row["stratum"] for row in payload["rows"]})
    return present + ["all"]


def _rows_for(payload: dict, stratum: str, vm: str, scheme: str) -> list[dict]:
    return [
        row
        for row in payload["rows"]
        if row["vm"] == vm and row["scheme"] == scheme
        and (stratum == "all" or row["stratum"] == stratum)
    ]


def speedup_table(payload: dict) -> list[list]:
    """Per-(stratum, vm, scheme) program counts and geomean speedups.

    Baseline rows are omitted (their speedup is identically 1.0); rows
    without a baseline reference render ``n/a``.
    """
    table = []
    for stratum in _strata_order(payload):
        for vm in payload["vms"]:
            for scheme in payload["schemes"]:
                if scheme == "baseline":
                    continue
                rows = _rows_for(payload, stratum, vm, scheme)
                speedups = [r["speedup"] for r in rows if "speedup" in r]
                table.append([
                    stratum, vm, scheme, len(rows),
                    geomean_or_none(speedups),
                ])
    return table


def mpki_table(payload: dict, metrics=("dispatch_mpki", "btb_miss_mpki")) -> list[list]:
    """Per-(stratum, vm, scheme, metric) percentile rows."""
    table = []
    for stratum in _strata_order(payload):
        for vm in payload["vms"]:
            for scheme in payload["schemes"]:
                rows = _rows_for(payload, stratum, vm, scheme)
                for metric in metrics:
                    values = [row[metric] for row in rows]
                    table.append(
                        [stratum, vm, scheme, metric]
                        + [percentile(values, q) for q in PERCENTILES]
                    )
    return table


def corpus_section(root) -> str:
    """The "## Corpus" report section for the corpus at *root*."""
    payload = load_results(root)
    accounting = payload["accounting"]
    lines = [
        "## Corpus",
        "",
        (
            f"{accounting['total']} program(s) (seed "
            f"{payload['corpus_seed']}): {accounting['ok']} ok, "
            f"{accounting['error']} error, {accounting['skipped']} skipped."
        ),
        "",
        format_table(
            ["stratum", "vm", "scheme", "programs", "geomean speedup"],
            [
                [stratum, vm, scheme, str(count), fmt(value, ".3f")]
                for stratum, vm, scheme, count, value in speedup_table(payload)
            ],
            title="Speedup over baseline dispatch (per stratum)",
        ),
        "",
        format_table(
            ["stratum", "vm", "scheme", "metric"]
            + [f"p{q}" for q in PERCENTILES],
            [
                row[:4] + [fmt(value, ".3f") for value in row[4:]]
                for row in mpki_table(payload)
            ],
            title="MPKI distributions (per stratum percentiles)",
        ),
    ]
    return "\n".join(lines)
