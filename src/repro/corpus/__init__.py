"""Corpus-scale workload pipeline: build, run and report over populations.

The paper's figure-level claims rest on 11 registry workloads; this
package re-validates them over *populations* of generated programs:

* :mod:`repro.corpus.builder` — seeded, stratified corpus emission
  (opcode-mix strata x size tiers) with a versioned ``manifest.json``;
  same seed, byte-identical manifest.
* :mod:`repro.corpus.runner` — batch ingestion through the fault-tolerant
  job pool with per-file ok/error/skip accounting and reason-sidecar
  quarantine; one bad program never aborts the corpus.
* :mod:`repro.corpus.report` — per-stratum and whole-corpus geomean
  speedups plus dispatch-MPKI / BTB-miss-MPKI distributions rendered as
  percentiles, as a "Corpus" report section.

CLI: ``scd-repro corpus build|run|report`` (see
:mod:`repro.harness.cli`).
"""

from repro.corpus.builder import (
    CORPUS_FORMAT,
    CORPUS_VERSION,
    build_corpus,
    load_manifest,
    plan_corpus,
)
from repro.corpus.runner import CorpusRunSummary, run_corpus
from repro.corpus.report import corpus_section, load_results

__all__ = [
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "CorpusRunSummary",
    "build_corpus",
    "corpus_section",
    "load_manifest",
    "load_results",
    "plan_corpus",
    "run_corpus",
]
