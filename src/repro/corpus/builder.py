"""Seeded corpus builder: stratified synthetic programs + manifest.

A corpus is a directory:

.. code-block:: text

    <root>/
      manifest.json                 versioned index (the source of truth)
      programs/<stratum>/<name>.scd rendered scriptlet sources

``manifest.json`` carries one row per program — seed, stratum, size tier
and a sha256 digest of the rendered source — and is serialized
canonically (sorted keys, fixed indent, trailing newline), so rebuilding
with the same ``(seed, size, strata)`` triple produces a byte-identical
manifest.  The digest lets the runner detect bit-rot or tampering before
spending simulation time on a file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.verify.generator import CORPUS_STRATA, STRATA
from repro.workloads.synthetic import SyntheticWorkload, synthesize

#: Manifest format identity; bump the version on layout changes.
CORPUS_FORMAT = "scd-corpus"
CORPUS_VERSION = 1

#: Size-tier rotation over program indices (small-biased like the
#: verify sweep's seed-drawn size distribution).
SIZE_TIERS = ("tiny", "small", "small", "medium")

#: Multiplier decorrelating per-program seeds across corpus seeds
#: (corpus seed S, index i -> program seed S * _SEED_STRIDE + i).
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class ProgramSpec:
    """One planned corpus program (manifest row, pre-generation)."""

    name: str
    seed: int
    size: str
    stratum: str


def plan_corpus(seed: int, size: int, strata=None) -> list[ProgramSpec]:
    """Deterministic corpus plan: *size* programs round-robined over
    *strata* (default :data:`~repro.verify.generator.CORPUS_STRATA`) and
    cycled through :data:`SIZE_TIERS`."""
    strata = tuple(strata) if strata else CORPUS_STRATA
    for name in strata:
        if name not in STRATA:
            raise ValueError(
                f"unknown stratum {name!r}; expected one of {tuple(STRATA)}"
            )
    if size < 1:
        raise ValueError("corpus size must be >= 1")
    return [
        ProgramSpec(
            name=f"p{index:05d}",
            seed=seed * _SEED_STRIDE + index,
            size=SIZE_TIERS[index % len(SIZE_TIERS)],
            stratum=strata[index % len(strata)],
        )
        for index in range(size)
    ]


def _program_path(root: Path, spec: ProgramSpec) -> Path:
    return root / "programs" / spec.stratum / f"{spec.name}.scd"


def build_corpus(
    root, seed: int, size: int, strata=None, force: bool = False
) -> dict:
    """Emit a stratified corpus under *root* and return its manifest.

    Refuses to overwrite an existing corpus unless *force* is set (the
    manifest is the marker).  Emits a ``corpus`` span annotated with
    per-stratum program counts.
    """
    root = Path(root)
    manifest_path = root / "manifest.json"
    if manifest_path.exists() and not force:
        raise FileExistsError(
            f"corpus already exists at {manifest_path} (use force=True / "
            "--force to rebuild)"
        )
    specs = plan_corpus(seed, size, strata)
    with obs.span(
        "corpus", op="build", root=str(root), seed=seed, size=size
    ) as span:
        rows = []
        per_stratum: dict[str, int] = {}
        for spec in specs:
            program = synthesize(spec.name, spec.seed, spec.size, spec.stratum)
            path = _program_path(root, spec)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(program.source_text, encoding="utf-8")
            rows.append({
                "name": spec.name,
                "seed": spec.seed,
                "size": spec.size,
                "stratum": spec.stratum,
                "digest": program.digest,
                "path": path.relative_to(root).as_posix(),
            })
            per_stratum[spec.stratum] = per_stratum.get(spec.stratum, 0) + 1
        manifest = {
            "format": CORPUS_FORMAT,
            "version": CORPUS_VERSION,
            "seed": seed,
            "size": size,
            "strata": sorted(per_stratum),
            "programs": rows,
        }
        manifest_path.write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        span.annotate(**{f"stratum_{k}": v for k, v in sorted(per_stratum.items())})
    return manifest


def load_manifest(root) -> dict:
    """Load and sanity-check a corpus manifest."""
    root = Path(root)
    manifest_path = root / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no corpus manifest at {manifest_path}; run `scd-repro corpus "
            "build` first"
        ) from None
    if manifest.get("format") != CORPUS_FORMAT:
        raise ValueError(f"{manifest_path} is not a {CORPUS_FORMAT} manifest")
    if manifest.get("version") != CORPUS_VERSION:
        raise ValueError(
            f"unsupported corpus manifest version "
            f"{manifest.get('version')!r} (expected {CORPUS_VERSION})"
        )
    return manifest


def load_program(root, row: dict) -> SyntheticWorkload:
    """Materialize one manifest row from its on-disk source file."""
    root = Path(root)
    source = (root / row["path"]).read_text(encoding="utf-8")
    return SyntheticWorkload(
        name=row["name"],
        stratum=row["stratum"],
        size=row["size"],
        seed=row["seed"],
        source_text=source,
        digest=row["digest"],
    )
