"""Deterministic fault injection for the simulation harness.

The fault-tolerance layer (retries, salvage, quarantine — see
:func:`repro.harness.parallel.run_jobs` and
:mod:`repro.harness.cache`) only earns trust if its degraded paths are
exercised on purpose.  This module injects the three failure classes the
harness must survive, at deterministic points:

* ``kill-worker:N`` — the worker executing the *N*-th job (0-based,
  counted across every process of the run) dies with ``os._exit``,
  exactly how an OOM-killed or segfaulted worker looks to the parent.
  In the parent process the kill is skipped (taking the whole sweep
  down would test nothing).
* ``fail-job:N`` — the *N*-th job raises :class:`InjectedFault`.
* ``delay-job:N:SECONDS`` — the *N*-th job sleeps before simulating,
  long enough to trip a per-job timeout.
* ``corrupt-shard:N`` — the *N*-th cache-shard write (result or trace)
  is overwritten with garbage after it lands, exactly how a torn or
  bit-rotted entry looks to the next reader.

Faults are driven by the ``SCD_FAULT`` environment variable (or the CLI
``--fault`` flag, which sets it) as a comma-separated spec list, e.g.
``SCD_FAULT=kill-worker:2,corrupt-shard:0``.  Because pool workers are
separate processes, the "N-th" counters live on disk: every trigger
point claims the next tick by exclusively creating a numbered file under
``SCD_FAULT_DIR`` (auto-created and exported by the parent when unset,
so forked/spawned workers share one counter).  A claimed tick is never
reused, which makes every fault one-shot: the retried job draws a fresh
tick and runs clean — the property the bit-identical-recovery tests
rely on.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

#: Environment variables driving injection.
FAULT_ENV = "SCD_FAULT"
FAULT_DIR_ENV = "SCD_FAULT_DIR"

#: Recognised fault kinds.
FAULT_KINDS = ("kill-worker", "fail-job", "delay-job", "corrupt-shard")

#: Exit status of an injected worker kill (visible in pool diagnostics).
KILL_EXIT_CODE = 27

#: Bytes stamped over a corrupted shard: invalid JSON *and* invalid
#: trace magic, so either store sees a corrupt entry, not a miss.
CORRUPTION_STAMP = b"\x00scd-fault-injected-corruption\x00"


class InjectedFault(RuntimeError):
    """Raised by a ``fail-job`` fault; retried like any job exception."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: *kind* fires on global tick *nth*."""

    kind: str
    nth: int
    delay_s: float = 0.0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = text.strip().split(":")
        kind = parts[0]
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {text!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        want = 3 if kind == "delay-job" else 2
        if len(parts) != want:
            raise ValueError(
                f"malformed fault spec {text!r}; expected "
                + (f"{kind}:N:SECONDS" if want == 3 else f"{kind}:N")
            )
        try:
            nth = int(parts[1])
        except ValueError as exc:
            raise ValueError(f"bad fault tick in {text!r}: {exc}") from exc
        if nth < 0:
            raise ValueError(f"fault tick must be >= 0 in {text!r}")
        delay_s = 0.0
        if want == 3:
            try:
                delay_s = float(parts[2])
            except ValueError as exc:
                raise ValueError(f"bad fault delay in {text!r}: {exc}") from exc
            if delay_s < 0:
                raise ValueError(f"fault delay must be >= 0 in {text!r}")
        return cls(kind, nth, delay_s)


def parse_specs(text: str) -> tuple[FaultSpec, ...]:
    """Parse a comma-separated ``SCD_FAULT`` value into specs."""
    return tuple(
        FaultSpec.parse(part)
        for part in text.split(",")
        if part.strip()
    )


class FaultPlan:
    """An active set of fault specs sharing one on-disk tick counter.

    Two counters advance independently: ``job`` (one tick per job
    execution, consumed by ``kill-worker``/``fail-job``/``delay-job``)
    and ``shard`` (one tick per cache-shard write, consumed by
    ``corrupt-shard``).  Ticks are claimed with ``O_CREAT | O_EXCL``
    file creation, which is atomic across the processes of a run.
    """

    def __init__(self, specs, state_dir: str | Path):
        self.specs = tuple(specs)
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._job_specs = tuple(
            s for s in self.specs if s.kind in ("kill-worker", "fail-job", "delay-job")
        )
        self._shard_specs = tuple(
            s for s in self.specs if s.kind == "corrupt-shard"
        )

    def _claim(self, counter: str) -> int:
        """Atomically claim and return the next tick of *counter*."""
        n = 0
        while True:
            try:
                fd = os.open(
                    self.state_dir / f"{counter}.{n}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                n += 1
                continue
            os.close(fd)
            return n

    def on_job_start(self, job) -> None:
        """Trigger point: one simulation job is about to execute."""
        if not self._job_specs:
            return
        tick = self._claim("job")
        for spec in self._job_specs:
            if spec.nth != tick:
                continue
            from repro import obs

            obs.event(
                "fault_injected", fault=spec.kind, tick=tick,
                vm=job.vm, scheme=job.scheme, workload=job.workload,
            )
            if spec.kind == "kill-worker":
                if multiprocessing.parent_process() is not None:
                    os._exit(KILL_EXIT_CODE)
                # In the main process the kill is skipped: the point is a
                # dead *worker*, not a dead sweep.
            elif spec.kind == "fail-job":
                raise InjectedFault(
                    f"injected failure on job tick {tick} "
                    f"(vm={job.vm!r}, scheme={job.scheme!r}, "
                    f"workload={job.workload!r})"
                )
            elif spec.kind == "delay-job":
                time.sleep(spec.delay_s)

    def on_shard_write(self, path: str | Path) -> None:
        """Trigger point: one cache shard was just installed at *path*."""
        if not self._shard_specs:
            return
        tick = self._claim("shard")
        if any(spec.nth == tick for spec in self._shard_specs):
            Path(path).write_bytes(CORRUPTION_STAMP)


#: Memoized (env text, plan) pair; invalidated when ``SCD_FAULT`` changes.
_cached: tuple[str, FaultPlan | None] | None = None


def get_plan() -> FaultPlan | None:
    """The active :class:`FaultPlan`, or ``None`` when injection is off.

    The first resolution in a run exports ``SCD_FAULT_DIR`` (creating a
    temp directory when unset) so that pool workers — which inherit the
    environment — share the parent's tick counters.  Callers that fork
    workers should resolve the plan *before* spawning the pool.
    """
    global _cached
    text = os.environ.get(FAULT_ENV, "").strip()
    if _cached is not None and _cached[0] == text:
        return _cached[1]
    if not text:
        _cached = (text, None)
        return None
    specs = parse_specs(text)
    state_dir = os.environ.get(FAULT_DIR_ENV)
    if not state_dir:
        state_dir = tempfile.mkdtemp(prefix="scd-faults-")
        os.environ[FAULT_DIR_ENV] = state_dir
    plan = FaultPlan(specs, state_dir) if specs else None
    _cached = (text, plan)
    return plan


def reset_plan_cache() -> None:
    """Drop the memoized plan (tests flip ``SCD_FAULT_DIR`` between runs)."""
    global _cached
    _cached = None
