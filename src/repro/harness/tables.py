"""ASCII rendering of tables and bar-chart "figures"."""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list],
    title: str = "",
    aligns: list[str] | None = None,
) -> str:
    """Render a fixed-width text table.

    Args:
        headers: column names.
        rows: cell values (converted with ``str``; floats pre-format them).
        title: optional title line above the table.
        aligns: per-column ``"l"`` or ``"r"`` (default: first column left,
            rest right).
    """
    if aligns is None:
        aligns = ["l"] + ["r"] * (len(headers) - 1)
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt_row(row):
        parts = []
        for i, cell in enumerate(row):
            if aligns[i] == "l":
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_bar_chart(
    labels: list[str],
    series: dict[str, list[float]],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.3f}",
    baseline: float | None = None,
) -> str:
    """Render grouped horizontal bars (one group per label).

    Args:
        labels: group labels (e.g. workload names).
        series: series name -> one value per label.
        width: bar width in characters for the maximum value.
        value_format: how to print each value.
        baseline: if given, a ``|`` marks this value on each bar scale.
    """
    all_values = [v for values in series.values() for v in values]
    maximum = max(all_values) if all_values else 1.0
    if maximum <= 0:
        maximum = 1.0
    name_width = max((len(n) for n in series), default=0)
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for index, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[index]
            bar = "#" * max(0, round(width * value / maximum))
            if baseline is not None:
                marker = round(width * baseline / maximum)
                bar_chars = list(bar.ljust(width))
                if 0 <= marker < width:
                    bar_chars[marker] = "|" if bar_chars[marker] == " " else bar_chars[marker]
                bar = "".join(bar_chars).rstrip()
            lines.append(
                f"  {name.ljust(name_width)} {value_format.format(value).rjust(8)} {bar}"
            )
    return "\n".join(lines)


def pct(value: float | None, digits: int = 1) -> str:
    """Format a ratio as a signed percent string (0.102 -> '+10.2%').

    ``None`` — a degraded summary statistic, see
    :func:`repro.core.results.geomean_or_none` — renders as ``"n/a"``.
    """
    if value is None:
        return "n/a"
    return f"{value * 100:+.{digits}f}%"


def fmt(value: float | None, spec: str = ".3f") -> str:
    """``format(value, spec)`` with ``None`` rendered as ``"n/a"``."""
    if value is None:
        return "n/a"
    return format(value, spec)
