"""One harness entry per paper table/figure.

Each ``figure*``/``table*`` function runs (or loads from cache) the
simulations it needs, returns the raw numbers in
:class:`ExperimentResult.data` and a rendered ASCII version in ``.text``.
``PAPER`` embeds the paper's published summary numbers so reports can show
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.core.results import SimResult, geomean, geomean_or_none
from repro.harness.cache import DEFAULT_CACHE, ResultCache
from repro.harness.parallel import SimJob, execute_job, run_jobs
from repro.harness.tables import fmt, format_bar_chart, format_table, pct
from repro.power.model import AreaPowerModel, edp_improvement
from repro.uarch.config import (
    BTB_GEOMETRIES,
    CoreConfig,
    cortex_a5,
    cortex_a8,
    rocket,
    with_btb_geometry,
)
from repro.workloads import workload_names

#: Published summary numbers (geomeans unless noted) for the comparison
#: columns of EXPERIMENTS.md.
PAPER = {
    "fig7_lua": {"threaded": -0.016, "vbbi": 0.088, "scd": 0.199},
    "fig7_js": {"threaded": 0.073, "vbbi": 0.053, "scd": 0.141},
    "fig7_lua_max_scd": 0.384,
    "fig7_js_max_scd": 0.372,
    "fig8_lua_scd": -0.102,
    "fig8_js_scd": -0.096,
    "fig9_lua_scd": -0.706,
    "fig9_js_scd": -0.281,
    "fig9_lua_vbbi": -0.775,
    "fig9_lua_threaded": -0.244,
    "fig10_lua_baseline_mpki": 0.28,
    "fig10_lua_threaded_mpki": 4.80,
    "table4_threaded_savings": 0.0484,
    "table4_threaded_speedup": 0.0001,
    "table4_scd_savings": 0.1044,
    "table4_scd_speedup": 0.1204,
    "table5_area_delta": 0.0072,
    "table5_power_delta": 0.0109,
    "table5_edp_improvement": 0.242,
    "higher_end_lua_scd": 0.176,
    "higher_end_js_scd": 0.152,
    "fig3_lua_min": 0.20,  # "more than 25% on average"
}


@dataclass
class ExperimentResult:
    """Output of one experiment: identifiers, raw data and rendered text."""

    id: str
    title: str
    data: dict = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:
        return self.text


def cached_simulate(
    workload: str,
    vm: str,
    scheme: str,
    config: CoreConfig | None = None,
    scale: str = "sim",
    cache: ResultCache | None = DEFAULT_CACHE,
    **kwargs,
) -> SimResult:
    """:func:`repro.core.simulate` with disk caching."""
    job = SimJob(
        workload, vm, scheme, config=config, scale=scale,
        kwargs=tuple(sorted(kwargs.items())),
    )
    result, _ = execute_job(job, cache)
    return result


def run_matrix(
    vm: str,
    schemes: tuple[str, ...],
    config: CoreConfig | None = None,
    scale: str = "sim",
    workloads: tuple[str, ...] | None = None,
    cache: ResultCache | None = DEFAULT_CACHE,
    workers: int | None = None,
    **kwargs,
) -> dict:
    """Run every (workload, scheme) pair; returns ``{(wl, scheme): result}``.

    Cache misses fan out across *workers* processes (default: the CLI
    ``-j`` flag / ``SCD_REPRO_JOBS`` / CPU count); results are keyed and
    ordered independently of completion order.
    """
    if workloads is None:
        workloads = workload_names()
    extras = tuple(sorted(kwargs.items()))
    jobs = [
        SimJob(name, vm, scheme, config=config, scale=scale, kwargs=extras)
        for name in workloads
        for scheme in schemes
    ]
    results = run_jobs(jobs, workers=workers, cache=cache)
    return {
        (job.workload, job.scheme): result
        for job, result in zip(jobs, results)
    }


_ALL_SCHEMES = ("baseline", "threaded", "vbbi", "scd")
_NON_BASE = ("threaded", "vbbi", "scd")


def _speedups(matrix: dict, workloads, schemes=_NON_BASE) -> dict:
    """Per-scheme speedup lists (+geomean appended) over the baseline.

    The appended geomean degrades to ``None`` (rendered ``"n/a"``) when
    a degenerate point makes it undefined, instead of killing the sweep.
    """
    out = {}
    for scheme in schemes:
        values = [
            matrix[(w, "baseline")].cycles / matrix[(w, scheme)].cycles
            for w in workloads
        ]
        values.append(geomean_or_none(values))
        out[scheme] = values
    return out


# -- Figure 2 -----------------------------------------------------------------


def figure2(vm: str = "lua", cache=DEFAULT_CACHE) -> ExperimentResult:
    """Branch MPKI breakdown for the baseline interpreter.

    The paper's Figure 2: most baseline mispredictions come from the
    dispatch indirect jump.
    """
    workloads = workload_names()
    rows = []
    dispatch_series, other_series = [], []
    results = run_jobs(
        [SimJob(name, vm, "baseline") for name in workloads], cache=cache
    )
    for name, result in zip(workloads, results):
        dispatch = result.dispatch_mpki()
        total = result.branch_mpki
        other = max(0.0, total - dispatch)
        dispatch_series.append(dispatch)
        other_series.append(other)
        rows.append([name, f"{dispatch:.2f}", f"{other:.2f}", f"{total:.2f}",
                     f"{dispatch / total * 100 if total else 0:.0f}%"])
    gd = geomean_or_none([max(v, 1e-3) for v in dispatch_series])
    go = geomean_or_none([max(v, 1e-3) for v in other_series])
    if gd is not None and go is not None:
        rows.append(["GEOMEAN", f"{gd:.2f}", f"{go:.2f}", f"{gd + go:.2f}",
                     f"{gd / (gd + go) * 100:.0f}%"])
    else:
        rows.append(["GEOMEAN", "n/a", "n/a", "n/a", "n/a"])
    text = format_table(
        ["benchmark", "dispatch-jump MPKI", "other MPKI", "total", "dispatch share"],
        rows,
        title=f"Figure 2: branch MPKI breakdown, {vm} baseline (Cortex-A5 model)",
    )
    return ExperimentResult(
        "figure2",
        "Branch MPKI breakdown for baseline interpreter",
        {
            "workloads": list(workloads),
            "dispatch_mpki": dispatch_series,
            "other_mpki": other_series,
        },
        text,
    )


# -- Figure 3 -----------------------------------------------------------------


def figure3(vm: str = "lua", cache=DEFAULT_CACHE) -> ExperimentResult:
    """Fraction of dynamic instructions spent in dispatcher code."""
    workloads = workload_names()
    fractions = []
    rows = []
    results = run_jobs(
        [SimJob(name, vm, "baseline") for name in workloads], cache=cache
    )
    for name, result in zip(workloads, results):
        fractions.append(result.dispatch_fraction)
        rows.append([name, f"{result.dispatch_fraction * 100:.1f}%"])
    mean = geomean_or_none(fractions)
    rows.append(
        ["GEOMEAN", "n/a" if mean is None else f"{mean * 100:.1f}%"]
    )
    text = format_table(
        ["benchmark", "dispatch instructions"],
        rows,
        title=f"Figure 3: fraction of dispatch instructions, {vm} baseline",
    )
    return ExperimentResult(
        "figure3",
        "Fraction of dispatch instructions",
        {"workloads": list(workloads), "fractions": fractions, "geomean": mean},
        text,
    )


# -- Figures 7-10 -------------------------------------------------------------


def _per_vm_matrices(cache=DEFAULT_CACHE) -> dict:
    # Both VMs' grids go into one batch so the pool sees every miss at once.
    jobs = [
        SimJob(name, vm, scheme)
        for vm in ("lua", "js")
        for name in workload_names()
        for scheme in _ALL_SCHEMES
    ]
    results = run_jobs(jobs, cache=cache)
    matrices: dict = {"lua": {}, "js": {}}
    for job, result in zip(jobs, results):
        matrices[job.vm][(job.workload, job.scheme)] = result
    return matrices


def figure7(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Overall speedups for Lua and JavaScript interpreters."""
    matrices = _per_vm_matrices(cache)
    workloads = list(workload_names())
    data, chunks = {}, []
    for vm in ("lua", "js"):
        speedups = _speedups(matrices[vm], workloads)
        data[vm] = speedups
        rows = [
            [w] + [fmt(speedups[s][i]) for s in _NON_BASE]
            for i, w in enumerate(workloads + ["GEOMEAN"])
        ]
        chunks.append(
            format_table(
                ["benchmark", "jump threading", "VBBI", "SCD"],
                rows,
                title=f"Figure 7 ({vm}): speedup over baseline (higher is better)",
            )
        )
    text = "\n\n".join(chunks)
    return ExperimentResult(
        "figure7", "Overall speedups", {"workloads": workloads, **data}, text
    )


def figure8(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Normalized dynamic instruction count (lower is better)."""
    matrices = _per_vm_matrices(cache)
    workloads = list(workload_names())
    data, chunks = {}, []
    for vm in ("lua", "js"):
        matrix = matrices[vm]
        norm = {}
        for scheme in _NON_BASE:
            values = [
                matrix[(w, scheme)].instructions / matrix[(w, "baseline")].instructions
                for w in workloads
            ]
            values.append(geomean_or_none(values))
            norm[scheme] = values
        data[vm] = norm
        rows = [
            [w] + [fmt(norm[s][i]) for s in _NON_BASE]
            for i, w in enumerate(workloads + ["GEOMEAN"])
        ]
        chunks.append(
            format_table(
                ["benchmark", "jump threading", "VBBI", "SCD"],
                rows,
                title=f"Figure 8 ({vm}): normalized instruction count (lower is better)",
            )
        )
    return ExperimentResult(
        "figure8",
        "Normalized dynamic instruction count",
        {"workloads": workloads, **data},
        "\n\n".join(chunks),
    )


def _mpki_figure(metric: str, figure_id: str, title: str, cache) -> ExperimentResult:
    matrices = _per_vm_matrices(cache)
    workloads = list(workload_names())
    data, chunks = {}, []
    for vm in ("lua", "js"):
        matrix = matrices[vm]
        values = {}
        for scheme in _ALL_SCHEMES:
            series = [getattr(matrix[(w, scheme)], metric) for w in workloads]
            series.append(geomean_or_none([max(v, 1e-3) for v in series]))
            values[scheme] = series
        data[vm] = values
        rows = [
            [w] + [fmt(values[s][i], ".2f") for s in _ALL_SCHEMES]
            for i, w in enumerate(workloads + ["GEOMEAN"])
        ]
        chunks.append(
            format_table(
                ["benchmark", "baseline", "jump threading", "VBBI", "SCD"],
                rows,
                title=f"{title} ({vm}, lower is better)",
            )
        )
    return ExperimentResult(
        figure_id, title, {"workloads": workloads, **data}, "\n\n".join(chunks)
    )


def figure9(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Branch misprediction MPKI per scheme."""
    return _mpki_figure("branch_mpki", "figure9", "Figure 9: branch MPKI", cache)


def figure10(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Instruction-cache MPKI per scheme."""
    return _mpki_figure("icache_mpki", "figure10", "Figure 10: I-cache MPKI", cache)


# -- Table IV -----------------------------------------------------------------


def table4(cache=DEFAULT_CACHE) -> ExperimentResult:
    """FPGA (Rocket) cycle/instruction comparison for the Lua interpreter."""
    config = rocket()
    workloads = list(workload_names())
    schemes = ("baseline", "threaded", "scd")
    matrix = run_matrix("lua", schemes, config=config, scale="fpga", cache=cache)
    rows = []
    savings = {"threaded": [], "scd": []}
    speedups = {"threaded": [], "scd": []}
    for w in workloads:
        base = matrix[(w, "baseline")]
        row = [w, f"{base.instructions}", f"{base.cycles}"]
        for scheme in ("threaded", "scd"):
            candidate = matrix[(w, scheme)]
            saving = 1 - candidate.instructions / base.instructions
            speed = base.cycles / candidate.cycles - 1
            savings[scheme].append(saving)
            speedups[scheme].append(speed)
            row += [f"{candidate.instructions}", f"{candidate.cycles}",
                    pct(saving, 2), pct(speed, 2)]
        rows.append(row)
    geo_row = ["GEOMEAN", "", ""]
    summary = {}
    for scheme in ("threaded", "scd"):
        geo_saving = geomean_or_none([1 + s for s in savings[scheme]])
        geo_speed = geomean_or_none([1 + s for s in speedups[scheme]])
        geo_saving = geo_saving - 1 if geo_saving is not None else None
        geo_speed = geo_speed - 1 if geo_speed is not None else None
        summary[scheme] = {"savings": geo_saving, "speedup": geo_speed}
        geo_row += ["", "", pct(geo_saving, 2), pct(geo_speed, 2)]
    rows.append(geo_row)
    text = format_table(
        [
            "benchmark",
            "base inst", "base cyc",
            "jt inst", "jt cyc", "jt sav", "jt speedup",
            "scd inst", "scd cyc", "scd sav", "scd speedup",
        ],
        rows,
        title="Table IV: Lua on RISC-V Rocket (FPGA-scale inputs)",
    )
    return ExperimentResult(
        "table4",
        "FPGA cycle and instruction counts (Lua, Rocket)",
        {
            "workloads": workloads,
            "savings": savings,
            "speedups": speedups,
            "summary": summary,
        },
        text,
    )


# -- Table V --------------------------------------------------------------------


def table5(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Area/power breakdown and EDP improvement."""
    model = AreaPowerModel()
    t4 = table4(cache)
    scd_speedup = 1 + t4.data["summary"]["scd"]["speedup"]
    edp = edp_improvement(scd_speedup, model.total_power_delta)
    rows = []
    for comp in model.breakdown():
        indent = "  " * comp.depth
        rows.append(
            [
                f"{indent}{comp.name}",
                f"{comp.base_area:.3f}",
                f"{comp.base_power:.2f}",
                f"{comp.scd_area:.3f}",
                f"{comp.scd_power:.2f}",
                pct(comp.area_delta, 2) if comp.area_delta else "",
                pct(comp.power_delta, 2) if comp.power_delta else "",
            ]
        )
    text = format_table(
        ["module", "area", "power", "area+SCD", "power+SCD", "d-area", "d-power"],
        rows,
        title="Table V: hardware overhead breakdown (mm^2, mW; TSMC 40nm model)",
    )
    text += (
        f"\n\nTotal area delta:  {pct(model.total_area_delta, 2)} (paper +0.72%)"
        f"\nTotal power delta: {pct(model.total_power_delta, 2)} (paper +1.09%)"
        f"\nEDP improvement @ {scd_speedup:.4f}x speedup: {pct(edp, 1)} (paper +24.2%)"
    )
    return ExperimentResult(
        "table5",
        "Area/power/EDP",
        {
            "total_area_delta": model.total_area_delta,
            "total_power_delta": model.total_power_delta,
            "btb_area_delta": model.btb_area_delta,
            "btb_power_delta": model.btb_power_delta,
            "scd_speedup": scd_speedup,
            "edp_improvement": edp,
        },
        text,
    )


# -- Figure 11 -------------------------------------------------------------------


BTB_SIZES = (64, 128, 256, 512)
JTE_CAPS = (4, 16, None)


def figure11(cache=DEFAULT_CACHE, geometry: str | None = None) -> ExperimentResult:
    """Sensitivity to BTB size (a,b) and to the JTE cap at BTB=64 (c,d).

    Both sweeps for both VMs are submitted as one :func:`run_jobs` batch;
    duplicated points (e.g. the BTB=64 baselines shared between the size
    and cap sweeps) dedupe by cache key and simulate once.

    With *geometry* set to a key of
    :data:`repro.uarch.config.BTB_GEOMETRIES`, the sweep runs on that
    measured multi-level front end instead of the flat Table-II BTB: the
    size axis scales the *main* BTB level through 1/8x..1x of its measured
    capacity (halving keeps the set count a power of two, so hashed
    indexing stays legal) and the cap sweep runs at the smallest scaled
    size.  The nano level is left at its measured geometry throughout.
    """
    workloads = list(workload_names())
    if geometry is None:
        sizes = list(BTB_SIZES)

        def sized(entries: int) -> CoreConfig:
            return cortex_a5().with_changes(btb_entries=entries)

    else:
        base = with_btb_geometry(cortex_a5(), geometry)
        nominal = base.btb_levels[1].entries
        sizes = [nominal // 8, nominal // 4, nominal // 2, nominal]

        def sized(entries: int) -> CoreConfig:
            main = replace(base.btb_levels[1], entries=entries)
            return base.with_changes(
                btb_levels=(base.btb_levels[0], main),
                btb_entries=entries,
                btb_ways=main.ways,
            )

    small = sized(sizes[0])
    data: dict = {"sizes": sizes, "caps": [c if c else "inf" for c in JTE_CAPS]}
    if geometry is not None:
        data["geometry"] = geometry

    jobs: list[SimJob] = []
    labels: list[tuple] = []

    def add(label, w, vm, scheme, config):
        jobs.append(SimJob(w, vm, scheme, config=config))
        labels.append(label + (w,))

    for vm in ("lua", "js"):
        for size in sizes:
            config = sized(size)
            for w in workloads:
                add((vm, "size", size, "baseline"), w, vm, "baseline", config)
                add((vm, "size", size, "scd"), w, vm, "scd", config)
        for cap in JTE_CAPS:
            config = small.with_changes(jte_cap=cap)
            for w in workloads:
                add((vm, "cap", cap, "baseline"), w, vm, "baseline", small)
                add((vm, "cap", cap, "scd"), w, vm, "scd", config)
    lookup = dict(zip(labels, run_jobs(jobs, cache=cache)))

    suffix = f" [{geometry}]" if geometry is not None else ""
    size_label = "BTB entries" if geometry is None else "main-BTB entries"
    chunks = []
    for vm in ("lua", "js"):
        by_size = {}
        for size in sizes:
            values = [
                lookup[(vm, "size", size, "baseline", w)].cycles
                / lookup[(vm, "size", size, "scd", w)].cycles
                for w in workloads
            ]
            by_size[size] = geomean_or_none(values)
        data[f"{vm}_by_size"] = by_size
        rows = [[str(size), fmt(by_size[size])] for size in sizes]
        chunks.append(
            format_table(
                [size_label, "SCD geomean speedup"],
                rows,
                title=(
                    f"Figure 11({'a' if vm == 'lua' else 'b'}): "
                    f"BTB-size sensitivity ({vm}){suffix}"
                ),
            )
        )

        by_cap = {}
        for cap in JTE_CAPS:
            values = [
                lookup[(vm, "cap", cap, "baseline", w)].cycles
                / lookup[(vm, "cap", cap, "scd", w)].cycles
                for w in workloads
            ]
            by_cap[cap if cap else "inf"] = geomean_or_none(values)
        data[f"{vm}_by_cap"] = by_cap
        rows = [[str(cap), fmt(value)] for cap, value in by_cap.items()]
        chunks.append(
            format_table(
                ["JTE cap", f"SCD geomean speedup ({size_label}={sizes[0]})"],
                rows,
                title=(
                    f"Figure 11({'c' if vm == 'lua' else 'd'}): "
                    f"JTE-cap sensitivity ({vm}){suffix}"
                ),
            )
        )
    exp_id = "figure11" if geometry is None else f"figure11@{geometry}"
    title = "BTB-size and JTE-cap sensitivity" + (
        f" ({geometry} measured geometry)" if geometry is not None else ""
    )
    return ExperimentResult(exp_id, title, data, "\n\n".join(chunks))


# -- Section VI-C2 ------------------------------------------------------------------


def higher_end(cache=DEFAULT_CACHE) -> ExperimentResult:
    """SCD on the dual-issue Cortex-A8-like core."""
    config = cortex_a8()
    workloads = list(workload_names())
    data, chunks = {}, []
    for vm in ("lua", "js"):
        matrix = run_matrix(vm, ("baseline", "scd"), config=config, cache=cache)
        speedups = [
            matrix[(w, "baseline")].cycles / matrix[(w, "scd")].cycles for w in workloads
        ]
        inst = [
            1 - matrix[(w, "scd")].instructions / matrix[(w, "baseline")].instructions
            for w in workloads
        ]
        speedup_geo = geomean_or_none(speedups)
        inst_geo = geomean_or_none([1 + i for i in inst])
        data[vm] = {
            "speedup_geomean": speedup_geo,
            "inst_reduction_geomean": (
                inst_geo - 1 if inst_geo is not None else None
            ),
        }
        rows = [
            [w, f"{speedups[i]:.3f}", pct(inst[i])] for i, w in enumerate(workloads)
        ]
        rows.append(["GEOMEAN", fmt(speedup_geo),
                     pct(data[vm]["inst_reduction_geomean"])])
        chunks.append(
            format_table(
                ["benchmark", "SCD speedup", "inst reduction"],
                rows,
                title=f"Section VI-C2 ({vm}): higher-end dual-issue core",
            )
        )
    return ExperimentResult(
        "higher_end", "Higher-end core (Cortex-A8-like)", data, "\n\n".join(chunks)
    )


# -- ablations ------------------------------------------------------------------------


def ablation_stall_policy(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Section III-B: stall-for-Rop vs. fall-through bop policy."""
    workloads = list(workload_names())
    rows, data = [], {}
    for policy in ("stall", "fallthrough"):
        config = cortex_a5().with_changes(scd_stall_policy=policy)
        values = []
        for w in workloads:
            base = cached_simulate(w, "lua", "baseline", cache=cache)
            scd = cached_simulate(w, "lua", "scd", config=config, cache=cache)
            values.append(base.cycles / scd.cycles)
        data[policy] = geomean_or_none(values)
        rows.append([policy, fmt(data[policy])])
    text = format_table(
        ["bop policy", "SCD geomean speedup (lua)"],
        rows,
        title="Ablation: stall vs. fall-through when Rop is not ready (Section III-B)",
    )
    return ExperimentResult("ablation_stall", "bop stall policy", data, text)


def ablation_context_switch(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Section IV: JTE flushing at context switches."""
    intervals = (None, 20000, 5000, 1000)
    rows, data = [], {}
    workloads = list(workload_names())
    for interval in intervals:
        values = []
        for w in workloads:
            base = cached_simulate(
                w, "lua", "baseline", cache=cache,
                context_switch_interval=interval,
            )
            scd = cached_simulate(
                w, "lua", "scd", cache=cache, context_switch_interval=interval
            )
            values.append(base.cycles / scd.cycles)
        label = "never" if interval is None else str(interval)
        data[label] = geomean_or_none(values)
        rows.append([label, fmt(data[label])])
    text = format_table(
        ["switch every N bytecodes", "SCD geomean speedup (lua)"],
        rows,
        title="Ablation: OS context-switch JTE flushing (Section IV)",
    )
    return ExperimentResult("ablation_context_switch", "context switches", data, text)


def ablation_indirect_predictors(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Extra comparison: TTC / ITTAGE / VBBI vs. SCD (related-work
    predictors; Section VII).  Prediction-only schemes cannot remove the
    redundant dispatch instructions, so SCD keeps a margin even over an
    ITTAGE-class predictor."""
    workloads = list(workload_names())
    rows, data = [], {}
    for scheme in ("ttc", "cascaded", "ittage", "vbbi", "scd"):
        values = []
        for w in workloads:
            base = cached_simulate(w, "lua", "baseline", cache=cache)
            cand = cached_simulate(w, "lua", scheme, cache=cache)
            values.append(base.cycles / cand.cycles)
        data[scheme] = geomean_or_none(values)
        rows.append([scheme, fmt(data[scheme])])
    text = format_table(
        ["scheme", "geomean speedup (lua)"],
        rows,
        title="Ablation: indirect-branch schemes (TTC / Cascaded / ITTAGE / VBBI / SCD)",
    )
    return ExperimentResult("ablation_indirect", "indirect predictors", data, text)


def ablation_software_techniques(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Software dispatch optimisations vs. SCD (Section VII, software side).

    Jump threading (Rohou et al.) and superinstructions (Ertl & Gregg)
    both attack dispatch in software; neither removes the per-dispatch
    redundant computation wholesale, so both trail SCD — the paper's
    Related Work claim, measured.
    """
    workloads = list(workload_names())
    rows, data = [], {}
    for scheme in ("threaded", "superinst", "scd"):
        speed_values, inst_values = [], []
        for w in workloads:
            base = cached_simulate(w, "lua", "baseline", cache=cache)
            cand = cached_simulate(w, "lua", scheme, cache=cache)
            speed_values.append(base.cycles / cand.cycles)
            inst_values.append(cand.instructions / base.instructions)
        data[scheme] = {
            "speedup": geomean_or_none(speed_values),
            "inst_ratio": geomean_or_none(inst_values),
        }
        rows.append(
            [scheme, fmt(data[scheme]["speedup"]), fmt(data[scheme]["inst_ratio"])]
        )
    text = format_table(
        ["technique", "geomean speedup (lua)", "inst ratio"],
        rows,
        title="Ablation: software dispatch techniques vs. SCD",
    )
    return ExperimentResult(
        "ablation_software", "software techniques vs SCD", data, text
    )


def ablation_switch_policy(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Section IV extension: flush vs. save/restore JTEs on context switch."""
    workloads = list(workload_names())
    rows, data = [], {}
    interval = 1000
    for policy in ("flush", "save"):
        values = []
        for w in workloads:
            base = cached_simulate(
                w, "lua", "baseline", cache=cache,
                context_switch_interval=interval,
            )
            scd = cached_simulate(
                w, "lua", "scd", cache=cache,
                context_switch_interval=interval,
                context_switch_policy=policy,
            )
            values.append(base.cycles / scd.cycles)
        data[policy] = geomean_or_none(values)
        rows.append([policy, fmt(data[policy])])
    text = format_table(
        ["JTE policy at switch", f"SCD geomean speedup (lua, switch every {interval})"],
        rows,
        title="Extension: save/restore vs. flush of JTEs at context switches",
    )
    return ExperimentResult("ablation_switch_policy", "switch policy", data, text)


def extension_optimal_cap(cache=DEFAULT_CACHE) -> ExperimentResult:
    """Future-work extension: per-workload optimal JTE cap at BTB=64."""
    from repro.core.tuning import find_optimal_jte_cap

    config = cortex_a5().with_changes(btb_entries=64)
    rows, data = [], {}
    for w in workload_names():
        tuned = find_optimal_jte_cap(w, "lua", config=config)
        data[w] = {
            "best_cap": tuned.best_cap,
            "speedup": tuned.best_speedup,
            "evaluations": tuned.evaluations,
        }
        rows.append(
            [
                w,
                "inf" if tuned.best_cap is None else str(tuned.best_cap),
                f"{tuned.best_speedup:.3f}",
                str(tuned.evaluations),
            ]
        )
    text = format_table(
        ["benchmark", "best JTE cap", "SCD speedup", "simulations"],
        rows,
        title="Extension: per-workload optimal JTE cap (BTB=64, ternary search)",
    )
    return ExperimentResult("extension_optimal_cap", "optimal JTE cap", data, text)


#: Experiment registry for the CLI and report generator.
EXPERIMENTS = {
    "figure2": figure2,
    "figure3": figure3,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "table4": table4,
    "table5": table5,
    "figure11": figure11,
    "higher_end": higher_end,
    "ablation_stall": ablation_stall_policy,
    "ablation_context_switch": ablation_context_switch,
    "ablation_indirect": ablation_indirect_predictors,
    "ablation_switch_policy": ablation_switch_policy,
    "ablation_software": ablation_software_techniques,
    "extension_optimal_cap": extension_optimal_cap,
}


def run_experiment(
    name: str, cache=DEFAULT_CACHE, geometry: str | None = None
) -> ExperimentResult:
    """Run one registered experiment by name (as an ``experiment`` span
    when a trace log is live, so its jobs nest under it).

    *geometry* selects a measured BTB geometry axis and is only accepted
    by ``figure11``.
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None
    kwargs = {}
    if geometry is not None:
        if name != "figure11":
            raise ValueError(
                f"--geometry only applies to figure11, not {name!r}"
            )
        if geometry not in BTB_GEOMETRIES:
            raise ValueError(
                f"unknown geometry {geometry!r}; "
                f"available: {', '.join(BTB_GEOMETRIES)}"
            )
        kwargs["geometry"] = geometry
    with obs.span("experiment", experiment=name):
        return fn(cache=cache, **kwargs)
