"""EXPERIMENTS.md body generator: paper-vs-measured for every experiment."""

from __future__ import annotations

from repro.harness.cache import DEFAULT_CACHE
from repro.harness.parallel import METRICS
from repro.obs.regress import render_telemetry_section
from repro.harness.experiments import (
    PAPER,
    figure2,
    figure3,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    higher_end,
    table4,
    table5,
)
from repro.harness.tables import fmt, format_table, pct
from repro.uarch.config import BTB_GEOMETRIES


def _comparison_table(rows) -> str:
    return format_table(
        ["quantity", "paper", "measured", "verdict"],
        rows,
        aligns=["l", "r", "r", "l"],
    )


def _verdict(paper: float, measured: float | None, band: float) -> str:
    """Paper-vs-measured verdict for one summary quantity.

    ``n/a`` when the comparison is meaningless: the paper value is zero,
    the measurement is zero (a degenerate/empty workload set — claiming
    "same direction" there would dress up a non-result), or the summary
    statistic itself degraded to ``None``.
    """
    if paper == 0 or measured is None or measured == 0:
        return "n/a"
    if abs(measured - paper) <= band:
        return "MATCH"
    if (measured > 0) == (paper > 0):
        return "same direction"
    return "DIVERGES"


def _dispatch_share(fig2_data: dict) -> float | None:
    """Dispatch-jump share of all misprediction events, or ``None`` for a
    degenerate workload set with no mispredictions at all (the old code
    divided by the zero total and crashed the whole report)."""
    dispatch = sum(fig2_data["dispatch_mpki"])
    total = dispatch + sum(fig2_data["other_mpki"])
    if total <= 0:
        return None
    return dispatch / total


def _minus_one(value: float | None) -> float | None:
    return value - 1 if value is not None else None


def generate_report(cache=DEFAULT_CACHE, corpus=None) -> str:
    """Compute every experiment and render the paper-vs-measured report.

    With *corpus* set to a built-and-run corpus directory (see
    :mod:`repro.corpus`), the stratified Corpus section is appended after
    the paper figures.
    """
    sections: list[str] = []

    # Figures 2-3.
    fig2 = figure2(cache=cache)
    dispatch_share = _dispatch_share(fig2.data)
    fig3 = figure3(cache=cache)
    share_text = (
        "n/a (no misprediction events)"
        if dispatch_share is None
        else f"{dispatch_share:.0%} of misprediction events"
    )
    fig3_geomean = fig3.data["geomean"]
    sections.append(
        "## Figure 2 — branch MPKI breakdown (Lua baseline)\n\n"
        "Paper: most baseline mispredictions come from the dispatch "
        f"indirect jump.  Measured: the dispatch jump accounts for "
        f"{share_text}.\n\n```\n{fig2.text}\n```"
    )
    sections.append(
        "## Figure 3 — dispatch-instruction fraction (Lua baseline)\n\n"
        f"Paper: \"more than 25%\" on average.  Measured geomean: "
        f"{'n/a' if fig3_geomean is None else format(fig3_geomean, '.1%')}."
        f"\n\n```\n{fig3.text}\n```"
    )

    # Figure 7.
    fig7 = figure7(cache=cache)
    rows = []
    for vm in ("lua", "js"):
        for scheme in ("threaded", "vbbi", "scd"):
            measured = _minus_one(fig7.data[vm][scheme][-1])
            paper = PAPER[f"fig7_{vm}"][scheme]
            rows.append(
                [
                    f"{vm} {scheme} geomean speedup",
                    pct(paper),
                    pct(measured),
                    _verdict(paper, measured, 0.06),
                ]
            )
    sections.append(
        "## Figure 7 — overall speedups\n\n"
        + _comparison_table(rows)
        + "\n\n```\n"
        + fig7.text
        + "\n```"
    )

    # Figure 8.
    fig8 = figure8(cache=cache)
    rows = []
    for vm in ("lua", "js"):
        measured = _minus_one(fig8.data[vm]["scd"][-1])
        paper = PAPER[f"fig8_{vm}_scd"]
        rows.append(
            [
                f"{vm} SCD instruction-count delta",
                pct(paper),
                pct(measured),
                _verdict(paper, measured, 0.06),
            ]
        )
    sections.append(
        "## Figure 8 — normalized instruction count\n\n"
        + _comparison_table(rows)
        + "\n\n```\n"
        + fig8.text
        + "\n```"
    )

    # Figure 9.
    fig9 = figure9(cache=cache)
    rows = []
    for vm, key in (("lua", "fig9_lua_scd"), ("js", "fig9_js_scd")):
        series = fig9.data[vm]
        measured = (
            series["scd"][-1] / series["baseline"][-1] - 1
            if series["scd"][-1] is not None and series["baseline"][-1]
            else None
        )
        rows.append(
            [
                f"{vm} SCD branch-MPKI delta",
                pct(PAPER[key]),
                pct(measured),
                _verdict(PAPER[key], measured, 0.25),
            ]
        )
    sections.append(
        "## Figure 9 — branch MPKI\n\n"
        + _comparison_table(rows)
        + "\n\n```\n"
        + fig9.text
        + "\n```"
    )

    # Figure 10.
    fig10 = figure10(cache=cache)
    lua = fig10.data["lua"]
    rows = [
        [
            "lua baseline I-cache MPKI",
            f"{PAPER['fig10_lua_baseline_mpki']:.2f}",
            fmt(lua["baseline"][-1], ".2f"),
            "same regime",
        ],
        [
            "lua jump-threading I-cache MPKI",
            f"{PAPER['fig10_lua_threaded_mpki']:.2f}",
            fmt(lua["threaded"][-1], ".2f"),
            "direction only (see notes)",
        ],
    ]
    sections.append(
        "## Figure 10 — I-cache MPKI\n\n"
        + _comparison_table(rows)
        + "\n\n```\n"
        + fig10.text
        + "\n```"
    )

    # Table IV.
    t4 = table4(cache=cache)
    summary = t4.data["summary"]
    rows = [
        [
            "jump-threading inst savings (geomean)",
            pct(PAPER["table4_threaded_savings"], 2),
            pct(summary["threaded"]["savings"], 2),
            _verdict(PAPER["table4_threaded_savings"], summary["threaded"]["savings"], 0.02),
        ],
        [
            "jump-threading speedup (geomean)",
            pct(PAPER["table4_threaded_speedup"], 2),
            pct(summary["threaded"]["speedup"], 2),
            _verdict(PAPER["table4_threaded_speedup"], summary["threaded"]["speedup"], 0.08),
        ],
        [
            "SCD inst savings (geomean)",
            pct(PAPER["table4_scd_savings"], 2),
            pct(summary["scd"]["savings"], 2),
            _verdict(PAPER["table4_scd_savings"], summary["scd"]["savings"], 0.06),
        ],
        [
            "SCD speedup (geomean)",
            pct(PAPER["table4_scd_speedup"], 2),
            pct(summary["scd"]["speedup"], 2),
            _verdict(PAPER["table4_scd_speedup"], summary["scd"]["speedup"], 0.10),
        ],
    ]
    sections.append(
        "## Table IV — Rocket/FPGA configuration (Lua)\n\n"
        + _comparison_table(rows)
        + "\n\n```\n"
        + t4.text
        + "\n```"
    )

    # Table V.
    t5 = table5(cache=cache)
    rows = [
        ["total area delta", pct(PAPER["table5_area_delta"], 2),
         pct(t5.data["total_area_delta"], 2),
         _verdict(PAPER["table5_area_delta"], t5.data["total_area_delta"], 0.002)],
        ["total power delta", pct(PAPER["table5_power_delta"], 2),
         pct(t5.data["total_power_delta"], 2),
         _verdict(PAPER["table5_power_delta"], t5.data["total_power_delta"], 0.003)],
        ["EDP improvement", pct(PAPER["table5_edp_improvement"], 1),
         pct(t5.data["edp_improvement"], 1),
         _verdict(PAPER["table5_edp_improvement"], t5.data["edp_improvement"], 0.15)],
    ]
    sections.append(
        "## Table V — area / power / EDP\n\n"
        + _comparison_table(rows)
        + "\n\n```\n"
        + t5.text
        + "\n```"
    )

    # Figure 11.
    fig11 = figure11(cache=cache)
    sections.append(
        "## Figure 11 — BTB-size and JTE-cap sensitivity\n\n"
        "Paper: benefit shrinks with smaller BTBs but SCD \"still "
        "significantly outperforms the baseline even with a small BTB size "
        "(64)\"; capping the JTE population at the smallest BTB trades "
        "coverage against branch-target capacity.\n\n```\n"
        + fig11.text
        + "\n```"
    )

    # Figure 11 on the measured multi-level Arm geometries.
    geo_chunks = []
    for geometry in sorted(BTB_GEOMETRIES):
        geo = figure11(cache=cache, geometry=geometry)
        geo_chunks.append("```\n" + geo.text + "\n```")
    sections.append(
        "## Figure 11 on measured Arm BTB geometries\n\n"
        "The same sweep on the measured two-level (nano + main) front ends "
        "of `BTB_GEOMETRIES` (reverse-engineered Cortex-A72/A76 shapes: "
        "hashed main-level indexing, tree-pLRU replacement, extra redirect "
        "bubbles on main-level-only hits).  The size axis scales the main "
        "level from 1/8x to 1x of its measured capacity; the nano level is "
        "fixed.\n\n" + "\n\n".join(geo_chunks)
    )

    # Higher-end core.
    he = higher_end(cache=cache)
    rows = []
    for vm, key in (("lua", "higher_end_lua_scd"), ("js", "higher_end_js_scd")):
        measured = he.data[vm]["speedup_geomean"] - 1
        rows.append(
            [
                f"{vm} SCD speedup on dual-issue core",
                pct(PAPER[key]),
                pct(measured),
                _verdict(PAPER[key], measured, 0.08),
            ]
        )
    sections.append(
        "## Section VI-C2 — higher-end core\n\n"
        + _comparison_table(rows)
        + "\n\n```\n"
        + he.text
        + "\n```"
    )

    # Corpus: population-scale validation of the headline effect, when a
    # built-and-run corpus directory is supplied.
    if corpus is not None:
        from repro.corpus import corpus_section

        sections.append(corpus_section(corpus))

    # Telemetry: this regeneration's throughput, diffed against the
    # recorded benchmark baseline (see repro.obs.regress).
    sections.append("## Telemetry\n\n" + render_telemetry_section(METRICS))

    # Run health: surfaced only when this regeneration hit a degraded
    # path (retried jobs, per-job timeouts, dead workers, quarantined
    # cache entries) — the numbers the sweep survived, not hid.
    faults = METRICS.fault_summary()
    if faults:
        sections.append(
            "## Run health\n\n"
            f"This regeneration degraded but recovered: {faults}. "
            "Quarantined entries live under `<cache-root>/quarantine/` "
            "with a `.reason.txt` sidecar each; see docs/TESTING.md "
            "(failure semantics) for what every counter means."
        )

    return "\n\n".join(sections) + "\n"
