"""On-disk cache of simulation results.

A simulation is deterministic given (vm, scheme, workload, scale, machine
configuration, model version), so its :class:`~repro.core.results.SimResult`
can be cached.  The cache lives in ``~/.cache/scd-repro/`` (override with
``SCD_REPRO_CACHE_DIR``); run ``scd-repro clear-cache``, delete the
directory, or bump :data:`CACHE_VERSION` to invalidate.

Layout (v3+): one JSON file per entry under ``<root>/v<N>/<name>/``, named
by a hash of the key.  Writes go through a per-process temp file and
``os.replace``, so any number of worker processes (see
:mod:`repro.harness.parallel`) can populate one cache directory
concurrently without locks.  A missing entry is a plain miss; a torn,
corrupt or key-mismatched entry is *quarantined* — moved to
``<root>/quarantine/<name>/`` with a ``.reason.txt`` sidecar explaining
what was wrong — instead of being silently re-parsed (and re-failed) on
every later run.  Quarantine events are counted in
:data:`repro.harness.parallel.METRICS`.  Stale ``*.tmp`` droppings left
behind by crashed writers are swept on store construction.  Earlier
versions used one monolithic ``results-v2.json`` that was re-serialized
in full on every ``put`` and corrupted under concurrent writers; bumping
:data:`CACHE_VERSION` makes those files invisible (and
:meth:`ResultCache.clear` deletes them).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path

from repro.core.results import SimResult
from repro.harness import faults
from repro.uarch.config import CoreConfig, cortex_a5
from repro.vm.capture import RecordedTrace, TraceFormatError

#: Bump when the native model, uarch model, workloads or the cache layout
#: change behaviour.  v3 introduced the sharded per-entry layout.  v4: the
#: BTB round-robin victim rotation was fixed (physical-way pointer), which
#: changes simulated figures for SCD runs with JTE/branch set contention.
CACHE_VERSION = 4

#: Wall-clock instant this process (or, under ``fork``, its parent)
#: imported the cache layer.  ``*.tmp`` files older than this were left
#: by a crashed writer of an earlier run and are swept on store
#: construction; younger ones may be a live sibling's in-flight write.
_PROCESS_START = time.time()


def _cache_dir() -> Path:
    override = os.environ.get("SCD_REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "scd-repro"


def _sweep_stale_tmp(path: Path) -> int:
    """Remove ``*.tmp`` droppings in *path* older than this process."""
    if not path.is_dir():
        return 0
    removed = 0
    for tmp in path.glob("*.tmp"):
        try:
            if tmp.stat().st_mtime < _PROCESS_START:
                tmp.unlink()
                removed += 1
        except OSError:  # raced with another sweeper or a live writer
            continue
    return removed


def _quarantine_entry(
    root: Path, store: str, path: Path, reason: str
) -> Path | None:
    """Move a corrupt entry file to ``<root>/quarantine/<store>/``.

    A ``<name>.reason.txt`` sidecar records why.  Returns the new
    location, or ``None`` if another process won the race (or the root
    is unwritable) — either way the caller treats the probe as a miss.
    """
    quarantine_dir = root / "quarantine" / store
    dest = quarantine_dir / path.name
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        os.replace(path, dest)
    except OSError:
        return None
    try:
        dest.with_name(dest.name + ".reason.txt").write_text(
            f"store: {store}\n"
            f"entry: {path}\n"
            f"reason: {reason}\n"
            f"quarantined_at: {time.strftime('%Y-%m-%dT%H:%M:%S%z')}\n"
        )
    except OSError:
        pass
    # Imported late: parallel imports this module at load time.
    from repro.harness.parallel import METRICS

    METRICS.quarantined += 1
    from repro import obs

    obs.event("quarantine", store=store, entry=path.name, reason=reason)
    return dest


def _corrupt_shard_hook(path: Path) -> None:
    """Give the fault-injection layer a chance to corrupt a fresh shard."""
    plan = faults.get_plan()
    if plan is not None:
        plan.on_shard_write(path)


def config_signature(config: CoreConfig) -> str:
    """Stable textual signature of every timing-relevant config field."""
    parts = [
        config.name,
        str(config.issue_width),
        str(config.branch_penalty),
        str(config.decode_redirect_penalty),
        config.direction_predictor,
        json.dumps(config.predictor_params, sort_keys=True),
        f"{config.btb_entries}/{config.btb_ways}/{config.btb_policy}"
        f"/{config.btb_index}",
        "+".join(
            f"{lv.entries}/{lv.ways}/{lv.policy}/{lv.index}/{lv.latency}"
            for lv in config.btb_levels
        ) or "flat",
        str(config.ras_depth),
        f"ic{config.icache.size_bytes}w{config.icache.ways}",
        f"dc{config.dcache.size_bytes}w{config.dcache.ways}",
        f"l2{config.l2.size_bytes if config.l2 else 0}",
        f"tlb{config.itlb_entries}/{config.dtlb_entries}/{config.tlb_miss_penalty}",
        f"dram{config.dram.mt_per_s}/{config.dram.t_cl}",
        config.indirect_scheme,
        f"scd{config.scd_stall_policy}/{config.scd_stall_cycles}/{config.scd_tables}",
        f"cap{config.jte_cap}",
        f"clk{config.clock_mhz}",
    ]
    return ";".join(parts)


def sim_cache_key(
    vm: str,
    scheme: str,
    workload: str,
    scale: str,
    config: CoreConfig | None,
    kwargs: dict | None = None,
) -> str:
    """Canonical cache key of one simulation.

    ``config=None`` resolves to the default :func:`cortex_a5` before the
    signature is taken, so the default and an explicit instance share one
    entry.  Extra keyword arguments are canonicalized with
    ``json.dumps(..., sort_keys=True)`` so dict-valued values and argument
    order can neither alias distinct runs nor miss identical ones.
    """
    if config is None:
        config = cortex_a5()
    extras = json.dumps(dict(kwargs or {}), sort_keys=True, default=repr)
    return "|".join(
        [vm, scheme, workload, scale, config_signature(config), extras]
    )


class ResultCache:
    """A sharded, concurrency-safe keyed store of simulation results.

    Args:
        name: store name (sub-directory under the versioned cache root).
        root: cache root directory; defaults to ``SCD_REPRO_CACHE_DIR`` or
            ``~/.cache/scd-repro``.  Pool workers receive the parent's
            resolved root explicitly so every process shards into the same
            directory.

    Attributes:
        path: the store's entry directory.
        hits / misses: per-instance probe counters (the harness summary
            reports them).
        tmp_swept: stale ``*.tmp`` files removed at construction.
    """

    def __init__(self, name: str = "results", root: str | Path | None = None):
        self.name = name
        self.root = Path(root) if root is not None else _cache_dir()
        self.path = self.root / f"v{CACHE_VERSION}" / name
        self.hits = 0
        self.misses = 0
        self.tmp_swept = _sweep_stale_tmp(self.path)
        # Per-key memo of *hits only*.  Entries are immutable once written
        # (simulations are deterministic), so replaying a previously-read
        # value is always correct — but a miss is never memoized, so
        # entries written concurrently by other processes are picked up on
        # the next probe.  (The pre-v3 monolithic cache memoized the whole
        # file, going permanently stale against other writers.)
        self._memo: dict[str, SimResult] = {}

    def entry_path(self, key: str) -> Path:
        """The entry file that *key* shards to."""
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.path / f"{digest}.json"

    def get(self, key: str) -> SimResult | None:
        memo = self._memo.get(key)
        if memo is not None:
            self.hits += 1
            return memo
        path = self.entry_path(key)
        try:
            text = path.read_text()
        except OSError:
            # Missing entry (or unreadable store): a plain miss.
            self.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry.get("key") != key:
                raise ValueError("entry key mismatch (collision or moved file)")
            result = SimResult.from_dict(entry["result"])
        except (ValueError, TypeError, KeyError, AttributeError) as exc:
            # Torn, corrupt, hash-collided or schema-mismatched: move the
            # entry out of the way so it is not re-parsed every run.
            _quarantine_entry(
                self.root, self.name, path, f"{type(exc).__name__}: {exc}"
            )
            self.misses += 1
            return None
        self._memo[key] = result
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"key": key, "result": result.to_dict()})
        # Unique temp name per process; os.replace is atomic within the
        # directory, so concurrent writers of the same key just race to
        # install identical bytes.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        _corrupt_shard_hook(path)
        self._memo[key] = result

    def clear(self) -> None:
        """Drop every entry, stale ``*.tmp`` leftovers and any legacy
        monolithic cache files for this store name."""
        self._memo.clear()
        self.hits = 0
        self.misses = 0
        if self.path.is_dir():
            shutil.rmtree(self.path, ignore_errors=True)
        elif self.path.exists():
            self.path.unlink()
        for legacy in self.root.glob(f"{self.name}-v*.*"):
            try:
                legacy.unlink()
            except OSError:
                pass


def memo_key(
    trace_key: str,
    scheme: str,
    config: CoreConfig,
    context_switch_interval: int | None,
    context_switch_policy: str,
    structure_digest: str,
    chunk_events: int,
) -> str:
    """Canonical store key of one persisted steady-state memo table.

    Memo entries are transitions of the *joint* (machine, runner) state
    under a fixed event stream, so the key embeds everything that shapes
    either: the trace identity (which itself embeds the trace-format
    version), the scheme and full timing config, the OS-interaction
    model, the native model's structural digest (handler/block layout —
    a model edit must invalidate persisted digests), the chunking grain
    and :data:`~repro.uarch.pipeline.MEMO_FORMAT_VERSION`.  Any drift in
    any of these reads as a store miss, never as a mis-applied memo.
    """
    from repro.uarch.pipeline import MEMO_FORMAT_VERSION

    return "|".join([
        "memo",
        f"v{MEMO_FORMAT_VERSION}",
        trace_key,
        scheme,
        config_signature(config),
        f"cs{context_switch_interval}/{context_switch_policy}",
        structure_digest,
        f"chunk{chunk_events}",
    ])


class MemoStore:
    """A sharded, concurrency-safe store of persisted steady-state memos.

    Same v3 layout and write discipline as :class:`TraceStore` (one
    ``.bin`` entry per key, temp-file + ``os.replace`` writes, stale-tmp
    sweep), holding the framed payloads of
    :meth:`repro.uarch.pipeline.SteadyStateMemo.export_payload`.  Reads
    validate the magic/version/CRC frame via
    :func:`repro.uarch.pipeline.check_memo_frame`; a torn or stale shard
    is quarantined with a reason sidecar and read as a miss.  The pickled
    interior is *not* decoded here — binding tokens back to live model
    objects needs the model's codec, so deeper defects surface as
    :class:`~repro.uarch.pipeline.MemoFormatError` at import time and the
    caller falls back to an empty memo.

    Unlike traces, memo entries are *append-mostly*: a later session can
    legitimately overwrite a shard with a superset table, so no key
    echo-check beyond the payload's own embedded key (verified by
    ``import_payload``) is needed.
    """

    def __init__(self, name: str = "memos", root: str | Path | None = None):
        self.name = name
        self.root = Path(root) if root is not None else _cache_dir()
        self.path = self.root / f"v{CACHE_VERSION}" / name
        self.hits = 0
        self.misses = 0
        self.tmp_swept = _sweep_stale_tmp(self.path)

    def entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.path / f"{digest}.bin"

    def get(self, key: str) -> bytes | None:
        """Return the framed payload for *key*, or None on miss.

        Frame-level corruption (bad magic, stale version, CRC mismatch)
        quarantines the shard.
        """
        from repro.uarch.pipeline import MemoFormatError, check_memo_frame

        path = self.entry_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            check_memo_frame(data)
        except MemoFormatError as exc:
            _quarantine_entry(self.root, self.name, path, str(exc))
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put(self, key: str, payload: bytes) -> None:
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        _corrupt_shard_hook(path)

    def quarantine(self, key: str, reason: str) -> None:
        """Quarantine the shard behind *key* after a deep-decode failure.

        :meth:`get` only validates the outer frame; when
        ``import_payload`` later rejects the pickled interior
        (:class:`~repro.uarch.pipeline.MemoFormatError` — e.g. a
        geometry-mismatched BTB digest), the caller reports the shard
        here so it lands next to the frame-level corruption instead of
        being re-served on every run.
        """
        path = self.entry_path(key)
        if path.exists():
            _quarantine_entry(self.root, self.name, path, reason)

    def clear(self) -> None:
        self.hits = 0
        self.misses = 0
        if self.path.is_dir():
            shutil.rmtree(self.path, ignore_errors=True)
        elif self.path.exists():
            self.path.unlink()


class TraceStore:
    """A sharded, concurrency-safe store of recorded VM trace streams.

    Shares the v3 cache layout and write discipline of
    :class:`ResultCache` — one file per entry named by a hash of the key,
    temp-file + ``os.replace`` writes, stale-tmp sweep at construction —
    but holds the columnar binary artifacts of :mod:`repro.vm.capture`
    (``.bin`` entries) instead of JSON results.  Keys come from
    :func:`repro.vm.capture.trace_key` and embed the trace-format
    version, so a format bump invalidates stale traces rather than
    misreading them; a corrupt, truncated or version-mismatched file
    (the :class:`~repro.vm.capture.TraceFormatError` contract) reads
    back as a miss and is quarantined with a reason sidecar.
    """

    def __init__(self, name: str = "traces", root: str | Path | None = None):
        self.name = name
        self.root = Path(root) if root is not None else _cache_dir()
        self.path = self.root / f"v{CACHE_VERSION}" / name
        self.hits = 0
        self.misses = 0
        self.tmp_swept = _sweep_stale_tmp(self.path)
        # Hits-only memo, mirroring ResultCache: traces are immutable once
        # written, but a miss is never memoized so concurrent recorders
        # are picked up on the next probe.
        self._memo: dict[str, RecordedTrace] = {}

    def entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.path / f"{digest}.bin"

    def get(self, key: str) -> RecordedTrace | None:
        memo = self._memo.get(key)
        if memo is not None:
            self.hits += 1
            return memo
        path = self.entry_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            trace = RecordedTrace.from_bytes(data)
            if trace.key != key:
                raise TraceFormatError("entry key mismatch")
        except TraceFormatError as exc:
            _quarantine_entry(self.root, self.name, path, str(exc))
            self.misses += 1
            return None
        self._memo[key] = trace
        self.hits += 1
        return trace

    def put(self, key: str, trace: RecordedTrace) -> None:
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = trace.to_bytes(key=key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        _corrupt_shard_hook(path)
        self._memo[key] = trace

    def clear(self) -> None:
        self._memo.clear()
        self.hits = 0
        self.misses = 0
        if self.path.is_dir():
            shutil.rmtree(self.path, ignore_errors=True)
        elif self.path.exists():
            self.path.unlink()


#: Process-wide default cache instances.
DEFAULT_CACHE = ResultCache()
DEFAULT_TRACE_STORE = TraceStore()
DEFAULT_MEMO_STORE = MemoStore()
