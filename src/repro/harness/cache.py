"""On-disk cache of simulation results.

A simulation is deterministic given (vm, scheme, workload, scale, machine
configuration, model version), so its :class:`~repro.core.results.SimResult`
can be cached.  The cache lives in ``~/.cache/scd-repro/`` (override with
``SCD_REPRO_CACHE_DIR``); delete the directory or bump
:data:`CACHE_VERSION` to invalidate.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.results import SimResult
from repro.uarch.config import CoreConfig

#: Bump when the native model, uarch model or workloads change behaviour.
CACHE_VERSION = 2


def _cache_dir() -> Path:
    override = os.environ.get("SCD_REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "scd-repro"


def config_signature(config: CoreConfig) -> str:
    """Stable textual signature of every timing-relevant config field."""
    parts = [
        config.name,
        str(config.issue_width),
        str(config.branch_penalty),
        str(config.decode_redirect_penalty),
        config.direction_predictor,
        json.dumps(config.predictor_params, sort_keys=True),
        f"{config.btb_entries}/{config.btb_ways}/{config.btb_policy}",
        str(config.ras_depth),
        f"ic{config.icache.size_bytes}w{config.icache.ways}",
        f"dc{config.dcache.size_bytes}w{config.dcache.ways}",
        f"l2{config.l2.size_bytes if config.l2 else 0}",
        f"tlb{config.itlb_entries}/{config.dtlb_entries}/{config.tlb_miss_penalty}",
        f"dram{config.dram.mt_per_s}/{config.dram.t_cl}",
        config.indirect_scheme,
        f"scd{config.scd_stall_policy}/{config.scd_stall_cycles}/{config.scd_tables}",
        f"cap{config.jte_cap}",
        f"clk{config.clock_mhz}",
    ]
    return ";".join(parts)


class ResultCache:
    """A simple JSON-file keyed store of simulation results."""

    def __init__(self, name: str = "results"):
        self.path = _cache_dir() / f"{name}-v{CACHE_VERSION}.json"
        self._data: dict[str, dict] | None = None

    def _load(self) -> dict[str, dict]:
        if self._data is None:
            if self.path.exists():
                try:
                    self._data = json.loads(self.path.read_text())
                except (json.JSONDecodeError, OSError):
                    self._data = {}
            else:
                self._data = {}
        return self._data

    def get(self, key: str) -> SimResult | None:
        entry = self._load().get(key)
        if entry is None:
            return None
        try:
            return SimResult.from_dict(entry)
        except TypeError:
            return None

    def put(self, key: str, result: SimResult) -> None:
        data = self._load()
        data[key] = result.to_dict()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(data))
        tmp.replace(self.path)

    def clear(self) -> None:
        self._data = {}
        if self.path.exists():
            self.path.unlink()


#: Process-wide default cache instance.
DEFAULT_CACHE = ResultCache()
