"""Command-line interface: ``python -m repro.harness <experiment>``.

Commands::

    scd-repro list                 # available experiments / workloads
    scd-repro run fibo --vm lua --scheme scd
    scd-repro figure7              # any experiment id from the registry
    scd-repro all                  # every experiment, in paper order
    scd-repro report               # regenerate EXPERIMENTS.md content
    scd-repro profile fibo         # bytecode + uarch profile of one workload
    scd-repro bench                # BENCH_dispatch.json vs its guard floors
    scd-repro bench --update       # regenerate it from the perf-smoke grid
    scd-repro corpus build --seed 7 --size 256   # stratified corpus + manifest
    scd-repro corpus run -j2       # batch-run it with per-file accounting
    scd-repro corpus report        # stratified geomeans + MPKI percentiles
    scd-repro clear-cache
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.core.simulation import SCHEMES, simulate
from repro.harness import faults
from repro.harness.cache import (
    DEFAULT_CACHE,
    DEFAULT_MEMO_STORE,
    DEFAULT_TRACE_STORE,
)
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.parallel import (
    METRICS,
    set_default_job_timeout,
    set_default_retries,
    set_default_workers,
)
from repro.uarch.config import CONFIG_PRESETS
from repro.vm.capture import set_default_trace_mode
from repro.workloads import workload_names


def _cmd_list(_args) -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("\nworkloads:")
    for name in workload_names():
        print(f"  {name}")
    print(
        f"\nschemes: {', '.join(SCHEMES)} "
        "(+ ttc, cascaded, ittage, superinst)"
    )
    print(f"machines: {', '.join(CONFIG_PRESETS)}")
    return 0


def _cmd_run(args) -> int:
    config = CONFIG_PRESETS[args.machine]()
    result = simulate(
        args.workload,
        vm=args.vm,
        scheme=args.scheme,
        config=config,
        scale=args.scale,
    )
    print(f"{args.vm}/{args.workload}/{args.scheme} on {args.machine}:")
    print(f"  guest bytecodes : {result.guest_steps}")
    print(f"  host insts      : {result.instructions}")
    print(f"  cycles          : {result.cycles}  (CPI {result.cpi:.3f})")
    print(f"  branch MPKI     : {result.branch_mpki:.2f}")
    print(f"  icache MPKI     : {result.icache_mpki:.2f}")
    print(f"  dispatch frac   : {result.dispatch_fraction * 100:.1f}%")
    if result.bop_hits or result.bop_misses:
        print(f"  bop hit rate    : {result.bop_hit_rate * 100:.2f}%")
    if args.show_output:
        print("  guest output:")
        for line in result.output:
            print(f"    {line}")
    return 0


def _cmd_experiment(name: str, geometry: str | None = None) -> int:
    METRICS.reset()
    start = time.perf_counter()
    if geometry is not None:
        result = run_experiment(name, geometry=geometry)
    else:
        result = run_experiment(name)
    print(result.text)
    print(METRICS.summary(time.perf_counter() - start), file=sys.stderr)
    return 0


def _cmd_all(_args) -> int:
    METRICS.reset()
    start = time.perf_counter()
    for name in EXPERIMENTS:
        print(f"=== {name} " + "=" * max(0, 66 - len(name)))
        print(run_experiment(name).text)
        print()
    print(METRICS.summary(time.perf_counter() - start), file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from repro.harness.report import generate_report

    METRICS.reset()
    start = time.perf_counter()
    print(generate_report(corpus=getattr(args, "corpus", None)))
    # The summary's "trace reuse" part shows the per-sweep time saved by
    # replaying recorded event streams instead of re-interpreting.
    print(METRICS.summary(time.perf_counter() - start), file=sys.stderr)
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import DifferentialRunner, minimize_and_record

    runner = DifferentialRunner(
        seed=args.seed,
        iters=args.iters,
        pool_every=args.pool_every,
        progress=lambda line: print(line, flush=True),
    )
    start = time.perf_counter()
    report = runner.run()
    print(report.summary())
    print(f"({time.perf_counter() - start:.1f}s)", file=sys.stderr)
    if report.ok:
        return 0
    for discrepancy in report.discrepancies:
        print(f"FAIL {discrepancy.describe()}", file=sys.stderr)
    if not args.no_shrink:
        for path in minimize_and_record(report.discrepancies):
            print(f"minimized regression written to {path}", file=sys.stderr)
    return 1


def _cmd_profile(args) -> int:
    from repro.vm.profile import (
        profile_workload,
        suggest_fusion,
        suggest_superblocks,
    )

    if args.suggest_fusion:
        with obs.span("experiment", experiment=f"fusion:{args.workload}"):
            profile = profile_workload(args.workload, vm=args.vm)
        rows = suggest_fusion(profile, count=args.top)
        seq_rows = suggest_superblocks(profile, count=args.top)
        if args.json:
            print(json.dumps(
                {
                    "vm": args.vm,
                    "workload": args.workload,
                    "pairs": rows,
                    "sequences": seq_rows,
                },
                indent=2, sort_keys=True,
            ))
            return 0
        prefix = "Op" if args.vm == "lua" else "JsOp"
        print(
            f"# {args.vm}/{args.workload}: top {len(rows)} fusible pairs "
            f"({profile.steps} bytecodes; * = already in the table)"
        )
        print("FUSED_PAIRS: tuple = (")
        for row in rows:
            entry = f"    ({prefix}.{row['first']}, {prefix}.{row['second']}),"
            mark = "*" if row["in_table"] else " "
            print(
                f"{entry:<44}# {mark} {row['count']:>10,} dyn, "
                f"cum {row['coverage']:6.2%}"
            )
        print(")")
        print(
            f"\n# top {len(seq_rows)} recurring kernel-key sequences "
            "(batch superblock candidates, canonical rotation; "
            "(op, site) pairs as the segmenter keys them)"
        )
        print("SUPERBLOCK_BODIES: tuple = (")
        for row in seq_rows:
            print(
                f"    # period {row['period']}, {row['events']:,} events "
                f"({row['share']:.2%}): {' '.join(row['names'])}"
            )
            keys = ", ".join(f"({op}, {site})" for op, site in row["keys"])
            print(f"    ({keys}),")
        print(")")
        return 0

    with obs.span("experiment", experiment=f"profile:{args.workload}"):
        profile = profile_workload(args.workload, vm=args.vm)
        run_metrics: dict = {}
        simulate(
            args.workload,
            vm=args.vm,
            scheme=args.scheme,
            config=CONFIG_PRESETS[args.machine](),
            metrics=run_metrics,
        )
    uarch = run_metrics.get("uarch", {})
    if args.json:
        payload = profile.to_dict(top=args.top)
        payload["machine"] = args.machine
        payload["scheme"] = args.scheme
        payload["uarch"] = uarch
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    steps = max(profile.steps, 1)
    print(f"{args.vm}/{args.workload}: {profile.steps} bytecodes executed")
    print("\ntop opcodes:")
    for name, count in profile.top_opcodes(args.top):
        print(f"  {name:<24} {count:>12}  {count / steps:7.2%}")
    print("\ntop adjacent pairs (superinstruction candidates):")
    for name, count in profile.top_pairs(args.top):
        print(f"  {name:<36} {count:>12}")
    print("\ndispatch-site mix:")
    for site, share in profile.site_mix().items():
        print(f"  {site:<12} {share:7.2%}")
    print(f"\nuarch counters ({args.scheme} on {args.machine}):")
    for component, counters in uarch.items():
        print(f"  {component}:")
        for key, value in counters.items():
            if isinstance(value, dict):
                print(f"    {key}:")
                for sub_key, sub_value in value.items():
                    print(f"      {sub_key:<22} {sub_value}")
            else:
                print(f"    {key:<24} {value}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.obs import regress

    if args.update:
        suite = (
            Path(__file__).resolve().parents[3]
            / "benchmarks" / "test_perf_smoke.py"
        )
        if not suite.is_file():
            print(f"perf-smoke suite not found at {suite}", file=sys.stderr)
            return 1
        import pytest

        env_key = "SCD_SKIP_PERF_GUARD"
        previous = os.environ.get(env_key)
        if not args.guard:
            # Regeneration is about recording this host's numbers, not
            # judging them; floors are re-checked below and by CI.
            os.environ[env_key] = "1"
        try:
            code = pytest.main(["-q", "-p", "no:cacheprovider", str(suite)])
        finally:
            if not args.guard:
                if previous is None:
                    os.environ.pop(env_key, None)
                else:
                    os.environ[env_key] = previous
        if code != 0:
            return int(code)

    found = regress.find_bench()
    bench = regress.load_bench()
    if bench is None:
        print(
            f"no {regress.BENCH_NAME} found; run 'scd-repro bench --update'",
            file=sys.stderr,
        )
        return 1
    from repro.harness.bench import BENCH_CHECKS

    guard = bench.get("guard", {})
    checks = tuple(
        (label, bench.get(section, {}).get(field), guard.get(floor_key))
        for label, section, field, floor_key in BENCH_CHECKS
    )
    print(f"# {found}")
    below = 0
    for name, measured, floor in checks:
        if measured is None or floor is None:
            verdict = "n/a"
        elif measured >= floor:
            verdict = "ok"
        else:
            verdict = "BELOW FLOOR"
            below = 1
        shown = "n/a" if measured is None else f"{measured:,.1f}"
        limit = "n/a" if floor is None else f"{floor:,.1f}"
        print(f"  {name:<33} {shown:>12}  (floor {limit:>9})  {verdict}")
    return below


def _cmd_corpus(args) -> int:
    from pathlib import Path

    from repro.corpus import build_corpus, corpus_section, run_corpus

    root = Path(args.root)
    if args.corpus_command == "build":
        strata = tuple(args.strata.split(",")) if args.strata else None
        manifest = build_corpus(
            root, seed=args.seed, size=args.size, strata=strata,
            force=args.force,
        )
        print(
            f"built corpus of {manifest['size']} program(s) at {root} "
            f"(seed {manifest['seed']})"
        )
        per_stratum: dict[str, int] = {}
        for row in manifest["programs"]:
            per_stratum[row["stratum"]] = per_stratum.get(row["stratum"], 0) + 1
        for name, count in sorted(per_stratum.items()):
            print(f"  {name:<10} {count}")
        return 0

    if args.corpus_command == "run":
        vms = ("lua", "js") if args.vm == "both" else (args.vm,)
        schemes = tuple(args.schemes.split(",")) if args.schemes else SCHEMES
        workers = args.corpus_jobs if args.corpus_jobs is not None else args.jobs
        METRICS.reset()
        start = time.perf_counter()
        summary = run_corpus(
            root,
            vms=vms,
            schemes=schemes,
            workers=workers,
            limit=args.limit,
            strata=tuple(args.stratum) if args.stratum else None,
        )
        print(
            f"corpus run ({root}): {summary.ok} ok, {summary.error} error, "
            f"{summary.skipped} skipped of {summary.total}"
        )
        for name, tally in sorted(summary.by_stratum.items()):
            print(
                f"  {name:<10} ok {tally['ok']:>5}  error {tally['error']:>5}"
                f"  skipped {tally['skipped']:>5}"
            )
        for name, reason in sorted(summary.errors.items()):
            print(f"  quarantined {name}: {reason}", file=sys.stderr)
        if summary.quarantined:
            print(
                f"  cache shards quarantined during run: {summary.quarantined}",
                file=sys.stderr,
            )
        print(METRICS.summary(time.perf_counter() - start), file=sys.stderr)
        # Per-file failures are accounting, not an abort; the exit code
        # reflects whether the batch produced a trustworthy results file.
        return 0

    print(corpus_section(root))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import run_service

    def ready(address) -> None:
        host, port = address
        print(f"sweep service listening on {host}:{port}", flush=True)

    # Explicit per-instance limits, never the process-wide set_default_*
    # overrides: the service is long-running and concurrent, so its
    # worker/retry/timeout choices are scheduler state, not globals a
    # second sweep could clobber mid-flight.
    try:
        return asyncio.run(
            run_service(
                host=args.host,
                port=args.port,
                workers=args.jobs,
                retries=args.retries,
                job_timeout=args.job_timeout,
                queue_depth=args.queue_depth,
                max_inflight=args.max_inflight,
                budget=args.client_budget,
                ready=ready,
            )
        )
    except KeyboardInterrupt:
        print("sweep service interrupted; exiting", file=sys.stderr)
        return 0


def _cmd_submit(args) -> int:
    from repro.service import protocol
    from repro.service.client import (
        ServiceError,
        SweepClient,
        SweepRejected,
    )

    if not args.workloads and not (args.shutdown or args.stats):
        print(
            "submit: nothing to do (need --workloads, --stats or "
            "--shutdown)",
            file=sys.stderr,
        )
        return 2
    try:
        client = SweepClient(args.host, args.port, timeout=args.timeout)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    code = 0
    with client:
        if args.workloads:
            grid: dict = {
                "workloads": args.workloads.split(","),
                "vms": (
                    ["lua", "js"] if args.vm == "both" else [args.vm]
                ),
                "schemes": (
                    args.schemes.split(",") if args.schemes
                    else list(SCHEMES)
                ),
            }
            if args.machine != "cortex-a5":
                grid["machine"] = args.machine
            kwargs: dict = {}
            if args.n is not None:
                kwargs["n"] = args.n
            if args.no_check_output:
                kwargs["check_output"] = False
            if kwargs:
                grid["kwargs"] = kwargs
            entries = protocol.expand_grid(grid)
            done_count = [0]

            def on_event(event: dict) -> None:
                done_count[0] += 1
                entry = entries[event["index"]]
                label = (
                    f"{entry['vm']}/{entry['workload']}/{entry['scheme']}"
                )
                how = "ok" if event.get("ok") else "FAILED"
                notes = [
                    note
                    for note, flag in (
                        ("cached", event.get("cached")),
                        ("deduped", event.get("deduped")),
                    )
                    if flag
                ]
                suffix = f" ({', '.join(notes)})" if notes else ""
                print(
                    f"[{done_count[0]}/{len(entries)}] {label} "
                    f"{how}{suffix}",
                    file=sys.stderr,
                    flush=True,
                )

            try:
                outcome = client.submit(grid=grid, on_event=on_event)
            except SweepRejected as exc:
                print(f"submit: rejected: {exc}", file=sys.stderr)
                return 3
            except ServiceError as exc:
                print(f"submit: {exc}", file=sys.stderr)
                return 2
            done = outcome.done
            print(
                f"request {done.get('id')}: {done.get('ok')} ok, "
                f"{done.get('failed')} failed of {done.get('jobs')} "
                f"({done.get('unique')} unique, {done.get('deduped')} "
                f"deduped, {done.get('cached')} cached)"
            )
            for index, detail in outcome.failures():
                entry = entries[index]
                first = detail.strip().splitlines()[-1] if detail else ""
                print(
                    f"  FAILED {entry['vm']}/{entry['workload']}/"
                    f"{entry['scheme']}: {first}",
                    file=sys.stderr,
                )
            if args.json:
                print(
                    json.dumps(
                        [
                            None if result is None else result.to_dict()
                            for result in outcome.results
                        ],
                        indent=2,
                        sort_keys=True,
                    )
                )
            if not outcome.ok:
                code = 1
        if args.stats:
            reply = client.stats()
            print(json.dumps(reply["scheduler"], indent=2, sort_keys=True))
        if args.shutdown:
            client.shutdown()
    return code


def _cmd_clear_cache(_args) -> int:
    DEFAULT_CACHE.clear()
    DEFAULT_TRACE_STORE.clear()
    DEFAULT_MEMO_STORE.clear()
    print(f"cleared {DEFAULT_CACHE.path}")
    print(f"cleared {DEFAULT_TRACE_STORE.path}")
    print(f"cleared {DEFAULT_MEMO_STORE.path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="scd-repro",
        description="Short-Circuit Dispatch (ISCA 2016) reproduction harness",
        # Without this, a subcommand option like `submit --n` is grabbed
        # by the top-level abbreviation matcher (ambiguous against
        # --no-kernel/--no-batch/--no-trace-cache) before dispatch.
        allow_abbrev=False,
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for experiment fan-out "
        "(default: SCD_REPRO_JOBS or the CPU count; 1 = in-process)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="per-job retry budget before a sweep aborts "
        "(default: SCD_REPRO_RETRIES or 2)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job timeout in seconds for pooled sweeps; a timed-out "
        "job is retried on a fresh pool (default: SCD_REPRO_JOB_TIMEOUT "
        "or no timeout)",
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject a deterministic fault for testing the degraded paths: "
        "kill-worker:N, fail-job:N, delay-job:N:SECONDS or corrupt-shard:N "
        "(repeatable; equivalent to SCD_FAULT)",
    )
    parser.add_argument(
        "--trace-log",
        metavar="PATH",
        default=None,
        help="write a span-trace JSONL log of this invocation to PATH; "
        "pool workers append to the same file (equivalent to "
        "SCD_TRACE_LOG; validate with 'python -m repro.obs PATH', "
        "schema in docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--no-kernel",
        action="store_true",
        help="disable the exec-compiled replay kernels for this invocation "
        "and use the event-by-event interpreted path (equivalent to "
        "SCD_REPRO_KERNEL=0; results are byte-identical either way)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable chunk-compiled batch (superblock) replay for this "
        "invocation and fall back to the per-event kernels (equivalent "
        "to SCD_REPRO_BATCH=0; results are byte-identical either way)",
    )
    trace_group = parser.add_mutually_exclusive_group()
    trace_group.add_argument(
        "--record",
        action="store_true",
        help="re-interpret every workload and overwrite its recorded trace",
    )
    trace_group.add_argument(
        "--replay",
        action="store_true",
        help="require recorded traces (error on any missing one)",
    )
    trace_group.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable trace recording/replay for this invocation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, workloads, schemes")

    run_parser = sub.add_parser("run", help="run one simulation")
    run_parser.add_argument("workload", choices=workload_names())
    run_parser.add_argument("--vm", choices=("lua", "js"), default="lua")
    run_parser.add_argument(
        "--scheme",
        choices=SCHEMES + ("ttc", "cascaded", "ittage", "superinst"),
        default="scd",
    )
    run_parser.add_argument(
        "--machine", choices=tuple(CONFIG_PRESETS), default="cortex-a5"
    )
    run_parser.add_argument("--scale", choices=("sim", "fpga"), default="sim")
    run_parser.add_argument("--show-output", action="store_true")

    verify_parser = sub.add_parser(
        "verify",
        help="differential verification: fuzz generated guest programs "
        "across every scheme, execution path and VM",
    )
    verify_parser.add_argument(
        "--seed", type=int, default=0, help="base program seed (default 0)"
    )
    verify_parser.add_argument(
        "--iters",
        type=int,
        default=50,
        metavar="N",
        help="number of generated programs (default 50)",
    )
    verify_parser.add_argument(
        "--pool-every",
        type=int,
        default=10,
        metavar="K",
        help="serial-vs-pool equivalence check every K programs "
        "(0 disables; default 10)",
    )
    verify_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimizing them into tests/corpus/",
    )

    profile_parser = sub.add_parser(
        "profile",
        help="dynamic bytecode profile + per-component uarch counters "
        "for one workload",
    )
    profile_parser.add_argument("workload", choices=workload_names())
    profile_parser.add_argument("--vm", choices=("lua", "js"), default="lua")
    profile_parser.add_argument(
        "--scheme",
        choices=SCHEMES + ("ttc", "cascaded", "ittage", "superinst"),
        default="scd",
    )
    profile_parser.add_argument(
        "--machine", choices=tuple(CONFIG_PRESETS), default="cortex-a5"
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows per histogram (default 10)",
    )
    profile_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    profile_parser.add_argument(
        "--suggest-fusion",
        action="store_true",
        help="rank straight-line adjacent opcode pairs by dynamic count "
        "and print them in the backend FUSED_PAIRS table format "
        "(superinstruction selection aid), plus recurring kernel-key "
        "sequences (length 3-8) in the batch segmenter's (op, site) form",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="show BENCH_dispatch.json against its guard floors; "
        "--update regenerates it from the perf-smoke grid",
    )
    bench_parser.add_argument(
        "--update",
        action="store_true",
        help="rerun benchmarks/test_perf_smoke.py and rewrite "
        "BENCH_dispatch.json deterministically (records without "
        "asserting floors, like SCD_SKIP_PERF_GUARD=1)",
    )
    bench_parser.add_argument(
        "--guard",
        action="store_true",
        help="with --update, also enforce the perf floors while "
        "regenerating (fails like CI would)",
    )

    corpus_parser = sub.add_parser(
        "corpus",
        help="build / run / report a stratified synthetic program corpus",
    )
    corpus_sub = corpus_parser.add_subparsers(
        dest="corpus_command", required=True
    )
    corpus_build = corpus_sub.add_parser(
        "build",
        help="generate a seeded stratified corpus and its manifest.json",
    )
    corpus_build.add_argument(
        "--root", default="scd-corpus", metavar="DIR",
        help="corpus directory (default: scd-corpus)",
    )
    corpus_build.add_argument(
        "--seed", type=int, default=0, help="corpus seed (default 0)"
    )
    corpus_build.add_argument(
        "--size", type=int, default=256, metavar="N",
        help="number of programs (default 256)",
    )
    corpus_build.add_argument(
        "--strata", default=None, metavar="S1,S2",
        help="comma-separated stratum names to round-robin over "
        "(default: arith,call,branch,table-str)",
    )
    corpus_build.add_argument(
        "--force", action="store_true",
        help="overwrite an existing corpus at --root",
    )
    corpus_run = corpus_sub.add_parser(
        "run",
        help="run every corpus program on the VM/scheme grid with "
        "per-file ok/error/skip accounting (one bad file never aborts "
        "the batch)",
    )
    corpus_run.add_argument(
        "--root", default="scd-corpus", metavar="DIR",
        help="corpus directory (default: scd-corpus)",
    )
    corpus_run.add_argument(
        "-j", "--jobs", type=int, default=None, dest="corpus_jobs",
        metavar="N",
        help="worker processes for the corpus grid (same as the global "
        "-j, placed here so it can follow the subcommand)",
    )
    corpus_run.add_argument(
        "--vm", choices=("lua", "js", "both"), default="both",
        help="guest VM(s) to run; 'both' adds the cross-VM output oracle",
    )
    corpus_run.add_argument(
        "--schemes", default=None, metavar="S1,S2",
        help="comma-separated dispatch schemes "
        f"(default: {','.join(SCHEMES)})",
    )
    corpus_run.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="run only the first N selected programs (rest are skipped)",
    )
    corpus_run.add_argument(
        "--stratum", action="append", default=None, metavar="NAME",
        help="restrict to one stratum (repeatable)",
    )
    corpus_report = corpus_sub.add_parser(
        "report",
        help="render the stratified Corpus section from results.json",
    )
    corpus_report.add_argument(
        "--root", default="scd-corpus", metavar="DIR",
        help="corpus directory (default: scd-corpus)",
    )

    from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

    serve_parser = sub.add_parser(
        "serve",
        help="run the sweep service: a local multi-client server that "
        "deduplicates in-flight grid points across concurrent sweeps "
        "(protocol in docs/SERVICE.md)",
    )
    serve_parser.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"bind address (default {DEFAULT_HOST}; loopback only)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=f"TCP port (default {DEFAULT_PORT}; 0 picks a free one)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="global backpressure: refuse new unique grid points once "
        "this many are unresolved (default 4096)",
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=1024, metavar="N",
        help="per-client cap on unresolved grid points (default 1024)",
    )
    serve_parser.add_argument(
        "--client-budget", type=int, default=None, metavar="N",
        help="per-client lifetime job budget; submissions past it get a "
        "structured over-budget rejection (default: unlimited)",
    )

    submit_parser = sub.add_parser(
        "submit",
        help="submit a sweep to a running 'scd-repro serve' instance "
        "and stream its progress",
    )
    submit_parser.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"service address (default {DEFAULT_HOST})",
    )
    submit_parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=f"service port (default {DEFAULT_PORT})",
    )
    submit_parser.add_argument(
        "--workloads", default=None, metavar="W1,W2",
        help="comma-separated workload names to sweep",
    )
    submit_parser.add_argument(
        "--vm", choices=("lua", "js", "both"), default="lua",
        help="guest VM(s) for the grid (default lua)",
    )
    submit_parser.add_argument(
        "--schemes", default=None, metavar="S1,S2",
        help=f"comma-separated dispatch schemes (default: {','.join(SCHEMES)})",
    )
    submit_parser.add_argument(
        "--machine", choices=tuple(CONFIG_PRESETS), default="cortex-a5",
    )
    submit_parser.add_argument(
        "--n", type=int, default=None, metavar="N",
        help="workload size parameter forwarded to every grid point",
    )
    submit_parser.add_argument(
        "--no-check-output", action="store_true",
        help="skip guest-output verification (smaller n values need this)",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="client-side read timeout in seconds (default 600)",
    )
    submit_parser.add_argument(
        "--json", action="store_true",
        help="print the results (input order) as JSON on stdout",
    )
    submit_parser.add_argument(
        "--stats", action="store_true",
        help="print the server's scheduler statistics",
    )
    submit_parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the server to drain and exit (after any sweep)",
    )

    for name in EXPERIMENTS:
        exp_parser = sub.add_parser(name, help=f"reproduce {name}")
        if name == "figure11":
            from repro.uarch.config import BTB_GEOMETRIES

            exp_parser.add_argument(
                "--geometry", default=None, choices=sorted(BTB_GEOMETRIES),
                help="run the sweep on a measured multi-level BTB geometry "
                "instead of the flat Table-II BTB",
            )
    sub.add_parser("all", help="run every experiment")
    report_parser = sub.add_parser(
        "report", help="regenerate the EXPERIMENTS.md body"
    )
    report_parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="append the Corpus section for the corpus at DIR "
        "(requires a prior 'corpus run')",
    )
    sub.add_parser(
        "clear-cache", help="drop cached simulation results and recorded traces"
    )

    args = parser.parse_args(argv)
    if args.jobs is not None:
        set_default_workers(args.jobs)
    if args.retries is not None:
        set_default_retries(args.retries)
    if args.job_timeout is not None:
        set_default_job_timeout(args.job_timeout)
    if args.fault:
        spec_text = ",".join(args.fault)
        try:
            faults.parse_specs(spec_text)
        except ValueError as exc:
            parser.error(str(exc))
        os.environ[faults.FAULT_ENV] = spec_text
        faults.reset_plan_cache()
    if args.no_kernel:
        from repro.native.kernel import set_kernel_enabled

        set_kernel_enabled(False)
    if args.no_batch:
        from repro.native.batch import set_batch_enabled

        set_batch_enabled(False)
    if args.record:
        set_default_trace_mode("record")
    elif args.replay:
        set_default_trace_mode("replay")
    elif args.no_trace_cache:
        set_default_trace_mode("off")
    trace_log = args.trace_log or os.environ.get(obs.TRACE_ENV)
    if trace_log:
        obs.configure(trace_log)
    try:
        with obs.span("sweep", command=args.command) as sweep:
            code = _dispatch(args)
            # The run's throughput/fault counters land on the sweep close,
            # so one record summarizes the whole invocation.
            sweep.annotate(exit_code=code, **METRICS.as_dict())
        return code
    finally:
        obs.close()


def _dispatch(args) -> int:
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "clear-cache":
        return _cmd_clear_cache(args)
    return _cmd_experiment(args.command, geometry=getattr(args, "geometry", None))


if __name__ == "__main__":
    sys.exit(main())
