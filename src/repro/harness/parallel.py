"""Process-pool fan-out for independent simulations.

Every paper figure/table is a grid of independent, deterministic
simulations, so regenerating one is embarrassingly parallel.  This module
provides the scheduling layer:

* :class:`SimJob` — a picklable descriptor of one grid point.
* :func:`run_jobs` — run a batch of jobs, fanning cache misses out to a
  :class:`~concurrent.futures.ProcessPoolExecutor` and returning results
  in input order regardless of completion order.  ``workers=1`` (or a
  single miss) degrades gracefully to in-process execution; a crashed or
  failed grid point raises :class:`SimJobError` naming its
  ``(vm, scheme, workload)`` key instead of hanging the run.
* :data:`METRICS` — per-process throughput counters (simulations run,
  cache hits, trace events replayed, summed simulation wall time) that the
  CLI prints after each experiment.

Workers share one sharded cache directory (see
:mod:`repro.harness.cache`); its atomic per-entry writes make concurrent
population safe without locks.  Under the ``fork`` start method the parent
assembles every needed native model before the pool spins up, so workers
inherit them copy-on-write instead of re-assembling per process.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.core.results import SimResult
from repro.core.simulation import scheme_parts, simulate
from repro.harness.cache import (
    DEFAULT_CACHE,
    ResultCache,
    TraceStore,
    sim_cache_key,
)
from repro.native.model import get_model
from repro.uarch.config import CoreConfig, cortex_a5
from repro.vm.capture import resolve_trace_mode

#: Process-wide worker-count override, installed by the CLI's ``-j`` flag.
DEFAULT_WORKERS: int | None = None


def set_default_workers(workers: int | None) -> None:
    """Install *workers* as the process-wide default for :func:`run_jobs`."""
    global DEFAULT_WORKERS
    DEFAULT_WORKERS = workers


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an explicit/default/environment worker count (>= 1).

    Priority: explicit argument, :func:`set_default_workers` (the CLI
    ``-j`` flag), the ``SCD_REPRO_JOBS`` environment variable, then
    ``os.cpu_count()``.  The result is capped at ``os.cpu_count()``:
    these are CPU-bound simulations, so oversubscribing a small host only
    adds pool and context-switch overhead (``-j 4`` on a 1-CPU box used
    to post a 0.88x "speedup"); the cap also lets the single-worker case
    fall back to in-process execution in :func:`run_jobs`.
    """
    cpus = os.cpu_count() or 1
    if workers is None:
        workers = DEFAULT_WORKERS
    if workers is None:
        env = os.environ.get("SCD_REPRO_JOBS", "")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = cpus
    return max(1, min(int(workers), cpus))


@dataclass
class ThroughputMetrics:
    """Aggregated run counters for the harness summary line."""

    sims: int = 0
    cache_hits: int = 0
    events: int = 0
    sim_wall_s: float = 0.0
    events_replayed: int = 0
    events_interpreted: int = 0
    replay_wall_s: float = 0.0
    interp_wall_s: float = 0.0
    memo_events: int = 0

    def record_hit(self) -> None:
        self.cache_hits += 1

    def record_sim(self, meta: dict) -> None:
        self.sims += 1
        events = int(meta.get("events", 0))
        wall = float(meta.get("wall_s", 0.0))
        self.events += events
        self.sim_wall_s += wall
        if meta.get("replayed"):
            self.events_replayed += events
            self.replay_wall_s += wall
            self.memo_events += int(meta.get("memo_events", 0))
        else:
            self.events_interpreted += events
            self.interp_wall_s += wall

    def reset(self) -> None:
        self.sims = 0
        self.cache_hits = 0
        self.events = 0
        self.sim_wall_s = 0.0
        self.events_replayed = 0
        self.events_interpreted = 0
        self.replay_wall_s = 0.0
        self.interp_wall_s = 0.0
        self.memo_events = 0

    def trace_savings_s(self) -> float | None:
        """Estimated wall time the sweep saved by replaying recorded
        traces instead of re-interpreting: replayed events priced at this
        run's observed interpreting rate, minus what replay actually cost.
        ``None`` when no interpreted run provides a rate to compare with.
        """
        if not self.events_replayed:
            return 0.0
        if not self.events_interpreted or self.interp_wall_s <= 0:
            return None
        interp_rate = self.events_interpreted / self.interp_wall_s
        return self.events_replayed / interp_rate - self.replay_wall_s

    def summary(self, wall_s: float | None = None) -> str:
        """One-line human summary, e.g. for the CLI footer."""
        parts = [f"{self.sims} simulated + {self.cache_hits} cached"]
        if self.sims and self.sim_wall_s > 0:
            rate = self.events / self.sim_wall_s
            parts.append(f"{self.events:,} events @ {rate:,.0f} events/s")
        if self.events_replayed:
            reuse = (
                f"trace reuse: {self.events_replayed:,} events replayed vs "
                f"{self.events_interpreted:,} interpreted"
            )
            saved = self.trace_savings_s()
            if saved is not None:
                reuse += f", ~{saved:.1f}s saved"
            if self.memo_events:
                reuse += f" ({self.memo_events:,} memoized)"
            parts.append(reuse)
        if wall_s is not None:
            parts.append(f"wall {wall_s:.2f}s")
        return "[" + "; ".join(parts) + "]"


#: Per-process metrics sink (the parent aggregates worker metadata here).
METRICS = ThroughputMetrics()


@dataclass(frozen=True)
class SimJob:
    """One grid point: everything a worker needs to run a simulation.

    ``kwargs`` is a tuple of ``(name, value)`` pairs (rather than a dict)
    so the job stays hashable-friendly and cheap to pickle; order does not
    matter for the cache key (see
    :func:`repro.harness.cache.sim_cache_key`).
    """

    workload: str
    vm: str
    scheme: str
    config: CoreConfig | None = None
    scale: str = "sim"
    kwargs: tuple = field(default=())

    @property
    def key3(self) -> tuple[str, str, str]:
        """The human-facing grid key reported on failure."""
        return (self.vm, self.scheme, self.workload)

    def resolved_config(self) -> CoreConfig:
        return self.config if self.config is not None else cortex_a5()

    def cache_key(self) -> str:
        return sim_cache_key(
            self.vm, self.scheme, self.workload, self.scale, self.config,
            dict(self.kwargs),
        )


class SimJobError(RuntimeError):
    """A grid point failed; carries its ``(vm, scheme, workload)`` key."""

    def __init__(self, job: SimJob, detail: str):
        self.job = job
        self.key = job.key3
        super().__init__(
            f"simulation job (vm={job.vm!r}, scheme={job.scheme!r}, "
            f"workload={job.workload!r}) failed:\n{detail}"
        )


def execute_job(
    job: SimJob,
    cache: ResultCache | None = None,
    trace_store: TraceStore | None = None,
    trace_mode: str | None = None,
) -> tuple[SimResult, dict]:
    """Run one job in-process, consulting and populating *cache*.

    When a result cache is present and no *trace_store* is given, a
    :class:`TraceStore` sharing the cache's root is wired in, so the
    first simulation of each (vm, workload) pair records its event stream
    and every later scheme/config replays it instead of re-interpreting
    (see :mod:`repro.vm.capture`).

    Returns ``(result, meta)`` where *meta* carries the throughput
    metadata of :func:`repro.core.simulation.simulate` plus a ``cached``
    flag.  Records into :data:`METRICS`.
    """
    key = job.cache_key()
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            METRICS.record_hit()
            return hit, {"cached": True}
    if trace_store is None and cache is not None:
        trace_store = TraceStore(root=cache.root)
    meta: dict = {}
    result = simulate(
        job.workload,
        vm=job.vm,
        scheme=job.scheme,
        config=job.resolved_config(),
        scale=job.scale,
        metrics=meta,
        trace_store=trace_store,
        trace_mode=trace_mode,
        **dict(job.kwargs),
    )
    if cache is not None:
        cache.put(key, result)
    METRICS.record_sim(meta)
    meta["cached"] = False
    return result, meta


def _pool_run(
    job: SimJob,
    cache_name: str | None,
    cache_root: str | None,
    trace_mode: str | None = None,
):
    """Worker-process body.  Never raises: failures come back as values so
    the parent can surface the grid key instead of a bare pool traceback."""
    try:
        cache = None
        if cache_name is not None:
            cache = ResultCache(cache_name, root=cache_root)
        result, meta = execute_job(job, cache, trace_mode=trace_mode)
        return ("ok", result, meta)
    except BaseException:
        return ("error", traceback.format_exc(), {})


def _prewarm_models(jobs) -> None:
    """Assemble every needed native model in the parent before forking.

    Under ``fork`` the pool workers inherit the parent's ``get_model``
    LRU cache copy-on-write, so assembly happens once per host instead of
    once per worker.  Under ``spawn`` workers cannot inherit it; skip.
    """
    try:
        if multiprocessing.get_start_method() != "fork":
            return
    except ValueError:  # pragma: no cover - exotic platforms
        return
    needed = {(job.vm, scheme_parts(job.scheme)[0]) for job in jobs}
    for vm, strategy in sorted(needed):
        get_model(vm, strategy)


def run_jobs(
    jobs,
    workers: int | None = None,
    cache: ResultCache | None = DEFAULT_CACHE,
) -> list[SimResult]:
    """Run every job and return results in input order.

    Jobs whose cache key is already resolved (on disk, or duplicated
    within the batch) are not re-simulated.  Remaining misses run on a
    process pool of :func:`resolve_workers` workers — or in-process when
    that resolves to 1 or there is at most one miss.

    Raises:
        SimJobError: a grid point raised or its worker died; the error
            names the failing ``(vm, scheme, workload)`` key.
    """
    jobs = list(jobs)
    workers = resolve_workers(workers)
    sinks: dict[str, list[int]] = {}
    resolved: dict[str, SimResult] = {}
    misses: list[tuple[str, SimJob]] = []
    for index, job in enumerate(jobs):
        key = job.cache_key()
        slots = sinks.get(key)
        if slots is not None:
            slots.append(index)
            continue
        sinks[key] = [index]
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            METRICS.record_hit()
            resolved[key] = hit
        else:
            misses.append((key, job))

    trace_mode = resolve_trace_mode()
    if misses and (workers <= 1 or len(misses) == 1):
        trace_store = TraceStore(root=cache.root) if cache is not None else None
        for key, job in misses:
            try:
                result, _ = execute_job(
                    job, cache, trace_store=trace_store, trace_mode=trace_mode
                )
            except Exception as exc:
                raise SimJobError(job, f"{type(exc).__name__}: {exc}") from exc
            resolved[key] = result
    elif misses:
        _prewarm_models(job for _, job in misses)
        cache_name = cache.name if cache is not None else None
        cache_root = str(cache.root) if cache is not None else None
        pool = ProcessPoolExecutor(max_workers=min(workers, len(misses)))
        try:
            futures = {
                pool.submit(
                    _pool_run, job, cache_name, cache_root, trace_mode
                ): (key, job)
                for key, job in misses
            }
            for future in as_completed(futures):
                key, job = futures[future]
                try:
                    status, payload, meta = future.result()
                except Exception as exc:
                    # BrokenProcessPool & friends: the worker died without
                    # reporting (OOM-kill, segfault) — name the grid point.
                    raise SimJobError(
                        job, f"worker died: {type(exc).__name__}: {exc}"
                    ) from exc
                if status != "ok":
                    raise SimJobError(job, payload)
                resolved[key] = payload
                if meta.get("cached"):
                    METRICS.record_hit()
                else:
                    METRICS.record_sim(meta)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    results: list[SimResult] = [None] * len(jobs)  # type: ignore[list-item]
    for key, indices in sinks.items():
        result = resolved[key]
        for index in indices:
            results[index] = result
    return results
