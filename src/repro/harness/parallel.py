"""Process-pool fan-out for independent simulations.

Every paper figure/table is a grid of independent, deterministic
simulations, so regenerating one is embarrassingly parallel.  This module
provides the scheduling layer:

* :class:`SimJob` — a picklable descriptor of one grid point.
* :func:`run_jobs` — run a batch of jobs, fanning cache misses out to a
  :class:`~concurrent.futures.ProcessPoolExecutor` and returning results
  in input order regardless of completion order.  ``workers=1`` (or a
  single miss) degrades gracefully to in-process execution.
* :data:`METRICS` — per-process throughput and fault counters
  (simulations run, cache hits, trace events replayed, retries,
  timeouts, worker deaths, quarantined entries) that the CLI prints
  after each experiment.

Failures are retried, not fatal: a grid point whose worker dies
(OOM-kill, segfault), raises, or exceeds its per-job timeout is
re-submitted on a fresh pool up to :func:`resolve_retries` times with
exponential backoff, while every already-completed future is salvaged.
If the pool itself keeps breaking, the remaining points degrade to
in-process execution.  Only when a point has spent its whole retry
budget does the batch raise — a single aggregated
:class:`SimJobsFailed` naming *every* exhausted ``(vm, scheme,
workload)`` key with its last traceback.  Deterministic fault injection
for all of these paths lives in :mod:`repro.harness.faults`.

Workers share one sharded cache directory (see
:mod:`repro.harness.cache`); its atomic per-entry writes make concurrent
population safe without locks.  Under the ``fork`` start method the parent
assembles every needed native model before the pool spins up, so workers
inherit them copy-on-write instead of re-assembling per process.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, fields

from repro import obs
from repro.core.results import SimResult
from repro.core.simulation import scheme_parts, simulate
from repro.harness.cache import (
    DEFAULT_CACHE,
    MemoStore,
    ResultCache,
    TraceStore,
    sim_cache_key,
)
from repro.harness.faults import get_plan as get_fault_plan
from repro.native.model import get_model
from repro.uarch.config import CoreConfig, cortex_a5
from repro.vm.capture import resolve_trace_mode

#: Process-wide worker-count override, installed by the CLI's ``-j`` flag.
DEFAULT_WORKERS: int | None = None

#: Per-job retry budget when neither the call, the CLI nor
#: ``SCD_REPRO_RETRIES`` says otherwise: each grid point may be
#: re-submitted this many times before it counts as exhausted.
DEFAULT_RETRIES = 2

#: Base of the exponential retry backoff (seconds); override with
#: ``SCD_REPRO_RETRY_BACKOFF`` (tests set it to 0).
DEFAULT_RETRY_BACKOFF_S = 0.1

#: Backoff ceiling, so a long retry chain cannot stall a sweep for minutes.
_BACKOFF_CAP_S = 5.0

#: After this many consecutive broken-pool rounds the remaining grid
#: points run in-process: a host that keeps killing fresh pools will not
#: stop doing so for round three.
_POOL_BREAK_LIMIT = 2

#: Process-wide overrides installed by the CLI (``--retries`` /
#: ``--job-timeout``).
DEFAULT_RETRIES_OVERRIDE: int | None = None
DEFAULT_JOB_TIMEOUT: float | None = None


def set_default_workers(workers: int | None) -> None:
    """Install *workers* as the process-wide default for :func:`run_jobs`."""
    global DEFAULT_WORKERS
    DEFAULT_WORKERS = workers


def set_default_retries(retries: int | None) -> None:
    """Install *retries* as the process-wide default retry budget."""
    global DEFAULT_RETRIES_OVERRIDE
    DEFAULT_RETRIES_OVERRIDE = retries


def set_default_job_timeout(timeout: float | None) -> None:
    """Install *timeout* (seconds) as the process-wide per-job timeout."""
    global DEFAULT_JOB_TIMEOUT
    DEFAULT_JOB_TIMEOUT = timeout


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an explicit/default/environment worker count (>= 1).

    Priority: explicit argument, :func:`set_default_workers` (the CLI
    ``-j`` flag), the ``SCD_REPRO_JOBS`` environment variable, then
    ``os.cpu_count()``.  A rejected ``SCD_REPRO_JOBS`` value — not an
    integer, zero, or negative — is reported with a one-line
    :class:`RuntimeWarning` naming the value, then ignored (it used to
    be clamped or dropped silently).  The result is capped at
    ``os.cpu_count()``: these are CPU-bound simulations, so
    oversubscribing a small host only adds pool and context-switch
    overhead (``-j 4`` on a 1-CPU box used to post a 0.88x "speedup");
    the cap also lets the single-worker case fall back to in-process
    execution in :func:`run_jobs`.
    """
    cpus = os.cpu_count() or 1
    if workers is None:
        workers = DEFAULT_WORKERS
    if workers is None:
        env = os.environ.get("SCD_REPRO_JOBS", "")
        if env:
            try:
                value = int(env)
            except ValueError:
                value = None
            if value is None or value < 1:
                warnings.warn(
                    f"ignoring SCD_REPRO_JOBS={env!r}: expected a positive "
                    "integer worker count",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                workers = value
    if workers is None:
        workers = cpus
    return max(1, min(int(workers), cpus))


def resolve_retries(retries: int | None = None) -> int:
    """Resolve the per-job retry budget (>= 0).

    Priority: explicit argument, :func:`set_default_retries` (the CLI
    ``--retries`` flag), the ``SCD_REPRO_RETRIES`` environment variable,
    then :data:`DEFAULT_RETRIES`.  A non-integer environment value is
    warned about and ignored.
    """
    if retries is None:
        retries = DEFAULT_RETRIES_OVERRIDE
    if retries is None:
        env = os.environ.get("SCD_REPRO_RETRIES", "")
        if env:
            try:
                retries = int(env)
            except ValueError:
                warnings.warn(
                    f"ignoring SCD_REPRO_RETRIES={env!r}: expected an integer",
                    RuntimeWarning,
                    stacklevel=2,
                )
    if retries is None:
        retries = DEFAULT_RETRIES
    return max(0, int(retries))


def resolve_job_timeout(timeout: float | None = None) -> float | None:
    """Resolve the per-job timeout in seconds (``None`` disables it).

    Priority: explicit argument, :func:`set_default_job_timeout` (the
    CLI ``--job-timeout`` flag), then ``SCD_REPRO_JOB_TIMEOUT``.  The
    clock starts at submission, so on a saturated pool queue wait counts
    against the budget; timeouts only apply to pooled execution (an
    in-process job cannot be interrupted).
    """
    if timeout is None:
        timeout = DEFAULT_JOB_TIMEOUT
    if timeout is None:
        env = os.environ.get("SCD_REPRO_JOB_TIMEOUT", "")
        if env:
            try:
                timeout = float(env)
            except ValueError:
                warnings.warn(
                    f"ignoring SCD_REPRO_JOB_TIMEOUT={env!r}: expected a "
                    "number of seconds",
                    RuntimeWarning,
                    stacklevel=2,
                )
    if timeout is not None and timeout <= 0:
        return None
    return float(timeout) if timeout is not None else None


def _retry_backoff_s(attempt: int) -> float:
    """Exponential backoff before retry *attempt* (1-based), capped.

    A malformed ``SCD_REPRO_RETRY_BACKOFF`` is warned about and ignored,
    matching the warn-and-fall-back discipline of every other resolver
    (``SCD_REPRO_JOBS``/``RETRIES``/``JOB_TIMEOUT``).
    """
    base = DEFAULT_RETRY_BACKOFF_S
    env = os.environ.get("SCD_REPRO_RETRY_BACKOFF", "")
    if env:
        try:
            base = float(env)
        except ValueError:
            warnings.warn(
                f"ignoring SCD_REPRO_RETRY_BACKOFF={env!r}: expected a "
                "number of seconds",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(0.0, min(_BACKOFF_CAP_S, base * (2 ** max(0, attempt - 1))))


@dataclass
class ThroughputMetrics:
    """Aggregated run counters for the harness summary line."""

    sims: int = 0
    cache_hits: int = 0
    events: int = 0
    sim_wall_s: float = 0.0
    events_replayed: int = 0
    events_interpreted: int = 0
    replay_wall_s: float = 0.0
    interp_wall_s: float = 0.0
    memo_events: int = 0
    memo_loaded: int = 0
    kernel_events: int = 0
    fallback_events: int = 0
    batch_events: int = 0
    superblocks: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    quarantined: int = 0

    def record_hit(self) -> None:
        self.cache_hits += 1

    def record_sim(self, meta: dict) -> None:
        self.sims += 1
        events = int(meta.get("events", 0))
        wall = float(meta.get("wall_s", 0.0))
        self.events += events
        self.sim_wall_s += wall
        if meta.get("replayed"):
            self.events_replayed += events
            self.replay_wall_s += wall
            self.memo_events += int(meta.get("memo_events", 0))
            self.memo_loaded += int(meta.get("memo_loaded", 0))
        else:
            self.events_interpreted += events
            self.interp_wall_s += wall
        self.kernel_events += int(meta.get("kernel_events", 0))
        self.fallback_events += int(meta.get("fallback_events", 0))
        self.batch_events += int(meta.get("batch_events", 0))
        self.superblocks += int(meta.get("superblocks", 0))

    def reset(self) -> None:
        """Zero *every* counter, by dataclass-field introspection.

        The old hand-written list silently missed the PR-4 fault
        counters, so a second CLI subcommand in the same process opened
        with the previous run's retries/timeouts/worker-deaths in its
        footer.  Resetting from ``fields()`` makes a forgotten new
        counter impossible rather than merely unlikely.
        """
        for spec in fields(self):
            setattr(self, spec.name, spec.default)

    def as_dict(self) -> dict:
        """Every counter as a plain dict (sweep-span and report export)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def trace_savings_s(self) -> float | None:
        """Estimated wall time the sweep saved by replaying recorded
        traces instead of re-interpreting: replayed events priced at this
        run's observed interpreting rate, minus what replay actually cost.
        ``None`` when no interpreted run provides a rate to compare with.
        """
        if not self.events_replayed:
            return 0.0
        if not self.events_interpreted or self.interp_wall_s <= 0:
            return None
        interp_rate = self.events_interpreted / self.interp_wall_s
        return self.events_replayed / interp_rate - self.replay_wall_s

    def fault_counts(self) -> dict[str, int]:
        """The degraded-path counters, in footer order."""
        return {
            "retried": self.retries,
            "timed out": self.timeouts,
            "worker deaths": self.worker_deaths,
            "quarantined": self.quarantined,
        }

    def fault_summary(self) -> str:
        """Comma-joined non-zero fault counters, or ``""`` for a clean run."""
        return ", ".join(
            f"{count} {label}"
            for label, count in self.fault_counts().items()
            if count
        )

    def summary(self, wall_s: float | None = None) -> str:
        """One-line human summary, e.g. for the CLI footer."""
        parts = [f"{self.sims} simulated + {self.cache_hits} cached"]
        if self.sims and self.sim_wall_s > 0:
            rate = self.events / self.sim_wall_s
            parts.append(f"{self.events:,} events @ {rate:,.0f} events/s")
        if self.events_replayed:
            reuse = (
                f"trace reuse: {self.events_replayed:,} events replayed vs "
                f"{self.events_interpreted:,} interpreted"
            )
            saved = self.trace_savings_s()
            if saved is not None:
                reuse += f", ~{saved:.1f}s saved"
            if self.memo_events:
                reuse += f" ({self.memo_events:,} memoized"
                if self.memo_loaded:
                    reuse += f", {self.memo_loaded} entries from store"
                reuse += ")"
            parts.append(reuse)
        if self.kernel_events or self.fallback_events:
            parts.append(
                f"kernel: {self.kernel_events:,} compiled vs "
                f"{self.fallback_events:,} fallback events"
            )
        if self.batch_events:
            parts.append(
                f"batch: {self.batch_events:,} events in "
                f"{self.superblocks} superblocks"
            )
        faults = self.fault_summary()
        if faults:
            parts.append(f"faults: {faults}")
        if wall_s is not None:
            parts.append(f"wall {wall_s:.2f}s")
        return "[" + "; ".join(parts) + "]"


#: Per-process metrics sink (the parent aggregates worker metadata here).
METRICS = ThroughputMetrics()


@dataclass(frozen=True)
class SimJob:
    """One grid point: everything a worker needs to run a simulation.

    ``kwargs`` is a tuple of ``(name, value)`` pairs (rather than a dict)
    so the job stays hashable-friendly and cheap to pickle; order does not
    matter for the cache key (see
    :func:`repro.harness.cache.sim_cache_key`).
    """

    workload: str
    vm: str
    scheme: str
    config: CoreConfig | None = None
    scale: str = "sim"
    kwargs: tuple = field(default=())

    @property
    def key3(self) -> tuple[str, str, str]:
        """The human-facing grid key reported on failure."""
        return (self.vm, self.scheme, self.workload)

    def resolved_config(self) -> CoreConfig:
        return self.config if self.config is not None else cortex_a5()

    def cache_key(self) -> str:
        return sim_cache_key(
            self.vm, self.scheme, self.workload, self.scale, self.config,
            dict(self.kwargs),
        )


class SimJobError(RuntimeError):
    """A grid point failed; carries its ``(vm, scheme, workload)`` key."""

    def __init__(self, job: SimJob, detail: str):
        self.job = job
        self.key = job.key3
        super().__init__(
            f"simulation job (vm={job.vm!r}, scheme={job.scheme!r}, "
            f"workload={job.workload!r}) failed:\n{detail}"
        )


class SimJobsFailed(SimJobError):
    """One or more grid points exhausted their retry budget.

    Raised once per batch, after retries are spent, naming every failed
    key.  Attributes:

    * ``failures`` — ``(job, detail)`` pairs; *detail* is the last
      traceback or diagnostic of that grid point.
    * ``keys`` — the ``(vm, scheme, workload)`` key of every failure.
    * ``completed`` — grid points that did finish (their results are in
      the shared cache; a re-run will not repeat them).

    ``job``/``key`` mirror the first failure so handlers written against
    :class:`SimJobError` keep working.
    """

    def __init__(self, failures, completed: int = 0):
        self.failures = list(failures)
        if not self.failures:
            raise ValueError("SimJobsFailed requires at least one failure")
        self.keys = tuple(job.key3 for job, _ in self.failures)
        self.job = self.failures[0][0]
        self.key = self.job.key3
        self.completed = completed
        lines = [
            f"{len(self.failures)} simulation job(s) failed after retries "
            f"were exhausted ({completed} completed grid point(s) were "
            "salvaged into the cache):"
        ]
        for job, detail in self.failures:
            lines.append(
                f"- (vm={job.vm!r}, scheme={job.scheme!r}, "
                f"workload={job.workload!r}):"
            )
            lines.extend(
                "    " + line for line in str(detail).splitlines() or [""]
            )
        RuntimeError.__init__(self, "\n".join(lines))


def execute_job(
    job: SimJob,
    cache: ResultCache | None = None,
    trace_store: TraceStore | None = None,
    trace_mode: str | None = None,
    memo_store: MemoStore | None = None,
    metrics: ThroughputMetrics | None = None,
) -> tuple[SimResult, dict]:
    """Run one job in-process, consulting and populating *cache*.

    When a result cache is present and no *trace_store* is given, a
    :class:`TraceStore` sharing the cache's root is wired in, so the
    first simulation of each (vm, workload) pair records its event stream
    and every later scheme/config replays it instead of re-interpreting
    (see :mod:`repro.vm.capture`).  A :class:`MemoStore` is wired in the
    same way, so replayed jobs import steady-state memo tables persisted
    by earlier sessions and export any transitions they learn.

    Returns ``(result, meta)`` where *meta* carries the throughput
    metadata of :func:`repro.core.simulation.simulate` plus a ``cached``
    flag.  Records into *metrics* — callers that need per-request
    isolation (the sweep service runs many concurrent clients through
    one process) pass their own :class:`ThroughputMetrics`; the default
    is the process-wide :data:`METRICS` the CLI footer prints.  When a
    trace log is live (see :mod:`repro.obs`) each call emits a ``job``
    span with the grid key, cache outcome and per-component uarch
    counters attached.
    """
    if metrics is None:
        metrics = METRICS
    with obs.span(
        "job", vm=job.vm, scheme=job.scheme, workload=job.workload,
        scale=job.scale,
    ) as job_span:
        key = job.cache_key()
        if cache is not None:
            with obs.span("cache", store="results") as probe:
                hit = cache.get(key)
                probe.annotate(hit=hit is not None)
            if hit is not None:
                metrics.record_hit()
                job_span.annotate(cached=True)
                return hit, {"cached": True}
        fault_plan = get_fault_plan()
        if fault_plan is not None:
            fault_plan.on_job_start(job)
        if trace_store is None and cache is not None:
            trace_store = TraceStore(root=cache.root)
        if memo_store is None and cache is not None:
            memo_store = MemoStore(root=cache.root)
        meta: dict = {}
        result = simulate(
            job.workload,
            vm=job.vm,
            scheme=job.scheme,
            config=job.resolved_config(),
            scale=job.scale,
            metrics=meta,
            trace_store=trace_store,
            trace_mode=trace_mode,
            memo_store=memo_store,
            **dict(job.kwargs),
        )
        if cache is not None:
            with obs.span("cache", store="results", op="put"):
                cache.put(key, result)
        metrics.record_sim(meta)
        meta["cached"] = False
        job_span.annotate(
            cached=False,
            events=meta.get("events", 0),
            wall_s=round(meta.get("wall_s", 0.0), 6),
            replayed=bool(meta.get("replayed")),
            kernel_events=meta.get("kernel_events", 0),
            fallback_events=meta.get("fallback_events", 0),
            batch_events=meta.get("batch_events", 0),
            superblocks=meta.get("superblocks", 0),
            memo_loaded=meta.get("memo_loaded", 0),
            uarch=meta.get("uarch", {}),
        )
        return result, meta


def _pool_run(
    job: SimJob,
    cache_name: str | None,
    cache_root: str | None,
    trace_mode: str | None = None,
    trace_parent: str | None = None,
):
    """Worker-process body.  Never raises: failures come back as values so
    the parent can surface the grid key instead of a bare pool traceback.

    *trace_parent* is the span the parent process was inside when it
    submitted this job; when a trace log is exported (``SCD_TRACE_LOG``)
    the worker appends its spans there, rooted under that id, so the
    parent's log holds the whole merged tree."""
    try:
        obs.adopt_worker(trace_parent)
        quarantined_before = METRICS.quarantined
        cache = None
        if cache_name is not None:
            cache = ResultCache(cache_name, root=cache_root)
        result, meta = execute_job(job, cache, trace_mode=trace_mode)
        meta["quarantined"] = METRICS.quarantined - quarantined_before
        return ("ok", result, meta)
    except BaseException:
        return ("error", traceback.format_exc(), {})


def _prewarm_models(jobs) -> None:
    """Assemble every needed native model in the parent before forking.

    Under ``fork`` the pool workers inherit the parent's ``get_model``
    LRU cache copy-on-write, so assembly happens once per host instead of
    once per worker.  Under ``spawn`` workers cannot inherit it; skip.
    """
    try:
        if multiprocessing.get_start_method() != "fork":
            return
    except ValueError:  # pragma: no cover - exotic platforms
        return
    needed = {(job.vm, scheme_parts(job.scheme)[0]) for job in jobs}
    for vm, strategy in sorted(needed):
        get_model(vm, strategy)


def _shutdown_pool(pool, futures, kill: bool = False) -> None:
    """Shut *pool* down without leaking live workers.

    Cancels every queued future first, optionally terminates the worker
    processes (a timed-out job may never return on its own), then waits
    for the pool to drain.  The old error path used
    ``shutdown(wait=False, cancel_futures=True)``, which left in-flight
    workers burning CPU and writing the cache after the run had already
    aborted.
    """
    for future in futures:
        future.cancel()
    if kill:
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except (OSError, AttributeError):  # already gone
                pass
    pool.shutdown(wait=True, cancel_futures=True)


def _run_serial(
    misses, cache, trace_mode, retries, resolved, metrics, on_result=None
) -> list:
    """In-process execution of *misses* with bounded per-job retries.

    Returns the ``(job, detail)`` pairs that exhausted their budget;
    callers decide whether that is fatal (:func:`run_jobs`) or merely
    per-file accounting (:func:`run_jobs_partial`).
    """
    trace_store = TraceStore(root=cache.root) if cache is not None else None
    failures = []
    for key, job in misses:
        detail = ""
        for attempt in range(retries + 1):
            if attempt:
                metrics.retries += 1
                time.sleep(_retry_backoff_s(attempt))
            try:
                result, meta = execute_job(
                    job, cache, trace_store=trace_store,
                    trace_mode=trace_mode, metrics=metrics,
                )
            except Exception:
                detail = traceback.format_exc()
                continue
            resolved[key] = result
            if on_result is not None:
                on_result(key, result, meta)
            break
        else:
            failures.append((job, detail))
    return failures


def _consume_future(
    future, futures, resolved, failed, state, metrics, on_result=None
) -> None:
    """Fold one finished future into results or this round's failures."""
    key, job = futures[future]
    try:
        status, payload, meta = future.result()
    except Exception as exc:
        # BrokenProcessPool & friends: the worker died without reporting
        # (OOM-kill, segfault) — name the grid point and retry it.
        if not state["broke"]:
            metrics.worker_deaths += 1
            state["broke"] = True
        failed.append(
            (key, job, f"worker died: {type(exc).__name__}: {exc}", True)
        )
        return
    if status != "ok":
        failed.append((key, job, payload, True))
        return
    resolved[key] = payload
    metrics.quarantined += int(meta.get("quarantined", 0))
    if meta.get("cached"):
        metrics.record_hit()
    else:
        metrics.record_sim(meta)
    if on_result is not None:
        on_result(key, payload, meta)


def _pool_round(
    pending, workers, cache_name, cache_root, trace_mode, job_timeout,
    resolved, metrics, on_result=None,
):
    """One submission round on a fresh pool.

    Every future that completes is salvaged into *resolved* even when
    the pool breaks mid-round.  Returns ``(failed, broke)``: *failed*
    lists ``(key, job, detail, counted)`` — ``counted=False`` marks jobs
    that were merely collateral of a pool teardown and are requeued
    without charging an attempt — and *broke* reports whether a worker
    died or the pool had to be torn down.
    """
    pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
    failed: list = []
    state = {"broke": False}
    kill_pool = False
    futures: dict = {}
    try:
        submitted_at = time.monotonic()
        trace_parent = obs.current_span_id()
        for key, job in pending:
            future = pool.submit(
                _pool_run, job, cache_name, cache_root, trace_mode,
                trace_parent,
            )
            futures[future] = (key, job)
        deadlines = (
            {future: submitted_at + job_timeout for future in futures}
            if job_timeout is not None
            else {}
        )
        waiting = set(futures)
        while waiting:
            timeout = None
            if deadlines:
                timeout = max(
                    0.0,
                    min(deadlines[f] for f in waiting) - time.monotonic(),
                )
            done, _ = wait(waiting, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                _consume_future(
                    future, futures, resolved, failed, state, metrics,
                    on_result,
                )
            waiting -= done
            if deadlines and waiting:
                now = time.monotonic()
                expired = {f for f in waiting if deadlines[f] <= now}
                for future in expired:
                    key, job = futures[future]
                    metrics.timeouts += 1
                    failed.append(
                        (key, job, f"timed out after {job_timeout:g}s", True)
                    )
                    if not future.cancel():
                        # Already running: the only way to reclaim the
                        # worker is to tear the whole pool down.
                        kill_pool = True
                waiting -= expired
            if kill_pool and waiting:
                # Salvage whatever finished in the meantime; requeue the
                # rest without charging them an attempt — they were not
                # at fault.
                done, not_done = wait(waiting, timeout=0)
                for future in done:
                    _consume_future(
                        future, futures, resolved, failed, state, metrics,
                        on_result,
                    )
                for future in not_done:
                    future.cancel()
                    key, job = futures[future]
                    failed.append(
                        (key, job,
                         "requeued: pool torn down after a job timeout",
                         False)
                    )
                waiting = set()
    finally:
        _shutdown_pool(pool, futures, kill=kill_pool)
    return failed, state["broke"] or kill_pool


def _run_degraded(
    pending, cache, trace_mode, retries, attempts, last_failure, resolved,
    metrics, on_result=None,
) -> None:
    """In-process fallback after repeated pool breakage, honouring each
    job's remaining retry budget."""
    trace_store = TraceStore(root=cache.root) if cache is not None else None
    for key, job in pending:
        while True:
            try:
                result, meta = execute_job(
                    job, cache, trace_store=trace_store,
                    trace_mode=trace_mode, metrics=metrics,
                )
            except Exception:
                last_failure[key] = (job, traceback.format_exc())
                attempts[key] += 1
                if attempts[key] > retries:
                    break
                metrics.retries += 1
                time.sleep(_retry_backoff_s(attempts[key]))
                continue
            resolved[key] = result
            if on_result is not None:
                on_result(key, result, meta)
            break


def _run_pool(
    misses, workers, cache, trace_mode, retries, job_timeout, resolved,
    metrics, on_result=None,
) -> list:
    """Pooled execution of *misses* with retry rounds and salvage.

    Returns the exhausted ``(job, detail)`` pairs (see
    :func:`_run_serial`)."""
    _prewarm_models(job for _, job in misses)
    cache_name = cache.name if cache is not None else None
    cache_root = str(cache.root) if cache is not None else None
    attempts = {key: 0 for key, _ in misses}
    last_failure: dict = {}
    pending = list(misses)
    broken_rounds = 0
    retry_round = 0
    while pending:
        failed, broke = _pool_round(
            pending, workers, cache_name, cache_root, trace_mode,
            job_timeout, resolved, metrics, on_result,
        )
        broken_rounds = broken_rounds + 1 if broke else 0
        retry_next = []
        for key, job, detail, counted in failed:
            last_failure[key] = (job, detail)
            if counted:
                attempts[key] += 1
            if attempts[key] > retries:
                continue  # exhausted; aggregated after the loop
            retry_next.append((key, job))
            if counted:
                metrics.retries += 1
        pending = retry_next
        if not pending:
            break
        if broken_rounds >= _POOL_BREAK_LIMIT:
            # Fresh pools keep dying on this host; stop feeding it
            # workers and finish the remaining points in-process.
            _run_degraded(
                pending, cache, trace_mode, retries, attempts,
                last_failure, resolved, metrics, on_result,
            )
            break
        retry_round += 1
        time.sleep(_retry_backoff_s(retry_round))
    return [
        last_failure[key]
        for key, _ in misses
        if key not in resolved and key in last_failure
    ]


def run_jobs(
    jobs,
    workers: int | None = None,
    cache: ResultCache | None = DEFAULT_CACHE,
    retries: int | None = None,
    job_timeout: float | None = None,
    metrics: ThroughputMetrics | None = None,
    on_result=None,
) -> list[SimResult]:
    """Run every job and return results in input order.

    Jobs whose cache key is already resolved (on disk, or duplicated
    within the batch) are not re-simulated.  Remaining misses run on a
    process pool of :func:`resolve_workers` workers — or in-process when
    that resolves to 1 or there is at most one miss.

    A failed grid point — worker death, job exception, or per-job
    timeout (pooled runs only; see :func:`resolve_job_timeout`) — is
    retried up to :func:`resolve_retries` times with exponential
    backoff, on a fresh pool, while completed futures are salvaged; the
    pool degrades to in-process execution if it keeps breaking.

    *metrics* selects the :class:`ThroughputMetrics` instance counters
    land in (default: the process-wide :data:`METRICS`); concurrent
    callers sharing one process pass their own instance so counters
    cannot cross-contaminate.  *on_result* is an incremental completion
    callback invoked as ``on_result(cache_key, result, meta)`` from the
    calling thread the moment each distinct cache key resolves — cache
    hits fire it immediately, pooled completions fire it as futures are
    consumed (out of input order).  Exhausted failures never fire it;
    they are reported in bulk when the batch returns.

    Raises:
        SimJobsFailed: one or more grid points still failed after the
            retry budget; the single aggregated error names *every*
            exhausted ``(vm, scheme, workload)`` key with its last
            traceback.  (A :class:`SimJobError` subclass, so existing
            handlers keep working.)
    """
    results, failures, completed = _execute_jobs(
        jobs, workers, cache, retries, job_timeout, metrics, on_result
    )
    if failures:
        raise SimJobsFailed(failures, completed=completed)
    return results


def run_jobs_partial(
    jobs,
    workers: int | None = None,
    cache: ResultCache | None = DEFAULT_CACHE,
    retries: int | None = None,
    job_timeout: float | None = None,
    metrics: ThroughputMetrics | None = None,
    on_result=None,
) -> tuple[list, list]:
    """Like :func:`run_jobs`, but failures are data, not an exception.

    Returns ``(results, failures)``: *results* is in input order with
    ``None`` at every grid point that exhausted its retry budget, and
    *failures* lists ``(job, detail)`` pairs for those points.  The
    corpus runner (:mod:`repro.corpus`) uses this to keep per-file
    accounting — one bad program must never abort the batch.

    The execution engine is shared with :func:`run_jobs` bit for bit
    (same cache resolution, pool, retry/salvage/degrade ladder), so a
    partial run populates the same caches a strict run would.  *metrics*
    and *on_result* behave exactly as in :func:`run_jobs`; the sweep
    service (:mod:`repro.service`) is the main consumer of both.
    """
    jobs = list(jobs)
    results, failures, _ = _execute_jobs(
        jobs, workers, cache, retries, job_timeout, metrics, on_result
    )
    return results, failures


def _execute_jobs(
    jobs, workers, cache, retries, job_timeout, metrics=None, on_result=None
):
    """Shared engine of :func:`run_jobs` / :func:`run_jobs_partial`.

    Returns ``(results, failures, completed)`` where *results* carries
    ``None`` for exhausted grid points and *completed* counts distinct
    resolved cache keys (hits included).
    """
    jobs = list(jobs)
    workers = resolve_workers(workers)
    retries = resolve_retries(retries)
    job_timeout = resolve_job_timeout(job_timeout)
    if metrics is None:
        metrics = METRICS
    # Resolve the fault plan up front so SCD_FAULT_DIR is exported before
    # any worker is forked (workers must share the parent's counters).
    get_fault_plan()
    sinks: dict[str, list[int]] = {}
    resolved: dict[str, SimResult] = {}
    misses: list[tuple[str, SimJob]] = []
    for index, job in enumerate(jobs):
        key = job.cache_key()
        slots = sinks.get(key)
        if slots is not None:
            slots.append(index)
            continue
        sinks[key] = [index]
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            metrics.record_hit()
            resolved[key] = hit
            if on_result is not None:
                on_result(key, hit, {"cached": True})
        else:
            misses.append((key, job))

    trace_mode = resolve_trace_mode()
    failures: list = []
    if misses and (workers <= 1 or len(misses) == 1):
        failures = _run_serial(
            misses, cache, trace_mode, retries, resolved, metrics, on_result
        )
    elif misses:
        failures = _run_pool(
            misses, workers, cache, trace_mode, retries, job_timeout,
            resolved, metrics, on_result,
        )

    results: list[SimResult | None] = [None] * len(jobs)
    for key, indices in sinks.items():
        result = resolved.get(key)
        for index in indices:
            results[index] = result
    return results, failures, len(resolved)
