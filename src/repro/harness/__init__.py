"""Experiment harness: one entry per paper table/figure.

Every experiment returns an :class:`~repro.harness.experiments.ExperimentResult`
whose ``text`` attribute is the rendered ASCII table/figure and whose
``data`` holds the raw numbers.  Results of individual simulations are
cached on disk so that re-rendering a figure does not re-run the machine
model.

Command line::

    python -m repro.harness figure7
    python -m repro.harness all
"""

from repro.harness.experiments import (
    ExperimentResult,
    EXPERIMENTS,
    run_experiment,
    run_matrix,
)
from repro.harness.parallel import (
    METRICS,
    SimJob,
    SimJobError,
    SimJobsFailed,
    run_jobs,
    run_jobs_partial,
    set_default_job_timeout,
    set_default_retries,
    set_default_workers,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "METRICS",
    "SimJob",
    "SimJobError",
    "SimJobsFailed",
    "run_experiment",
    "run_jobs",
    "run_jobs_partial",
    "run_matrix",
    "set_default_job_timeout",
    "set_default_retries",
    "set_default_workers",
]
