"""Shared benchmark grid and guard-floor constants.

Single source of truth for the perf-smoke suite
(``benchmarks/test_perf_smoke.py``) and ``scd-repro bench``: both used to
carry their own copies of the measurement grid and the regression floors,
which let them drift apart — the CLI could pass a floor the suite never
measured, or vice versa.  The grid builders live here (not the ``SimJob``
tuples themselves) so importing this module stays cheap and side-effect
free.
"""

from __future__ import annotations

from repro.harness.parallel import SimJob

#: Extremely generous floor — the live hot path does ~60k events/s and
#: warm trace replay ~375k events/s on a single 2020s laptop core with
#: the exec-compiled kernels; anything under this means the hot path
#: regressed by an order of magnitude (or the runner is pathological,
#: in which case set SCD_SKIP_PERF_GUARD=1).
MIN_EVENTS_PER_S = 8000.0

#: A warm trace-cache sweep must beat re-interpreting the same grid by at
#: least this factor (measured ~7.3x on one core with the compiled
#: kernels; the floor leaves room for slow runners).
MIN_TRACE_SPEEDUP = 4.0

#: Warm replay with compiled kernels must beat the interpreted
#: event-by-event path by at least this factor (measured ~2x without the
#: memo, more with it; generous floor for slow runners).
MIN_KERNEL_SPEEDUP = 1.3

#: Chunk-compiled batch (superblock) replay must beat the per-event
#: kernel path by at least this factor (measured ~1.6x on the TRACE_GRID
#: with cold memos; generous floor for slow runners).
MIN_BATCH_SPEEDUP = 1.25

#: The ``guard`` section of BENCH_dispatch.json — written by the
#: perf-smoke suite, enforced by ``scd-repro bench``.
GUARD_FLOORS = {
    "min_events_per_s": MIN_EVENTS_PER_S,
    "min_trace_speedup": MIN_TRACE_SPEEDUP,
    "min_kernel_speedup": MIN_KERNEL_SPEEDUP,
    "min_batch_speedup": MIN_BATCH_SPEEDUP,
}

#: ``scd-repro bench`` check rows: (label, bench section, section field,
#: guard-floor key).  Every floor in :data:`GUARD_FLOORS` is referenced
#: by at least one row, so a new floor cannot be silently unenforced.
BENCH_CHECKS = (
    ("hot path events/s",
     "hot_path", "events_per_s", "min_events_per_s"),
    ("trace replay events/s",
     "trace_replay", "replay_events_per_s", "min_events_per_s"),
    ("warm-over-cold speedup",
     "trace_replay", "speedup_warm_over_cold", "min_trace_speedup"),
    ("kernel-over-interpreted speedup",
     "kernel_replay", "speedup_kernel_over_interpreted",
     "min_kernel_speedup"),
    ("batch-over-kernel speedup",
     "batch_replay", "speedup_batch_over_kernel", "min_batch_speedup"),
)

#: The 4 workloads x 2 schemes measured by both benchmark grids.
GRID_WORKLOADS = ("fibo", "n-sieve", "random", "pidigits")
GRID_SCHEMES = ("baseline", "scd")

#: Input size for the cold-cache fan-out grid (small on purpose: the
#: grid measures harness overhead, not guest steady state).
GRID_N = 10

#: Steady-state input sizes for the trace-replay grids: long enough that
#: the guest-interpretation cost the trace cache removes — and, on
#: ``random``, the steady-state memo — actually shows.  ``random`` runs
#: >100 loop iterations per 4096-event memo chunk, so the memo engages
#: after its first key lap; the other three are recursion/array/bignum
#: shaped and exercise the plain replay path.
TRACE_NS = {"fibo": 14, "n-sieve": 200, "random": 24000, "pidigits": 40}


def perf_grid() -> tuple:
    """The 8-point cold-cache fan-out grid (``GRID`` in the suite)."""
    return tuple(
        SimJob(w, "lua", scheme,
               kwargs=(("check_output", False), ("n", GRID_N)))
        for w in GRID_WORKLOADS
        for scheme in GRID_SCHEMES
    )


def trace_grid() -> tuple:
    """The same 8 (workload, scheme) points at steady-state input sizes
    (``TRACE_GRID`` in the suite)."""
    return tuple(
        SimJob(w, "lua", scheme,
               kwargs=(("check_output", False), ("n", TRACE_NS[w])))
        for w in GRID_WORKLOADS
        for scheme in GRID_SCHEMES
    )
