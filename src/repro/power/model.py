"""Component-level area/power model for the SCD hardware additions.

Baseline module areas and powers are calibration constants taken from the
paper's Table V baseline columns (Rocket core, TSMC 40 nm, 500 MHz target).
The SCD deltas are *derived*, not copied: the BTB grows by a J/B bit of
storage per entry plus a second fully-associative match port (the
opcode-keyed lookup of ``bop``), the core gains the replicated SCD register
sets and the ``Rmask`` AND path, and everything else is untouched.

The headline numbers this model must land near (paper Section VI-B):
total area +0.72 %, total power +1.09 %, BTB area +21.6 %, BTB power
+11.7 %, EDP improvement 24.2 % at the 12.04 % FPGA geomean speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ComponentEstimate:
    """Area (mm^2) and power (mW) of one module, baseline vs. SCD."""

    name: str
    depth: int            #: indentation level in the Table V hierarchy
    base_area: float
    base_power: float
    scd_area: float
    scd_power: float

    @property
    def area_delta(self) -> float:
        return self.scd_area / self.base_area - 1.0 if self.base_area else 0.0

    @property
    def power_delta(self) -> float:
        return self.scd_power / self.base_power - 1.0 if self.base_power else 0.0


@dataclass(frozen=True)
class ScdHardwareParams:
    """Structural parameters of the SCD additions.

    Attributes:
        btb_entries: BTB entry count (62, fully associative, on Rocket).
        tag_bits: CAM tag width per entry.
        target_bits: stored target-address bits per entry.
        tables: replicated (Rop, Rmask, Rbop-pc) register sets
            (multi-jump-table support, Section IV).
        register_bits: width of each SCD register.
    """

    btb_entries: int = 62
    tag_bits: int = 30
    target_bits: int = 30
    tables: int = 4
    register_bits: int = 32

    #: Relative area of one CAM match-port bit vs. one SRAM storage bit.
    cam_port_factor: float = 0.50
    #: Relative *switching* power of a second search port (both ports are
    #: never searched in the same cycle: bop uses one, PC prediction the
    #: other, so the dynamic-power growth is below the area growth).
    cam_power_factor: float = 0.25


#: Table V baseline calibration: (name, depth, area mm^2, power mW).
_BASELINE_TABLE = [
    ("Top", 0, 0.690, 18.46),
    ("Tile", 1, 0.649, 14.66),
    ("Core", 2, 0.044, 2.86),
    ("CSR", 3, 0.013, 1.07),
    ("Div", 3, 0.006, 0.17),
    ("FPU", 2, 0.087, 3.19),
    ("ICache", 2, 0.251, 3.58),
    ("BTB", 3, 0.019, 1.40),
    ("Array", 3, 0.229, 1.91),
    ("ITLB", 3, 0.003, 0.28),
    ("DCache", 2, 0.248, 3.70),
    ("Uncore", 2, 0.018, 1.34),
    ("HTIF", 3, 0.006, 0.41),
    ("Memsys/L2Hub", 3, 0.012, 0.92),
]


class AreaPowerModel:
    """Derives the SCD-augmented area/power breakdown.

    Args:
        params: structural parameters of the additions.

    Usage::

        model = AreaPowerModel()
        table = model.breakdown()          # list[ComponentEstimate]
        print(model.total_area_delta)      # ~0.0072
    """

    def __init__(self, params: ScdHardwareParams = ScdHardwareParams()):
        self.params = params
        self._baseline = {name: (depth, area, power) for name, depth, area, power in _BASELINE_TABLE}
        self._btb_area_delta, self._btb_power_delta = self._btb_deltas()
        self._core_area_delta_mm2, self._core_power_delta_mw = self._register_deltas()

    # -- derivations -------------------------------------------------------

    def _btb_deltas(self) -> tuple[float, float]:
        """Relative BTB area/power growth from the JTE overlay.

        Baseline entry cost (area units of one SRAM bit):
        ``storage_bits + tag_bits * cam_port_factor`` (one search port).
        SCD adds one J/B storage bit and a second tag match port.
        """
        p = self.params
        storage_bits = 1 + p.tag_bits + p.target_bits  # valid + tag + target
        base_entry = storage_bits + p.tag_bits * p.cam_port_factor
        scd_entry = (storage_bits + 1) + 2 * p.tag_bits * p.cam_port_factor
        area_delta = scd_entry / base_entry - 1.0
        base_power_entry = storage_bits + p.tag_bits * p.cam_power_factor * 2
        scd_power_entry = (storage_bits + 1) + p.tag_bits * p.cam_power_factor * 3
        power_delta = scd_power_entry / base_power_entry - 1.0
        return area_delta, power_delta

    def _register_deltas(self) -> tuple[float, float]:
        """Absolute core-side additions (mm^2, mW): registers + AND + cmp.

        Flip-flop cost at 40 nm: ~2.5 um^2 per bit including clocking; the
        mask AND gate and per-table PC comparators add roughly one register
        equivalent.
        """
        p = self.params
        bits = p.tables * (3 * p.register_bits + 1)  # Rop+Rmask+Rbop-pc+valid
        bits += p.register_bits  # AND gate + comparator equivalent
        area_mm2 = bits * 2.5e-6
        power_mw = bits * 1.1e-4  # leakage + light switching per bit
        return area_mm2, power_mw

    # -- outputs ------------------------------------------------------------

    def breakdown(self) -> list[ComponentEstimate]:
        """Full Table V analogue: every module, baseline and SCD columns."""
        rows = []
        deltas_area: dict[str, float] = {}
        deltas_power: dict[str, float] = {}
        btb_depth, btb_area, btb_power = self._baseline["BTB"]
        deltas_area["BTB"] = btb_area * self._btb_area_delta
        deltas_power["BTB"] = btb_power * self._btb_power_delta
        deltas_area["Core"] = self._core_area_delta_mm2
        deltas_power["Core"] = self._core_power_delta_mw
        # Propagate leaf deltas up the hierarchy.
        deltas_area["ICache"] = deltas_area["BTB"]
        deltas_power["ICache"] = deltas_power["BTB"]
        tile_area = deltas_area["BTB"] + deltas_area["Core"]
        tile_power = deltas_power["BTB"] + deltas_power["Core"]
        deltas_area["Tile"] = tile_area
        deltas_power["Tile"] = tile_power
        deltas_area["Top"] = tile_area
        deltas_power["Top"] = tile_power
        for name, depth, area, power in _BASELINE_TABLE:
            rows.append(
                ComponentEstimate(
                    name=name,
                    depth=depth,
                    base_area=area,
                    base_power=power,
                    scd_area=area + deltas_area.get(name, 0.0),
                    scd_power=power + deltas_power.get(name, 0.0),
                )
            )
        return rows

    @property
    def total_area_delta(self) -> float:
        """Relative total-area growth (paper: +0.72 %)."""
        top = self._baseline["Top"]
        return (self._btb_area_mm2_delta() + self._core_area_delta_mm2) / top[1]

    def _btb_area_mm2_delta(self) -> float:
        return self._baseline["BTB"][1] * self._btb_area_delta

    @property
    def total_power_delta(self) -> float:
        """Relative total-power growth (paper: +1.09 %)."""
        top = self._baseline["Top"]
        btb_power_delta = self._baseline["BTB"][2] * self._btb_power_delta
        return (btb_power_delta + self._core_power_delta_mw) / top[2]

    @property
    def btb_area_delta(self) -> float:
        """Relative BTB area growth (paper: +21.6 %)."""
        return self._btb_area_delta

    @property
    def btb_power_delta(self) -> float:
        """Relative BTB power growth (paper: +11.7 %)."""
        return self._btb_power_delta


def edp_improvement(speedup: float, power_delta: float) -> float:
    """EDP improvement from a cycle *speedup* and relative *power_delta*.

    EDP = energy x delay = power x time^2.  The paper reports improvement
    relative to the SCD design: ``EDP_base / EDP_scd - 1`` — with the FPGA
    geomean speedup of 12.04 % and +1.09 % power this yields the quoted
    24.2 %.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    edp_ratio = (1.0 + power_delta) / (speedup**2)
    return 1.0 / edp_ratio - 1.0
