"""Area / power / EDP model (Table V of the paper).

The paper synthesises a RISC-V Rocket core with and without SCD using a
TSMC 40 nm library.  We cannot run Design Compiler, so this package carries
a component-level analytic model *calibrated to the paper's published
baseline breakdown* (module areas/powers of Table V's baseline columns) and
derives the SCD additions from first-principles bit counts: the J/B flag
and second CAM match port on every BTB entry, the replicated
(Rop, Rmask, Rbop-pc) register sets, the mask AND gate, and the bop PC
comparators.
"""

from repro.power.model import (
    AreaPowerModel,
    ComponentEstimate,
    ScdHardwareParams,
    edp_improvement,
)

__all__ = [
    "AreaPowerModel",
    "ComponentEstimate",
    "ScdHardwareParams",
    "edp_improvement",
]
