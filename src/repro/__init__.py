"""scd-repro: reproduction of Short-Circuit Dispatch (ISCA 2016).

Short-Circuit Dispatch (SCD) overlays a VM interpreter's bytecode jump
table onto the branch target buffer of an embedded in-order core, turning
bytecode dispatch into a single ``bop`` instruction on the fast path.  This
package reproduces the paper's system and evaluation from scratch in
Python:

* two production-style guest interpreters (Lua 5.3-like register VM,
  SpiderMonkey-17-like stack VM) with a shared source language;
* their native code expressed in a small host ISA, under three dispatch
  code layouts (switch, jump threading, SCD) plus the VBBI predictor;
* a cycle-approximate embedded-core model (BTB with the J/B-bit JTE
  overlay, branch predictors, caches, TLBs, DRAM);
* an area/power/EDP model;
* the 11 Table III workloads and one harness entry per paper table/figure.

Quickstart::

    from repro import simulate, speedup
    base = simulate("fibo", vm="lua", scheme="baseline")
    scd = simulate("fibo", vm="lua", scheme="scd")
    print(f"SCD speedup: {speedup(base, scd):.3f}x")
"""

from repro.core import SCHEMES, SimResult, geomean, scheme_parts, simulate, speedup
from repro.uarch.config import CoreConfig, cortex_a5, cortex_a8, rocket
from repro.workloads import WORKLOADS, workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "speedup",
    "geomean",
    "scheme_parts",
    "SCHEMES",
    "SimResult",
    "CoreConfig",
    "cortex_a5",
    "cortex_a8",
    "rocket",
    "WORKLOADS",
    "workload",
    "workload_names",
    "__version__",
]
