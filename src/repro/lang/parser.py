"""Recursive-descent parser for the scriptlet language.

Grammar (precedence low to high)::

    module     := (funcdecl | statement)*
    funcdecl   := 'fn' NAME '(' params? ')' block
    statement  := vardecl | if | while | fornum | return | break | continue
                | assign-or-exprstmt
    vardecl    := 'var' NAME '=' expr ';'
    fornum     := 'for' NAME '=' expr ',' expr (',' expr)? block
    expr       := or
    or         := and ('or' and)*
    and        := not ('and' not)*
    not        := 'not' not | comparison
    comparison := concat (('=='|'!='|'<'|'<='|'>'|'>=') concat)?
    concat     := additive ('..' additive)*        -- right associative
    additive   := multiplicative (('+'|'-') multiplicative)*
    mult       := unary (('*'|'/'|'//'|'%') unary)*
    unary      := '-' unary | postfix
    postfix    := primary ('[' expr ']')*
    primary    := literal | NAME | NAME '(' args ')' | '(' expr ')'
                | '[' items ']' | '{' pairs '}'
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.lexer import Token, TokenType, tokenize


class ParseError(ValueError):
    """Raised on syntax errors with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def check(self, type_: TokenType, value: object = None) -> bool:
        return self.current.matches(type_, value)

    def accept(self, type_: TokenType, value: object = None) -> Token | None:
        if self.check(type_, value):
            return self.advance()
        return None

    def expect(self, type_: TokenType, value: object = None) -> Token:
        if self.check(type_, value):
            return self.advance()
        want = value if value is not None else type_.value
        raise ParseError(
            f"expected {want!r}, found {self.current.value!r}", self.current.line
        )

    # -- module level -----------------------------------------------------

    def parse_module(self) -> ast.Module:
        body: list[ast.Node] = []
        while not self.check(TokenType.EOF):
            if self.check(TokenType.KEYWORD, "fn"):
                body.append(self.funcdecl())
            else:
                body.append(self.statement())
        return ast.Module(body=body, line=1)

    def funcdecl(self) -> ast.FuncDecl:
        line = self.expect(TokenType.KEYWORD, "fn").line
        name = self.expect(TokenType.NAME).value
        self.expect(TokenType.OP, "(")
        params: list[str] = []
        if not self.check(TokenType.OP, ")"):
            params.append(self.expect(TokenType.NAME).value)
            while self.accept(TokenType.OP, ","):
                params.append(self.expect(TokenType.NAME).value)
        self.expect(TokenType.OP, ")")
        if len(set(params)) != len(params):
            raise ParseError(f"duplicate parameter in fn {name!r}", line)
        body = self.block()
        return ast.FuncDecl(name=name, params=params, body=body, line=line)

    # -- statements --------------------------------------------------------

    def block(self) -> ast.Block:
        line = self.expect(TokenType.OP, "{").line
        statements: list[ast.Node] = []
        while not self.check(TokenType.OP, "}"):
            if self.check(TokenType.EOF):
                raise ParseError("unterminated block", line)
            statements.append(self.statement())
        self.expect(TokenType.OP, "}")
        return ast.Block(statements=statements, line=line)

    def statement(self) -> ast.Node:
        token = self.current
        if token.matches(TokenType.KEYWORD, "var"):
            return self.vardecl()
        if token.matches(TokenType.KEYWORD, "if"):
            return self.if_statement()
        if token.matches(TokenType.KEYWORD, "while"):
            return self.while_statement()
        if token.matches(TokenType.KEYWORD, "for"):
            return self.for_statement()
        if token.matches(TokenType.KEYWORD, "return"):
            self.advance()
            value = None
            if not self.check(TokenType.OP, ";"):
                value = self.expression()
            self.expect(TokenType.OP, ";")
            return ast.Return(value=value, line=token.line)
        if token.matches(TokenType.KEYWORD, "break"):
            self.advance()
            self.expect(TokenType.OP, ";")
            return ast.Break(line=token.line)
        if token.matches(TokenType.KEYWORD, "continue"):
            self.advance()
            self.expect(TokenType.OP, ";")
            return ast.Continue(line=token.line)
        if token.matches(TokenType.KEYWORD, "fn"):
            raise ParseError("nested function declarations are not supported", token.line)
        return self.assign_or_expr()

    def vardecl(self) -> ast.VarDecl:
        line = self.expect(TokenType.KEYWORD, "var").line
        name = self.expect(TokenType.NAME).value
        self.expect(TokenType.OP, "=")
        value = self.expression()
        self.expect(TokenType.OP, ";")
        return ast.VarDecl(name=name, value=value, line=line)

    def if_statement(self) -> ast.If:
        line = self.expect(TokenType.KEYWORD, "if").line
        self.expect(TokenType.OP, "(")
        cond = self.expression()
        self.expect(TokenType.OP, ")")
        then = self.block()
        orelse: ast.Node | None = None
        if self.accept(TokenType.KEYWORD, "else"):
            if self.check(TokenType.KEYWORD, "if"):
                orelse = self.if_statement()
            else:
                orelse = self.block()
        return ast.If(cond=cond, then=then, orelse=orelse, line=line)

    def while_statement(self) -> ast.While:
        line = self.expect(TokenType.KEYWORD, "while").line
        self.expect(TokenType.OP, "(")
        cond = self.expression()
        self.expect(TokenType.OP, ")")
        body = self.block()
        return ast.While(cond=cond, body=body, line=line)

    def for_statement(self) -> ast.ForNum:
        line = self.expect(TokenType.KEYWORD, "for").line
        var = self.expect(TokenType.NAME).value
        self.expect(TokenType.OP, "=")
        start = self.expression()
        self.expect(TokenType.OP, ",")
        stop = self.expression()
        step = None
        if self.accept(TokenType.OP, ","):
            step = self.expression()
        body = self.block()
        return ast.ForNum(
            var=var, start=start, stop=stop, step=step, body=body, line=line
        )

    def assign_or_expr(self) -> ast.Node:
        line = self.current.line
        expr = self.expression()
        if self.accept(TokenType.OP, "="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise ParseError("invalid assignment target", line)
            value = self.expression()
            self.expect(TokenType.OP, ";")
            return ast.Assign(target=expr, value=value, line=line)
        self.expect(TokenType.OP, ";")
        return ast.ExprStmt(expr=expr, line=line)

    # -- expressions --------------------------------------------------------

    def expression(self) -> ast.Node:
        return self.or_expr()

    def or_expr(self) -> ast.Node:
        left = self.and_expr()
        while self.check(TokenType.KEYWORD, "or"):
            line = self.advance().line
            right = self.and_expr()
            left = ast.Logical(op="or", left=left, right=right, line=line)
        return left

    def and_expr(self) -> ast.Node:
        left = self.not_expr()
        while self.check(TokenType.KEYWORD, "and"):
            line = self.advance().line
            right = self.not_expr()
            left = ast.Logical(op="and", left=left, right=right, line=line)
        return left

    def not_expr(self) -> ast.Node:
        if self.check(TokenType.KEYWORD, "not"):
            line = self.advance().line
            operand = self.not_expr()
            return ast.UnOp(op="not", operand=operand, line=line)
        return self.comparison()

    _COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")

    def comparison(self) -> ast.Node:
        left = self.concat()
        if self.current.type is TokenType.OP and self.current.value in self._COMPARISONS:
            token = self.advance()
            right = self.concat()
            return ast.BinOp(op=token.value, left=left, right=right, line=token.line)
        return left

    def concat(self) -> ast.Node:
        left = self.additive()
        if self.check(TokenType.OP, ".."):
            line = self.advance().line
            right = self.concat()  # right associative, like Lua
            return ast.BinOp(op="..", left=left, right=right, line=line)
        return left

    def additive(self) -> ast.Node:
        left = self.multiplicative()
        while self.current.type is TokenType.OP and self.current.value in ("+", "-"):
            token = self.advance()
            right = self.multiplicative()
            left = ast.BinOp(op=token.value, left=left, right=right, line=token.line)
        return left

    def multiplicative(self) -> ast.Node:
        left = self.unary()
        while self.current.type is TokenType.OP and self.current.value in (
            "*",
            "/",
            "//",
            "%",
        ):
            token = self.advance()
            right = self.unary()
            left = ast.BinOp(op=token.value, left=left, right=right, line=token.line)
        return left

    def unary(self) -> ast.Node:
        if self.check(TokenType.OP, "-"):
            line = self.advance().line
            operand = self.unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(value=-operand.value, line=line)
            return ast.UnOp(op="-", operand=operand, line=line)
        return self.postfix()

    def postfix(self) -> ast.Node:
        expr = self.primary()
        while self.check(TokenType.OP, "["):
            line = self.advance().line
            key = self.expression()
            self.expect(TokenType.OP, "]")
            expr = ast.Index(obj=expr, key=key, line=line)
        return expr

    def primary(self) -> ast.Node:
        token = self.current
        if token.type is TokenType.INT or token.type is TokenType.FLOAT:
            self.advance()
            return ast.Literal(value=token.value, line=token.line)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(value=token.value, line=token.line)
        if token.matches(TokenType.KEYWORD, "true"):
            self.advance()
            return ast.Literal(value=True, line=token.line)
        if token.matches(TokenType.KEYWORD, "false"):
            self.advance()
            return ast.Literal(value=False, line=token.line)
        if token.matches(TokenType.KEYWORD, "nil"):
            self.advance()
            return ast.Literal(value=None, line=token.line)
        if token.type is TokenType.NAME:
            self.advance()
            if self.check(TokenType.OP, "("):
                self.advance()
                args: list[ast.Node] = []
                if not self.check(TokenType.OP, ")"):
                    args.append(self.expression())
                    while self.accept(TokenType.OP, ","):
                        args.append(self.expression())
                self.expect(TokenType.OP, ")")
                return ast.Call(callee=token.value, args=args, line=token.line)
            return ast.Name(id=token.value, line=token.line)
        if token.matches(TokenType.OP, "("):
            self.advance()
            expr = self.expression()
            self.expect(TokenType.OP, ")")
            return expr
        if token.matches(TokenType.OP, "["):
            self.advance()
            items: list[ast.Node] = []
            if not self.check(TokenType.OP, "]"):
                items.append(self.expression())
                while self.accept(TokenType.OP, ","):
                    items.append(self.expression())
            self.expect(TokenType.OP, "]")
            return ast.ArrayLit(items=items, line=token.line)
        if token.matches(TokenType.OP, "{"):
            self.advance()
            pairs: list[tuple] = []
            if not self.check(TokenType.OP, "}"):
                pairs.append(self._map_pair())
                while self.accept(TokenType.OP, ","):
                    pairs.append(self._map_pair())
            self.expect(TokenType.OP, "}")
            return ast.MapLit(pairs=pairs, line=token.line)
        raise ParseError(f"unexpected token {token.value!r}", token.line)

    def _map_pair(self) -> tuple:
        if self.current.type in (TokenType.NAME, TokenType.STRING):
            key_token = self.advance()
            key: ast.Node = ast.Literal(value=key_token.value, line=key_token.line)
        elif self.accept(TokenType.OP, "["):
            key = self.expression()
            self.expect(TokenType.OP, "]")
        else:
            raise ParseError(
                f"bad map key {self.current.value!r}", self.current.line
            )
        self.expect(TokenType.OP, ":")
        value = self.expression()
        return (key, value)


def parse(source: str) -> ast.Module:
    """Parse *source* into a :class:`repro.lang.ast.Module`.

    Raises:
        LexerError / ParseError: with 1-based line numbers.
    """
    return _Parser(tokenize(source)).parse_module()
