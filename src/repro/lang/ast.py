"""Abstract syntax tree for the scriptlet language.

Nodes are plain frozen-ish dataclasses (mutable only where the compilers
annotate them).  Every node records its source line for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions --------------------------------------------------------------


@dataclass(slots=True)
class Literal(Node):
    """int / float / str / bool / None constant."""

    value: object = None


@dataclass(slots=True)
class Name(Node):
    id: str = ""


@dataclass(slots=True)
class BinOp(Node):
    """Arithmetic/comparison/concat: one of
    ``+ - * / // % .. == != < <= > >=``."""

    op: str = ""
    left: Node = None
    right: Node = None


@dataclass(slots=True)
class UnOp(Node):
    """Unary ``-`` or ``not``."""

    op: str = ""
    operand: Node = None


@dataclass(slots=True)
class Logical(Node):
    """Short-circuit ``and`` / ``or``."""

    op: str = ""
    left: Node = None
    right: Node = None


@dataclass(slots=True)
class Call(Node):
    """Direct call of a global function or builtin by name."""

    callee: str = ""
    args: list = field(default_factory=list)


@dataclass(slots=True)
class Index(Node):
    """``obj[key]`` read (or write target inside :class:`Assign`)."""

    obj: Node = None
    key: Node = None


@dataclass(slots=True)
class ArrayLit(Node):
    items: list = field(default_factory=list)


@dataclass(slots=True)
class MapLit(Node):
    """``{key: value, ...}`` with string or expression keys."""

    pairs: list = field(default_factory=list)  # list[(key_expr, value_expr)]


# -- statements --------------------------------------------------------------


@dataclass(slots=True)
class Block(Node):
    statements: list = field(default_factory=list)


@dataclass(slots=True)
class VarDecl(Node):
    name: str = ""
    value: Node = None


@dataclass(slots=True)
class Assign(Node):
    """Assignment to a :class:`Name` or :class:`Index` target."""

    target: Node = None
    value: Node = None


@dataclass(slots=True)
class If(Node):
    cond: Node = None
    then: Block = None
    orelse: Node = None  # Block, nested If, or None


@dataclass(slots=True)
class While(Node):
    cond: Node = None
    body: Block = None


@dataclass(slots=True)
class ForNum(Node):
    """Lua-style numeric for: ``for i = start, stop, step { ... }``.

    Iterates while ``i <= stop`` (or ``>=`` for negative step), inclusive,
    exactly like Lua's FORPREP/FORLOOP semantics.
    """

    var: str = ""
    start: Node = None
    stop: Node = None
    step: Node = None  # None means 1
    body: Block = None


@dataclass(slots=True)
class Return(Node):
    value: Node = None  # None returns nil


@dataclass(slots=True)
class Break(Node):
    pass


@dataclass(slots=True)
class Continue(Node):
    pass


@dataclass(slots=True)
class ExprStmt(Node):
    expr: Node = None


@dataclass(slots=True)
class FuncDecl(Node):
    name: str = ""
    params: list = field(default_factory=list)
    body: Block = None


@dataclass(slots=True)
class Module(Node):
    """A whole script: function declarations plus top-level statements."""

    body: list = field(default_factory=list)

    def functions(self) -> list[FuncDecl]:
        return [node for node in self.body if isinstance(node, FuncDecl)]

    def top_level(self) -> list[Node]:
        return [node for node in self.body if not isinstance(node, FuncDecl)]


def walk(node: Node):
    """Yield *node* and all descendants (pre-order)."""
    yield node
    for slot in node.__dataclass_fields__:
        value = getattr(node, slot)
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
                elif isinstance(item, tuple):
                    for element in item:
                        if isinstance(element, Node):
                            yield from walk(element)
