"""Tokenizer for the scriptlet language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LexerError(ValueError):
    """Raised on malformed input with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class TokenType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    NAME = "name"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "fn",
        "var",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "nil",
        "and",
        "or",
        "not",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "..",
    "==",
    "!=",
    "<=",
    ">=",
    "//",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
)

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "0": "\0", "r": "\r"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    Attributes:
        type: token class.
        value: int/float for numbers, decoded text for strings, the
            identifier / keyword / operator text otherwise.
        line: 1-based source line.
    """

    type: TokenType
    value: object
    line: int

    def matches(self, type_: TokenType, value: object = None) -> bool:
        return self.type is type_ and (value is None or self.value == value)


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, appending a single EOF token.

    Raises:
        LexerError: on unterminated strings, bad numbers or stray
            characters.
    """
    tokens: list[Token] = []
    line = 1
    position = 0
    length = len(source)

    while position < length:
        ch = source[position]

        if ch == "\n":
            line += 1
            position += 1
            continue
        if ch in " \t\r":
            position += 1
            continue
        # '#' starts a comment ('//' is the floor-division operator).
        if ch == "#":
            while position < length and source[position] != "\n":
                position += 1
            continue

        if ch.isdigit() or (
            ch == "." and position + 1 < length and source[position + 1].isdigit()
        ):
            start = position
            seen_dot = False
            seen_exp = False
            if source.startswith("0x", position) or source.startswith("0X", position):
                position += 2
                while position < length and source[position] in "0123456789abcdefABCDEF":
                    position += 1
                text = source[start:position]
                try:
                    tokens.append(Token(TokenType.INT, int(text, 16), line))
                except ValueError:
                    raise LexerError(f"bad hex literal {text!r}", line) from None
                continue
            while position < length:
                c = source[position]
                if c.isdigit():
                    position += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # ".." is the concat operator, not a decimal point.
                    if source.startswith("..", position):
                        break
                    seen_dot = True
                    position += 1
                elif c in "eE" and not seen_exp:
                    seen_exp = True
                    position += 1
                    if position < length and source[position] in "+-":
                        position += 1
                else:
                    break
            text = source[start:position]
            try:
                if seen_dot or seen_exp:
                    tokens.append(Token(TokenType.FLOAT, float(text), line))
                else:
                    tokens.append(Token(TokenType.INT, int(text), line))
            except ValueError:
                raise LexerError(f"bad number literal {text!r}", line) from None
            continue

        if ch == '"':
            position += 1
            chunks: list[str] = []
            while True:
                if position >= length:
                    raise LexerError("unterminated string literal", line)
                c = source[position]
                if c == '"':
                    position += 1
                    break
                if c == "\n":
                    raise LexerError("newline inside string literal", line)
                if c == "\\":
                    position += 1
                    if position >= length:
                        raise LexerError("unterminated escape", line)
                    escape = source[position]
                    try:
                        chunks.append(_ESCAPES[escape])
                    except KeyError:
                        raise LexerError(
                            f"unknown escape \\{escape}", line
                        ) from None
                    position += 1
                else:
                    chunks.append(c)
                    position += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), line))
            continue

        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (
                source[position].isalnum() or source[position] == "_"
            ):
                position += 1
            text = source[start:position]
            if text in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, text, line))
            else:
                tokens.append(Token(TokenType.NAME, text, line))
            continue

        for operator in _OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Token(TokenType.OP, operator, line))
                position += len(operator)
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line)

    tokens.append(Token(TokenType.EOF, None, line))
    return tokens
