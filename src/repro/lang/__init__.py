"""Mini scripting language ("scriptlet") frontend.

The benchmarks of the paper are Computer Language Benchmarks Game scripts
written in Lua and JavaScript.  We write each benchmark once in a small
dynamically-typed language and compile it to *both* interpreter VMs
(register-based Lua-like and stack-based JS-like), which keeps the guest
algorithm — and therefore the dynamic bytecode mix — identical across VMs.

The language: first-class ints (arbitrary precision), floats, strings,
booleans, nil, arrays and maps; global functions with recursion; ``if`` /
``while`` / Lua-style numeric ``for``; ``..`` string concatenation (mapping
onto Lua's CONCAT bytecode); a small builtin library.

Example::

    fn fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    print(fib(12));
"""

from repro.lang.lexer import tokenize, Token, TokenType, LexerError
from repro.lang.parser import parse, ParseError
from repro.lang.unparse import unparse
from repro.lang import ast

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "LexerError",
    "parse",
    "ParseError",
    "unparse",
    "ast",
]
