"""Render a scriptlet AST back to parseable source text.

The inverse of :func:`repro.lang.parser.parse`, up to formatting:
``parse(unparse(parse(src)))`` is structurally identical to
``parse(src)`` for every valid program.  The verify subsystem
(:mod:`repro.verify`) generates random :mod:`repro.lang.ast` modules and
relies on this renderer to feed them to both guest VMs; the round-trip
property is asserted by ``tests/test_verify.py``.

Expressions are parenthesized conservatively (every non-atomic operand is
wrapped), which keeps the renderer independent of the grammar's precedence
table at the cost of a few redundant parentheses.
"""

from __future__ import annotations

from repro.lang import ast

_STRING_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\0": "\\0",
}


def _string(text: str) -> str:
    chunks = ['"']
    for ch in text:
        chunks.append(_STRING_ESCAPES.get(ch, ch))
    chunks.append('"')
    return "".join(chunks)


def _literal(value: object) -> str:
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return _string(value)
    if isinstance(value, float):
        # repr() keeps full precision; ensure the token re-lexes as FLOAT.
        text = repr(value)
        if "." not in text and "e" not in text and "E" not in text:
            text += ".0"
        return text
    if isinstance(value, int):
        return str(value)
    raise TypeError(f"cannot render literal {value!r}")


def _atom(node: ast.Node) -> str:
    """Render an expression, parenthesized unless syntactically atomic."""
    text = _expr(node)
    if isinstance(node, (ast.Name, ast.Call, ast.Index, ast.ArrayLit, ast.MapLit)):
        return text
    if isinstance(node, ast.Literal):
        value = node.value
        # Negative numeric literals re-lex as unary minus; parenthesize so
        # they cannot change the parse of e.g. ``a - -1``.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return text
        if value >= 0:
            return text
    return f"({text})"


def _expr(node: ast.Node) -> str:
    if isinstance(node, ast.Literal):
        return _literal(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.BinOp):
        return f"{_atom(node.left)} {node.op} {_atom(node.right)}"
    if isinstance(node, ast.Logical):
        return f"{_atom(node.left)} {node.op} {_atom(node.right)}"
    if isinstance(node, ast.UnOp):
        operator = "not " if node.op == "not" else node.op
        return f"{operator}{_atom(node.operand)}"
    if isinstance(node, ast.Call):
        args = ", ".join(_expr(arg) for arg in node.args)
        return f"{node.callee}({args})"
    if isinstance(node, ast.Index):
        return f"{_atom(node.obj)}[{_expr(node.key)}]"
    if isinstance(node, ast.ArrayLit):
        return "[" + ", ".join(_expr(item) for item in node.items) + "]"
    if isinstance(node, ast.MapLit):
        pairs = []
        for key, value in node.pairs:
            if isinstance(key, ast.Literal) and isinstance(key.value, str):
                pairs.append(f"{_string(key.value)}: {_expr(value)}")
            else:
                pairs.append(f"[{_expr(key)}]: {_expr(value)}")
        return "{" + ", ".join(pairs) + "}"
    raise TypeError(f"cannot render expression node {type(node).__name__}")


def _statements(statements: list, indent: int, lines: list) -> None:
    for statement in statements:
        _statement(statement, indent, lines)


def _block(block: ast.Block, indent: int, lines: list, header: str) -> None:
    pad = "    " * indent
    lines.append(f"{pad}{header} {{")
    _statements(block.statements, indent + 1, lines)
    lines.append(f"{pad}}}")


def _statement(node: ast.Node, indent: int, lines: list) -> None:
    pad = "    " * indent
    if isinstance(node, ast.VarDecl):
        lines.append(f"{pad}var {node.name} = {_expr(node.value)};")
    elif isinstance(node, ast.Assign):
        lines.append(f"{pad}{_expr(node.target)} = {_expr(node.value)};")
    elif isinstance(node, ast.ExprStmt):
        lines.append(f"{pad}{_expr(node.expr)};")
    elif isinstance(node, ast.Return):
        if node.value is None:
            lines.append(f"{pad}return;")
        else:
            lines.append(f"{pad}return {_expr(node.value)};")
    elif isinstance(node, ast.Break):
        lines.append(f"{pad}break;")
    elif isinstance(node, ast.Continue):
        lines.append(f"{pad}continue;")
    elif isinstance(node, ast.If):
        _if_chain(node, indent, lines)
    elif isinstance(node, ast.While):
        _block(node.body, indent, lines, f"while ({_expr(node.cond)})")
    elif isinstance(node, ast.ForNum):
        header = f"for {node.var} = {_expr(node.start)}, {_expr(node.stop)}"
        if node.step is not None:
            header += f", {_expr(node.step)}"
        _block(node.body, indent, lines, header)
    elif isinstance(node, ast.FuncDecl):
        params = ", ".join(node.params)
        _block(node.body, indent, lines, f"fn {node.name}({params})")
    elif isinstance(node, ast.Block):
        # Bare blocks do not exist in the grammar; splice the statements.
        _statements(node.statements, indent, lines)
    else:
        raise TypeError(f"cannot render statement node {type(node).__name__}")


def _if_chain(node: ast.If, indent: int, lines: list) -> None:
    pad = "    " * indent
    lines.append(f"{pad}if ({_expr(node.cond)}) {{")
    _statements(node.then.statements, indent + 1, lines)
    orelse = node.orelse
    while isinstance(orelse, ast.If):
        lines.append(f"{pad}}} else if ({_expr(orelse.cond)}) {{")
        _statements(orelse.then.statements, indent + 1, lines)
        orelse = orelse.orelse
    if orelse is not None:
        lines.append(f"{pad}}} else {{")
        _statements(orelse.statements, indent + 1, lines)
    lines.append(f"{pad}}}")


def unparse(module: ast.Module) -> str:
    """Render *module* as source text the parser accepts."""
    lines: list[str] = []
    for node in module.body:
        _statement(node, 0, lines)
    return "\n".join(lines) + "\n"
