"""Replay of VM trace events as native-code block executions.

:class:`NativeInterpreterModel` assembles the complete native image of one
interpreter under one dispatch strategy (dispatcher copies, all handlers,
builtin stubs) and precomputes per-opcode runtime descriptors.
:class:`ModelRunner` binds a model to a :class:`repro.uarch.pipeline.Machine`
and replays the functional VM's trace events onto it — every event becomes
the dispatch-block sequence of the strategy under test plus the opcode's
handler blocks, with branch outcomes, JTE traffic and data addresses fed to
the timing model.
"""

from __future__ import annotations

import functools
import hashlib

from repro.isa.program import BasicBlock, Program, ProgramLayout
from repro.native import js_model, lua_model
from repro.native.specs import (
    HandlerSpec,
    generate_handler_asm,
    generate_stub_asm,
    work_loop_iterations,
)
from repro.uarch.pipeline import Machine
from repro.vm.builtins import BUILTINS
from repro.vm.js.opcodes import exit_site as _js_exit_site
from repro.vm.trace import CALLEE_BUILTIN, TAKEN_TRUE

#: Strategies whose code layout differs.  VBBI is the baseline layout with
#: the machine's ``indirect_scheme`` set to ``"vbbi"``; "superinst" is the
#: baseline layout plus fused superinstruction handlers (Ertl & Gregg).
DISPATCH_STRATEGIES = ("baseline", "threaded", "scd", "superinst")

#: Synthetic address of the VM state structure (virtual PC slot etc.).
_VM_STRUCT_PC_SLOT = 0x00F0_0028
#: Guest bytecode stream region (sequential-ish fetch pattern).
_GUEST_CODE_BASE = 0x00E0_0000


class _DispatchRT:
    """Precomputed blocks/PCs of one dispatcher copy (one site)."""

    __slots__ = (
        "head",
        "fetch",
        "operand",
        "bop_block",
        "decode",
        "bound",
        "calc",
        "bound_pc",
        "jump_pc",
        "bop_pc",
        "scd",
        "slow_blocks",
        "pre_branch",
    )

    def __init__(self, program: Program, site: int, scd: bool):
        self.head = program.block(f"LoopHead_{site}")
        self.fetch = program.block(f"Fetch_{site}")
        self.operand = (
            program.block(f"Operand_{site}")
            if program.has_block(f"Operand_{site}")
            else None
        )
        self.scd = scd
        if scd:
            self.bop_block = program.block(f"Bop_{site}")
            self.bop_pc = self.bop_block.term.pc
        else:
            self.bop_block = None
            self.bop_pc = -1
        self.decode = program.block(f"Decode_{site}")
        self.bound = program.block(f"Bound_{site}")
        self.bound_pc = self.bound.term.pc
        self.calc = program.block(f"Calc_{site}")
        self.jump_pc = self.calc.term.pc
        # Flat per-phase block tuples for the replay hot path: the blocks
        # retired together on the SCD slow path and on the non-SCD path
        # (operand decode included) between fetch and the bound check.
        self.slow_blocks = (self.decode, self.bound)
        operand_blocks = (self.operand,) if self.operand is not None else ()
        self.pre_branch = operand_blocks + self.slow_blocks


def _tail_of(block: BasicBlock) -> tuple | None:
    """Precompute `_run_tail`'s work: (pc, target) of the block's
    terminating direct jump, or ``None`` when it falls through."""
    term = block.term
    if term is not None and term.target is not None:
        return (term.pc, term.target)
    return None


def _follow_chain(
    program: Program, name: str, start_name: str
) -> tuple[list, BasicBlock]:
    """Walk a handler's hot-chunk chain.

    Returns ``([(chunk_block, junction_branch_pc), ...], final_block)``:
    chunks end in always-taken ``bne`` junctions over inline cold regions;
    the final block carries the handler's real terminator (or falls through
    to the work loop).
    """
    block = program.block(start_name)
    chain: list = []
    prefix = f"{name}_h"
    while (
        block.term is not None
        and block.term.mnemonic == "bne"
        and block.term.target_label is not None
        and block.term.target_label.startswith(prefix)
    ):
        chain.append((block, block.term.pc))
        block = program.block(block.term.target_label)
    return chain, block


class _HandlerRT:
    """Precomputed blocks/PCs of one handler."""

    __slots__ = (
        "pc",
        "chain",
        "final",
        "kind",
        "branch_pc",
        "nt",
        "tk",
        "work",
        "work_pc",
        "exit",
        "ret_block",
        "call_pc",
        "tail_block",
        "tail_jump_pc",
        "static_insts",
        "final_tail",
        "tk_tail",
        "nt_tail",
        "exit_tail",
        "ret_tail",
    )

    def __init__(self, program: Program, name: str, spec: HandlerSpec, threaded: bool):
        chain, self.final = _follow_chain(program, name, name)
        self.chain = tuple(chain)
        first = self.chain[0][0] if self.chain else self.final
        self.pc = first.start_pc
        self.static_insts = spec.body_insts
        self.nt = self.tk = self.work = self.exit = self.ret_block = None
        self.branch_pc = self.work_pc = self.call_pc = -1
        self.final_tail = self.tk_tail = self.nt_tail = None
        self.exit_tail = self.ret_tail = None
        if spec.calls_out:
            self.kind = "callout"
            self.call_pc = self.final.term.pc
            self.ret_block = program.block(f"{name}_r")
            self.ret_tail = _tail_of(self.ret_block)
        elif spec.has_work_loop:
            self.kind = "workloop"
            self.work = program.block(f"{name}_w")
            self.work_pc = self.work.term.pc
            self.exit = program.block(f"{name}_x")
            self.exit_tail = _tail_of(self.exit)
        elif spec.guest_branch:
            self.kind = "branchy"
            self.branch_pc = self.final.term.pc
            self.nt = program.block(f"{name}_nt")
            self.tk = program.block(f"{name}_tk")
            self.tk_tail = _tail_of(self.tk)
            self.nt_tail = _tail_of(self.nt)
        else:
            self.kind = "plain"
            self.final_tail = _tail_of(self.final)
        if threaded:
            self.tail_block = program.block(f"{name}_T")
            self.tail_jump_pc = self.tail_block.term.pc
        else:
            self.tail_block = None
            self.tail_jump_pc = -1


class _StubRT:
    """Precomputed blocks of one builtin / precall stub."""

    __slots__ = (
        "pc",
        "chain",
        "final",
        "work",
        "work_pc",
        "exit",
        "ret_pc",
        "entry_insts",
    )

    def __init__(self, program: Program, name: str):
        label = f"B_{name}"
        chain, self.final = _follow_chain(program, label, label)
        self.chain = tuple(chain)
        first = self.chain[0][0] if self.chain else self.final
        self.pc = first.start_pc
        self.work = program.block(f"{label}_w")
        self.work_pc = self.work.term.pc
        self.exit = program.block(f"{label}_x")
        self.ret_pc = self.exit.term.pc
        self.entry_insts = (
            sum(block.n_insts for block, _ in self.chain)
            + self.final.n_insts
            + self.exit.n_insts
        )


class NativeInterpreterModel:
    """The assembled native image of one (vm_kind, strategy) pair.

    Args:
        vm_kind: ``"lua"`` or ``"js"``.
        strategy: one of :data:`DISPATCH_STRATEGIES`.

    Attributes:
        program: the full assembled host program (dispatchers + all
            handlers + stubs); its size drives the I-cache model.
        opcode_mask: the interpreter's ``setmask`` value.
        covered_sites: dispatch sites with SCD coverage.
    """

    def __init__(self, vm_kind: str, strategy: str):
        if vm_kind not in ("lua", "js"):
            raise ValueError(f"unknown vm_kind {vm_kind!r}")
        if strategy not in DISPATCH_STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.vm_kind = vm_kind
        self.strategy = strategy
        backend = lua_model if vm_kind == "lua" else js_model
        self.opcode_mask = (
            lua_model.LUA_OPCODE_MASK if vm_kind == "lua" else js_model.JS_OPCODE_MASK
        )
        if vm_kind == "lua":
            self.sites = (0,)
            self.covered_sites = frozenset({0})
        else:
            self.sites = js_model.JS_ALL_SITES
            self.covered_sites = frozenset(js_model.JS_COVERED_SITES)

        # Superinstructions reuse the baseline dispatcher and tails; only
        # the handler set differs (extra fused bodies below).
        code_strategy = "baseline" if strategy == "superinst" else strategy
        layout = ProgramLayout(base=0x1_0000, align=16)
        layout.add(backend.dispatcher_text(code_strategy))
        specs = backend.HANDLER_SPECS
        chunk, cold = backend.CHUNK_INSTS, backend.COLD_INSTS
        threaded = strategy == "threaded"
        for op in sorted(specs):
            name = backend.handler_name(op)
            if vm_kind == "lua":
                tail = lua_model.handler_tail(code_strategy)
            else:
                tail = js_model.handler_tail(code_strategy, int(_js_exit_site(op)))
            text = generate_handler_asm(name, specs[op], tail, chunk=chunk, cold=cold)
            if threaded:
                tail_text = (
                    lua_model.THREADED_TAIL if vm_kind == "lua" else js_model.THREADED_TAIL
                )
                text += tail_text.format(name=name)
            layout.add(text)
        fused_pairs: list = []
        if strategy == "superinst":
            # Fused bodies: the pair's concatenated work minus the elided
            # store/reload of the intermediate state (2 instructions).
            for first, second in backend.FUSED_PAIRS:
                spec_a, spec_b = specs[first], specs[second]
                if (
                    spec_a.guest_branch or spec_a.has_work_loop or spec_a.calls_out
                    or spec_b.guest_branch or spec_b.has_work_loop or spec_b.calls_out
                ):
                    continue
                fused_spec = HandlerSpec(
                    alu=max(1, spec_a.alu + spec_b.alu - 2),
                    loads=spec_a.loads + spec_b.loads,
                    stores=spec_a.stores + spec_b.stores,
                )
                name = f"F_{backend.handler_name(first)}__{backend.handler_name(second)}"
                if vm_kind == "lua":
                    tail = lua_model.handler_tail("baseline")
                else:
                    tail = js_model.handler_tail("baseline", int(_js_exit_site(second)))
                layout.add(
                    generate_handler_asm(name, fused_spec, tail, chunk=chunk, cold=cold)
                )
                fused_pairs.append((first, second, name, fused_spec))
        for stub_name in tuple(BUILTINS) + ("_precall",):
            layout.add(generate_stub_asm(stub_name, chunk=chunk, cold=cold))
        self.program = layout.assemble(name=f"{vm_kind}-{strategy}")

        self.dispatchers = {
            site: _DispatchRT(
                self.program,
                site,
                scd=(strategy == "scd" and site in self.covered_sites),
            )
            for site in self.sites
        }
        self.fused = {
            (first, second): _HandlerRT(self.program, name, spec, False)
            for first, second, name, spec in fused_pairs
        }
        self.handlers = {
            op: _HandlerRT(self.program, backend.handler_name(op), specs[op], threaded)
            for op in specs
        }
        self.stubs = {
            stub_name: _StubRT(self.program, stub_name)
            for stub_name in tuple(BUILTINS) + ("_precall",)
        }
        self._plans: dict[tuple[int, int], tuple] = {}
        self._memo_codec: MemoCodec | None = None
        self._structure_digest: str | None = None

    @property
    def code_size_bytes(self) -> int:
        return self.program.size_bytes

    def memo_codec(self) -> MemoCodec:
        """Tokenizer binding memo entries to this model's identity objects."""
        codec = self._memo_codec
        if codec is None:
            codec = self._memo_codec = MemoCodec(self)
        return codec

    def structure_digest(self) -> str:
        """Digest of the assembled program's replay-visible structure.

        Embedded in persisted-memo store keys: a memo is only rebindable
        onto a model whose blocks have the same names, addresses and
        sizes (assembly is deterministic per (vm, strategy), so in
        practice this changes exactly when the model generation code
        does).
        """
        digest = self._structure_digest
        if digest is None:
            blake = hashlib.blake2b(digest_size=16)
            blake.update(f"{self.vm_kind}:{self.strategy}\n".encode())
            for block in self.program.blocks:
                blake.update(
                    f"{block.name}:{block.start_pc}:{block.end_pc}:"
                    f"{block.n_insts}:{block.category}\n".encode()
                )
            digest = self._structure_digest = blake.hexdigest()
        return digest

    def replay_plan(self, op: int, site: int) -> tuple:
        """The flat per-(opcode, site) replay recipe.

        Everything the per-event hot path would otherwise look up through
        dicts and attribute chains — the resolved dispatcher copy, the
        handler, its chunk chain and the kind-specific terminator data —
        precomputed once per model into one tuple:
        ``(dispatch, handler, chain, final, kind_code, tail)`` where the
        shape of *tail* depends on *kind_code* (see
        :meth:`ModelRunner._replay`).  Plans are static per model, so they
        are shared by every run replaying onto it.
        """
        plan = self._plans.get((op, site))
        if plan is None:
            handler = self.handlers[op]
            dispatch = self.dispatchers.get(site) or self.dispatchers[0]
            kind = handler.kind
            if kind == "plain":
                code, tail = 0, handler.final_tail
            elif kind == "branchy":
                code = 1
                tail = (
                    handler.branch_pc,
                    handler.tk,
                    handler.tk_tail,
                    handler.nt,
                    handler.nt_tail,
                )
            elif kind == "workloop":
                code = 2
                tail = (
                    handler.work,
                    handler.work_pc,
                    handler.exit,
                    handler.exit_tail,
                )
            else:  # callout
                code = 3
                tail = (
                    handler.call_pc,
                    handler.ret_block,
                    handler.ret_block.start_pc,
                    handler.ret_tail,
                )
            plan = (dispatch, handler, handler.chain, handler.final, code, tail)
            self._plans[(op, site)] = plan
        return plan

    def prepare_plans(self) -> None:
        """Pre-build the plan for every (opcode, known dispatch site) pair.

        Unknown raw sites still resolve lazily (they fall back to
        dispatcher 0 with a distinct cache slot), but after this call the
        steady-state hot path never takes the build branch.
        """
        for op in self.handlers:
            for site in self.dispatchers:
                self.replay_plan(op, site)


class MemoCodec:
    """Maps model-identity objects inside memo entries to stable tokens.

    Persisted :class:`repro.uarch.pipeline.SteadyStateMemo` entries embed
    basic blocks (in counter deltas) and handler runtimes (the threaded
    previous-handler slot) by object identity.  Blocks tokenize to their
    unique assembly names and handlers to their opcode, both of which are
    deterministic per (vm, strategy) — so a fresh process rebinds them to
    its own structurally-identical objects.
    """

    __slots__ = ("_handlers", "_handler_ops", "_blocks", "_block_names")

    def __init__(self, model: NativeInterpreterModel):
        self._handlers = model.handlers
        self._handler_ops = {id(h): op for op, h in model.handlers.items()}
        self._blocks = {b.name: b for b in model.program.blocks}
        self._block_names = {id(b): b.name for b in model.program.blocks}

    def block_token(self, block) -> str:
        return self._block_names[id(block)]

    def block(self, name: str):
        return self._blocks[name]

    def _handler_token(self, handler):
        return self._handler_ops[id(handler)] if handler is not None else None

    def _handler(self, token):
        return self._handlers[token] if token is not None else None

    def tokenize_runner_digest(self, digest: tuple) -> tuple:
        cursor, phase, prev, pending = digest
        return (cursor, phase, self._handler_token(prev), pending)

    def bind_runner_digest(self, digest: tuple) -> tuple:
        cursor, phase, prev, pending = digest
        return (cursor, phase, self._handler(prev), pending)

    def tokenize_runner_end(self, end: tuple) -> tuple:
        cursor, prev, pending = end
        return (cursor, self._handler_token(prev), pending)

    def bind_runner_end(self, end: tuple) -> tuple:
        cursor, prev, pending = end
        return (cursor, self._handler(prev), pending)


@functools.lru_cache(maxsize=None)
def get_model(vm_kind: str, strategy: str) -> NativeInterpreterModel:
    """Cached model factory (assembly is reused across runs)."""
    return NativeInterpreterModel(vm_kind, strategy)


class ModelRunner:
    """Replays one VM run's trace events onto a machine.

    Usage::

        runner = ModelRunner(model, machine)
        runner.start()
        vm.run(trace=runner.on_event)
        runner.finish()

    Args:
        model: the native image to replay.
        machine: the timing model.
        context_switch_interval: flush JTEs (and TLBs/RAS) every N guest
            bytecodes, modelling OS context switches (Section IV).
            ``None`` disables switching.
        context_switch_policy: ``"flush"`` (the paper's preferred policy,
            re-populate through the slow path) or ``"save"`` (the OS saves
            and restores JTEs, paying per-entry overhead instead).
        use_kernel: force the exec-compiled replay kernels on/off; ``None``
            resolves through :func:`repro.native.kernel.kernel_enabled`
            (CLI default, then ``SCD_REPRO_KERNEL``, then on).  Kernels
            only ever bind to machines of exact type :class:`Machine` —
            subclasses (the verifier's ``CheckedMachine``) keep the
            interpreted path so their instrumentation is never inlined
            past.
        use_batch: force chunk-compiled batch (superblock) replay on/off
            on top of the kernels; ``None`` resolves through
            :func:`repro.native.batch.batch_enabled` (CLI default, then
            ``SCD_REPRO_BATCH``, then on).  Moot when kernels are off.
    """

    def __init__(
        self,
        model: NativeInterpreterModel,
        machine: Machine,
        context_switch_interval: int | None = None,
        context_switch_policy: str = "flush",
        use_kernel: bool | None = None,
        use_batch: bool | None = None,
    ):
        if context_switch_policy not in ("flush", "save"):
            raise ValueError(
                f"unknown context-switch policy {context_switch_policy!r}"
            )
        self.model = model
        self.machine = machine
        self.context_switch_interval = context_switch_interval
        self.context_switch_policy = context_switch_policy
        self._prev_handler: _HandlerRT | None = None
        self._pending: tuple | None = None
        self._events = 0
        self._code_cursor = 0
        self._is_scd = model.strategy == "scd"
        self._is_threaded = model.strategy == "threaded"
        self._is_superinst = model.strategy == "superinst"
        self._opcode_mask = model.opcode_mask
        # The VM calls the trace hook once per guest bytecode; bind it to
        # the replay body directly (no per-event forwarding call) unless
        # the strategy needs the one-deep fusion buffer.
        self.on_event = (
            self._on_event_buffered if self._is_superinst else self._replay
        )
        self.kernel = None
        if type(machine) is Machine:
            from repro.native.kernel import BoundKernel, kernel_enabled

            if kernel_enabled(use_kernel):
                self.kernel = BoundKernel(self, use_batch=use_batch)
                self.on_event = self.kernel.entry

    @property
    def events(self) -> int:
        """Guest trace events replayed so far."""
        if self.kernel is not None:
            self.kernel.flush()
        return self._events

    def flush_pending_counts(self) -> None:
        """Fold kernel-deferred block counts / event tallies in.

        No-op on the interpreted path; the steady-state memo calls this
        before every digest or counter snapshot.
        """
        if self.kernel is not None:
            self.kernel.flush()

    def start(self) -> None:
        """Program the SCD registers and pre-build the replay plans."""
        if self._is_scd:
            for site in self.model.covered_sites:
                self.machine.scd.setmask(self.model.opcode_mask, table=site)
        self.model.prepare_plans()

    def finish(self) -> None:
        """Interpreter-loop exit: drain any buffered event, flush JTEs."""
        if self._pending is not None:
            event, self._pending = self._pending, None
            self._replay(*event)
        if self.kernel is not None:
            self.kernel.flush()
        if self._is_scd:
            self.machine.jte_flush()

    # -- steady-state replay memo support -----------------------------------

    def replay_digest(self) -> tuple:
        """Replay-visible runner state for the steady-state memo.

        Covers everything that can change how a future event replays: the
        guest-code fetch cursor, the context-switch phase (the interval
        check only reads ``_events`` modulo the interval), the threaded
        previous handler and the superinstruction fusion buffer.
        """
        interval = self.context_switch_interval
        return (
            self._code_cursor,
            self._events % interval if interval else 0,
            self._prev_handler,
            self._pending,
        )

    def memo_end_state(self) -> tuple:
        """State installed by :meth:`apply_memo_end` on a memo hit."""
        return (self._code_cursor, self._prev_handler, self._pending)

    def apply_memo_end(self, end_state: tuple, n_events: int) -> None:
        """Skip *n_events* replayed events, installing their end state."""
        self._events += n_events
        self._code_cursor, self._prev_handler, self._pending = end_state

    # -- event replay -------------------------------------------------------

    def _on_event_buffered(self, op, site, taken, callee, daddrs, builtin, cost) -> None:
        """Superinstruction trace hook: events are buffered one deep so
        adjacent bytecodes matching a fused pair dispatch once through the
        fused handler; everything else replays immediately."""
        event = (op, site, taken, callee, daddrs, builtin, cost)
        pending = self._pending
        if pending is None:
            self._pending = event
            return
        fused_rt = self.model.fused.get((pending[0], op))
        if fused_rt is not None:
            self._pending = None
            self._replay_fused(pending, event, fused_rt)
        else:
            self._pending = event
            self._replay(*pending)

    def _replay_fused(self, first, second, handler) -> None:
        """One dispatch, two bytecodes: the superinstruction fast path."""
        machine = self.machine
        model = self.model
        self._events += 2
        interval = self.context_switch_interval
        if interval and self._events % interval <= 1:
            machine.context_switch(save_jtes=self.context_switch_policy == "save")
        self._code_cursor = (self._code_cursor + 8) & 0x3FFF
        fetch_daddrs = (_VM_STRUCT_PC_SLOT, _GUEST_CODE_BASE + self._code_cursor)

        site = first[1] if first[1] in model.dispatchers else 0
        dispatch = model.dispatchers[site]
        machine.exec_block(dispatch.head)
        machine.exec_block(dispatch.fetch, fetch_daddrs)
        if dispatch.operand is not None:
            machine.exec_block(dispatch.operand)
        machine.exec_block(dispatch.decode)
        machine.exec_block(dispatch.bound)
        machine.cond_branch(dispatch.bound_pc, False, "bound_check")
        machine.exec_block(dispatch.calc)
        fused_opcode = 0x1_0000 | (first[0] << 8) | second[0]
        machine.indirect_jump(
            dispatch.jump_pc, handler.pc, hint=fused_opcode,
            category="dispatch_jump",
        )

        daddrs = first[4] + second[4]
        for chunk_block, junction_pc in handler.chain:
            machine.exec_block(chunk_block, daddrs)
            daddrs = ()
            machine.cond_branch(junction_pc, True, "type_check")
        machine.exec_block(handler.final, daddrs)
        self._run_tail(handler.final)

    def _replay(self, op, site, taken, callee, daddrs, builtin, cost) -> None:
        # Hot path: one call per guest bytecode, millions per simulation.
        # All static structure comes precomputed from the model's replay
        # plan; machine entry points are bound to locals once per event.
        dispatch, handler, chain, final, kind, tail = self.model.replay_plan(
            op, site
        )
        machine = self.machine
        exec_block = machine.exec_block
        cond_branch = machine.cond_branch

        self._events += 1
        interval = self.context_switch_interval
        if interval and self._events % interval == 0:
            machine.context_switch(save_jtes=self.context_switch_policy == "save")

        # Guest bytecode stream address: sequential with wraparound, giving
        # the mostly-resident fetch behaviour of a small bytecode program.
        self._code_cursor = cursor = (self._code_cursor + 4) & 0x3FFF
        fetch_daddrs = (_VM_STRUCT_PC_SLOT, _GUEST_CODE_BASE + cursor)

        # ---- dispatch phase ----
        prev = self._prev_handler
        if prev is not None:  # threaded, after the first bytecode
            exec_block(prev.tail_block, fetch_daddrs)
            machine.indirect_jump(
                prev.tail_jump_pc, handler.pc, hint=op, category="dispatch_jump"
            )
        else:
            exec_block(dispatch.head)
            exec_block(dispatch.fetch, fetch_daddrs)
            if dispatch.scd:
                if dispatch.operand is not None:
                    exec_block(dispatch.operand)
                machine.load_op(op & self._opcode_mask, table=site)
                exec_block(dispatch.bop_block)
                target = machine.bop(dispatch.bop_pc, table=site)
                if target is None:
                    machine.exec_blocks(dispatch.slow_blocks)
                    cond_branch(dispatch.bound_pc, False, "bound_check")
                    exec_block(dispatch.calc)
                    machine.jru(dispatch.jump_pc, handler.pc, table=site)
            else:
                machine.exec_blocks(dispatch.pre_branch)
                cond_branch(dispatch.bound_pc, False, "bound_check")
                exec_block(dispatch.calc)
                machine.indirect_jump(
                    dispatch.jump_pc, handler.pc, hint=op, category="dispatch_jump"
                )
        if self._is_threaded:
            self._prev_handler = handler

        # ---- handler phase ----
        for chunk_block, junction_pc in chain:
            exec_block(chunk_block, daddrs)
            daddrs = ()
            cond_branch(junction_pc, True, "type_check")
        exec_block(final, daddrs)

        if kind == 0:  # plain; tail = final's terminating jump or None
            if tail is not None:
                machine.direct_jump(tail[0], tail[1])
        elif kind == 1:  # branchy; tail = (branch_pc, tk, tk_tail, nt, nt_tail)
            branch_taken = taken == TAKEN_TRUE
            cond_branch(tail[0], branch_taken, "guest_branch")
            if branch_taken:
                side, side_tail = tail[1], tail[2]
            else:
                side, side_tail = tail[3], tail[4]
            exec_block(side)
            if side_tail is not None:
                machine.direct_jump(side_tail[0], side_tail[1])
        elif kind == 2:  # workloop; tail = (work, work_pc, exit, exit_tail)
            work, work_pc, exit_block, exit_tail = tail
            iterations = 1
            if cost is not None:
                iterations = max(1, work_loop_iterations(cost[0]))
            for index in range(iterations):
                exec_block(work)
                cond_branch(work_pc, index < iterations - 1, "work_loop")
            exec_block(exit_block)
            if exit_tail is not None:
                machine.direct_jump(exit_tail[0], exit_tail[1])
        else:  # callout; tail = (call_pc, ret_block, return_pc, ret_tail)
            call_pc, ret_block, return_pc, ret_tail = tail
            if callee == CALLEE_BUILTIN and builtin is not None:
                stub = self.model.stubs[builtin]
            else:
                stub = self.model.stubs["_precall"]
            machine.call(call_pc, stub.pc, return_pc, indirect=True)
            for chunk_block, junction_pc in stub.chain:
                exec_block(chunk_block)
                cond_branch(junction_pc, True, "type_check")
            exec_block(stub.final)
            iterations = 1
            if cost is not None:
                iterations = max(1, work_loop_iterations(cost[0] - stub.entry_insts))
            for index in range(iterations):
                exec_block(stub.work)
                cond_branch(stub.work_pc, index < iterations - 1, "work_loop")
            exec_block(stub.exit)
            machine.ret(stub.ret_pc, return_pc)
            exec_block(ret_block)
            if ret_tail is not None:
                machine.direct_jump(ret_tail[0], ret_tail[1])

    def _run_tail(self, block: BasicBlock) -> None:
        """The handler's terminating jump back to the dispatcher.

        Under jump threading the terminator jumps to the handler's own
        replicated dispatch tail (executed at the next event).
        """
        term = block.term
        machine = self.machine
        if term is not None and term.target is not None:
            machine.direct_jump(term.pc, term.target)
