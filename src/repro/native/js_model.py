"""Native-code description of the JS-like (SpiderMonkey-style) interpreter.

Section V: "It has 229 distinct bytecodes, and the dispatch loop takes 29
native instructions."  SpiderMonkey reaches its dispatcher through multiple
paths (Section III-C): the default loop, the FUNCALL tail and the common
END_CASE macro — each gets its own dispatcher copy here (its own PCs and,
under SCD, its own ``.op``/``bop``/``jru`` site with its own jump-table
branch ID).  Handlers whose exit is an SCD-*uncovered* slow path dispatch
through a fourth, baseline-style copy even under SCD, which is why the
JavaScript speedups trail Lua's.

Handler mixes approximate SpiderMonkey-17's C++ interpreter: even simple
stack operations run 15-25 instructions (stack discipline + rooting), type-
dispatched arithmetic ~45, property/element access 60-80, call setup ~180.
"""

from __future__ import annotations

from repro.native.specs import HandlerSpec
from repro.vm.js.opcodes import NUM_OPCODES, JsOp
from repro.vm.trace import Site

#: ``setmask`` value: the opcode is the low byte of a variable-length
#: bytecode.
JS_OPCODE_MASK = 0xFF

#: Hot-chunk / cold-region sizes (C++ handlers: slightly longer straight
#: runs, rooting/bailout regions between them).
CHUNK_INSTS = 9
COLD_INSTS = 22

#: Dispatch sites with SCD coverage (Section III-C applies `.op` at three
#: locations); UNCOVERED dispatches through the slow copy even under SCD.
JS_COVERED_SITES = (int(Site.MAIN), int(Site.FUNCALL), int(Site.END_CASE))
JS_ALL_SITES = JS_COVERED_SITES + (int(Site.UNCOVERED),)


def _dispatcher(site: int, scd: bool, short: bool) -> str:
    """One dispatcher copy.

    The full dispatcher is 29 instructions (variable-length fetch + operand
    fetch + decode + bound + calc + jump).  The END_CASE macro copy is the
    shortened common form real interpreters use for fixed-length-1 opcodes.
    """
    fetch_load = "ldbu.op r9, 0(r5)" if scd else "ldbu r9, 0(r5)"
    jump = "jru  (r1)" if scd else "jmp  (r1)"
    lines = [
        ".category dispatch",
        f"LoopHead_{site}:",
        "    ldq  r14, 0(r13)",
        "    and  r14, r14, r14",
        "    cmpeq r14, 0, r12",
        "    add  r13, 0, r13",
        f"Fetch_{site}:",
        "    ldq  r5, 40(r14)        # r5 = VM.pc",
        f"    {fetch_load:<24}# opcode byte",
        "    ldbu r10, 1(r5)         # length-table index / first operand",
        "    lda  r5, 1(r5)",
        "    stq  r5, 40(r14)",
        "    add  r9, r9, r11        # length-table scale",
    ]
    if not short:
        lines += [
            f"Operand_{site}:",
            "    ldl  r10, 0(r5)         # variable-length operand word",
            "    sll  r10, 16, r10",
            "    sra  r10, 16, r10       # sign extend",
            "    ldbu r11, 2(r5)",
            "    sll  r11, 8, r11",
            "    or   r10, r11, r10",
            "    stq  r10, 48(r14)       # stash decoded operand",
        ]
    if scd:
        lines += [f"Bop_{site}:", "    bop"]
    lines += [
        f"Decode_{site}:",
        "    and  r9, 255, r2",
        f"Bound_{site}:",
        "    cmpule r2, 228, r1",
        f"    beq  r1, OpError_{site}",
        f"Calc_{site}:",
        "    ldah r7, 16(r3)",
        "    lda  r7, 8(r7)",
        "    s4addq r2, r7, r2",
        "    ldl  r1, 0(r2)",
        "    addq r3, r1, r1",
        "    and  r1, r1, r1         # devirtualised-goto fixup",
        "    srl  r12, 1, r12",
        "    add  r12, 0, r12",
        f"    {jump}",
        f"OpError_{site}:",
        "    ret",
    ]
    return "\n".join(lines) + "\n"


def dispatcher_text(strategy: str) -> str:
    """All dispatcher copies for *strategy*, concatenated."""
    scd = strategy == "scd"
    parts = []
    for site in JS_ALL_SITES:
        site_scd = scd and site in JS_COVERED_SITES
        short = site == int(Site.END_CASE)
        parts.append(_dispatcher(site, site_scd, short))
    return "\n".join(parts)


#: Jump-threaded dispatch tail (replicated per handler, all sites).
THREADED_TAIL = """.category dispatch
{name}_T:
    ldq  r14, 0(r13)
    and  r14, r14, r14
    cmpeq r14, 0, r12
    add  r13, 0, r13
    ldq  r5, 40(r14)
    ldbu r9, 0(r5)
    ldbu r10, 1(r5)
    lda  r5, 1(r5)
    stq  r5, 40(r14)
    ldl  r10, 0(r5)
    sll  r10, 16, r10
    sra  r10, 16, r10
    ldbu r11, 2(r5)
    sll  r11, 8, r11
    or   r10, r11, r10
    stq  r10, 48(r14)
    and  r9, 255, r2
    ldah r7, 16(r3)
    lda  r7, 8(r7)
    s4addq r2, r7, r2
    ldl  r1, 0(r2)
    addq r3, r1, r1
    jmp  (r1)
"""


def handler_tail(strategy: str, exit_site: int) -> str:
    if strategy == "threaded":
        return "br {name}_T"
    return f"br LoopHead_{exit_site}"


_PUSH_CONST = HandlerSpec(alu=12, loads=2, stores=3)
_STACK_SHUFFLE = HandlerSpec(alu=9, loads=3, stores=3)
_LOCAL = HandlerSpec(alu=13, loads=4, stores=3)
_GLOBAL = HandlerSpec(alu=38, loads=16, stores=6)
_ARITH = HandlerSpec(alu=34, loads=7, stores=5)
_COMPARE = HandlerSpec(alu=30, loads=7, stores=4)
_JUMPY = HandlerSpec(alu=16, loads=4, stores=2, guest_branch=True, taken_extra=4)
_ELEM = HandlerSpec(alu=44, loads=18, stores=8)
_UNUSED = HandlerSpec(alu=26, loads=8, stores=5)

#: Overrides; every opcode not listed gets ``_UNUSED`` (those handlers still
#: occupy I-cache space, as in the real interpreter).
_SPEC_OVERRIDES: dict[int, HandlerSpec] = {
    JsOp.NOP: HandlerSpec(alu=3, loads=0, stores=0),
    JsOp.LOOPHEAD: HandlerSpec(alu=5, loads=1, stores=0),
    JsOp.UNDEFINED: _PUSH_CONST,
    JsOp.ZERO: _PUSH_CONST,
    JsOp.ONE: _PUSH_CONST,
    JsOp.TRUE: _PUSH_CONST,
    JsOp.FALSE: _PUSH_CONST,
    JsOp.NULL: _PUSH_CONST,
    JsOp.INT8: HandlerSpec(alu=13, loads=2, stores=3),
    JsOp.INT32: HandlerSpec(alu=15, loads=3, stores=3),
    JsOp.DOUBLE: HandlerSpec(alu=14, loads=4, stores=3),
    JsOp.STRING: HandlerSpec(alu=14, loads=4, stores=3),
    JsOp.POP: HandlerSpec(alu=6, loads=1, stores=1),
    JsOp.DUP: _STACK_SHUFFLE,
    JsOp.SWAP: _STACK_SHUFFLE,
    JsOp.GETLOCAL: _LOCAL,
    JsOp.SETLOCAL: _LOCAL,
    JsOp.GETARG: _LOCAL,
    JsOp.SETARG: _LOCAL,
    JsOp.GETGNAME: _GLOBAL,
    JsOp.SETGNAME: HandlerSpec(alu=42, loads=16, stores=9),
    JsOp.CALLGNAME: _GLOBAL,
    JsOp.NAME: _GLOBAL,
    JsOp.SETNAME: HandlerSpec(alu=42, loads=16, stores=9),
    JsOp.ADD: HandlerSpec(alu=38, loads=8, stores=5),
    JsOp.SUB: _ARITH,
    JsOp.MUL: _ARITH,
    JsOp.DIV: HandlerSpec(alu=38, loads=7, stores=5),
    JsOp.MOD: HandlerSpec(alu=40, loads=7, stores=5),
    JsOp.INTDIV: HandlerSpec(alu=40, loads=7, stores=5),
    JsOp.CONCAT: HandlerSpec(alu=36, loads=10, stores=7, has_work_loop=True),
    JsOp.EQ: _COMPARE,
    JsOp.NE: _COMPARE,
    JsOp.LT: _COMPARE,
    JsOp.LE: _COMPARE,
    JsOp.GT: _COMPARE,
    JsOp.GE: _COMPARE,
    JsOp.STRICTEQ: _COMPARE,
    JsOp.STRICTNE: _COMPARE,
    JsOp.NEG: HandlerSpec(alu=18, loads=4, stores=3),
    JsOp.NOT: HandlerSpec(alu=14, loads=3, stores=3),
    JsOp.BITNOT: HandlerSpec(alu=16, loads=4, stores=3),
    JsOp.GOTO: HandlerSpec(alu=8, loads=1, stores=1),
    JsOp.IFEQ: _JUMPY,
    JsOp.IFNE: _JUMPY,
    JsOp.AND: HandlerSpec(alu=13, loads=3, stores=1, guest_branch=True, taken_extra=4),
    JsOp.OR: HandlerSpec(alu=13, loads=3, stores=1, guest_branch=True, taken_extra=4),
    JsOp.GETELEM: _ELEM,
    JsOp.SETELEM: HandlerSpec(alu=48, loads=18, stores=12),
    JsOp.INITELEM: HandlerSpec(alu=40, loads=14, stores=10),
    JsOp.NEWARRAY: HandlerSpec(alu=52, loads=12, stores=18, has_work_loop=True),
    JsOp.NEWOBJECT: HandlerSpec(alu=64, loads=16, stores=20),
    JsOp.LENGTH: HandlerSpec(alu=24, loads=8, stores=3),
    JsOp.CALL: HandlerSpec(alu=92, loads=32, stores=26, calls_out=True),
    JsOp.FUNCALL: HandlerSpec(alu=92, loads=32, stores=26, calls_out=True),
    JsOp.FUNAPPLY: HandlerSpec(alu=96, loads=34, stores=26, calls_out=True),
    JsOp.NEW: HandlerSpec(alu=110, loads=36, stores=30, calls_out=True),
    JsOp.RETURN: HandlerSpec(alu=64, loads=20, stores=16),
    JsOp.STOP: HandlerSpec(alu=8, loads=2, stores=1),
    JsOp.GETPROP: HandlerSpec(alu=50, loads=20, stores=6),
    JsOp.SETPROP: HandlerSpec(alu=54, loads=20, stores=10),
}

HANDLER_SPECS: dict[int, HandlerSpec] = {
    op: _SPEC_OVERRIDES.get(op, _UNUSED) for op in range(NUM_OPCODES)
}

assert len(HANDLER_SPECS) == NUM_OPCODES


#: Bytecode pairs fused into superinstructions (stack VMs fuse constant
#: pushes and local traffic with their consumers).
FUSED_PAIRS: tuple = (
    (JsOp.GETLOCAL, JsOp.GETLOCAL),
    (JsOp.SETLOCAL, JsOp.POP),
    (JsOp.POP, JsOp.GETLOCAL),
    (JsOp.GETLOCAL, JsOp.ADD),
    (JsOp.ADD, JsOp.SETLOCAL),
    (JsOp.GETLOCAL, JsOp.ONE),
    (JsOp.LOOPHEAD, JsOp.GETLOCAL),
    (JsOp.POP, JsOp.GOTO),
    (JsOp.GOTO, JsOp.LOOPHEAD),
    (JsOp.GETLOCAL, JsOp.ZERO),
    (JsOp.GETLOCAL, JsOp.GETELEM),
    (JsOp.GETLOCAL, JsOp.LE),
    (JsOp.GETLOCAL, JsOp.SUB),
    (JsOp.GETLOCAL, JsOp.MUL),
    (JsOp.ONE, JsOp.ADD),
    (JsOp.GETELEM, JsOp.ADD),
)


def handler_name(op: int) -> str:
    return f"H_{JsOp(op).name}"
