"""Chunk-compiled batch replay: columnar superblock kernels.

PR 6's per-(opcode, site) kernels removed interpretation overhead from
each event but still pay a Python-level dispatch per event: a dict probe
on the kernel key plus a function call.  This module amortizes that cost
over whole steady-state regions:

* **Trace segmentation** (:func:`find_periodic_runs`): scan the recorded
  trace's key columns for periodic runs — maximal spans where the
  ``(opcode, site)`` sequence repeats with period ``p <= MAX_PERIOD``
  (a guest loop body in steady state).  Candidate periods come from a
  last-occurrence map; verification and maximal extension are byte-slice
  comparisons on the columnar arrays (``s`` is ``p``-periodic over
  ``[i, m)`` iff ``s[i:m-p] == s[i+p:m]``, monotone in ``m``, so the
  maximal end is found by bisection at C speed).
* **Superblock compilation** (:func:`_compiled_superblock`): for each
  distinct (key sequence, operand spec), exec-compile ONE straight-line
  function that inlines every member kernel body back-to-back, wrapped
  in a repetition loop.  Counter updates accumulate in the same deferred
  cells as the single-event kernels (one ``cnt[0] += reps`` per call).
  Two layers of specialization beyond the per-event kernels:
  *value burning* — per-member operands proven constant across the run
  (the loop back-edge is always taken, an accumulator slot address never
  moves, a callout always hits the same builtin, ...) are burnt into the
  code as literals, collapsing dynamic branch arms, work-loop trip
  counts and stub chains at compile time; and *slow-path inlining* —
  the :class:`_BatchEmitter` projections open-code cache/TLB/BTB miss
  paths and stalls that single-event kernels leave as method calls.
  Under the threaded strategy, members after the first have a
  statically-known previous handler, so the dynamic ``prev``-check
  dispatch collapses to inlined straight-line blocks.
* **Columnar feed** (:class:`BatchReplay`): the compiled function takes
  the trace's columnar arrays plus a base index and repetition count and
  loops inside one frame — per-iteration cost is array indexing, not a
  Python call.  Events outside runs (cold prefixes, run boundaries,
  loop-exit tails) fall back to the per-event kernel table; events the
  kernel table itself cannot compile stay on the interpreted fallback —
  the full ladder is interpreted → kernel → batch.

Exactness follows the PR 6 argument: every emitted member is a
constant-folded projection of the same uarch model methods, the prologue
bookkeeping (cursor advance, context-switch tick) is replicated
per-member, value burning only ever narrows an array load to its proven
single value, and the inlined slow paths mirror the
``Cache``/``Tlb``/``Btb``/predictor update rules statement-for-statement
(see the ``batch_*_lines`` helpers in :mod:`repro.uarch.pipeline`).
``--no-batch`` / ``SCD_REPRO_BATCH=0`` preserves the per-event kernel
path bit-for-bit, and batch replay rides on the same safety contract:
only plain ``Machine`` bindings (``kernel.direct``), with memo
boundaries flushing the shared deferred cells.
"""

from __future__ import annotations

import functools
import os
import re
import warnings
from bisect import bisect_right

from repro import obs
from repro.native.kernel import (
    REG_BATCH,
    _Emitter,
    _LazyTable,
    _PREAMBLE,
    _emit_dispatch,
    _emit_handler_body,
    _emit_tail,
)
from repro.native.model import (
    _GUEST_CODE_BASE,
    _VM_STRUCT_PC_SLOT,
    get_model,
)
from repro.native.specs import work_loop_iterations
from repro.uarch.pipeline import (
    batch_bop_lines,
    batch_cond_lines,
    batch_daccess_const_lines,
    batch_daccess_expr_lines,
    batch_daddrs_loop_lines,
    batch_direct_jump_lines,
    batch_ifetch_lines,
    batch_indirect_jump_lines,
)

#: Environment opt-out honoured when neither the call site nor the process
#: default decides (mirrors ``SCD_REPRO_KERNEL`` resolution).
BATCH_ENV = "SCD_REPRO_BATCH"

_TRUE_WORDS = frozenset({"1", "true", "on", "yes"})
_FALSE_WORDS = frozenset({"0", "false", "off", "no"})

_DEFAULT_ENABLED: bool | None = None


def set_batch_enabled(enabled: bool | None) -> None:
    """Set the process-wide batch default (the CLI's ``--no-batch``).

    ``None`` restores deferral to the environment variable.
    """
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = enabled


def batch_enabled(explicit: bool | None = None) -> bool:
    """Resolve whether batch (superblock) replay should be used.

    Precedence: explicit argument, then :func:`set_batch_enabled`
    process default, then :data:`BATCH_ENV`, then on.
    """
    if explicit is not None:
        return bool(explicit)
    if _DEFAULT_ENABLED is not None:
        return _DEFAULT_ENABLED
    raw = os.environ.get(BATCH_ENV)
    if raw is not None:
        word = raw.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        warnings.warn(
            f"ignoring unrecognized {BATCH_ENV}={raw!r}", stacklevel=2
        )
    return True


# -- trace segmentation --------------------------------------------------------

#: Longest loop body (in events) a superblock inlines; longer periods stay
#: on the per-event kernel table.  Steady-state guest loops on the bench
#: grid run bodies of up to ~50 events (pidigits' digit loop), so the cap
#: is sized for whole-loop-body capture, not micro-patterns.
MAX_PERIOD = 64
#: A candidate run must repeat its body at least this many times...
MIN_REPS = 4
#: ...and cover at least this many events, or compiling isn't worth it.
MIN_RUN_EVENTS = 32
#: A (sequence, spec) key's runs must cover at least this many events
#: across the whole trace before :class:`BatchReplay` will exec-compile
#: a superblock for it; cheaper keys stay on the per-event table (the
#: compile itself costs more wall time than it could save).
MIN_COMPILE_EVENTS = 4096


def find_periodic_runs(ops, sites, n, max_period=MAX_PERIOD,
                       min_reps=MIN_REPS, min_events=MIN_RUN_EVENTS):
    """Segment ``[0, n)`` into periodic runs over the key columns.

    Returns ``[(start, period, reps), ...]`` in trace order, runs
    non-overlapping and each covering ``period * reps`` events (full
    body repetitions only — a trailing partial repetition is left to the
    per-event path).  Single-occurrence sequences never qualify:
    ``min_reps`` repetitions must verify before a run is accepted.

    ``ops`` must be a 2-byte-itemsize array and ``sites`` 1-byte (the
    trace's native column types); periodicity checks compare raw byte
    slices of both columns.
    """
    ops_b = ops.tobytes()
    sites_b = sites.tobytes()
    runs = []
    last: dict = {}
    i = 0
    while i < n:
        op = ops[i]
        prev = last.get(op)
        last[op] = i
        if prev is None:
            i += 1
            continue
        p = i - prev
        need = p * min_reps
        if p > max_period or i + need > n:
            i += 1
            continue
        if not (ops_b[2 * i:2 * (i + need - p)] == ops_b[2 * (i + p):2 * (i + need)]
                and sites_b[i:i + need - p] == sites_b[i + p:i + need]):
            i += 1
            continue
        # Maximal extension: periodicity over [i, m) is monotone in m.
        lo, hi = i + need, n
        if (ops_b[2 * i:2 * (hi - p)] == ops_b[2 * (i + p):2 * hi]
                and sites_b[i:hi - p] == sites_b[i + p:hi]):
            lo = hi
        else:
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if (ops_b[2 * i:2 * (mid - p)] == ops_b[2 * (i + p):2 * mid]
                        and sites_b[i:mid - p] == sites_b[i + p:mid]):
                    lo = mid
                else:
                    hi = mid
        reps = (lo - i) // p
        covered = reps * p
        if covered < min_events:
            i += 1
            continue
        runs.append((i, p, reps))
        end = i + covered
        # Periodicity guarantees the final repetition holds the last
        # occurrence of every key in the body — refreshing `last` over
        # just that window keeps the scan linear.
        for j in range(max(i + 1, end - p), end):
            last[ops[j]] = j
        i = end
    return runs


class _Dyn:
    """Singleton marking a per-member operand as dynamic (loaded from the
    columnar arrays per repetition rather than burnt into the code)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "DYN"


DYN = _Dyn()


def _column_const(col, start, end, period, offset):
    """The single value the strided column holds across every repetition
    of the run at member *offset*, or :data:`DYN`."""
    strided = col[start + offset:end:period]
    first = strided[0]
    return first if strided.count(first) == len(strided) else DYN


def trace_plan(trace):
    """Build (and cache on the trace) the batch segmentation plan.

    Returns a tuple of ``(start, end, period, seq, spec)`` entries where
    *seq* is the member key sequence (``((op, site), ...)``) and *spec*
    the per-member operand constancy spec: a ``(daddrs, taken, cost,
    (callee, builtin))`` tuple whose entries are either the single value
    the operand held across every repetition (resolved through the
    trace's interning pools) or :data:`DYN`.  The plan is
    model-independent — one segmentation serves every scheme replaying
    the trace — and :class:`~repro.harness.cache.TraceStore` memoizes
    parsed traces per process, so the scan is paid once per trace, not
    once per grid point.
    """
    plan = trace._batch_plan
    if plan is not None:
        return plan
    cols = trace.columns
    ops = cols["ops"]
    sites = cols["sites"]
    takens = cols["takens"]
    callees = cols["callees"]
    daddr_ids = cols["daddr_ids"]
    builtin_ids = cols["builtin_ids"]
    cost_ids = cols["cost_ids"]
    daddr_pool = trace.daddr_pool
    builtin_pool = trace.builtin_pool
    cost_pool = trace.cost_pool
    entries = []
    covered = 0
    for start, period, reps in find_periodic_runs(ops, sites, trace.n_events):
        end = start + period * reps
        seq = tuple((ops[k], sites[k]) for k in range(start, start + period))
        spec = []
        for j in range(period):
            d_id = _column_const(daddr_ids, start, end, period, j)
            taken = _column_const(takens, start, end, period, j)
            c_id = _column_const(cost_ids, start, end, period, j)
            callee = _column_const(callees, start, end, period, j)
            b_id = _column_const(builtin_ids, start, end, period, j)
            if callee is DYN or b_id is DYN:
                call = DYN
            else:
                call = (callee, builtin_pool[b_id] if b_id >= 0 else None)
            spec.append((
                daddr_pool[d_id] if d_id is not DYN else DYN,
                taken,
                (cost_pool[c_id] if c_id >= 0 else None)
                if c_id is not DYN else DYN,
                call,
            ))
        entries.append((start, end, period, seq, tuple(spec)))
        covered += end - start
    plan = tuple(entries)
    trace._batch_plan = plan
    obs.event(
        "batch_plan",
        events=trace.n_events, runs=len(plan), covered=covered,
    )
    return plan


# -- superblock compilation ----------------------------------------------------


class _BatchEmitter(_Emitter):
    """Emitter whose uarch projections inline every slow path.

    A single-event kernel body runs once per event sighting, so the
    shared :class:`~repro.native.kernel._Emitter` keeps non-MRU cache
    probes, TLB walks, BTB scans and stalls as method calls to bound
    code size.  A superblock body covers whole steady-state runs —
    orders of magnitude more executions per compile — so these overrides
    trade code size for a zero-call steady state (the
    ``batch_*_lines`` projections in :mod:`repro.uarch.pipeline`).

    ``daddrs_const`` additionally burns a proven-constant data-address
    tuple into a chain of constant accesses with page-check elision,
    replacing the dynamic per-address loop.

    Two further compile-time analyses ride on the emitter state:

    * **Per-set MRU maps** (``iknown``/``dknown``): after any emitted
      probe, that line is MRU in its set whether it hit or missed, so a
      later probe of the same (set, line) — with no intervening probe of
      that set — is a model no-op and is elided.  Dynamic accesses and
      method calls that touch a cache clear the affected map;
      conditionally-executed probes consume facts but only invalidate.
    * **Observe recording** (``cond_record``): pass one records every
      inlined direction-predictor observe ``(pc, taken, conditional)``
      in emission order, from which :func:`_superblock_folds` computes
      the history fixed points; pass two replays the emission with
      ``fold_plan`` burning the folded table indices in.
    """

    def __init__(self, shape: tuple):
        super().__init__(shape)
        self.daddrs_const = DYN
        self.iknown: dict = {}
        self.dknown: dict = {}
        self.cond_depth = 0
        self.cond_record: list = []
        self.fold_plan = None
        self._fold_i = 0
        self._fold_current = None
        # Hoisted way-list names (set index -> local name), bound once in
        # the superblock prologue; deferred TLB access counts for walks
        # emitted unconditionally at depth 0.
        self.isetvars: dict = {}
        self.dsetvars: dict = {}
        self.itlb_acc = 0
        self.dtlb_acc = 0
        # I-side steady-state fold: pass one records every ifetch call's
        # page form and emitted probes; pass two consumes per-call
        # elision decisions.  Dynamic ``eb`` method fetches probe
        # arbitrary sets, poisoning the whole analysis.
        self.ic_record: list = []
        self.ic_fold = None
        self._ic_i = 0
        self.ic_poison = False

    def _defer_tlb_acc(self, lines):
        """Strip unconditional top-level TLB access increments from an
        about-to-be-emitted block, deferring them into the cell stats.
        Indented increments (conditional page-check arms) stay inline."""
        if self.cond_depth > 0:
            return lines
        kept = []
        for line in lines:
            if line == "ITLBO.accesses += 1":
                self.itlb_acc += 1
            elif line == "DTLBO.accesses += 1":
                self.dtlb_acc += 1
            else:
                kept.append(line)
        return kept

    def _ifetch(self, block, known_ipage):
        fold = record = None
        if self.ic_fold is not None:
            folded_sets, actions = self.ic_fold
            fold = (folded_sets, actions[self._ic_i])
            self._ic_i += 1
            if fold[1] == "static":
                # Transition elided whole: the guarded ITLB fixed point
                # makes the walk an MRU-cycle hit; only the access count
                # survives, deferred like the unconditional walks below.
                self.itlb_acc += 1
        else:
            record = self.ic_record
        lines, page, accesses = batch_ifetch_lines(
            block, known_ipage, self.imask, self.iways,
            known=self.iknown, cond=self.cond_depth > 0,
            setvars=self.isetvars, pages_var="_IPS",
            record=record, fold=fold,
        )
        if record is not None:
            record[-1] = (self.cond_depth > 0,) + record[-1]
        return self._defer_tlb_acc(lines), page, accesses

    def _dconst(self, address: int, known_dpage):
        lines, page = batch_daccess_const_lines(
            address, known_dpage, self.dshift, self.dmask, self.dways,
            known=self.dknown, cond=self.cond_depth > 0,
            setvars=self.dsetvars, pages_var="_DPS",
        )
        return self._defer_tlb_acc(lines), page

    def _dexpr(self, expr: str):
        # A dynamic address may probe any set: every D-side fact dies.
        self.dknown.clear()
        return batch_daccess_expr_lines(
            expr, self.dshift, self.dmask, self.dways
        )

    def _dloop(self, var: str):
        self.dknown.clear()
        return batch_daddrs_loop_lines(
            var, self.dshift, self.dmask, self.dways
        )

    def _cond(self, pc: int, taken: bool, category: str):
        return batch_cond_lines(
            pc, taken, category, self.pred_sig,
            self.btb_sets, self.btb_ways, self.btb_policy,
            fold=self._fold_current, hoist=True,
        )

    def inline_cond_block(self, block, depth: int, page_in):
        self.cond_depth += 1
        try:
            return super().inline_cond_block(block, depth, page_in)
        finally:
            self.cond_depth -= 1

    def cond_const(self, pc: int, taken: bool, category: str,
                   depth: int = 0, defer: bool | None = True) -> None:
        if self.fold_plan is not None:
            self._fold_current = self.fold_plan[self._fold_i]
            self._fold_i += 1
        else:
            self.cond_record.append(
                (pc, bool(taken), depth > 0 or self.cond_depth > 0)
            )
        try:
            super().cond_const(pc, taken, category, depth, defer)
        finally:
            self._fold_current = None

    def _dj(self, pc: int, target: int):
        return batch_direct_jump_lines(
            pc, target, self.btb_sets, self.btb_ways, self.btb_policy
        )

    def _ij(self, pc: int, target: int, hint, category: str):
        return batch_indirect_jump_lines(
            pc, target, hint, category, self.scheme,
            self.btb_sets, self.btb_ways, self.btb_policy,
        )

    def bop_open(self, pc: int, table: int) -> None:
        lines = batch_bop_lines(
            table, self.btb_sets, self.btb_ways, self.btb_policy
        )
        if lines is None:
            # Non-inlinable BTB: the method does its own accounting (and,
            # for multi-level geometries, the late-hit stall).
            self.emit(f"_t = bop({pc}, {table})")
        else:
            self.emit_lines(lines)
        self.emit("if _t is None:")

    def daddrs_loop(self, var: str = "daddrs") -> None:
        daddrs = self.daddrs_const
        if daddrs is DYN:
            super().daddrs_loop(var)
            return
        # Constant fold of the dynamic loop: same access order, the
        # variable-count accounting rides the deferred cell instead.
        for address in daddrs:
            self.daccess_const(address)


#: Work loops with at most this many compile-time-known iterations are
#: unrolled into static blocks and constant branches; longer ones keep
#: the loop shape (method calls) with a literal bound.
_WORK_UNROLL = 4


def _emit_work_iters(em, work_block, work_pc: int, it: int) -> None:
    if it <= _WORK_UNROLL:
        for i in range(it):
            em.inline_static_block(work_block)
            em.cond_const(work_pc, i < it - 1, "work_loop")
        return
    em.emit(f"for _i in range({it}):")
    em.emit(f"    eb({em.ref(work_block)})")
    em.emit(f"    cond({work_pc}, _i < {it - 1}, 'work_loop')")
    em.ipage = None
    em.iknown.clear()  # dynamic eb probes evict arbitrarily
    em.ic_poison = True


def _emit_ret_inline(em, return_pc: int) -> None:
    """Inline ``m.ret(pc, return_pc)``: RAS pop, compare, mispredict."""
    em.emit(f"if rasq() != {return_pc}:")
    em.emit("    stats.ras_mispredicts += 1")
    em.emit("    stats.mispredicts_by_category['return'] += 1")
    em.emit("    if BRP:")
    em.emit("        stats.cycles += BRP")
    em.emit("        CB['branch_penalty'] += BRP")


def _emit_tail_spec(em, model, handler, taken_c, cost_c, call_c) -> None:
    """Handler-kind terminator with proven-constant operands burnt in.

    Every specialization is the constant fold of the corresponding
    dynamic arm in :func:`~repro.native.kernel._emit_tail` (which
    handles any operand still :data:`DYN`): a constant-taken branch
    emits only the resolved arm as an always-executed block, a constant
    cost resolves the work-loop trip count at compile time, a constant
    callee/builtin resolves the stub statically and unrolls its chain
    with the RAS push/pop inlined.
    """
    kind = handler.kind
    if kind == "branchy" and taken_c is not DYN:
        taken = taken_c == 1
        em.cond_const(handler.branch_pc, taken, "guest_branch")
        block = handler.tk if taken else handler.nt
        tail = handler.tk_tail if taken else handler.nt_tail
        em.inline_static_block(block)
        if tail is not None:
            em.dj_const(tail[0], tail[1])
        return
    if kind == "workloop" and cost_c is not DYN:
        it = 1 if cost_c is None else max(1, work_loop_iterations(cost_c))
        _emit_work_iters(em, handler.work, handler.work_pc, it)
        em.inline_static_block(handler.exit)
        tail = handler.exit_tail
        if tail is not None:
            em.dj_const(tail[0], tail[1])
        return
    if kind == "callout" and call_c is not DYN:
        callee, builtin = call_c
        if callee == 2 and builtin is not None:
            st = model.stubs[builtin]
        else:
            st = model.stubs["_precall"]
        return_pc = handler.ret_block.start_pc
        em.emit(f"rasp({return_pc})")
        em.ij_const(handler.call_pc, st.pc, None, "indirect_call")
        for chunk_block, junction_pc in st.chain:
            em.inline_static_block(chunk_block)
            em.cond_const(junction_pc, True, "type_check")
        em.inline_static_block(st.final)
        if cost_c is DYN:
            em.emit("it = 1")
            em.emit("if cost is not None:")
            em.emit(f"    it = max(1, WLI(cost[0] - {st.entry_insts}))")
            em.emit("for _i in range(it):")
            em.emit(f"    eb({em.ref(st.work)})")
            em.emit(f"    cond({st.work_pc}, _i < it - 1, 'work_loop')")
            em.ipage = None
            em.iknown.clear()
            em.ic_poison = True
        else:
            it = (
                1 if cost_c is None
                else max(1, work_loop_iterations(cost_c - st.entry_insts))
            )
            _emit_work_iters(em, st.work, st.work_pc, it)
        em.inline_static_block(st.exit)
        _emit_ret_inline(em, return_pc)
        em.inline_static_block(handler.ret_block)
        tail = handler.ret_tail
        if tail is not None:
            em.dj_const(tail[0], tail[1])
        return
    _emit_tail(em, model, handler)
    # The dynamic tail emits eb/cond/call method chains whose cache
    # probes the compile-time maps cannot see.
    em.iknown.clear()
    em.dknown.clear()
    if kind in ("workloop", "callout"):
        em.ic_poison = True  # dynamic eb fetches probe arbitrary sets


def _project_spec(model, seq: tuple, spec: tuple) -> tuple:
    """Canonicalize a raw constancy spec against the model's handler
    kinds: operands a member's kind never reads map to :data:`DYN` so
    they cannot split the compile cache, and a constant cost reduces to
    the single element the emitters consume."""
    out = []
    for (op, _site), (d, t, c, e) in zip(seq, spec):
        kind = model.handlers[op].kind
        cost0 = c if (c is DYN or c is None) else c[0]
        out.append((
            d,
            t if kind == "branchy" else DYN,
            cost0 if kind in ("workloop", "callout") else DYN,
            e if kind == "callout" else DYN,
        ))
    return tuple(out)


#: Method-form predictor observe in an emitted body (``cond(<pc>, ...)``
#: call).  Inlined projections never emit a bare ``cond(`` call, so any
#: match marks a branch the fold analysis cannot see through.
_METHOD_COND = re.compile(r"(?<![\w.])cond\((\d+)?")


def _converge(bits: list, mask: int) -> int:
    """Fixed point of repeatedly shifting the constant *bits* pattern
    into a history register of ``mask`` width.  Each full application
    shifts ``len(bits)`` positions, so after ``ceil(width/len(bits))``
    applications every pre-existing bit has been shifted out and the
    value depends on the pattern alone — one more application maps it to
    itself."""
    h = 0
    for _ in range(mask.bit_length() // max(1, len(bits)) + 2):
        for b in bits:
            h = ((h << 1) | b) & mask
    return h


def _superblock_folds(pred_sig, records, body):
    """History constant-fold analysis for one emitted superblock body.

    Within a superblock every inlined branch direction is a compile-time
    constant, so the predictor's shift registers are driven by a constant
    bit pattern per repetition: they converge to fixed points, after
    which every history value — and thus every gshare/local table index
    — is a compile-time constant and the register writes elide entirely
    (the repetition maps the fixed point to itself; the compiled body
    only ever executes whole repetitions, partial edges ride the
    per-event path with real method updates).

    Conditionally-executed observes (the SCD slow-path bound check runs
    only on a ``bop`` miss) and method-form observes (dynamic work-loop
    trip counts) make their history component data-dependent: any such
    observe poisons the global register, and poisons the local history
    slot its PC maps to — other slots fold independently, since a local
    slot is only written by observes that index it.

    On top of the history fold, a **saturation elision**: when every
    observe in the body is unconditional (no method-form or
    conditionally-executed observes anywhere, so every counter index any
    observe touches is a compile-time constant), the 2-bit counters are
    driven toward their saturated fixed points too.  A counter index
    whose observes all agree in direction saturates within three
    repetitions and then never changes — the observe's prediction is
    correct, the saturating write is a no-op, agreeing components skip
    the chooser — so the whole observe elides, leaving only the
    taken-path BTB interaction.  Indices fed conflicting directions
    (index aliasing) keep their dynamic counter code; they are disjoint
    from the elided indices by construction, so the elided entries
    cannot change during a superblock call.

    Returns ``(folds, guard)``: *folds* is a per-observe list of
    ``(global_index, local_history, elide)`` (``None`` entries stay
    dynamic) or ``None`` when nothing folds; *guard* is ``(kind,
    global_fixed_point, ((slot, fixed_point), ...), ((component, index,
    saturated_value), ...))`` for the runtime convergence check, or
    ``None``.
    """
    kind = pred_sig[0] if pred_sig else None
    if kind not in ("tournament", "gshare", "local") or not records:
        return None, None
    method_pcs = []
    poison_all = False
    for line in body:
        match = _METHOD_COND.search(line)
        if match:
            if match.group(1) is None:
                poison_all = True
                break
            method_pcs.append(int(match.group(1)))
    if poison_all:
        return None, None
    if kind == "tournament":
        _, ge, ghm, le, lhm, _ce = pred_sig
    elif kind == "gshare":
        _, ge, ghm = pred_sig
        le = lhm = None
    else:
        _, le, lhm = pred_sig
        ge = ghm = None
    clean = not method_pcs and all(
        not conditional for _pc, _tk, conditional in records
    )
    global_ok = ghm is not None and clean
    groups: dict = {}
    if le is not None:
        poisoned = {(pc >> 2) % le for pc in method_pcs}
        poisoned |= {
            (pc >> 2) % le for pc, _tk, conditional in records if conditional
        }
        for pc, tk, conditional in records:
            if conditional:
                continue
            li = (pc >> 2) % le
            if li not in poisoned:
                groups.setdefault(li, []).append(1 if tk else 0)
    if not global_ok and not groups:
        return None, None
    fixed = {li: _converge(bits, lhm) for li, bits in groups.items()}
    c_global = (
        _converge([1 if tk else 0 for _pc, tk, _c in records], ghm)
        if global_ok else None
    )
    folds = []
    gh = c_global
    local_cur = dict(fixed)
    for pc, tk, conditional in records:
        bit = 1 if tk else 0
        gi = None
        if global_ok:
            gi = ((pc >> 2) ^ gh) % ge
            gh = ((gh << 1) | bit) & ghm
        lh = None
        if le is not None and not conditional:
            li = (pc >> 2) % le
            if li in local_cur:
                lh = local_cur[li]
                local_cur[li] = ((lh << 1) | bit) & lhm
        folds.append((gi, lh))
    assert gh == c_global and local_cur == fixed  # per-rep identity
    gdir: dict = {}
    ldir: dict = {}
    if clean:
        for (gi, lh), (_pc, tk, _c) in zip(folds, records):
            if gi is not None:
                gdir.setdefault(gi, set()).add(tk)
            if lh is not None:
                ldir.setdefault(lh, set()).add(tk)
    counter_checks: set = set()
    out_folds = []
    for (gi, lh), (_pc, tk, _c) in zip(folds, records):
        elide = False
        if clean:
            if kind == "tournament":
                elide = (
                    gi is not None and lh is not None
                    and len(gdir[gi]) == 1 and len(ldir[lh]) == 1
                )
            elif kind == "gshare":
                elide = gi is not None and len(gdir[gi]) == 1
            else:
                elide = lh is not None and len(ldir[lh]) == 1
        if elide:
            value = 3 if tk else 0
            if gi is not None:
                counter_checks.add(("g", gi, value))
            if lh is not None:
                counter_checks.add(("l", lh, value))
        out_folds.append((gi, lh, elide))
    guard = (
        kind, c_global, tuple(sorted(fixed.items())),
        tuple(sorted(counter_checks)),
    )
    return out_folds, guard


def _lru_fixed_point(seq, capacity):
    """Per-repetition fixed point of a full-LRU list driven by the
    constant probe sequence *seq*.

    The candidate is the state after warming from empty (recency order
    of the distinct probed lines, truncated to *capacity*); it is a
    fixed point when one repetition replayed on it hits on every probe
    and cycles the list back to itself.  Returns the candidate tuple or
    ``None``.  Because recency order after one full repetition is a
    function of the sequence alone, the live structure converges to the
    candidate within one peeled repetition from any starting state."""
    state: list = []
    for line in seq + seq:
        if line in state:
            state.remove(line)
        elif len(state) >= capacity:
            state.pop()
        state.insert(0, line)
    candidate = list(state)
    for line in seq:
        if line not in state:
            return None
        state.remove(line)
        state.insert(0, line)
    return tuple(candidate) if state == candidate else None


def _cache_folds(records, iways, itlb_entries, has_cs, poisoned):
    """I-side steady-state fold analysis for one emitted superblock.

    Within a superblock every instruction-fetch line and page is a
    compile-time constant, so in the steady state the I-cache sets and
    the ITLB walk a fixed per-repetition cycle: every probe is an
    MRU-order hit that returns the LRU lists to their entry state, and
    every page check resolves against the previous member's page.  Each
    fixed point (:func:`_lru_fixed_point`) becomes a guard entry the
    runtime peel verifies before entering the compiled body; the probes
    and page checks then elide entirely — their warm paths touch no
    counters, only LRU order, which the fixed point proves invariant.

    Conditionally-executed probes (SCD slow-path fetch arms) poison
    only the sets they touch; conditional page transitions, a mid-block
    context switch (runtime TLB flush) or any dynamic ``eb`` fetch
    poison the page/ITLB fold; *poisoned* kills the whole analysis.

    Returns ``(folded_sets, page_actions, checks)`` or ``None``:
    *folded_sets* maps folded set index to its fixed point,
    *page_actions* is the per-ifetch-call decision list pass two
    consumes, *checks* the guard entries.
    """
    if poisoned or not records:
        return None
    seqs: dict = {}
    bad_sets = set()
    for conditional, _form, _page, probes in records:
        for index, line in probes:
            if conditional:
                bad_sets.add(index)
            else:
                seqs.setdefault(index, []).append(line)
    folded_sets = {}
    for index, seq in seqs.items():
        if index in bad_sets:
            continue
        fixed = _lru_fixed_point(seq, iways)
        if fixed is not None:
            folded_sets[index] = fixed
    page_ok = not has_cs and not any(
        conditional and form is not None
        for conditional, form, _page, _probes in records
    )
    actions = ["keep"] * len(records)
    checks = [("is", index, lines)
              for index, lines in sorted(folded_sets.items())]
    sites = [(i, form, page)
             for i, (_c, form, page, _p) in enumerate(records) if form]
    if page_ok and sites:
        # The guard pins the entry page to the repetition's final page,
        # making every check's outcome — and thus the exact ITLB walk
        # sequence — a compile-time constant.
        entry_page = sites[-1][2]
        cur = entry_page
        tlb_seq = []
        trans = []
        for i, form, page in sites:
            if form == "check" and cur == page:
                actions[i] = "skip"
            else:
                trans.append(i)
                tlb_seq.append(page)
                cur = page
        tlb_fixed = _lru_fixed_point(tlb_seq, itlb_entries)
        for i in trans:
            actions[i] = "static" if tlb_fixed is not None else "probe"
        checks.append(("ipage", entry_page))
        if tlb_fixed is not None:
            checks.append(("itlb", tlb_fixed))
    elif not folded_sets:
        return None
    return folded_sets, tuple(actions), tuple(checks)


def _guard_ok(machine, guard) -> bool:
    """Has the live microarchitectural state reached the compiled fixed
    points (predictor histories and saturated counters, I-cache set and
    ITLB recency orders, current I-page)?"""
    pred_guard, cache_checks = guard
    for check in cache_checks:
        what = check[0]
        if what == "is":
            _, index, lines = check
            ways = machine.icache._sets[index]
            if tuple(ways[:len(lines)]) != lines:
                return False
        elif what == "ipage":
            if machine._last_ipage != check[1]:
                return False
        else:  # "itlb"
            pages = machine.itlb._pages
            want = check[1]
            if tuple(pages[:len(want)]) != want:
                return False
    if pred_guard is None:
        return True
    kind, c_global, fixed, counters = pred_guard
    pred = machine.predictor
    histories = gtable = ltable = None
    if kind == "tournament":
        if c_global is not None and pred.global_component.history != c_global:
            return False
        histories = pred.local_component._histories
        gtable = pred.global_component._table
        ltable = pred.local_component._counters
    elif kind == "gshare":
        if c_global is not None and pred.history != c_global:
            return False
        gtable = pred._table
    else:
        histories = pred._histories
        ltable = pred._counters
    if histories is not None:
        for li, value in fixed:
            if histories[li] != value:
                return False
    for comp, index, value in counters:
        table = gtable if comp == "g" else ltable
        if table[index] != value:
            return False
    return True


def _pred_prologue(pred_sig) -> tuple:
    """Once-per-call table bindings for the hoisted observe projections."""
    kind = pred_sig[0] if pred_sig else None
    if kind == "tournament":
        return ("_GT = PG._table", "_LHS = PL._histories",
                "_LCS = PL._counters", "_CH = PRED._choice")
    if kind == "gshare":
        return ("_GT = PRED._table",)
    if kind == "local":
        return ("_LHS = PRED._histories", "_LCS = PRED._counters")
    if kind == "bimodal":
        return ("_BT = PRED._table",)
    return ()


def _assemble_superblock(em: _Emitter, period: int, filename: str):
    """Wrap the emitted member bodies into a repetition-loop maker.

    The compiled function walks the columnar arrays directly:
    ``k(base, reps, TK, CE, DI, BI, CI, DP, BP, CP)`` replays ``reps``
    repetitions of the body starting at event index ``base``.  ``ei``
    tracks the current repetition's base index; the code cursor lives in
    a local across the whole call and is stored back once.
    """
    lines = ["def _make(r, m, refs):"]
    if em.refs:
        names = ", ".join(f"R{i}" for i in range(len(em.refs)))
        lines.append(f"    ({names},) = refs")
    lines.append(_PREAMBLE.rstrip("\n"))
    lines.append("    def k(base, reps, TK, CE, DI, BI, CI, DP, BP, CP):")
    lines.append("        cnt[0] += reps")
    for binding in _pred_prologue(em.pred_sig):
        lines.append("        " + binding)
    # Hoisted mutable containers: way lists, TLB page lists.  All are
    # only ever mutated in place during a call (restore_state rebinds
    # them strictly between calls), so one binding serves every probe.
    for index, name in sorted(getattr(em, "isetvars", {}).items()):
        lines.append(f"        {name} = IS[{index}]")
    for index, name in sorted(getattr(em, "dsetvars", {}).items()):
        lines.append(f"        {name} = DS[{index}]")
    lines.append("        _IPS = ITLBO._pages")
    lines.append("        _DPS = DTLBO._pages")
    lines.append("        cur = r._code_cursor")
    lines.append("        ei = base")
    lines.append("        for _rep in range(reps):")
    lines.extend("    " + line for line in em.body)
    lines.append(f"            ei += {period}")
    lines.append("        r._code_cursor = cur")
    lines.append("    return k, cnt")
    source = "\n".join(lines) + "\n"
    namespace: dict = {"WLI": work_loop_iterations}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["_make"]


@functools.lru_cache(maxsize=None)
def _compiled_superblock(vm_kind: str, strategy: str, seq: tuple,
                         spec: tuple, shape: tuple):
    """Compile one superblock for a key sequence and projected spec.

    The cache key is (vm, strategy, sequence, projected operand spec,
    config shape) — the same sequence recurring across traces or grid
    points of one shape re-binds the same code object, exactly like
    ``_compiled_kernel``.  Constant operands in *spec* are burnt into
    the code (no array loads, resolved branch arms, compile-time work
    trip counts, static stubs); :data:`DYN` operands load from the
    columnar arrays per repetition.  Returns the same registration tuple
    shape: ``(make, refs, static_pairs, deferred_events, weight,
    deferred_stats)`` with ``weight = period`` (each call's cell tick
    covers one full repetition).
    """
    model = get_model(vm_kind, strategy)
    period = len(seq)
    threaded = model.strategy == "threaded"

    def emit_members(em):
        prev_handler = None
        for j, (op, site) in enumerate(seq):
            d, t, c, e = spec[j]
            handler = model.handlers[op]
            kind = handler.kind
            if em.has_cs:
                em.emit("r._events += 1")
                em.emit("if r._events % INTERVAL == 0:")
                em.emit("    cs(SAVE)")
                # A context switch flushes TLBs and page-tracking state,
                # so nothing is statically current past the check.
                em.ipage = None
                em.dpage = None
            em.emit("cur = (cur + 4) & 16383")
            em.emit(f"fa = {_GUEST_CODE_BASE} + cur")
            idx = f"ei + {j}" if j else "ei"
            em.daddrs_const = d
            dvar = f"d{j}"
            if d is DYN:
                em.emit(f"{dvar} = DP[DI[{idx}]]")
            if kind == "branchy" and t is DYN:
                em.emit(f"taken = TK[{idx}]")
            if kind in ("workloop", "callout") and c is DYN:
                em.emit(f"cost = CP[CI[{idx}]]")
            if kind == "callout" and e is DYN:
                em.emit(f"callee = CE[{idx}]")
                em.emit(f"builtin = BP[BI[{idx}]]")
            if threaded and prev_handler is not None:
                # Members past the first have a statically-known previous
                # handler: inline the dynamic prev-check dispatch's taken
                # arm directly (tail block, PC-slot + fetch-address
                # accesses, dispatch jump).
                em.inline_static_block(prev_handler.tail_block)
                em.daccess_const(_VM_STRUCT_PC_SLOT)
                em.daccess_expr("fa")
                em.ij_const(
                    prev_handler.tail_jump_pc, handler.pc, op, "dispatch_jump"
                )
            else:
                dispatch = model.dispatchers.get(site) or model.dispatchers[0]
                _emit_dispatch(em, model, dispatch, handler, op, site)
            _emit_handler_body(em, handler, dvar)
            _emit_tail_spec(em, model, handler, t, c, e)
            prev_handler = handler
        if threaded and period > 1:
            # Member 0's dispatch stored its own handler; restore the loop
            # invariant (prev = last executed event's handler) for the
            # next repetition and for whatever follows the superblock.
            em.emit(f"r._prev_handler = {em.ref(prev_handler)}")

    # Pass 1 records every branch observe (pc, direction, conditional?);
    # when the recorded pattern drives the predictor history registers to
    # a per-repetition fixed point, pass 2 re-emits with the histories —
    # and hence every table index — burnt in as constants.  The guard
    # returned alongside makes run_range peel repetitions until the live
    # registers reach the fixed point before entering the compiled body.
    em = _BatchEmitter(shape)
    emit_members(em)
    folds, pred_guard = _superblock_folds(em.pred_sig, em.cond_record, em.body)
    cache = _cache_folds(
        em.ic_record, em.iways, em.itlb_entries, em.has_cs, em.ic_poison
    )
    if folds is not None or cache is not None:
        em2 = _BatchEmitter(shape)
        em2.fold_plan = folds
        if cache is not None:
            em2.ic_fold = (cache[0], cache[1])
        emit_members(em2)
        em = em2
    cache_checks = cache[2] if cache is not None else ()
    guard = (
        (pred_guard, cache_checks)
        if pred_guard is not None or cache_checks else None
    )
    has_cs = em.has_cs
    make = _assemble_superblock(
        em, period,
        f"<repro.native.batch {vm_kind}/{strategy} period={period}>",
    )
    deferred = 0 if has_cs else period
    stats = (em.ic_acc, em.dc_acc, em.static_cycles, em.br_acc, em.ij_acc,
             em.itlb_acc, em.dtlb_acc)
    return (make, tuple(em.refs), em.static_pairs, deferred, period, stats,
            guard)


def _superblock_builder(kernel):
    """Build function for a kernel's lazy superblock table."""
    model = kernel.model
    shape = kernel._shape()

    def build(key):
        seq, spec = key
        try:
            projected = _project_spec(model, seq, spec)
            compiled = _compiled_superblock(
                model.vm_kind, model.strategy, seq, projected, shape
            )
        except Exception:
            # Anything the member kernels cannot compile (unknown
            # opcode, non-inlinable dispatcher) stays on the per-event
            # ladder for the whole run.
            return None
        make, refs, pairs, deferred, weight, dstats, guard = compiled
        fn, cell = make(kernel.runner, kernel.machine, refs)
        kernel.register_cell(cell, pairs, deferred, weight, REG_BATCH, dstats)
        kernel.superblocks += 1
        obs.event(
            "superblock_compile",
            vm=model.vm_kind, strategy=model.strategy,
            period=len(seq),
        )
        return fn, guard

    return build


# -- columnar execution --------------------------------------------------------


class BatchReplay:
    """Executor for one (runner, trace) pairing of a segmentation plan.

    ``run_range(start, stop)`` replays the half-open event range — the
    whole trace, or one memo chunk — feeding aligned full repetitions of
    each overlapping run to its compiled superblock and everything else
    (gaps, misaligned edges where a memo chunk boundary bisects a run,
    uncompilable sequences) to the per-event kernel table.
    """

    __slots__ = ("kernel", "trace", "plan", "starts", "_eligible",
                 "_table", "_sb", "_cols", "_pools", "_fnargs")

    def __init__(self, kernel, trace, plan):
        self.kernel = kernel
        self.trace = trace
        self.plan = plan
        self.starts = [entry[0] for entry in plan]
        # Compile gating: exec-compiling a superblock costs ~40ms, so
        # only (sequence, spec) keys whose runs cover enough events to
        # repay it are eligible; the rest stay on the per-event table.
        coverage: dict = {}
        for r_start, r_end, _period, seq, spec in plan:
            cov_key = (seq, spec)
            coverage[cov_key] = coverage.get(cov_key, 0) + (r_end - r_start)
        self._eligible = {
            cov_key for cov_key, events in coverage.items()
            if events >= MIN_COMPILE_EVENTS
        }
        if kernel.sb_table is None:
            kernel.sb_table = _LazyTable(_superblock_builder(kernel))
        self._sb = kernel.sb_table
        self._table = kernel.table
        cols = trace.columns
        daddr_pool = trace.daddr_pool
        builtin_pool = list(trace.builtin_pool) + [None]
        cost_pool = list(trace.cost_pool) + [None]
        self._cols = (
            cols["ops"], cols["sites"], cols["takens"], cols["callees"],
            cols["daddr_ids"], cols["builtin_ids"], cols["cost_ids"],
        )
        self._pools = (daddr_pool, builtin_pool, cost_pool)
        self._fnargs = (
            cols["takens"], cols["callees"], cols["daddr_ids"],
            cols["builtin_ids"], cols["cost_ids"],
            daddr_pool, builtin_pool, cost_pool,
        )

    def _span(self, start: int, stop: int) -> None:
        """Per-event kernel replay of ``[start, stop)``."""
        if start >= stop:
            return
        ops, sites, takens, callees, daddr_ids, builtin_ids, cost_ids = self._cols
        daddr_pool, builtin_pool, cost_pool = self._pools
        table = self._table
        for i in range(start, stop):
            table[ops[i], sites[i]](
                takens[i], callees[i],
                daddr_pool[daddr_ids[i]],
                builtin_pool[builtin_ids[i]],
                cost_pool[cost_ids[i]],
            )

    def run_range(self, start: int, stop: int) -> None:
        plan = self.plan
        n_runs = len(plan)
        idx = bisect_right(self.starts, start) - 1
        if idx < 0:
            idx = 0
        pos = start
        while pos < stop:
            while idx < n_runs and plan[idx][1] <= pos:
                idx += 1
            if idx >= n_runs or plan[idx][0] >= stop:
                self._span(pos, stop)
                return
            r_start, r_end, period, seq, spec = plan[idx]
            if r_start > pos:
                self._span(pos, r_start)
                pos = r_start
            hi = stop if stop < r_end else r_end
            # Align to a repetition boundary: a memo chunk boundary may
            # bisect the run, leaving misaligned edges for _span.
            off = (pos - r_start) % period
            first = pos if off == 0 else pos + (period - off)
            full = (hi - first) // period if hi > first else 0
            entry = (
                self._sb[seq, spec]
                if full and (seq, spec) in self._eligible else None
            )
            if entry is not None:
                fn, guard = entry
                self._span(pos, first)
                if guard is not None:
                    # History constant-folded body: peel repetitions on
                    # the per-event path until the live shift registers
                    # reach the compiled fixed points.
                    machine = self.kernel.machine
                    while full and not _guard_ok(machine, guard):
                        self._span(first, first + period)
                        first += period
                        full -= 1
                if full:
                    fn(first, full, *self._fnargs)
                self._span(first + full * period, hi)
            else:
                self._span(pos, hi)
            pos = hi
            idx += 1


def batch_replay_for(runner, trace):
    """Resolve the batch executor for a runner/trace pairing, or None.

    None when batch replay is disabled, the runner has no direct kernel
    table (instrumented machine, superinstruction strategy), or the
    trace has no periodic runs worth compiling — callers then stay on
    the per-event path.
    """
    kernel = getattr(runner, "kernel", None)
    if kernel is None or not kernel.direct or not kernel.batch_enabled:
        return None
    cached = kernel.batch
    if cached is not None and cached.trace is trace:
        return cached
    plan = trace_plan(trace)
    if not plan:
        return None
    replay = BatchReplay(kernel, trace, plan)
    kernel.batch = replay
    return replay
