"""Exec-compiled replay kernels: specialized per-(opcode, site) dispatch.

The paper accelerates interpreter dispatch by removing interpretation
overhead from the hot loop; this module applies the same medicine to the
simulator.  :class:`ModelRunner._replay` is a small interpreter — per
event it looks up a plan tuple and branches over strategy and handler
kind.  The kernel compiler turns each ``(opcode, site)`` plan into one
``exec``-compiled straight-line Python function with every static
decision burnt in:

* machine components, penalties and block objects bound as closure
  locals (no per-event attribute chains);
* the ``chain``/``tail`` loops unrolled;
* ``Machine.exec_block``/``exec_blocks`` inlined for the statically-known
  blocks via the :mod:`repro.uarch.pipeline` ``kernel_*_lines``
  specializers — issue slots merged into one constant add, I-page checks
  elided when the previous inlined block proves the page current;
* per-block retirement counts and (when no context switch interval is
  active) the event tally deferred into per-kernel counter cells, folded
  back by :meth:`BoundKernel.flush` at every observation point (memo
  chunk boundaries, ``runner.events``, ``finish()``).

Exactness is by construction: every emitted line is a constant-folded
projection of the same template ``exec_block`` is generated from, and
every elision (page checks, count deferral, cycle merging) is a
reordering of commutative increments that nothing reads mid-kernel.  The
``--no-kernel`` / ``SCD_REPRO_KERNEL=0`` opt-out preserves the
interpreted path bit-for-bit, and the differential oracle
(:mod:`repro.verify`) fuzzes kernel-vs-interpreted identity.

Kernels bind only to machines whose type is exactly
:class:`~repro.uarch.pipeline.Machine`: subclasses (the verifier's
``CheckedMachine``) override entry points the kernel would inline past,
so they transparently keep the interpreted path.
"""

from __future__ import annotations

import functools
import os
import warnings

from repro import obs
from repro.native.model import (
    _GUEST_CODE_BASE,
    _VM_STRUCT_PC_SLOT,
    get_model,
)
from repro.native.specs import work_loop_iterations
from repro.uarch.pipeline import (
    block_issue_slots,
    btb_inline_sig,
    kernel_cond_lines,
    kernel_daccess_const_lines,
    kernel_daccess_expr_lines,
    kernel_daddrs_loop_lines,
    kernel_direct_jump_lines,
    kernel_ifetch_lines,
    kernel_indirect_jump_lines,
    kernel_load_op_lines,
    kernel_predictor_sig,
)

#: Environment opt-out honoured when neither the call site nor the process
#: default decides (mirrors ``SCD_REPRO_TRACE`` resolution).
KERNEL_ENV = "SCD_REPRO_KERNEL"

_TRUE_WORDS = frozenset({"1", "true", "on", "yes"})
_FALSE_WORDS = frozenset({"0", "false", "off", "no"})

_DEFAULT_ENABLED: bool | None = None


def set_kernel_enabled(enabled: bool | None) -> None:
    """Set the process-wide kernel default (the CLI's ``--no-kernel``).

    ``None`` restores deferral to the environment variable.
    """
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = enabled


def kernel_enabled(explicit: bool | None = None) -> bool:
    """Resolve whether replay kernels should be used.

    Precedence: explicit argument, then :func:`set_kernel_enabled`
    process default, then :data:`KERNEL_ENV`, then on.
    """
    if explicit is not None:
        return bool(explicit)
    if _DEFAULT_ENABLED is not None:
        return _DEFAULT_ENABLED
    raw = os.environ.get(KERNEL_ENV)
    if raw is not None:
        word = raw.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        warnings.warn(
            f"ignoring unrecognized {KERNEL_ENV}={raw!r}", stacklevel=2
        )
    return True


# -- code generation -----------------------------------------------------------


class _Emitter:
    """Accumulates one kernel body with constant-folding bookkeeping.

    Tracks the statically-known I-page and D-page through the inlined
    block sequence (page-check elision), merges always-executed issue
    slots into one constant, and defers always-executed block counts into
    the kernel's counter cell (``static_pairs``).
    """

    def __init__(self, shape: tuple):
        (
            self.width,
            self.has_cs,
            self.imask,
            self.dshift,
            self.dmask,
            self.pred_sig,
            self.btb_sets,
            self.scheme,
            self.scd_tables,
            self.iways,
            self.dways,
            self.btb_ways,
            self.btb_policy,
            self.itlb_entries,
        ) = shape
        self.body: list[str] = []
        self.refs: list = []
        self._ref_names: dict[int, str] = {}
        self._static_counts: dict[int, list] = {}
        self.static_cycles = 0
        self.ic_acc = 0  # deferred I-cache access count per invocation
        self.dc_acc = 0  # deferred D-cache access count per invocation
        self.br_acc = 0  # deferred stats.branches per invocation
        self.ij_acc = 0  # deferred stats.indirect_jumps per invocation
        self.ipage = None  # statically-known current I-page, or None
        self.dpage = None  # statically-known current D-page, or None

    def ref(self, obj) -> str:
        """Closure-local name for a model-level object."""
        name = self._ref_names.get(id(obj))
        if name is None:
            name = f"R{len(self.refs)}"
            self._ref_names[id(obj)] = name
            self.refs.append(obj)
        return name

    def emit(self, line: str, depth: int = 0) -> None:
        self.body.append("        " + "    " * depth + line)

    def emit_lines(self, lines, depth: int = 0) -> None:
        for line in lines:
            self.emit(line, depth)

    # -- uarch projection hooks ------------------------------------------------
    # The batch superblock emitter (:mod:`repro.native.batch`) overrides
    # these with fully-inlined variants (slow paths included); everything
    # above them — page tracking, deferral bookkeeping, emission order —
    # is shared between the two compilers.

    def _ifetch(self, block, known_ipage):
        return kernel_ifetch_lines(block, known_ipage, self.imask)

    def _dconst(self, address: int, known_dpage):
        return kernel_daccess_const_lines(
            address, known_dpage, self.dshift, self.dmask
        )

    def _dexpr(self, expr: str):
        return kernel_daccess_expr_lines(expr, self.dshift, self.dmask)

    def _dloop(self, var: str):
        return kernel_daddrs_loop_lines(var, self.dshift, self.dmask)

    def _cond(self, pc: int, taken: bool, category: str):
        return kernel_cond_lines(pc, taken, category, self.pred_sig, self.btb_sets)

    def _dj(self, pc: int, target: int):
        return kernel_direct_jump_lines(pc, target, self.btb_sets)

    def _ij(self, pc: int, target: int, hint, category: str):
        return kernel_indirect_jump_lines(
            pc, target, hint, category, self.scheme, self.btb_sets
        )

    # -- block inlining --------------------------------------------------------

    def inline_static_block(self, block) -> None:
        """Inline an always-executed block: count, slots and cache access
        tally all deferred into per-invocation constants."""
        entry = self._static_counts.get(id(block))
        if entry is None:
            self._static_counts[id(block)] = [block, 1]
        else:
            entry[1] += 1
        self.static_cycles += block_issue_slots(block, self.width)
        lines, page, accesses = self._ifetch(block, self.ipage)
        self.ic_acc += accesses
        self.emit_lines(lines)
        self.ipage = page

    def inline_cond_block(self, block, depth: int, page_in):
        """Inline a conditionally-executed block with direct accounting.

        Returns the I-page current after it runs (for joins).
        """
        name = self.ref(block)
        self.emit(f"counts[{name}] = counts_get({name}, 0) + 1", depth)
        slots = block_issue_slots(block, self.width)
        self.emit(f"stats.cycles += {slots}", depth)
        lines, page, accesses = self._ifetch(block, page_in)
        if accesses:
            self.emit(f"ICO.accesses += {accesses}", depth)
        self.emit_lines(lines, depth)
        return page

    # -- data accesses ---------------------------------------------------------

    def daccess_const(self, address: int) -> None:
        lines, page = self._dconst(address, self.dpage)
        self.dc_acc += 1
        self.emit_lines(lines)
        self.dpage = page

    def daccess_expr(self, expr: str) -> None:
        self.emit_lines(self._dexpr(expr))
        self.dc_acc += 1
        self.dpage = None

    def daddrs_loop(self, var: str = "daddrs") -> None:
        self.emit_lines(self._dloop(var))
        self.dpage = None

    # -- control transfers -----------------------------------------------------

    def cond_const(self, pc: int, taken: bool, category: str,
                   depth: int = 0, defer: bool | None = True) -> None:
        """Inline a constant conditional branch; falls back to the
        ``cond`` method when the predictor kind is not inlinable.

        *defer* accounts ``stats.branches``: ``True`` — exactly one such
        branch runs per invocation, ride the deferred cell; ``False`` —
        conditional region, emit the increment inline; ``None`` — the
        caller already accounted it (the other arm of an exhaustive
        if/else).
        """
        lines = self._cond(pc, taken, category)
        if lines is None:
            self.emit(f"cond({pc}, {taken}, {category!r})", depth)
            return
        if defer:
            self.br_acc += 1
        elif defer is False:
            self.emit("stats.branches += 1", depth)
        self.emit_lines(lines, depth)

    def dj_const(self, pc: int, target: int, depth: int = 0) -> None:
        """Inline a constant unconditional direct jump."""
        self.emit_lines(self._dj(pc, target), depth)

    def ij_const(self, pc: int, target: int, hint, category: str) -> None:
        """Inline a constant indirect jump (BTB/VBBI schemes); falls back
        to the ``ij`` method for history-based predictors.  Straight-line
        context only (``stats.indirect_jumps`` is deferred)."""
        lines = self._ij(pc, target, hint, category)
        if lines is None:
            self.emit(f"ij({pc}, {target}, {hint}, {category!r})")
            return
        self.ij_acc += 1
        self.emit_lines(lines)

    def lop_const(self, bytecode: int, table: int) -> None:
        """Inline the ``<inst>.op`` deposit."""
        self.emit_lines(kernel_load_op_lines(bytecode, table, self.scd_tables))

    def bop_open(self, pc: int, table: int) -> None:
        """Open the SCD slow-path conditional: subsequent depth-1 lines
        run only on a ``bop`` miss."""
        self.emit(f"if bop({pc}, {table}) is None:")

    @property
    def static_pairs(self) -> tuple:
        return tuple((block, mult) for block, mult in self._static_counts.values())


#: Names every generated maker binds from the runner/machine, in source
#: form.  Unused bindings cost one attribute load at bind time, not per
#: event, so they are bound unconditionally for simplicity.
_PREAMBLE = """\
    counts = m._block_counts
    counts_get = counts.get
    stats = m.stats
    IS = m.icache._sets
    DS = m.dcache._sets
    icp = m.icache.probe_line
    dcp = m.dcache.probe
    ICO = m.icache
    DCO = m.dcache
    itlb = m.itlb.access
    dtlb = m.dtlb.access
    ITLBO = m.itlb
    DTLBO = m.dtlb
    stall = m._stall
    fill = m._fill_latency
    CB = stats.cycle_breakdown
    PRED = m.predictor
    PG = getattr(m.predictor, "global_component", None)
    PL = getattr(m.predictor, "local_component", None)
    BTBO = m.btb
    btbl = m.btb.lookup
    btbi = m.btb.insert
    jtel = m.btb.lookup_jte
    SCDU = m.scd
    BRP = m.config.branch_penalty
    DRP = m.config.decode_redirect_penalty
    cond = m.cond_branch
    ij = m.indirect_jump
    dj = m.direct_jump
    eb = m.exec_block
    ebs = m.exec_blocks
    call = m.call
    mret = m.ret
    rasp = m.ras.push
    rasq = m.ras.pop
    lop = m.load_op
    bop = m.bop
    jru = m.jru
    cs = m.context_switch
    TLBP = m.config.tlb_miss_penalty
    ICLAT = m.config.icache.hit_latency
    DCLAT = m.config.dcache.hit_latency
    SSP = m.config.scd_stall_policy == 'fallthrough'
    SSC = m.config.scd_stall_cycles
    INTERVAL = r.context_switch_interval
    SAVE = r.context_switch_policy == "save"
    cnt = [0]
"""


def _assemble(em: _Emitter, args: str, filename: str):
    """Wrap the emitted body into a ``_make(r, m, refs)`` maker source and
    exec-compile it.  Returns the maker function.  Static cycles and cache
    access tallies are NOT emitted — they ride in the registration tuple
    and are folded back at flush time."""
    lines = ["def _make(r, m, refs):"]
    if em.refs:
        names = ", ".join(f"R{i}" for i in range(len(em.refs)))
        lines.append(f"    ({names},) = refs")
    lines.append(_PREAMBLE.rstrip("\n"))
    lines.append(f"    def k({args}):")
    lines.extend(em.body)
    lines.append("    return k, cnt")
    source = "\n".join(lines) + "\n"
    namespace: dict = {"WLI": work_loop_iterations}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["_make"]


def _emit_dispatch(em: _Emitter, model, dispatch, handler, op: int, site: int) -> None:
    """Dispatch phase of one event, mirroring ``ModelRunner._replay``."""
    hpc = handler.pc
    if model.strategy == "threaded":
        em.emit("prev = r._prev_handler")
        em.emit("if prev is not None:")
        em.emit(f"    eb(prev.tail_block, ({_VM_STRUCT_PC_SLOT}, fa))")
        em.emit(f"    ij(prev.tail_jump_pc, {hpc}, {op}, 'dispatch_jump')")
        em.emit("else:")
        # First event only: run the full dispatcher through method calls.
        em.emit(f"    eb({em.ref(dispatch.head)})")
        em.emit(f"    eb({em.ref(dispatch.fetch)}, ({_VM_STRUCT_PC_SLOT}, fa))")
        em.emit(f"    ebs({em.ref(dispatch.pre_branch)})")
        em.emit(f"    cond({dispatch.bound_pc}, False, 'bound_check')")
        em.emit(f"    eb({em.ref(dispatch.calc)})")
        em.emit(f"    ij({dispatch.jump_pc}, {hpc}, {op}, 'dispatch_jump')")
        em.emit(f"r._prev_handler = {em.ref(handler)}")
        em.ipage = None
        em.dpage = None
        return
    em.inline_static_block(dispatch.head)
    em.inline_static_block(dispatch.fetch)
    em.daccess_const(_VM_STRUCT_PC_SLOT)
    em.daccess_expr("fa")
    if dispatch.scd:
        if dispatch.operand is not None:
            em.inline_static_block(dispatch.operand)
        em.lop_const(op & model.opcode_mask, site)
        em.inline_static_block(dispatch.bop_block)
        fast_page = em.ipage
        em.bop_open(dispatch.bop_pc, site)
        page = em.inline_cond_block(dispatch.decode, 1, fast_page)
        page = em.inline_cond_block(dispatch.bound, 1, page)
        em.cond_const(dispatch.bound_pc, False, "bound_check", depth=1, defer=False)
        page = em.inline_cond_block(dispatch.calc, 1, page)
        em.emit(f"    jru({dispatch.jump_pc}, {hpc}, {site})")
        em.ipage = fast_page if fast_page == page else None
    else:
        for block in dispatch.pre_branch:
            em.inline_static_block(block)
        em.cond_const(dispatch.bound_pc, False, "bound_check")
        em.inline_static_block(dispatch.calc)
        em.ij_const(dispatch.jump_pc, hpc, op, "dispatch_jump")


def _emit_handler_body(em: _Emitter, handler, daddrs_var: str = "daddrs") -> None:
    """Chain chunks + final block; the first inlined block consumes the
    event's data addresses, exactly like the interpreted loop."""
    consumed = False
    for chunk_block, junction_pc in handler.chain:
        em.inline_static_block(chunk_block)
        if not consumed:
            em.daddrs_loop(daddrs_var)
            consumed = True
        em.cond_const(junction_pc, True, "type_check")
    em.inline_static_block(handler.final)
    if not consumed:
        em.daddrs_loop(daddrs_var)


def _emit_tail(em: _Emitter, model, handler) -> None:
    """Handler-kind terminator, mirroring ``_replay``'s kind branches."""
    kind = handler.kind
    if kind == "plain":
        tail = handler.final_tail
        if tail is not None:
            em.dj_const(tail[0], tail[1])
    elif kind == "branchy":
        # The interpreted path resolves the guest branch before executing
        # the chosen side; inlining the (constant-taken) resolution into
        # each arm preserves that order on every path.  Exactly one arm
        # runs, so stats.branches stays statically deferrable.
        em.emit("if taken == 1:")
        em.cond_const(handler.branch_pc, True, "guest_branch", depth=1)
        tk_page = em.inline_cond_block(handler.tk, 1, em.ipage)
        if handler.tk_tail is not None:
            em.dj_const(handler.tk_tail[0], handler.tk_tail[1], depth=1)
        em.emit("else:")
        em.cond_const(handler.branch_pc, False, "guest_branch", depth=1, defer=None)
        nt_page = em.inline_cond_block(handler.nt, 1, em.ipage)
        if handler.nt_tail is not None:
            em.dj_const(handler.nt_tail[0], handler.nt_tail[1], depth=1)
        em.ipage = tk_page if tk_page == nt_page else None
    elif kind == "workloop":
        em.emit("it = 1")
        em.emit("if cost is not None:")
        em.emit("    it = max(1, WLI(cost[0]))")
        em.emit("for _i in range(it):")
        em.emit(f"    eb({em.ref(handler.work)})")
        em.emit(f"    cond({handler.work_pc}, _i < it - 1, 'work_loop')")
        em.ipage = None
        em.inline_static_block(handler.exit)
        tail = handler.exit_tail
        if tail is not None:
            em.dj_const(tail[0], tail[1])
    else:  # callout
        return_pc = handler.ret_block.start_pc
        em.emit("if callee == 2 and builtin is not None:")
        em.emit(f"    st = {em.ref(model.stubs)}[builtin]")
        em.emit("else:")
        em.emit(f"    st = {em.ref(model.stubs['_precall'])}")
        em.emit(f"call({handler.call_pc}, st.pc, {return_pc}, True)")
        em.emit("for _cb in st.chain:")
        em.emit("    eb(_cb[0])")
        em.emit("    cond(_cb[1], True, 'type_check')")
        em.emit("eb(st.final)")
        em.emit("it = 1")
        em.emit("if cost is not None:")
        em.emit("    it = max(1, WLI(cost[0] - st.entry_insts))")
        em.emit("for _i in range(it):")
        em.emit("    eb(st.work)")
        em.emit("    cond(st.work_pc, _i < it - 1, 'work_loop')")
        em.emit("eb(st.exit)")
        em.emit(f"mret(st.ret_pc, {return_pc})")
        em.ipage = None
        em.inline_static_block(handler.ret_block)
        tail = handler.ret_tail
        if tail is not None:
            em.dj_const(tail[0], tail[1])


def emit_event_core(em: _Emitter, model, op: int, site: int,
                    daddrs_var: str = "daddrs"):
    """Emit the dispatch + handler body + tail of one event.

    The shared per-event core of the single-event kernels and the batch
    superblock compiler (:mod:`repro.native.batch`): everything between
    the event prologue (counter/cursor bookkeeping, which differs
    between the two) and the next event.  Expects ``fa`` (the guest-code
    fetch address) and the handler-kind dynamic locals (*daddrs_var*,
    and ``taken``/``callee``/``builtin``/``cost`` where the kind
    consumes them) to be live.  Returns the handler runtime (for kind
    queries).
    """
    handler = model.handlers[op]
    dispatch = model.dispatchers.get(site) or model.dispatchers[0]
    _emit_dispatch(em, model, dispatch, handler, op, site)
    _emit_handler_body(em, handler, daddrs_var)
    _emit_tail(em, model, handler)
    return handler


@functools.lru_cache(maxsize=None)
def _compiled_kernel(vm_kind: str, strategy: str, op: int, site: int, shape: tuple):
    """Compile one (opcode, site) kernel for a model/config shape.

    The *shape* tuple (see :meth:`BoundKernel._shape`) carries issue
    width, whether a context-switch interval is armed, the cache set
    geometry the MRU fast paths are specialized on, the direction-
    predictor signature, BTB set count, indirect scheme and SCD table
    count.

    Process-wide cache: the maker closes over model-level objects only
    (shared through ``get_model``'s cache), so every runner of the same
    shape re-binds the same code object to its own machine.

    Returns ``(make, refs, static_pairs, deferred_events, weight,
    deferred_stats)``; the maker is called as
    ``make(runner, machine, refs) -> (kernel, cell)``.
    """
    em = _Emitter(shape)
    has_cs = em.has_cs
    em.emit("cnt[0] += 1")
    if has_cs:
        em.emit("r._events += 1")
        em.emit("if r._events % INTERVAL == 0:")
        em.emit("    cs(SAVE)")
    em.emit("cur = (r._code_cursor + 4) & 16383")
    em.emit("r._code_cursor = cur")
    em.emit(f"fa = {_GUEST_CODE_BASE} + cur")
    emit_event_core(em, get_model(vm_kind, strategy), op, site)
    make = _assemble(
        em,
        "taken, callee, daddrs, builtin, cost",
        f"<repro.native.kernel {vm_kind}/{strategy} op={op} site={site}>",
    )
    deferred = 0 if has_cs else 1
    stats = (em.ic_acc, em.dc_acc, em.static_cycles, em.br_acc, em.ij_acc)
    return make, tuple(em.refs), em.static_pairs, deferred, 1, stats


@functools.lru_cache(maxsize=None)
def _compiled_fused(
    vm_kind: str, strategy: str, op_a: int, op_b: int, site: int, shape: tuple
):
    """Compile one fused superinstruction kernel, mirroring
    ``ModelRunner._replay_fused``.  *site* must be a dispatcher key."""
    model = get_model(vm_kind, strategy)
    handler = model.fused[(op_a, op_b)]
    dispatch = model.dispatchers[site]
    em = _Emitter(shape)
    has_cs = em.has_cs
    em.emit("cnt[0] += 1")
    if has_cs:
        em.emit("r._events += 2")
        em.emit("if r._events % INTERVAL <= 1:")
        em.emit("    cs(SAVE)")
    em.emit("cur = (r._code_cursor + 8) & 16383")
    em.emit("r._code_cursor = cur")
    em.emit(f"fa = {_GUEST_CODE_BASE} + cur")
    em.inline_static_block(dispatch.head)
    em.inline_static_block(dispatch.fetch)
    em.daccess_const(_VM_STRUCT_PC_SLOT)
    em.daccess_expr("fa")
    if dispatch.operand is not None:
        em.inline_static_block(dispatch.operand)
    em.inline_static_block(dispatch.decode)
    em.inline_static_block(dispatch.bound)
    em.cond_const(dispatch.bound_pc, False, "bound_check")
    em.inline_static_block(dispatch.calc)
    hint = 0x1_0000 | (op_a << 8) | op_b
    em.ij_const(dispatch.jump_pc, handler.pc, hint, "dispatch_jump")
    em.emit("daddrs = first[4] + second[4]")
    _emit_handler_body(em, handler)
    _emit_tail(em, model, handler)
    make = _assemble(
        em,
        "first, second",
        f"<repro.native.kernel {vm_kind}/{strategy} fused={op_a},{op_b} site={site}>",
    )
    deferred = 0 if has_cs else 2
    stats = (em.ic_acc, em.dc_acc, em.static_cycles, em.br_acc, em.ij_acc)
    return make, tuple(em.refs), em.static_pairs, deferred, 2, stats


# -- runtime binding -----------------------------------------------------------

#: Registration kinds for the deferred counter cells in
#: :attr:`BoundKernel._regs`: which throughput counter the cell's events
#: fold into at flush time.
REG_KERNEL = 0
REG_FALLBACK = 1
REG_BATCH = 2


class _LazyTable(dict):
    """Dict whose misses build-and-cache through the owning kernel."""

    __slots__ = ("_build",)

    def __init__(self, build):
        super().__init__()
        self._build = build

    def __missing__(self, key):
        value = self._build(key)
        self[key] = value
        return value


class BoundKernel:
    """The kernel-dispatch table of one :class:`ModelRunner`.

    ``entry`` replaces ``runner.on_event``; ``table[(op, site)]`` is the
    compiled kernel (or interpreted-fallback wrapper) for that pair,
    built lazily on first sight.  ``flush`` folds the deferred per-kernel
    cells back into the machine's block counts and the runner's event
    tally; callers that observe counters mid-run (the steady-state memo,
    ``runner.events``) flush first.
    """

    __slots__ = (
        "runner",
        "machine",
        "model",
        "table",
        "fused_table",
        "direct",
        "entry",
        "compiled",
        "kernel_events",
        "fallback_events",
        "batch_enabled",
        "batch_events",
        "superblocks",
        "batch",
        "sb_table",
        "_regs",
    )

    def __init__(self, runner, use_batch: bool | None = None):
        self.runner = runner
        self.machine = runner.machine
        self.model = runner.model
        self.compiled = 0
        self.kernel_events = 0
        self.fallback_events = 0
        self._regs: list = []
        self.table = _LazyTable(self._build)
        self.fused_table = _LazyTable(self._build_fused)
        #: True when events feed ``table`` directly (no fusion buffer);
        #: the replay loops use this to skip even the entry call.
        self.direct = not runner._is_superinst
        self.entry = self._on_event if self.direct else self._on_event_buffered
        # Batch (superblock) replay rides on the direct kernel table: the
        # fusion-buffered strategies reorder events through the pending
        # slot, which the columnar executor cannot replicate.
        self.batch_events = 0
        self.superblocks = 0
        self.batch = None
        self.sb_table = None
        if self.direct:
            from repro.native.batch import batch_enabled

            self.batch_enabled = batch_enabled(use_batch)
        else:
            self.batch_enabled = False

    # -- event entry points ----------------------------------------------------

    def _on_event(self, op, site, taken, callee, daddrs, builtin, cost):
        self.table[op, site](taken, callee, daddrs, builtin, cost)

    def _on_event_buffered(self, op, site, taken, callee, daddrs, builtin, cost):
        """Mirror of ``ModelRunner._on_event_buffered`` driving kernels."""
        runner = self.runner
        event = (op, site, taken, callee, daddrs, builtin, cost)
        pending = runner._pending
        if pending is None:
            runner._pending = event
            return
        fused = self.fused_table[pending[0], op, pending[1]]
        if fused is not None:
            runner._pending = None
            fused(pending, event)
        else:
            runner._pending = event
            self.table[pending[0], pending[1]](
                pending[2], pending[3], pending[4], pending[5], pending[6]
            )

    # -- lazy builds -----------------------------------------------------------

    def _shape(self) -> tuple:
        runner = self.runner
        machine = self.machine
        # A None BTB signature (multi-level, xor-indexed or pLRU buffers)
        # keeps every BTB-touching event a Machine method call — the
        # specializers only open-code single-level mod-indexed lru/rr.
        btb_sig = btb_inline_sig(machine.btb)
        btb_sets, btb_ways, btb_policy = (
            btb_sig if btb_sig is not None else (None, 0, None)
        )
        return (
            machine._issue_width,
            runner.context_switch_interval is not None,
            machine.icache._set_mask,
            machine.dcache.line_shift,
            machine.dcache._set_mask,
            kernel_predictor_sig(machine.predictor),
            btb_sets,
            machine.config.indirect_scheme,
            machine.scd.tables,
            machine.icache.ways,
            machine.dcache.ways,
            btb_ways,
            btb_policy,
            machine.itlb.entries,
        )

    def _build(self, key):
        op, site = key
        runner = self.runner
        try:
            compiled = _compiled_kernel(
                self.model.vm_kind, self.model.strategy, op, site, self._shape()
            )
        except Exception:
            compiled = None
        if compiled is None:
            return self._fallback(op, site)
        make, refs, pairs, deferred, weight, dstats = compiled
        kernel, cell = make(runner, self.machine, refs)
        self._regs.append((cell, pairs, deferred, weight, REG_KERNEL, dstats))
        self.compiled += 1
        obs.event(
            "kernel_compile",
            vm=self.model.vm_kind, strategy=self.model.strategy,
            op=op, site=site,
        )
        return kernel

    def _build_fused(self, key):
        op_a, op_b, site = key
        if (op_a, op_b) not in self.model.fused:
            return None
        runner = self.runner
        resolved = site if site in self.model.dispatchers else 0
        try:
            compiled = _compiled_fused(
                self.model.vm_kind, self.model.strategy,
                op_a, op_b, resolved, self._shape(),
            )
        except Exception:
            compiled = None
        if compiled is None:
            return self._fallback_fused(op_a, op_b)
        make, refs, pairs, deferred, weight, dstats = compiled
        kernel, cell = make(runner, self.machine, refs)
        self._regs.append((cell, pairs, deferred, weight, REG_KERNEL, dstats))
        self.compiled += 1
        obs.event(
            "kernel_compile",
            vm=self.model.vm_kind, strategy=self.model.strategy,
            op=op_a, fused_with=op_b, site=site,
        )
        return kernel

    def _fallback(self, op, site):
        """Interpreted-path wrapper counted as fallback events."""
        cell = [0]
        self._regs.append((cell, (), 0, 1, REG_FALLBACK, None))
        replay = self.runner._replay
        obs.event(
            "kernel_fallback",
            vm=self.model.vm_kind, strategy=self.model.strategy,
            op=op, site=site,
        )

        def fallback(taken, callee, daddrs, builtin, cost):
            cell[0] += 1
            replay(op, site, taken, callee, daddrs, builtin, cost)

        return fallback

    def _fallback_fused(self, op_a, op_b):
        cell = [0]
        self._regs.append((cell, (), 0, 2, REG_FALLBACK, None))
        runner = self.runner
        fused_rt = self.model.fused[(op_a, op_b)]

        def fallback(first, second):
            cell[0] += 1
            runner._replay_fused(first, second, fused_rt)

        return fallback

    # -- deferred accounting ---------------------------------------------------

    def register_cell(
        self, cell, pairs, deferred, weight, kind, dstats
    ) -> None:
        """Register a deferred counter cell for :meth:`flush`.

        The batch superblock compiler registers its per-sequence cells
        here (kind :data:`REG_BATCH`) so memo boundaries and finish()
        fold them exactly like single-event kernel cells.
        """
        self._regs.append((cell, pairs, deferred, weight, kind, dstats))

    def flush(self) -> None:
        """Fold every pending counter cell into the machine and runner."""
        machine = self.machine
        stats = machine.stats
        counts = machine._block_counts
        counts_get = counts.get
        deferred_events = 0
        for cell, pairs, deferred, weight, kind, dstats in self._regs:
            n = cell[0]
            if not n:
                continue
            cell[0] = 0
            deferred_events += n * deferred
            if kind == REG_KERNEL:
                self.kernel_events += n * weight
            elif kind == REG_FALLBACK:
                self.fallback_events += n * weight
            else:
                self.batch_events += n * weight
            if dstats is not None:
                ic_acc, dc_acc, cycles, branches, ijumps = dstats[:5]
                if ic_acc:
                    machine.icache.accesses += n * ic_acc
                if dc_acc:
                    machine.dcache.accesses += n * dc_acc
                    stats.dcache_accesses += n * dc_acc
                if cycles:
                    stats.cycles += n * cycles
                if branches:
                    stats.branches += n * branches
                if ijumps:
                    stats.indirect_jumps += n * ijumps
                if len(dstats) > 5:
                    # Batch superblocks additionally defer unconditional
                    # TLB access counts.
                    itlb_acc, dtlb_acc = dstats[5:]
                    if itlb_acc:
                        machine.itlb.accesses += n * itlb_acc
                    if dtlb_acc:
                        machine.dtlb.accesses += n * dtlb_acc
            for block, mult in pairs:
                counts[block] = counts_get(block, 0) + n * mult
        if deferred_events:
            self.runner._events += deferred_events
