"""Native-code description of the Lua-like interpreter.

Dispatcher assembly follows the paper exactly: the baseline is Figure 1(b)
(fetch / decode / bound check / target-calculation + indirect jump, preceded
by the loop-header housekeeping that real interpreters carry), the SCD
version is Figure 4 (``ldl.op`` fetch + ``bop`` fast path, slow path ending
in ``jru``), and jump threading replicates the dispatch tail into every
handler per Figure 1(c).

Handler instruction mixes approximate Lua 5.3's ``lvm.c`` handler sizes when
compiled ``-O3`` for a RISC target: short register moves, type-checked
arithmetic around 30 instructions, hash-table opcodes in the 40s, and frame
setup/teardown (CALL/RETURN) around 100/70 with a host call to a
``luaD_precall``-style helper.
"""

from __future__ import annotations

from repro.native.specs import HandlerSpec
from repro.vm.lua.opcodes import NUM_OPCODES, Op

#: ``setmask`` value for the Lua interpreter (Section III-A).
LUA_OPCODE_MASK = 0x3F

#: Hot-chunk / inline-cold-region sizes for generated handler code.  Dense
#: interleaving (a branch roughly every 7 hot instructions, with sizeable
#: metamethod/error fallback regions in between) matches ``gcc -O3`` output
#: for ``lvm.c`` and gives each hot handler a realistic multi-line I-cache
#: footprint — the property that puts the 16 KB I-cache on a knife edge
#: under jump threading's replicated tails (Figure 10).
CHUNK_INSTS = 7
COLD_INSTS = 28

#: Single dispatch site (the paper applies one ``.op`` suffix to Lua).
LUA_SITES = (0,)

# Baseline dispatcher: loop header (4) + Figure 1(b)'s 13 instructions.
BASELINE_DISPATCHER = """
.category dispatch
LoopHead_0:
    ldq  r14, 0(r13)        # reload VM state pointer
    and  r14, r14, r14      # hook/trap-flag check (folded)
    cmpeq r14, 0, r12
    add  r13, 0, r13
Fetch_0:
    ldq  r5, 40(r14)        # r5 = VM.pc
    ldl  r9, 0(r5)          # r9 = *VM.pc  (the bytecode)
    lda  r5, 4(r5)          # VM.pc++
    stq  r5, 40(r14)
Decode_0:
    and  r9, 63, r2         # opcode = bytecode & 0x3F
Bound_0:
    cmpule r2, 46, r1       # bound check against NUM_OPCODES-1
    beq  r1, OpError_0
Calc_0:
    ldah r7, 16(r3)         # jump-table base (high)
    lda  r7, 8(r7)          # jump-table base (low)
    s4addq r2, r7, r2       # entry address
    ldl  r1, 0(r2)          # load target offset
    addq r3, r1, r1         # absolute handler address
    jmp  (r1)               # indirect dispatch jump
OpError_0:
    ret
"""

# SCD dispatcher: Figure 4.  Fast path is LoopHead+Fetch(+.op)+bop; the slow
# path re-runs decode/bound/target-calc and installs the JTE via jru.
SCD_DISPATCHER = """
.category dispatch
LoopHead_0:
    ldq  r14, 0(r13)
    and  r14, r14, r14
    cmpeq r14, 0, r12
    add  r13, 0, r13
Fetch_0:
    ldq  r5, 40(r14)
    ldl.op r9, 0(r5)        # fetch bytecode and deposit masked opcode in Rop
    lda  r5, 4(r5)
    stq  r5, 40(r14)
Bop_0:
    bop                     # BTB lookup keyed by Rop.d
Decode_0:
    and  r9, 63, r2
Bound_0:
    cmpule r2, 46, r1
    beq  r1, OpError_0
Calc_0:
    ldah r7, 16(r3)
    lda  r7, 8(r7)
    s4addq r2, r7, r2
    ldl  r1, 0(r2)
    addq r3, r1, r1
    jru  (r1)               # jump and install (Rop.d -> target) JTE
OpError_0:
    ret
"""

# Jump-threaded dispatch tail, replicated at the end of every handler
# (Figure 1(c)).  No bound check; the loop-header housekeeping and the
# label-array indirection remain (Labels-as-Values keeps the same vmfetch
# macro), so the per-iteration saving is the bound check plus the shared
# back-jump — matching Table IV's ~4.8% instruction saving.
THREADED_TAIL = """.category dispatch
{name}_T:
    ldq  r14, 0(r13)
    and  r14, r14, r14
    cmpeq r14, 0, r12
    add  r13, 0, r13
    ldq  r5, 40(r14)
    ldl  r9, 0(r5)
    lda  r5, 4(r5)
    stq  r5, 40(r14)
    and  r9, 63, r2
    ldah r7, 16(r3)
    lda  r7, 8(r7)
    s4addq r2, r7, r2
    ldl  r1, 0(r2)
    addq r3, r1, r1
    jmp  (r1)
"""

#: Handler instruction-mix table: one spec per Lua 5.3 opcode.  Opcodes the
#: scriptlet compiler never emits still get handlers — they occupy I-cache
#: space in the real interpreter too.
HANDLER_SPECS: dict[int, HandlerSpec] = {
    Op.MOVE: HandlerSpec(alu=9, loads=3, stores=2),
    Op.LOADK: HandlerSpec(alu=7, loads=3, stores=2),
    Op.LOADKX: HandlerSpec(alu=7, loads=3, stores=2),
    Op.LOADBOOL: HandlerSpec(alu=7, loads=1, stores=2),
    Op.LOADNIL: HandlerSpec(alu=7, loads=1, stores=2),
    Op.GETUPVAL: HandlerSpec(alu=8, loads=4, stores=2),
    Op.GETTABUP: HandlerSpec(alu=22, loads=10, stores=4),
    Op.GETTABLE: HandlerSpec(alu=26, loads=12, stores=4),
    Op.SETTABUP: HandlerSpec(alu=24, loads=10, stores=6),
    Op.SETUPVAL: HandlerSpec(alu=8, loads=3, stores=3),
    Op.SETTABLE: HandlerSpec(alu=28, loads=12, stores=6),
    Op.NEWTABLE: HandlerSpec(alu=50, loads=14, stores=16),
    Op.SELF: HandlerSpec(alu=26, loads=10, stores=4),
    Op.ADD: HandlerSpec(alu=22, loads=5, stores=3),
    Op.SUB: HandlerSpec(alu=22, loads=5, stores=3),
    Op.MUL: HandlerSpec(alu=22, loads=5, stores=3),
    Op.MOD: HandlerSpec(alu=28, loads=5, stores=3),
    Op.POW: HandlerSpec(alu=34, loads=5, stores=3),
    Op.DIV: HandlerSpec(alu=26, loads=5, stores=3),
    Op.IDIV: HandlerSpec(alu=28, loads=5, stores=3),
    Op.BAND: HandlerSpec(alu=18, loads=4, stores=3),
    Op.BOR: HandlerSpec(alu=18, loads=4, stores=3),
    Op.BXOR: HandlerSpec(alu=18, loads=4, stores=3),
    Op.SHL: HandlerSpec(alu=20, loads=4, stores=3),
    Op.SHR: HandlerSpec(alu=20, loads=4, stores=3),
    Op.UNM: HandlerSpec(alu=12, loads=3, stores=3),
    Op.BNOT: HandlerSpec(alu=12, loads=3, stores=3),
    Op.NOT: HandlerSpec(alu=10, loads=3, stores=3),
    Op.LEN: HandlerSpec(alu=14, loads=5, stores=3),
    Op.CONCAT: HandlerSpec(alu=28, loads=8, stores=6, has_work_loop=True),
    Op.JMP: HandlerSpec(alu=6, loads=1, stores=1),
    Op.EQ: HandlerSpec(alu=18, loads=5, stores=0, guest_branch=True, taken_extra=3),
    Op.LT: HandlerSpec(alu=16, loads=5, stores=0, guest_branch=True, taken_extra=3),
    Op.LE: HandlerSpec(alu=16, loads=5, stores=0, guest_branch=True, taken_extra=3),
    Op.TEST: HandlerSpec(alu=10, loads=3, stores=0, guest_branch=True, taken_extra=3),
    Op.TESTSET: HandlerSpec(alu=12, loads=3, stores=2, guest_branch=True, taken_extra=3),
    Op.CALL: HandlerSpec(alu=48, loads=16, stores=14, calls_out=True),
    Op.TAILCALL: HandlerSpec(alu=44, loads=14, stores=12, calls_out=True),
    Op.RETURN: HandlerSpec(alu=44, loads=14, stores=12),
    Op.FORLOOP: HandlerSpec(alu=14, loads=4, stores=4, guest_branch=True, taken_extra=4),
    Op.FORPREP: HandlerSpec(alu=12, loads=4, stores=4),
    Op.TFORCALL: HandlerSpec(alu=40, loads=12, stores=10, calls_out=True),
    Op.TFORLOOP: HandlerSpec(alu=12, loads=4, stores=4, guest_branch=True),
    Op.SETLIST: HandlerSpec(alu=16, loads=6, stores=8, has_work_loop=True),
    Op.CLOSURE: HandlerSpec(alu=56, loads=16, stores=16),
    Op.VARARG: HandlerSpec(alu=20, loads=8, stores=8),
    Op.EXTRAARG: HandlerSpec(alu=3, loads=0, stores=0),
}

assert len(HANDLER_SPECS) == NUM_OPCODES


#: Bytecode pairs fused into superinstructions (Ertl & Gregg; Related
#: Work).  Selected by dynamic pair profiling of the Table III workloads
#: (see repro.vm.profile), restricted to straight-line handlers:
#: branchy/call/variable-cost opcodes cannot be fused without
#: duplicating continuation logic.
FUSED_PAIRS: tuple = (
    (Op.MUL, Op.ADD),
    (Op.GETTABUP, Op.SUB),
    (Op.GETTABUP, Op.MUL),
    (Op.GETTABUP, Op.GETTABUP),
    (Op.GETTABUP, Op.GETTABLE),
    (Op.JMP, Op.GETTABUP),
    (Op.ADD, Op.ADD),
    (Op.MUL, Op.MUL),
    (Op.ADD, Op.JMP),
    (Op.GETTABUP, Op.MOVE),
    (Op.GETTABUP, Op.ADD),
    (Op.MOVE, Op.MOVE),
    (Op.GETTABLE, Op.ADD),
    (Op.ADD, Op.SETTABLE),
    (Op.SUB, Op.GETTABLE),
    (Op.SETTABLE, Op.GETTABUP),
)


def handler_name(op: int) -> str:
    return f"H_{Op(op).name}"


def dispatcher_text(strategy: str) -> str:
    """Dispatcher assembly for *strategy* ("baseline"/"threaded" share)."""
    if strategy == "scd":
        return SCD_DISPATCHER
    return BASELINE_DISPATCHER


def handler_tail(strategy: str) -> str:
    """The tail each handler ends with under *strategy*."""
    if strategy == "threaded":
        return "br {name}_T"
    return "br LoopHead_0"
