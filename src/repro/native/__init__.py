"""Native (host-instruction) model of each interpreter.

The paper's measurements are properties of the interpreter's *native* code:
how many host instructions the dispatch loop burns per bytecode, where its
branches live, how big the code footprint is.  This package materialises
that native code in the ember host ISA:

* hand-written dispatcher assembly following Figure 1(b) (baseline switch
  dispatch), Figure 1(c) (jump threading) and Figure 4 (SCD transform);
* per-opcode handler code generated from instruction-mix specs
  (:mod:`repro.native.specs`);
* builtin stubs whose size scales with the work the builtin does;
* a :class:`~repro.native.model.NativeInterpreterModel` that lays all of it
  out in one address space and replays VM trace events onto a
  :class:`~repro.uarch.pipeline.Machine`.
"""

from repro.native.specs import HandlerSpec, generate_handler_asm, generate_stub_asm
from repro.native.model import (
    NativeInterpreterModel,
    ModelRunner,
    DISPATCH_STRATEGIES,
)

__all__ = [
    "HandlerSpec",
    "generate_handler_asm",
    "generate_stub_asm",
    "NativeInterpreterModel",
    "ModelRunner",
    "DISPATCH_STRATEGIES",
]
