"""Handler and builtin-stub code generation from instruction-mix specs.

A :class:`HandlerSpec` describes one bytecode handler the way a profile of
the real interpreter would: how many ALU operations, loads and stores its
body executes, whether it contains a guest-conditional host branch (the
comparison/branch bytecodes), and whether part of its work scales with the
operand (CONCAT, SETLIST, builtin calls).

Generated handlers model the *layout* of compiler output without
profile-guided hot/cold splitting: the hot path is broken into chunks, each
followed by an inline cold region (type-error and metamethod fallback code)
that the hot path jumps over with an always-taken forward branch.  This is
what ``gcc -O3`` emits for ``lvm.c``-style handlers and it matters: the hot
path *touches* many more I-cache lines than its executed instruction count
suggests, which is precisely why jump threading's replicated dispatch tails
overflow a 16 KB embedded I-cache (paper Figure 10) while the baseline just
fits.

Block naming contract (used by :mod:`repro.native.model` at replay time):

* ``{name}`` — first hot chunk; junction branches ``bne .., {name}_hN``
  chain the remaining chunks.
* ``{name}_w`` / ``{name}_x`` — work-loop body and exit (size-dependent
  handlers).
* ``{name}_nt`` / ``{name}_tk`` — fall-through / taken sides of the guest
  branch.
* ``{name}_r`` — post-call return block (``calls_out`` handlers).
* ``B_{name}`` / ``B_{name}_w`` / ``B_{name}_x`` — builtin stub blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Instructions per iteration of a handler's dynamic work loop.
WORK_LOOP_INSTS = 8
#: Loads / stores per work-loop iteration.
WORK_LOOP_LOADS = 2
WORK_LOOP_STORES = 1

#: Hot instructions per chunk before an inline cold region interrupts.
DEFAULT_CHUNK = 10
#: Cold (never-executed) instructions per inline region.
DEFAULT_COLD = 12


@dataclass(frozen=True)
class HandlerSpec:
    """Static instruction mix of one bytecode handler body.

    Attributes:
        alu: ALU/move instructions in the handler body (prologue operand
            extraction included).
        loads / stores: memory instructions in the body.
        guest_branch: True when the handler contains a conditional host
            branch whose direction is the guest-level outcome (EQ/LT/TEST/
            FORLOOP in Lua; IFEQ/IFNE/AND/OR in JS).
        taken_extra: extra ALU instructions on the taken side of the guest
            branch (virtual-PC adjustment).
        has_work_loop: True when part of the handler's work scales with the
            data (CONCAT, SETLIST, NEWARRAY, builtin dispatch).
        calls_out: True when the handler performs a host call (the CALL
            bytecode's ``luaD_precall``-style helper; builtins run inside
            the called stub).
    """

    alu: int = 8
    loads: int = 2
    stores: int = 1
    guest_branch: bool = False
    taken_extra: int = 2
    has_work_loop: bool = False
    calls_out: bool = False

    @property
    def body_insts(self) -> int:
        return self.alu + self.loads + self.stores


_ALU_PATTERN = (
    "add r3, r4, r5",
    "and r5, 255, r6",
    "sll r6, 4, r7",
    "lda r7, 8(r7)",
    "cmplt r3, r7, r8",
    "xor r5, r6, r9",
    "srl r9, 2, r10",
    "sub r10, r4, r11",
)

_COLD_PATTERN = (
    "lda r16, 0(r13)",
    "stq r9, 16(r16)",
    "ldq r17, 24(r16)",
    "add r17, 8, r17",
    "sub r17, r4, r18",
    "and r18, 7, r18",
)


def _body_lines(alu: int, loads: int, stores: int) -> list[str]:
    """Interleave ALU, load and store instructions realistically."""
    lines: list[str] = []
    total = alu + loads + stores
    remaining = {"alu": alu, "load": loads, "store": stores}
    for position in range(total):
        if remaining["load"] and position % 4 == 1:
            kind = "load"
        elif remaining["store"] and position % 6 == 5:
            kind = "store"
        elif remaining["alu"]:
            kind = "alu"
        else:
            kind = max(remaining, key=lambda k: remaining[k])
        if not remaining[kind]:
            kind = max(remaining, key=lambda k: remaining[k])
        remaining[kind] -= 1
        if kind == "alu":
            lines.append(_ALU_PATTERN[position % len(_ALU_PATTERN)])
        elif kind == "load":
            lines.append(f"ldq r{12 + position % 8}, {8 * (position % 6)}(r14)")
        else:
            lines.append(f"stq r{12 + position % 8}, {8 * (position % 6)}(r15)")
    return lines


def _cold_lines(count: int) -> list[str]:
    lines = [_COLD_PATTERN[i % len(_COLD_PATTERN)] for i in range(count - 1)]
    lines.append("ret")  # cold paths end in an error/fallback return
    return lines


def _chunked_body(
    name: str,
    alu: int,
    loads: int,
    stores: int,
    chunk: int,
    cold: int,
) -> list[str]:
    """Hot body split into chunks with inline cold regions between them.

    Each junction is an always-taken forward branch (``bne``) over the cold
    region; the executed junction instructions are deducted from the ALU
    budget so the spec's total executed count is preserved.
    """
    body = _body_lines(alu, loads, stores)
    if chunk <= 0 or len(body) <= chunk + 2:
        return body
    lines: list[str] = []
    index = 0
    junction = 0
    while index < len(body):
        lines += body[index : index + chunk]
        index += chunk
        if index < len(body) - 2:
            body.pop()  # the junction branch replaces one body instruction
            junction += 1
            label = f"{name}_h{junction}"
            lines.append(f"bne r2, {label}")
            lines += _cold_lines(cold)
            lines.append(f"{label}:")
    return lines


def generate_handler_asm(
    name: str,
    spec: HandlerSpec,
    tail: str,
    loop_label: str = "LoopHead_0",
    chunk: int = DEFAULT_CHUNK,
    cold: int = DEFAULT_COLD,
) -> str:
    """Expand *spec* into an assembly fragment for handler *name*.

    Args:
        name: handler label, e.g. ``H_ADD``.
        spec: instruction mix.
        tail: dispatch tail appended after the body, with ``{loop}`` and
            ``{name}`` placeholders (``"br {loop}"`` for shared-dispatcher
            strategies, ``"br {name}_T"`` for jump threading).
        loop_label: label of the shared dispatcher.
        chunk / cold: hot-chunk and inline-cold-region sizes.
    """
    lines = [f"{name}:", ".category handler"]
    tail_text = tail.format(loop=loop_label, name=name)

    if spec.calls_out:
        lines += _chunked_body(name, spec.alu, spec.loads, spec.stores, chunk, cold)
        lines.append("callr (r6)")
        lines.append(f"{name}_r:")
        lines += _body_lines(4, 1, 1)
        lines.append(tail_text)
        return "\n".join(lines) + "\n"

    if spec.has_work_loop:
        lines += _chunked_body(name, spec.alu, spec.loads, spec.stores, chunk, cold)
        lines.append(f"{name}_w:")
        lines += _body_lines(
            WORK_LOOP_INSTS - WORK_LOOP_LOADS - WORK_LOOP_STORES - 1,
            WORK_LOOP_LOADS,
            WORK_LOOP_STORES,
        )
        lines.append(f"bne r8, {name}_w")
        lines.append(f"{name}_x:")
        lines.append("add r3, r4, r5")
        lines.append(tail_text)
        return "\n".join(lines) + "\n"

    if spec.guest_branch:
        # The not-taken side writes the result (3 instructions), paid for
        # out of the body budget so executed counts match the spec.
        lines += _chunked_body(
            name,
            max(1, spec.alu - 2),
            spec.loads,
            max(0, spec.stores - 1),
            chunk,
            cold,
        )
        lines.append(f"beq r8, {name}_tk")
        lines.append(f"{name}_nt:")
        lines += _body_lines(2, 0, 1)
        lines.append(tail_text)
        lines.append(f"{name}_tk:")
        lines += _body_lines(spec.taken_extra, 0, 0)
        lines.append(tail_text)
        return "\n".join(lines) + "\n"

    lines += _chunked_body(name, spec.alu, spec.loads, spec.stores, chunk, cold)
    lines.append(tail_text)
    return "\n".join(lines) + "\n"


def generate_stub_asm(name: str, chunk: int = DEFAULT_CHUNK, cold: int = DEFAULT_COLD) -> str:
    """Builtin stub: chunked entry, variable work loop, return.

    The dynamic cost of a builtin call (from
    :func:`repro.vm.builtins.builtin_cost`) is converted into work-loop
    iterations at replay time.
    """
    label = f"B_{name}"
    lines = [f"{label}:", ".category builtin"]
    lines += _chunked_body(label, 12, 3, 2, chunk, cold)
    lines.append(f"{label}_w:")
    lines += _body_lines(
        WORK_LOOP_INSTS - WORK_LOOP_LOADS - WORK_LOOP_STORES - 1,
        WORK_LOOP_LOADS,
        WORK_LOOP_STORES,
    )
    lines.append(f"bne r8, {label}_w")
    lines.append(f"{label}_x:")
    lines += _body_lines(4, 1, 1)
    lines.append("ret")
    return "\n".join(lines) + "\n"


def work_loop_iterations(cost_insts: int) -> int:
    """Iterations of the work loop needed to model *cost_insts* of work."""
    if cost_insts <= 0:
        return 0
    return max(0, (cost_insts + WORK_LOOP_INSTS - 1) // WORK_LOOP_INSTS)
