"""Scriptlet sources for the 11 Table III benchmarks.

Each source is a template with ``@N@`` replaced by the input parameter.
The algorithms are the Computer Language Benchmarks Game versions the paper
uses, scaled to Python-cycle-model-friendly inputs.  ``pidigits`` relies on
the VMs' arbitrary-precision integers (streaming spigot), exactly as the
paper's Lua build relied on a bignum-capable interpreter.
"""

BINARY_TREES = """
fn make_tree(d) {
    if (d == 0) { return [nil, nil]; }
    return [make_tree(d - 1), make_tree(d - 1)];
}
fn check_tree(t) {
    if (t[0] == nil) { return 1; }
    return 1 + check_tree(t[0]) + check_tree(t[1]);
}
fn pow2(n) {
    var r = 1;
    for i = 1, n { r = r * 2; }
    return r;
}
var maxd = @N@;
var stretch = make_tree(maxd + 1);
print("stretch tree of depth " .. (maxd + 1) .. "\\t check: " .. check_tree(stretch));
var longlived = make_tree(maxd);
for d = 2, maxd, 2 {
    var iterations = pow2(maxd - d + 2);
    var check = 0;
    for i = 1, iterations {
        check = check + check_tree(make_tree(d));
    }
    print(iterations .. "\\t trees of depth " .. d .. "\\t check: " .. check);
}
print("long lived tree of depth " .. maxd .. "\\t check: " .. check_tree(longlived));
"""

FANNKUCH_REDUX = """
fn fannkuch(n) {
    var perm1 = [];
    var perm = [];
    var count = [];
    for i = 0, n - 1 {
        perm1[i] = i;
        perm[i] = 0;
        count[i] = 0;
    }
    var maxflips = 0;
    var checksum = 0;
    var permcount = 0;
    var r = n;
    var done = false;
    while (not done) {
        while (r != 1) {
            count[r - 1] = r;
            r = r - 1;
        }
        for i = 0, n - 1 { perm[i] = perm1[i]; }
        var flips = 0;
        var k = perm[0];
        while (k != 0) {
            var i = 0;
            var j = k;
            while (i < j) {
                var t = perm[i];
                perm[i] = perm[j];
                perm[j] = t;
                i = i + 1;
                j = j - 1;
            }
            flips = flips + 1;
            k = perm[0];
        }
        if (flips > maxflips) { maxflips = flips; }
        if (permcount % 2 == 0) { checksum = checksum + flips; }
        else { checksum = checksum - flips; }
        var advanced = false;
        while (not advanced) {
            if (r == n) {
                done = true;
                advanced = true;
            } else {
                var p0 = perm1[0];
                for i = 0, r - 1 { perm1[i] = perm1[i + 1]; }
                perm1[r] = p0;
                count[r] = count[r] - 1;
                if (count[r] > 0) { advanced = true; }
                else { r = r + 1; }
            }
        }
        permcount = permcount + 1;
    }
    print(checksum);
    print("Pfannkuchen(" .. n .. ") = " .. maxflips);
}
fannkuch(@N@);
"""

K_NUCLEOTIDE = """
fn gen_dna(n) {
    var seed = 42;
    var bases = "ACGT";
    var s = "";
    for i = 1, n {
        seed = (seed * 3877 + 29573) % 139968;
        s = s .. substr(bases, seed % 4, 1);
    }
    return s;
}
fn count_kmers(s, k) {
    var counts = {};
    var last = len(s) - k;
    for i = 0, last {
        var kmer = substr(s, i, k);
        var c = counts[kmer];
        if (c == nil) { counts[kmer] = 1; }
        else { counts[kmer] = c + 1; }
    }
    return counts;
}
fn report(counts, total) {
    var ks = keys(counts);
    for i = 0, len(ks) - 1 {
        print(ks[i] .. " " .. counts[ks[i]]);
    }
}
var dna = gen_dna(@N@);
var c1 = count_kmers(dna, 1);
report(c1, len(dna));
var c2 = count_kmers(dna, 2);
report(c2, len(dna) - 1);
var c3 = count_kmers(dna, 3);
print("GGT count: " .. tostring(c3["GGT"]));
"""

MANDELBROT = """
var size = @N@;
var maxiter = 50;
var inside_count = 0;
var bit_acc = 0;
var acc = 0;
for y = 0, size - 1 {
    var ci = 2.0 * y / size - 1.0;
    for x = 0, size - 1 {
        var cr = 2.0 * x / size - 1.5;
        var zr = 0.0;
        var zi = 0.0;
        var i = 0;
        var inside = true;
        while (i < maxiter) {
            var zr2 = zr * zr;
            var zi2 = zi * zi;
            if (zr2 + zi2 > 4.0) { inside = false; break; }
            zi = 2.0 * zr * zi + ci;
            zr = zr2 - zi2 + cr;
            i = i + 1;
        }
        bit_acc = bit_acc * 2;
        if (inside) {
            inside_count = inside_count + 1;
            bit_acc = bit_acc + 1;
        }
        if ((x + 1) % 8 == 0) {
            acc = acc + bit_acc;
            bit_acc = 0;
        }
    }
    acc = acc + bit_acc;
    bit_acc = 0;
}
print("P4");
print(size .. " " .. size);
print("inside: " .. inside_count .. " acc: " .. acc);
"""

N_BODY = """
var PI = 3.141592653589793;
var SOLAR_MASS = 4.0 * PI * PI;
var DAYS = 365.24;
var x = [0.0, 4.84143144246472090, 8.34336671824457987, 12.894369562139131, 15.379697114850917];
var y = [0.0, -1.16032004402742839, 4.12479856412430479, -15.111151401698631, -25.919314609987964];
var z = [0.0, -0.103622044471123109, -0.403523417114321381, -0.223307578892655734, 0.179258772950371181];
var vx = [0.0, 0.00166007664274403694, -0.00276742510726862411, 0.00296460137564761618, 0.00268067772490389322];
var vy = [0.0, 0.00769901118419740425, 0.00499852801234917238, 0.00237847173959480950, 0.00162824170038242295];
var vz = [0.0, -0.0000690460016972063023, 0.0000230417297573763929, -0.0000296589568540237556, -0.0000951592254519715870];
var mass = [1.0, 0.000954791938424326609, 0.000285885980666130812, 0.0000436624404335156298, 0.0000515138902046611451];
var nb = 5;
fn scale_units() {
    for i = 0, nb - 1 {
        vx[i] = vx[i] * DAYS;
        vy[i] = vy[i] * DAYS;
        vz[i] = vz[i] * DAYS;
        mass[i] = mass[i] * SOLAR_MASS;
    }
    var px = 0.0;
    var py = 0.0;
    var pz = 0.0;
    for i = 0, nb - 1 {
        px = px + vx[i] * mass[i];
        py = py + vy[i] * mass[i];
        pz = pz + vz[i] * mass[i];
    }
    vx[0] = 0.0 - px / SOLAR_MASS;
    vy[0] = 0.0 - py / SOLAR_MASS;
    vz[0] = 0.0 - pz / SOLAR_MASS;
}
fn energy() {
    var e = 0.0;
    for i = 0, nb - 1 {
        e = e + 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
        for j = i + 1, nb - 1 {
            var dx = x[i] - x[j];
            var dy = y[i] - y[j];
            var dz = z[i] - z[j];
            e = e - mass[i] * mass[j] / sqrt(dx * dx + dy * dy + dz * dz);
        }
    }
    return e;
}
fn advance(dt) {
    for i = 0, nb - 1 {
        for j = i + 1, nb - 1 {
            var dx = x[i] - x[j];
            var dy = y[i] - y[j];
            var dz = z[i] - z[j];
            var d2 = dx * dx + dy * dy + dz * dz;
            var mag = dt / (d2 * sqrt(d2));
            vx[i] = vx[i] - dx * mass[j] * mag;
            vy[i] = vy[i] - dy * mass[j] * mag;
            vz[i] = vz[i] - dz * mass[j] * mag;
            vx[j] = vx[j] + dx * mass[i] * mag;
            vy[j] = vy[j] + dy * mass[i] * mag;
            vz[j] = vz[j] + dz * mass[i] * mag;
        }
    }
    for i = 0, nb - 1 {
        x[i] = x[i] + dt * vx[i];
        y[i] = y[i] + dt * vy[i];
        z[i] = z[i] + dt * vz[i];
    }
}
scale_units();
print(energy());
for step = 1, @N@ {
    advance(0.01);
}
print(energy());
"""

SPECTRAL_NORM = """
fn A(i, j) {
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}
fn mulAv(n, v, av) {
    for i = 0, n - 1 {
        var s = 0.0;
        for j = 0, n - 1 { s = s + A(i, j) * v[j]; }
        av[i] = s;
    }
}
fn mulAtv(n, v, atv) {
    for i = 0, n - 1 {
        var s = 0.0;
        for j = 0, n - 1 { s = s + A(j, i) * v[j]; }
        atv[i] = s;
    }
}
fn mulAtAv(n, v, out, tmp) {
    mulAv(n, v, tmp);
    mulAtv(n, tmp, out);
}
var n = @N@;
var u = [];
var v = [];
var tmp = [];
for i = 0, n - 1 {
    u[i] = 1.0;
    v[i] = 0.0;
    tmp[i] = 0.0;
}
for i = 1, 10 {
    mulAtAv(n, u, v, tmp);
    mulAtAv(n, v, u, tmp);
}
var vBv = 0.0;
var vv = 0.0;
for i = 0, n - 1 {
    vBv = vBv + u[i] * v[i];
    vv = vv + v[i] * v[i];
}
print(sqrt(vBv / vv));
"""

N_SIEVE = """
fn nsieve(m) {
    var flags = [];
    for i = 0, m { flags[i] = true; }
    var count = 0;
    for i = 2, m {
        if (flags[i]) {
            count = count + 1;
            var k = i + i;
            while (k <= m) {
                flags[k] = false;
                k = k + i;
            }
        }
    }
    return count;
}
var m = @N@;
print("Primes up to " .. m .. " " .. nsieve(m));
print("Primes up to " .. (m // 2) .. " " .. nsieve(m // 2));
"""

RANDOM = """
var IM = 139968;
var IA = 3877;
var IC = 29573;
var seed = 42;
fn gen_random(maxv) {
    seed = (seed * IA + IC) % IM;
    return maxv * seed / IM;
}
var n = @N@;
var result = 0.0;
for i = 1, n {
    result = gen_random(100.0);
}
print(result);
"""

FIBO = """
fn fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
print(fib(@N@));
"""

ACKERMANN = """
fn ack(m, n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
print("Ack(3," .. @N@ .. "): " .. ack(3, @N@));
"""

PIDIGITS = """
var q = 1;
var r = 0;
var t = 1;
var k = 1;
var n = 3;
var l = 3;
var produced = 0;
var line = "";
var ndigits = @N@;
while (produced < ndigits) {
    if (4 * q + r - t < n * t) {
        line = line .. n;
        produced = produced + 1;
        if (produced % 10 == 0) {
            print(line .. "\\t:" .. produced);
            line = "";
        }
        var nr = 10 * (r - n * t);
        n = ((10 * (3 * q + r)) // t) - 10 * n;
        q = q * 10;
        r = nr;
    } else {
        var nr = (2 * q + r) * l;
        var nn = (q * (7 * k) + 2 + (r * l)) // (t * l);
        q = q * k;
        t = t * l;
        l = l + 2;
        k = k + 1;
        n = nn;
        r = nr;
    }
}
if (len(line) > 0) {
    print(line .. "\\t:" .. produced);
}
"""
