"""The paper's 11 benchmark scripts (Table III).

Each workload is written once in the scriptlet language and compiled to
both guest VMs.  Two input scales exist per benchmark, mirroring the
paper's "Simulator" and "FPGA" columns — scaled down (documented in
DESIGN.md / EXPERIMENTS.md) because the substrate here is a Python cycle
model, not a gem5 binary or an FPGA.  A pure-Python reference
implementation accompanies every workload so tests can check functional
correctness of both VMs against ground truth.
"""

from repro.workloads.registry import (
    Workload,
    WORKLOADS,
    workload,
    workload_names,
)
from repro.workloads.synthetic import (
    SyntheticWorkload,
    program_digest,
    synthesize,
)

__all__ = [
    "Workload",
    "WORKLOADS",
    "SyntheticWorkload",
    "program_digest",
    "synthesize",
    "workload",
    "workload_names",
]
