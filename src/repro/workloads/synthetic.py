"""Synthetic corpus workloads: generated programs wearing the Workload API.

The registry workloads (:mod:`repro.workloads.registry`) are the paper's
11 hand-written benchmarks; a corpus (:mod:`repro.corpus`) adds thousands
of generator-derived programs.  :class:`SyntheticWorkload` gives each of
those the same ``source(n, scale)`` surface as a registry
:class:`~repro.workloads.registry.Workload`, so harness code that only
needs source text treats both populations uniformly.  There is no
``reference`` oracle — corpus programs are validated cross-VM (both VMs
must print the same lines), not against Python ground truth.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def program_digest(source: str) -> str:
    """Content digest used by corpus manifests and integrity checks."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SyntheticWorkload:
    """One corpus program with a Workload-shaped surface.

    Attributes:
        name: corpus-unique program name (e.g. ``p00042``).
        stratum: opcode-mix stratum that generated it.
        size: generator size-profile name.
        seed: generator seed.
        source_text: rendered scriptlet source.
        digest: sha256 of ``source_text`` (manifest integrity anchor).
    """

    name: str
    stratum: str
    size: str
    seed: int
    source_text: str
    digest: str

    def source(self, n: int | None = None, scale: str = "sim") -> str:
        """Mirror :meth:`Workload.source`; *n*/*scale* are ignored
        (generated programs carry no ``@N@`` placeholder)."""
        return self.source_text

    @property
    def label(self) -> str:
        """Grid-key label: namespaced so corpus rows can never collide
        with registry workload names in shared caches or reports."""
        return f"corpus:{self.name}"


def synthesize(name: str, seed: int, size: str, stratum: str) -> SyntheticWorkload:
    """Deterministically (re)build one corpus program from its manifest row."""
    # Imported lazily: repro.workloads must stay importable from
    # repro.core.simulation, which sits below repro.verify.
    from repro.verify.generator import generate_program

    program = generate_program(seed, size, stratum=stratum)
    return SyntheticWorkload(
        name=name,
        stratum=program.stratum,
        size=size,
        seed=seed,
        source_text=program.source,
        digest=program_digest(program.source),
    )
