"""Workload registry: sources, input scales and Python reference outputs.

The reference implementations mirror the scriptlet sources operation for
operation (same arithmetic order, same formatting through
:func:`repro.vm.values.tostring`), so both guest VMs can be validated
against ground truth, not merely against each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.vm.values import tostring
from repro.workloads import sources


@dataclass(frozen=True)
class Workload:
    """One Table III benchmark.

    Attributes:
        name: benchmark name as in the paper.
        description: Table III's description column.
        template: scriptlet source with an ``@N@`` placeholder.
        sim_n: input for the "Simulator" configuration (scaled down).
        fpga_n: input for the "FPGA" configuration (scaled down, but kept
            strictly larger than ``sim_n`` as in the paper).
        reference: Python function computing the expected output lines.
    """

    name: str
    description: str
    template: str
    sim_n: int
    fpga_n: int
    reference: object

    def source(self, n: int | None = None, scale: str = "sim") -> str:
        if n is None:
            n = self.sim_n if scale == "sim" else self.fpga_n
        return self.template.replace("@N@", str(n))

    def expected_output(self, n: int | None = None, scale: str = "sim") -> list[str]:
        if n is None:
            n = self.sim_n if scale == "sim" else self.fpga_n
        return self.reference(n)


# -- reference implementations ------------------------------------------------


def _ref_binary_trees(maxd: int) -> list[str]:
    def make(d):
        if d == 0:
            return [None, None]
        return [make(d - 1), make(d - 1)]

    def check(t):
        if t[0] is None:
            return 1
        return 1 + check(t[0]) + check(t[1])

    out = []
    out.append(
        f"stretch tree of depth {maxd + 1}\t check: {check(make(maxd + 1))}"
    )
    longlived = make(maxd)
    for d in range(2, maxd + 1, 2):
        iterations = 2 ** (maxd - d + 2)
        total = sum(check(make(d)) for _ in range(iterations))
        out.append(f"{iterations}\t trees of depth {d}\t check: {total}")
    out.append(f"long lived tree of depth {maxd}\t check: {check(longlived)}")
    return out


def _ref_fannkuch(n: int) -> list[str]:
    perm1 = list(range(n))
    count = [0] * n
    maxflips = 0
    checksum = 0
    permcount = 0
    r = n
    while True:
        while r != 1:
            count[r - 1] = r
            r -= 1
        perm = perm1[:]
        flips = 0
        k = perm[0]
        while k != 0:
            perm[: k + 1] = perm[k::-1]
            flips += 1
            k = perm[0]
        maxflips = max(maxflips, flips)
        checksum += flips if permcount % 2 == 0 else -flips
        while True:
            if r == n:
                return [str(checksum), f"Pfannkuchen({n}) = {maxflips}"]
            p0 = perm1[0]
            perm1[:r] = perm1[1 : r + 1]
            perm1[r] = p0
            count[r] -= 1
            if count[r] > 0:
                break
            r += 1
        permcount += 1


def _ref_k_nucleotide(n: int) -> list[str]:
    seed = 42
    bases = "ACGT"
    chars = []
    for _ in range(n):
        seed = (seed * 3877 + 29573) % 139968
        chars.append(bases[seed % 4])
    dna = "".join(chars)

    def count_kmers(k):
        counts: dict[str, int] = {}
        for i in range(len(dna) - k + 1):
            kmer = dna[i : i + k]
            counts[kmer] = counts.get(kmer, 0) + 1
        return counts

    def sort_key(key):
        return (str(type(key)), str(key))

    out = []
    for k in (1, 2):
        counts = count_kmers(k)
        for key in sorted(counts, key=sort_key):
            out.append(f"{key} {counts[key]}")
    c3 = count_kmers(3)
    out.append(f"GGT count: {tostring(c3.get('GGT'))}")
    return out


def _ref_mandelbrot(size: int) -> list[str]:
    maxiter = 50
    inside_count = 0
    bit_acc = 0
    acc = 0
    for y in range(size):
        ci = 2.0 * y / size - 1.0
        for x in range(size):
            cr = 2.0 * x / size - 1.5
            zr = zi = 0.0
            inside = True
            for _ in range(maxiter):
                zr2 = zr * zr
                zi2 = zi * zi
                if zr2 + zi2 > 4.0:
                    inside = False
                    break
                zi = 2.0 * zr * zi + ci
                zr = zr2 - zi2 + cr
            bit_acc *= 2
            if inside:
                inside_count += 1
                bit_acc += 1
            if (x + 1) % 8 == 0:
                acc += bit_acc
                bit_acc = 0
        acc += bit_acc
        bit_acc = 0
    return ["P4", f"{size} {size}", f"inside: {inside_count} acc: {acc}"]


def _ref_n_body(steps: int) -> list[str]:
    PI = 3.141592653589793
    SOLAR_MASS = 4.0 * PI * PI
    DAYS = 365.24
    x = [0.0, 4.84143144246472090, 8.34336671824457987, 12.894369562139131, 15.379697114850917]
    y = [0.0, -1.16032004402742839, 4.12479856412430479, -15.111151401698631, -25.919314609987964]
    z = [0.0, -0.103622044471123109, -0.403523417114321381, -0.223307578892655734, 0.179258772950371181]
    vx = [0.0, 0.00166007664274403694, -0.00276742510726862411, 0.00296460137564761618, 0.00268067772490389322]
    vy = [0.0, 0.00769901118419740425, 0.00499852801234917238, 0.00237847173959480950, 0.00162824170038242295]
    vz = [0.0, -0.0000690460016972063023, 0.0000230417297573763929, -0.0000296589568540237556, -0.0000951592254519715870]
    mass = [1.0, 0.000954791938424326609, 0.000285885980666130812, 0.0000436624404335156298, 0.0000515138902046611451]
    nb = 5
    for i in range(nb):
        vx[i] = vx[i] * DAYS
        vy[i] = vy[i] * DAYS
        vz[i] = vz[i] * DAYS
        mass[i] = mass[i] * SOLAR_MASS
    px = py = pz = 0.0
    for i in range(nb):
        px = px + vx[i] * mass[i]
        py = py + vy[i] * mass[i]
        pz = pz + vz[i] * mass[i]
    vx[0] = 0.0 - px / SOLAR_MASS
    vy[0] = 0.0 - py / SOLAR_MASS
    vz[0] = 0.0 - pz / SOLAR_MASS

    def energy():
        e = 0.0
        for i in range(nb):
            e = e + 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i])
            for j in range(i + 1, nb):
                dx = x[i] - x[j]
                dy = y[i] - y[j]
                dz = z[i] - z[j]
                e = e - mass[i] * mass[j] / math.sqrt(dx * dx + dy * dy + dz * dz)
        return e

    out = [tostring(energy())]
    dt = 0.01
    for _ in range(steps):
        for i in range(nb):
            for j in range(i + 1, nb):
                dx = x[i] - x[j]
                dy = y[i] - y[j]
                dz = z[i] - z[j]
                d2 = dx * dx + dy * dy + dz * dz
                mag = dt / (d2 * math.sqrt(d2))
                vx[i] = vx[i] - dx * mass[j] * mag
                vy[i] = vy[i] - dy * mass[j] * mag
                vz[i] = vz[i] - dz * mass[j] * mag
                vx[j] = vx[j] + dx * mass[i] * mag
                vy[j] = vy[j] + dy * mass[i] * mag
                vz[j] = vz[j] + dz * mass[i] * mag
        for i in range(nb):
            x[i] = x[i] + dt * vx[i]
            y[i] = y[i] + dt * vy[i]
            z[i] = z[i] + dt * vz[i]
    out.append(tostring(energy()))
    return out


def _ref_spectral_norm(n: int) -> list[str]:
    def A(i, j):
        return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)

    def mulAv(v):
        return [sum(A(i, j) * v[j] for j in range(n)) for i in range(n)]

    def mulAtv(v):
        return [sum(A(j, i) * v[j] for j in range(n)) for i in range(n)]

    u = [1.0] * n
    v = [0.0] * n
    for _ in range(10):
        v = mulAtv(mulAv(u))
        u = mulAtv(mulAv(v))
    vBv = sum(u[i] * v[i] for i in range(n))
    vv = sum(v[i] * v[i] for i in range(n))
    return [tostring(math.sqrt(vBv / vv))]


def _ref_n_sieve(m: int) -> list[str]:
    def nsieve(limit):
        flags = [True] * (limit + 1)
        count = 0
        for i in range(2, limit + 1):
            if flags[i]:
                count += 1
                for k in range(i + i, limit + 1, i):
                    flags[k] = False
        return count

    return [
        f"Primes up to {m} {nsieve(m)}",
        f"Primes up to {m // 2} {nsieve(m // 2)}",
    ]


def _ref_random(n: int) -> list[str]:
    seed = 42
    result = 0.0
    for _ in range(n):
        seed = (seed * 3877 + 29573) % 139968
        result = 100.0 * seed / 139968
    return [tostring(result)]


def _ref_fibo(n: int) -> list[str]:
    def fib(k):
        return k if k < 2 else fib(k - 1) + fib(k - 2)

    return [str(fib(n))]


def _ref_ackermann(n: int) -> list[str]:
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(1_000_000)
    try:
        def ack(m, k):
            if m == 0:
                return k + 1
            if k == 0:
                return ack(m - 1, 1)
            return ack(m - 1, ack(m, k - 1))

        return [f"Ack(3,{n}): {ack(3, n)}"]
    finally:
        sys.setrecursionlimit(old_limit)


def _ref_pidigits(ndigits: int) -> list[str]:
    q, r, t, k, n, l = 1, 0, 1, 1, 3, 3
    produced = 0
    line = ""
    out = []
    while produced < ndigits:
        if 4 * q + r - t < n * t:
            line += str(n)
            produced += 1
            if produced % 10 == 0:
                out.append(f"{line}\t:{produced}")
                line = ""
            nr = 10 * (r - n * t)
            n = ((10 * (3 * q + r)) // t) - 10 * n
            q *= 10
            r = nr
        else:
            nr = (2 * q + r) * l
            nn = (q * (7 * k) + 2 + (r * l)) // (t * l)
            q *= k
            t *= l
            l += 2
            k += 1
            n = nn
            r = nr
    if line:
        out.append(f"{line}\t:{produced}")
    return out


#: Registry ordered as in Table III.  Descriptions are the paper's.
WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in [
        Workload(
            "binary-trees",
            "Allocate and deallocate many binary trees",
            sources.BINARY_TREES,
            sim_n=4,
            fpga_n=6,
            reference=_ref_binary_trees,
        ),
        Workload(
            "fannkuch-redux",
            "Indexed-access to tiny integer-sequence",
            sources.FANNKUCH_REDUX,
            sim_n=6,
            fpga_n=7,
            reference=_ref_fannkuch,
        ),
        Workload(
            "k-nucleotide",
            "Repeatedly update hashtables and k-nucleotide strings",
            sources.K_NUCLEOTIDE,
            sim_n=240,
            fpga_n=700,
            reference=_ref_k_nucleotide,
        ),
        Workload(
            "mandelbrot",
            "Generate Mandelbrot set portable bitmap file",
            sources.MANDELBROT,
            sim_n=12,
            fpga_n=24,
            reference=_ref_mandelbrot,
        ),
        Workload(
            "n-body",
            "Double-precision N-body simulation",
            sources.N_BODY,
            sim_n=60,
            fpga_n=220,
            reference=_ref_n_body,
        ),
        Workload(
            "spectral-norm",
            "Eigenvalue using the power method",
            sources.SPECTRAL_NORM,
            sim_n=8,
            fpga_n=16,
            reference=_ref_spectral_norm,
        ),
        Workload(
            "n-sieve",
            "Count the prime numbers from 2 to M (Sieve of Eratosthenes)",
            sources.N_SIEVE,
            sim_n=1200,
            fpga_n=4000,
            reference=_ref_n_sieve,
        ),
        Workload(
            "random",
            "Generate random numbers",
            sources.RANDOM,
            sim_n=2500,
            fpga_n=9000,
            reference=_ref_random,
        ),
        Workload(
            "fibo",
            "Calculate Fibonacci number",
            sources.FIBO,
            sim_n=13,
            fpga_n=17,
            reference=_ref_fibo,
        ),
        Workload(
            "ackermann",
            "Ackermann function benchmark",
            sources.ACKERMANN,
            sim_n=3,
            fpga_n=4,
            reference=_ref_ackermann,
        ),
        Workload(
            "pidigits",
            "Streaming arbitrary-precision arithmetic",
            sources.PIDIGITS,
            sim_n=40,
            fpga_n=120,
            reference=_ref_pidigits,
        ),
    ]
}


def workload(name: str) -> Workload:
    """Look up one workload by its paper name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOADS)}"
        ) from None


def workload_names() -> tuple[str, ...]:
    return tuple(WORKLOADS)
