"""Host instruction set for modelling interpreter native code.

The paper measures *native* (host) instruction streams: the Alpha code of the
Lua/SpiderMonkey dispatch loop on gem5, and RISC-V code on the Rocket FPGA
model.  This package provides an equivalent from-scratch substrate: a small
RISC-like 32-bit host ISA ("ember"), a two-pass assembler, and program /
basic-block containers.  The SCD ISA extension of the paper (Table I) is part
of the instruction set: ``setmask``, the ``.op`` load suffix, ``bop``,
``jru`` and ``jte.flush``.

Typical use::

    from repro.isa import assemble
    program = assemble('''
    Fetch:
        ldq   r5, 40(r14)
        ldl.op r9, 0(r5)
        bop
    ''')
    block = program.blocks[0]
"""

from repro.isa.instructions import (
    Kind,
    Instruction,
    INSTRUCTION_SIZE,
    is_control_flow,
    mnemonic_kind,
)
from repro.isa.assembler import assemble, AssemblyError
from repro.isa.program import Program, BasicBlock, ProgramLayout

__all__ = [
    "Kind",
    "Instruction",
    "INSTRUCTION_SIZE",
    "is_control_flow",
    "mnemonic_kind",
    "assemble",
    "AssemblyError",
    "Program",
    "BasicBlock",
    "ProgramLayout",
]
