"""Binary encoding of ember host instructions.

The timing model never needs encoded host code, but a credible ISA
substrate defines one.  32-bit words::

     31       26 25      20 19              8 7        0
    +-----------+----------+-----------------+----------+
    |  opcode#  |  flags   |     operand     |  kindtag |
    +-----------+----------+-----------------+----------+

* ``opcode#`` — index of the mnemonic in the ISA table.
* ``flags`` — bit 0: ``.op`` suffix.
* ``operand`` — branch displacement in words (signed 12-bit) for direct
  control flow, zero otherwise (register operands are not architectural
  state the model tracks, so they round-trip through the side table).
* ``kindtag`` — the :class:`~repro.isa.instructions.Kind` value.

:func:`encode_program` and :func:`decode_program` round-trip everything the
simulator consumes: mnemonics, kinds, ``.op`` flags and control-flow
structure.  Operand *text* is carried in an auxiliary string table (a real
encoding would assign register fields; the model treats registers as
opaque, so the table keeps disassembly faithful instead).
"""

from __future__ import annotations

from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Kind,
    _MNEMONIC_KINDS,
)
from repro.isa.program import Program

_MNEMONIC_INDEX = {name: i for i, name in enumerate(sorted(_MNEMONIC_KINDS))}
_INDEX_MNEMONIC = {i: name for name, i in _MNEMONIC_INDEX.items()}

_DISP_BIAS = 1 << 11
_DISP_MAX = (1 << 12) - 1


class EncodingError(ValueError):
    """Raised when a program cannot be encoded (e.g. branch out of range)."""


def encode_instruction(inst: Instruction) -> int:
    """Encode one instruction to its 32-bit word."""
    opnum = _MNEMONIC_INDEX[inst.mnemonic]
    flags = 1 if inst.op_suffix else 0
    displacement = 0
    if inst.target is not None:
        delta_words = (inst.target - inst.pc) // INSTRUCTION_SIZE
        biased = delta_words + _DISP_BIAS
        if not 0 <= biased <= _DISP_MAX:
            raise EncodingError(
                f"branch displacement {delta_words} words out of range at "
                f"0x{inst.pc:x}"
            )
        displacement = biased
    return (opnum << 26) | (flags << 20) | (displacement << 8) | int(inst.kind)


def decode_instruction(word: int, pc: int) -> Instruction:
    """Decode one word back to an :class:`Instruction` (operand text empty)."""
    opnum = (word >> 26) & 0x3F
    flags = (word >> 20) & 0x3F
    displacement = (word >> 8) & 0xFFF
    kind = Kind(word & 0xFF)
    try:
        mnemonic = _INDEX_MNEMONIC[opnum]
    except KeyError:
        raise EncodingError(f"unknown opcode number {opnum}") from None
    inst = Instruction(
        mnemonic=mnemonic,
        kind=kind,
        pc=pc,
        op_suffix=bool(flags & 1),
    )
    if displacement and kind in (Kind.BRANCH, Kind.JUMP, Kind.CALL):
        inst.target = pc + (displacement - _DISP_BIAS) * INSTRUCTION_SIZE
    return inst


def encode_program(program: Program) -> bytes:
    """Encode a whole program to little-endian 32-bit words."""
    out = bytearray()
    for inst in program.instructions:
        out.extend(encode_instruction(inst).to_bytes(4, "little"))
    return bytes(out)


def decode_program(blob: bytes, base: int = 0x1_0000, name: str = "decoded") -> Program:
    """Decode an encoded blob back into a (label-less) :class:`Program`."""
    if len(blob) % 4:
        raise EncodingError("encoded program length must be a multiple of 4")
    instructions = []
    for index in range(0, len(blob), 4):
        word = int.from_bytes(blob[index : index + 4], "little")
        instructions.append(decode_instruction(word, base + index))
    return Program(name=name, base=base, instructions=instructions, labels={})
