"""Program and basic-block containers for assembled host code.

The timing model (:mod:`repro.uarch.pipeline`) is block-driven: it consumes
:class:`BasicBlock` executions, each covering a straight-line run of host
instructions with at most one terminating control transfer.  This module
extracts those blocks from an assembled instruction list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Kind,
    is_control_flow,
)


@dataclass(slots=True, eq=False)  # identity equality: blocks are unique
class BasicBlock:
    """A straight-line sequence of host instructions.

    A block ends either at a control-flow instruction (which becomes
    :attr:`term`) or just before the next label.  Counts that the timing
    model needs every execution (instruction, load and store counts, PC
    range) are precomputed.

    Attributes:
        name: label that starts the block, or ``"<parent>+N"`` when the block
            begins at a fall-through point after control flow.
        start_pc / end_pc: byte range ``[start_pc, end_pc)`` of the block.
        instructions: the static instructions, terminator included.
        term: the terminating control-flow instruction, or ``None`` when the
            block simply falls through to the next one.
        n_insts / n_loads / n_stores: precomputed instruction-mix counts.
        category: statistics bucket of the block's first instruction.
        has_op_load: True when the block contains an ``<inst>.op`` load (the
            SCD bytecode fetch).
        lines_cache / page_cache: fetch-footprint caches filled lazily by
            the pipeline (64-byte lines, 4 KiB pages).
    """

    name: str
    start_pc: int
    instructions: list[Instruction]
    term: Instruction | None = None
    n_insts: int = 0
    n_loads: int = 0
    n_stores: int = 0
    category: str = ""
    has_op_load: bool = False
    lines_cache: tuple | None = None
    page_cache: int = -1

    @property
    def end_pc(self) -> int:
        return self.start_pc + self.n_insts * INSTRUCTION_SIZE

    @property
    def fall_through_pc(self) -> int:
        """PC of the instruction following the block in layout order."""
        return self.end_pc

    def __str__(self) -> str:
        return f"<block {self.name} @0x{self.start_pc:x} n={self.n_insts}>"


def _finalize(block: BasicBlock) -> BasicBlock:
    block.n_insts = len(block.instructions)
    block.n_loads = sum(1 for i in block.instructions if i.kind is Kind.LOAD)
    block.n_stores = sum(1 for i in block.instructions if i.kind is Kind.STORE)
    block.has_op_load = any(i.op_suffix for i in block.instructions)
    last = block.instructions[-1]
    block.term = last if is_control_flow(last.kind) else None
    if block.instructions:
        block.category = block.instructions[0].category
    return block


@dataclass
class Program:
    """An assembled host program: instructions, labels and basic blocks.

    Attributes:
        name: human-readable name.
        base: byte address of the first instruction.
        instructions: the full instruction list in layout order.
        labels: label name -> byte address.
        blocks: basic blocks in layout order (built on construction).
    """

    name: str
    base: int
    instructions: list[Instruction]
    labels: dict[str, int]
    blocks: list[BasicBlock] = field(default_factory=list)
    _block_by_name: dict[str, BasicBlock] = field(default_factory=dict, repr=False)
    _block_by_pc: dict[int, BasicBlock] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.instructions:
            self._build_blocks()

    def _build_blocks(self) -> None:
        starts = {self.base}
        for label_pc in self.labels.values():
            starts.add(label_pc)
        for inst in self.instructions:
            if is_control_flow(inst.kind):
                starts.add(inst.pc + INSTRUCTION_SIZE)

        pc_to_label: dict[int, str] = {}
        for label, pc in self.labels.items():
            # Prefer the first label alphabetically for aliased addresses so
            # the choice is deterministic.
            if pc not in pc_to_label or label < pc_to_label[pc]:
                pc_to_label[pc] = label

        current: BasicBlock | None = None
        parent_name = self.name
        for inst in self.instructions:
            if inst.pc in starts or current is None:
                if current is not None and current.instructions:
                    self._register(_finalize(current))
                if inst.pc in pc_to_label:
                    name = pc_to_label[inst.pc]
                    parent_name = name
                else:
                    name = f"{parent_name}+0x{inst.pc - self.labels.get(parent_name, self.base):x}"
                current = BasicBlock(name=name, start_pc=inst.pc, instructions=[])
            current.instructions.append(inst)
            if is_control_flow(inst.kind):
                self._register(_finalize(current))
                current = None
        if current is not None and current.instructions:
            self._register(_finalize(current))

    def _register(self, block: BasicBlock) -> None:
        self.blocks.append(block)
        self._block_by_name[block.name] = block
        self._block_by_pc[block.start_pc] = block

    # -- lookup -----------------------------------------------------------

    def block(self, name: str) -> BasicBlock:
        """Return the block starting at label *name*."""
        try:
            return self._block_by_name[name]
        except KeyError:
            raise KeyError(
                f"no basic block named {name!r} in program {self.name!r}"
            ) from None

    def block_at(self, pc: int) -> BasicBlock:
        """Return the block starting at byte address *pc*."""
        try:
            return self._block_by_pc[pc]
        except KeyError:
            raise KeyError(
                f"no basic block at 0x{pc:x} in program {self.name!r}"
            ) from None

    def has_block(self, name: str) -> bool:
        return name in self._block_by_name

    @property
    def size_bytes(self) -> int:
        """Total code footprint in bytes."""
        return len(self.instructions) * INSTRUCTION_SIZE

    def successor(self, block: BasicBlock) -> BasicBlock:
        """Return the fall-through successor of *block*."""
        return self.block_at(block.fall_through_pc)

    def __len__(self) -> int:
        return len(self.instructions)


class ProgramLayout:
    """Concatenates assembly fragments into one address space.

    Used by the native interpreter model to lay out the dispatcher followed
    by every handler, with alignment between fragments, so that code-size
    effects (e.g. the I-cache bloat of jump threading) appear naturally.
    """

    def __init__(self, base: int = 0x1_0000, align: int = 16):
        if align % INSTRUCTION_SIZE:
            raise ValueError(f"align must be a multiple of {INSTRUCTION_SIZE}")
        self.base = base
        self.align = align
        self._chunks: list[str] = []

    def add(self, text: str) -> None:
        """Append an assembly fragment, aligned to the layout boundary."""
        self._chunks.append(f".align {self.align}\n{text}")

    def assemble(self, name: str = "layout") -> Program:
        """Assemble all fragments into a single :class:`Program`."""
        from repro.isa.assembler import assemble as _assemble

        return _assemble("\n".join(self._chunks), base=self.base, name=name)
