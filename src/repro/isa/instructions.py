"""Instruction definitions for the ember host ISA.

The ISA is deliberately small and RISC-like: fixed 4-byte instructions,
register-register ALU operations, explicit loads/stores, direct conditional
branches, direct and indirect jumps, calls/returns, and the five-entry SCD
extension from Table I of the paper.

Instructions here are *static* entities: a :class:`Instruction` is one slot
in an assembled :class:`~repro.isa.program.Program`.  Dynamic behaviour
(whether a branch was taken, which address a load touched) is supplied by the
native interpreter model at simulation time; the timing model never needs a
register file for host code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Size in bytes of every ember instruction (32-bit fixed-width encoding).
INSTRUCTION_SIZE = 4


class Kind(enum.IntEnum):
    """Semantic class of a host instruction.

    The timing model dispatches on this, not on the mnemonic: an ``add`` and
    an ``xor`` cost the same, but a ``LOAD`` probes the D-cache and a
    ``BRANCH`` consults the direction predictor.
    """

    ALU = 0          #: register-register / register-immediate arithmetic
    LOAD = 1         #: memory read (may carry the ``.op`` SCD suffix)
    STORE = 2        #: memory write
    BRANCH = 3       #: conditional direct branch (predicted direction)
    JUMP = 4         #: unconditional direct jump
    JUMP_IND = 5     #: indirect jump through a register (BTB-predicted target)
    CALL = 6         #: direct call (pushes the return-address stack)
    CALL_IND = 7     #: indirect call
    RET = 8          #: return (pops the return-address stack)
    NOP = 9          #: no-operation / pipeline filler
    SETMASK = 10     #: SCD: write the mask register ``Rmask``
    BOP = 11         #: SCD: branch-on-opcode (BTB lookup keyed by ``Rop``)
    JRU = 12         #: SCD: jump-register-with-JTE-update
    JTE_FLUSH = 13   #: SCD: invalidate all jump-table entries in the BTB


#: Kinds that terminate a basic block.
_CONTROL_FLOW_KINDS = frozenset(
    {
        Kind.BRANCH,
        Kind.JUMP,
        Kind.JUMP_IND,
        Kind.CALL,
        Kind.CALL_IND,
        Kind.RET,
        Kind.BOP,
        Kind.JRU,
    }
)

#: Mnemonic -> kind table used by the assembler.  ALU mnemonics are a
#: representative Alpha/RISC-V blend; the timing model only sees the kind.
_MNEMONIC_KINDS: dict[str, Kind] = {
    # ALU / data movement
    "add": Kind.ALU,
    "addq": Kind.ALU,
    "sub": Kind.ALU,
    "subq": Kind.ALU,
    "mul": Kind.ALU,
    "mulq": Kind.ALU,
    "and": Kind.ALU,
    "or": Kind.ALU,
    "bis": Kind.ALU,
    "xor": Kind.ALU,
    "sll": Kind.ALU,
    "srl": Kind.ALU,
    "sra": Kind.ALU,
    "cmp": Kind.ALU,
    "cmpeq": Kind.ALU,
    "cmplt": Kind.ALU,
    "cmple": Kind.ALU,
    "cmpule": Kind.ALU,
    "lda": Kind.ALU,
    "ldah": Kind.ALU,
    "li": Kind.ALU,
    "mov": Kind.ALU,
    "s4addq": Kind.ALU,
    "s8addq": Kind.ALU,
    "sextb": Kind.ALU,
    "sextw": Kind.ALU,
    "zapnot": Kind.ALU,
    "fadd": Kind.ALU,
    "fsub": Kind.ALU,
    "fmul": Kind.ALU,
    "fdiv": Kind.ALU,
    "fcmp": Kind.ALU,
    "cvtif": Kind.ALU,
    "cvtfi": Kind.ALU,
    # memory
    "ldq": Kind.LOAD,
    "ldl": Kind.LOAD,
    "ldw": Kind.LOAD,
    "ldb": Kind.LOAD,
    "ldbu": Kind.LOAD,
    "fld": Kind.LOAD,
    "stq": Kind.STORE,
    "stl": Kind.STORE,
    "stw": Kind.STORE,
    "stb": Kind.STORE,
    "fst": Kind.STORE,
    # control flow
    "beq": Kind.BRANCH,
    "bne": Kind.BRANCH,
    "blt": Kind.BRANCH,
    "bge": Kind.BRANCH,
    "ble": Kind.BRANCH,
    "bgt": Kind.BRANCH,
    "br": Kind.JUMP,
    "jmp": Kind.JUMP_IND,
    "jr": Kind.JUMP_IND,
    "call": Kind.CALL,
    "bsr": Kind.CALL,
    "callr": Kind.CALL_IND,
    "jsr": Kind.CALL_IND,
    "ret": Kind.RET,
    "nop": Kind.NOP,
    # SCD extension (Table I of the paper)
    "setmask": Kind.SETMASK,
    "bop": Kind.BOP,
    "jru": Kind.JRU,
    "jte.flush": Kind.JTE_FLUSH,
}


def mnemonic_kind(mnemonic: str) -> Kind:
    """Return the :class:`Kind` for *mnemonic*.

    The ``.op`` suffix of SCD-annotated loads (``ldl.op``) is accepted and
    stripped before lookup.

    Raises:
        KeyError: if the mnemonic is not part of the ISA.
    """
    base = mnemonic
    if base.endswith(".op") and base != "jte.flush":
        base = base[: -len(".op")]
    return _MNEMONIC_KINDS[base]


def is_control_flow(kind: Kind) -> bool:
    """True if instructions of *kind* terminate a basic block."""
    return kind in _CONTROL_FLOW_KINDS


@dataclass(slots=True)
class Instruction:
    """One static host instruction.

    Attributes:
        mnemonic: assembly mnemonic, without the ``.op`` suffix.
        kind: semantic class used by the timing model.
        operands: raw operand text (informational; the timing model does not
            interpret host registers).
        pc: byte address assigned at layout time.
        target: resolved byte address of the label operand for direct
            branches/jumps/calls, else ``None``.
        target_label: symbolic target name for direct control flow.
        op_suffix: True for ``<inst>.op`` loads, which deposit the loaded
            bytecode into ``Rop`` after masking with ``Rmask``.
        category: statistics bucket (e.g. ``"dispatch"``, ``"handler"``);
            assigned per-block by the native interpreter model.
    """

    mnemonic: str
    kind: Kind
    operands: str = ""
    pc: int = -1
    target: int | None = None
    target_label: str | None = None
    op_suffix: bool = False
    category: str = ""

    def __str__(self) -> str:
        suffix = ".op" if self.op_suffix else ""
        text = f"{self.mnemonic}{suffix}"
        if self.operands:
            text += f" {self.operands}"
        if self.target_label is not None:
            text += f" -> {self.target_label}"
        return text


def make_nops(count: int) -> list[Instruction]:
    """Build *count* NOP filler instructions (used in tests and padding)."""
    return [Instruction("nop", Kind.NOP) for _ in range(count)]
