"""Two-pass assembler for the ember host ISA.

Syntax, one item per line::

    Label:                  # a label (column-0 or indented, ends with ':')
        ldq    r5, 40(r14)  # instruction with operands
        ldl.op r9, 0(r5)    # SCD-suffixed load
        beq    r1, Default  # direct control flow targets a label
        jmp    (r1)         # indirect jump: no label operand
        .align 16           # pad with NOPs to a 16-byte boundary
        .category dispatch  # statistics bucket for following instructions

Comments start with ``#`` or ``;``.  Direct branches, jumps and calls take
their *last* operand as the target label; the first pass collects label
addresses and the second pass resolves them.
"""

from __future__ import annotations

from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Kind,
    mnemonic_kind,
)
from repro.isa.program import Program


class AssemblyError(ValueError):
    """Raised for malformed assembly or unresolved labels."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


#: Kinds whose last operand is a label resolved by the assembler.
_DIRECT_KINDS = frozenset({Kind.BRANCH, Kind.JUMP, Kind.CALL})


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_instruction(text: str, line_no: int, category: str) -> Instruction:
    parts = text.split(None, 1)
    mnemonic = parts[0]
    operands = parts[1].strip() if len(parts) > 1 else ""
    try:
        kind = mnemonic_kind(mnemonic)
    except KeyError:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no) from None

    op_suffix = mnemonic.endswith(".op") and mnemonic != "jte.flush"
    base_mnemonic = mnemonic[:-3] if op_suffix else mnemonic
    if op_suffix and kind is not Kind.LOAD:
        raise AssemblyError(
            f"'.op' suffix is only valid on loads, not {base_mnemonic!r}", line_no
        )

    target_label: str | None = None
    if kind in _DIRECT_KINDS:
        fields = [f.strip() for f in operands.split(",")]
        if not fields or not fields[-1]:
            raise AssemblyError(
                f"{base_mnemonic!r} requires a target label", line_no
            )
        target_label = fields[-1]
        if target_label.startswith("("):
            raise AssemblyError(
                f"{base_mnemonic!r} takes a direct label target, got register "
                f"operand {target_label!r}",
                line_no,
            )

    return Instruction(
        mnemonic=base_mnemonic,
        kind=kind,
        operands=operands,
        target_label=target_label,
        op_suffix=op_suffix,
        category=category,
    )


def assemble(text: str, base: int = 0x1_0000, name: str = "program") -> Program:
    """Assemble *text* into a :class:`~repro.isa.program.Program`.

    Args:
        text: assembly source (see module docstring for syntax).
        base: byte address of the first instruction.
        name: human-readable program name.

    Raises:
        AssemblyError: on syntax errors, unknown mnemonics, duplicate or
            unresolved labels.
    """
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    category = ""

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue

        # A line may carry "Label: instruction"; peel labels first.
        while True:
            head, sep, rest = line.partition(":")
            if sep and " " not in head and "\t" not in head and head:
                label = head.strip()
                if label in labels:
                    raise AssemblyError(f"duplicate label {label!r}", line_no)
                labels[label] = len(instructions)
                line = rest.strip()
                if not line:
                    break
            else:
                break
        if not line:
            continue

        if line.startswith(".align"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblyError(".align requires one argument", line_no)
            try:
                boundary = int(parts[1], 0)
            except ValueError:
                raise AssemblyError(
                    f"bad .align argument {parts[1]!r}", line_no
                ) from None
            if boundary <= 0 or boundary % INSTRUCTION_SIZE:
                raise AssemblyError(
                    f".align must be a positive multiple of {INSTRUCTION_SIZE}",
                    line_no,
                )
            pc = base + len(instructions) * INSTRUCTION_SIZE
            while pc % boundary:
                instructions.append(Instruction("nop", Kind.NOP, category=category))
                pc += INSTRUCTION_SIZE
            continue

        if line.startswith(".category"):
            parts = line.split()
            category = parts[1] if len(parts) > 1 else ""
            continue

        instructions.append(_parse_instruction(line, line_no, category))

    # Pass 2: assign PCs and resolve direct targets.
    label_pcs = {
        label: base + index * INSTRUCTION_SIZE for label, index in labels.items()
    }
    for index, inst in enumerate(instructions):
        inst.pc = base + index * INSTRUCTION_SIZE
        if inst.target_label is not None:
            try:
                inst.target = label_pcs[inst.target_label]
            except KeyError:
                raise AssemblyError(
                    f"unresolved label {inst.target_label!r} in {inst!s}"
                ) from None

    return Program(name=name, base=base, instructions=instructions, labels=label_pcs)
