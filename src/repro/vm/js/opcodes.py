"""SpiderMonkey-17-style opcode table: 229 variable-length bytecodes.

Section V of the paper: "It has 229 distinct bytecodes, and the dispatch
loop takes 29 native instructions."  We define the full table (names follow
SpiderMonkey's ``jsopcode.tbl``, including its UNUSED placeholder slots);
the compiler emits a working subset, and two VM-extension opcodes (INTDIV,
CONCAT) fill documented UNUSED slots so both guest VMs share one source
language.

Each opcode carries:

* ``operand_bytes`` — 0, 1, 2 or 4 immediate bytes after the opcode byte.
* ``exit_site`` — which dispatch site the opcode's handler uses to fetch
  the *next* bytecode (Section III-C): the main loop, the FUNCALL tail,
  the common END_CASE macro, or an SCD-uncovered slow path.
"""

from __future__ import annotations

import enum

from repro.vm.trace import Site

#: Total distinct bytecodes (matches SpiderMonkey 17 as reported in §V).
NUM_OPCODES = 229

#: The opcode is the first byte of a variable-length bytecode.
OPCODE_MASK = 0xFF

# (name, operand_bytes, exit_site).  Order assigns numeric codes.
_SPEC: list[tuple[str, int, Site]] = [
    # 0-15: basics
    ("NOP", 0, Site.END_CASE),
    ("UNDEFINED", 0, Site.END_CASE),
    ("POPV", 0, Site.END_CASE),
    ("ENTERWITH", 2, Site.UNCOVERED),
    ("LEAVEWITH", 0, Site.UNCOVERED),
    ("RETURN", 0, Site.MAIN),
    ("GOTO", 2, Site.MAIN),
    ("IFEQ", 2, Site.MAIN),
    ("IFNE", 2, Site.MAIN),
    ("ARGUMENTS", 0, Site.UNCOVERED),
    ("SWAP", 0, Site.END_CASE),
    ("POPN", 2, Site.END_CASE),
    ("DUP", 0, Site.END_CASE),
    ("DUP2", 0, Site.END_CASE),
    ("SETCONST", 2, Site.UNCOVERED),
    ("BITOR", 0, Site.MAIN),
    # 16-31: arithmetic / comparison
    ("BITXOR", 0, Site.MAIN),
    ("BITAND", 0, Site.MAIN),
    ("EQ", 0, Site.MAIN),
    ("NE", 0, Site.MAIN),
    ("LT", 0, Site.MAIN),
    ("LE", 0, Site.MAIN),
    ("GT", 0, Site.MAIN),
    ("GE", 0, Site.MAIN),
    ("LSH", 0, Site.MAIN),
    ("RSH", 0, Site.MAIN),
    ("URSH", 0, Site.MAIN),
    ("ADD", 0, Site.MAIN),
    ("SUB", 0, Site.MAIN),
    ("MUL", 0, Site.MAIN),
    ("DIV", 0, Site.MAIN),
    ("MOD", 0, Site.MAIN),
    # 32-47
    ("NOT", 0, Site.END_CASE),
    ("BITNOT", 0, Site.MAIN),
    ("NEG", 0, Site.MAIN),
    ("POS", 0, Site.MAIN),
    ("DELNAME", 2, Site.UNCOVERED),
    ("DELPROP", 2, Site.UNCOVERED),
    ("DELELEM", 0, Site.UNCOVERED),
    ("TYPEOF", 0, Site.END_CASE),
    ("VOID", 0, Site.END_CASE),
    ("INCNAME", 2, Site.UNCOVERED),
    ("DECNAME", 2, Site.UNCOVERED),
    ("NAMEINC", 2, Site.UNCOVERED),
    ("NAMEDEC", 2, Site.UNCOVERED),
    ("INCPROP", 2, Site.UNCOVERED),
    ("DECPROP", 2, Site.UNCOVERED),
    ("PROPINC", 2, Site.UNCOVERED),
    # 48-63
    ("PROPDEC", 2, Site.UNCOVERED),
    ("INCELEM", 0, Site.UNCOVERED),
    ("DECELEM", 0, Site.UNCOVERED),
    ("ELEMINC", 0, Site.UNCOVERED),
    ("ELEMDEC", 0, Site.UNCOVERED),
    ("GETPROP", 2, Site.MAIN),
    ("SETPROP", 2, Site.MAIN),
    ("GETELEM", 0, Site.MAIN),
    ("SETELEM", 0, Site.MAIN),
    ("CALLNAME", 2, Site.MAIN),
    ("CALL", 2, Site.FUNCALL),
    ("NAME", 2, Site.UNCOVERED),
    ("DOUBLE", 2, Site.END_CASE),
    ("STRING", 2, Site.END_CASE),
    ("ZERO", 0, Site.END_CASE),
    ("ONE", 0, Site.END_CASE),
    # 64-79
    ("NULL", 0, Site.END_CASE),
    ("THIS", 0, Site.END_CASE),
    ("FALSE", 0, Site.END_CASE),
    ("TRUE", 0, Site.END_CASE),
    ("OR", 2, Site.MAIN),
    ("AND", 2, Site.MAIN),
    ("TABLESWITCH", 4, Site.UNCOVERED),
    ("LOOKUPSWITCH", 4, Site.UNCOVERED),
    ("STRICTEQ", 0, Site.MAIN),
    ("STRICTNE", 0, Site.MAIN),
    ("ITER", 1, Site.UNCOVERED),
    ("MOREITER", 0, Site.UNCOVERED),
    ("ITERNEXT", 0, Site.UNCOVERED),
    ("ENDITER", 0, Site.UNCOVERED),
    ("FUNAPPLY", 2, Site.FUNCALL),
    ("OBJECT", 2, Site.END_CASE),
    # 80-95
    ("POP", 0, Site.END_CASE),
    ("NEW", 2, Site.FUNCALL),
    ("SPREAD", 0, Site.UNCOVERED),
    ("GETXPROP", 2, Site.UNCOVERED),
    ("GETLOCAL", 2, Site.END_CASE),
    ("SETLOCAL", 2, Site.END_CASE),
    ("UINT16", 2, Site.END_CASE),
    ("NEWINIT", 1, Site.UNCOVERED),
    ("NEWARRAY", 2, Site.UNCOVERED),
    ("NEWOBJECT", 2, Site.UNCOVERED),
    ("ENDINIT", 0, Site.END_CASE),
    ("INITPROP", 2, Site.UNCOVERED),
    ("INITELEM", 0, Site.UNCOVERED),
    ("INITELEM_ARRAY", 4, Site.UNCOVERED),
    ("INITELEM_INC", 0, Site.UNCOVERED),
    ("INITELEM_GETTER", 0, Site.UNCOVERED),
    # 96-111
    ("INITELEM_SETTER", 0, Site.UNCOVERED),
    ("CALLSITEOBJ", 2, Site.UNCOVERED),
    ("NEWARRAY_COPYONWRITE", 2, Site.UNCOVERED),
    ("SUPERBASE", 0, Site.UNCOVERED),
    ("GETARG", 2, Site.END_CASE),
    ("SETARG", 2, Site.END_CASE),
    ("INT8", 1, Site.END_CASE),
    ("INT32", 4, Site.END_CASE),
    ("LENGTH", 2, Site.MAIN),
    ("HOLE", 0, Site.END_CASE),
    ("FUNCALL", 2, Site.FUNCALL),
    ("LOOPHEAD", 0, Site.END_CASE),
    ("BINDNAME", 2, Site.UNCOVERED),
    ("SETNAME", 2, Site.UNCOVERED),
    ("THROW", 0, Site.UNCOVERED),
    ("IN", 0, Site.MAIN),
    # 112-127
    ("INSTANCEOF", 0, Site.MAIN),
    ("DEBUGGER", 0, Site.UNCOVERED),
    ("GOSUB", 2, Site.UNCOVERED),
    ("RETSUB", 0, Site.UNCOVERED),
    ("EXCEPTION", 0, Site.UNCOVERED),
    ("LINENO", 2, Site.END_CASE),
    ("CONDSWITCH", 0, Site.UNCOVERED),
    ("CASE", 2, Site.MAIN),
    ("DEFAULT", 2, Site.MAIN),
    ("EVAL", 2, Site.UNCOVERED),
    ("ENUMELEM", 0, Site.UNCOVERED),
    ("GETFUNNS", 0, Site.UNCOVERED),
    ("UNDEFINEDPRIMITIVE", 0, Site.END_CASE),
    ("DEFFUN", 2, Site.UNCOVERED),
    ("DEFCONST", 2, Site.UNCOVERED),
    ("DEFVAR", 2, Site.UNCOVERED),
    # 128-143
    ("LAMBDA", 2, Site.UNCOVERED),
    ("CALLEE", 0, Site.END_CASE),
    ("PICK", 1, Site.END_CASE),
    ("TRY", 0, Site.END_CASE),
    ("FINALLY", 0, Site.UNCOVERED),
    ("GETALIASEDVAR", 2, Site.UNCOVERED),
    ("SETALIASEDVAR", 2, Site.UNCOVERED),
    ("UNUSED135", 0, Site.MAIN),
    ("UNUSED136", 0, Site.MAIN),
    ("UNUSED137", 0, Site.MAIN),
    ("UNUSED138", 0, Site.MAIN),
    ("UNUSED139", 0, Site.MAIN),
    ("UNUSED140", 0, Site.MAIN),
    ("UNUSED141", 0, Site.MAIN),
    ("UNUSED142", 0, Site.MAIN),
    ("SETINTRINSIC", 2, Site.UNCOVERED),
    # 144-159
    ("NAMEINTRINSIC", 2, Site.UNCOVERED),
    ("BINDINTRINSIC", 2, Site.UNCOVERED),
    ("INTDIV", 0, Site.MAIN),       # VM extension: scriptlet '//' operator
    ("CONCAT", 0, Site.MAIN),       # VM extension: scriptlet '..' operator
    ("DEFLOCALFUN", 2, Site.UNCOVERED),
    ("ANONFUNOBJ", 2, Site.UNCOVERED),
    ("NAMEDFUNOBJ", 2, Site.UNCOVERED),
    ("SETLOCALPOP", 2, Site.END_CASE),
    ("SETCALL", 2, Site.UNCOVERED),
    ("GETGNAME", 2, Site.MAIN),
    ("SETGNAME", 2, Site.MAIN),
    ("BINDGNAME", 2, Site.MAIN),
    ("REGEXP", 2, Site.UNCOVERED),
    ("DEFXMLNS", 0, Site.UNCOVERED),
    ("ANYNAME", 0, Site.UNCOVERED),
    ("QNAMEPART", 2, Site.UNCOVERED),
    # 160-175
    ("QNAMECONST", 2, Site.UNCOVERED),
    ("QNAME", 0, Site.UNCOVERED),
    ("TOATTRNAME", 0, Site.UNCOVERED),
    ("TOATTRVAL", 0, Site.UNCOVERED),
    ("ADDATTRNAME", 0, Site.UNCOVERED),
    ("ADDATTRVAL", 0, Site.UNCOVERED),
    ("BINDXMLNAME", 0, Site.UNCOVERED),
    ("SETXMLNAME", 0, Site.UNCOVERED),
    ("XMLNAME", 0, Site.UNCOVERED),
    ("DESCENDANTS", 0, Site.UNCOVERED),
    ("FILTER", 2, Site.UNCOVERED),
    ("ENDFILTER", 0, Site.UNCOVERED),
    ("TOXML", 0, Site.UNCOVERED),
    ("TOXMLLIST", 0, Site.UNCOVERED),
    ("XMLTAGEXPR", 0, Site.UNCOVERED),
    ("XMLELTEXPR", 0, Site.UNCOVERED),
    # 176-191
    ("NOTRACE", 0, Site.END_CASE),
    ("XMLCDATA", 2, Site.UNCOVERED),
    ("XMLCOMMENT", 2, Site.UNCOVERED),
    ("XMLPI", 2, Site.UNCOVERED),
    ("DELDESC", 0, Site.UNCOVERED),
    ("CALLPROP", 2, Site.FUNCALL),
    ("BLOCKCHAIN", 2, Site.END_CASE),
    ("NULLBLOCKCHAIN", 0, Site.END_CASE),
    ("UINT24", 4, Site.END_CASE),
    ("INT24", 4, Site.END_CASE),
    ("STOP", 0, Site.MAIN),
    ("GETXELEM", 0, Site.UNCOVERED),
    ("TYPEOFEXPR", 0, Site.END_CASE),
    ("ENTERBLOCK", 2, Site.END_CASE),
    ("LEAVEBLOCK", 2, Site.END_CASE),
    ("IFCANTCALLTOP", 2, Site.MAIN),
    # 192-207
    ("RETRVAL", 0, Site.MAIN),
    ("GETGVAR", 2, Site.MAIN),
    ("SETGVAR", 2, Site.MAIN),
    ("INCGVAR", 2, Site.UNCOVERED),
    ("DECGVAR", 2, Site.UNCOVERED),
    ("GVARINC", 2, Site.UNCOVERED),
    ("GVARDEC", 2, Site.UNCOVERED),
    ("REGEXPTEST", 0, Site.UNCOVERED),
    ("DEFUPVAR", 2, Site.UNCOVERED),
    ("CALLUPVAR", 2, Site.UNCOVERED),
    ("DELGVAR", 2, Site.UNCOVERED),
    ("GETUPVAR", 2, Site.UNCOVERED),
    ("SETUPVAR", 2, Site.UNCOVERED),
    ("CALLLOCAL", 2, Site.END_CASE),
    ("CALLARG", 2, Site.END_CASE),
    ("BINDLOCAL", 2, Site.END_CASE),
    # 208-228
    ("CALLGNAME", 2, Site.MAIN),
    ("GENERATOR", 0, Site.UNCOVERED),
    ("YIELD", 0, Site.UNCOVERED),
    ("ARRAYPUSH", 2, Site.UNCOVERED),
    ("GETHOLE", 0, Site.END_CASE),
    ("SETHOLE", 0, Site.END_CASE),
    ("DEFAULTVALUE", 0, Site.UNCOVERED),
    ("TRACE", 0, Site.END_CASE),
    ("REST", 0, Site.UNCOVERED),
    ("TOID", 0, Site.END_CASE),
    ("IMPLICITTHIS", 2, Site.END_CASE),
    ("LOOPENTRY", 1, Site.END_CASE),
    ("ACTUALSFILLED", 1, Site.UNCOVERED),
    ("UNUSED221", 0, Site.MAIN),
    ("UNUSED222", 0, Site.MAIN),
    ("UNUSED223", 0, Site.MAIN),
    ("CONDITIONALJUMP", 2, Site.MAIN),
    ("LABEL", 2, Site.END_CASE),
    ("UNUSED226", 0, Site.MAIN),
    ("POPFIXUP", 0, Site.END_CASE),
    ("DEBUGLEAVEBLOCK", 0, Site.END_CASE),
]

assert len(_SPEC) == NUM_OPCODES, f"opcode table has {len(_SPEC)} entries"

JsOp = enum.IntEnum("JsOp", {name: code for code, (name, _, _) in enumerate(_SPEC)})
JsOp.__doc__ = "The 229 bytecodes of the JS-like stack VM."

_OPERAND_BYTES = tuple(spec[1] for spec in _SPEC)
_EXIT_SITES = tuple(spec[2] for spec in _SPEC)


def operand_bytes(op: int) -> int:
    """Immediate-operand byte count following the opcode byte."""
    return _OPERAND_BYTES[op]


def exit_site(op: int) -> Site:
    """Dispatch site the handler of *op* uses to fetch the next bytecode."""
    return _EXIT_SITES[op]


def instruction_length(op: int) -> int:
    """Total encoded length (opcode byte + operands)."""
    return 1 + _OPERAND_BYTES[op]


def disassemble(code: bytes, atoms: list | None = None) -> list[str]:
    """Render encoded bytecode as one string per instruction."""
    lines = []
    offset = 0
    while offset < len(code):
        op = code[offset]
        width = _OPERAND_BYTES[op]
        operand = int.from_bytes(
            code[offset + 1 : offset + 1 + width], "little", signed=True
        ) if width else None
        name = JsOp(op).name
        if operand is None:
            lines.append(f"{offset:5d}  {name}")
        elif atoms is not None and name in ("STRING", "NAME", "GETGNAME", "SETGNAME",
                                            "CALLGNAME", "DOUBLE", "GETPROP", "SETPROP"):
            try:
                lines.append(f"{offset:5d}  {name} {operand} ({atoms[operand]!r})")
            except (IndexError, TypeError):
                lines.append(f"{offset:5d}  {name} {operand}")
        else:
            lines.append(f"{offset:5d}  {name} {operand}")
        offset += 1 + width
    return lines
