"""Functional interpreter for the JS-like stack VM.

Trace callback signature is shared with the Lua VM::

    trace(op, site, taken, callee, daddrs, builtin, cost)

``site`` here is *dynamic*: it reports the dispatch site through which this
bytecode was fetched, i.e. the exit site of the previous handler
(:func:`repro.vm.js.opcodes.exit_site`).  SCD covers the MAIN, FUNCALL and
END_CASE sites (the three ``.op`` annotation points of Section III-C) but
not the UNCOVERED slow paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.builtins import BUILTINS, builtin_cost
from repro.vm.js.compiler import JsFunctionCode, JsModule, compile_module_js
from repro.vm.js.opcodes import JsOp, exit_site
from repro.vm.trace import (
    AddressSpace,
    CALLEE_BUILTIN,
    CALLEE_NONE,
    CALLEE_RETURN,
    CALLEE_SCRIPT,
    Site,
    TAKEN_FALSE,
    TAKEN_NONE,
    TAKEN_TRUE,
)
from repro.vm.values import (
    VmError,
    arith,
    compare,
    concat_values,
    index_get,
    index_set,
    is_truthy,
    length_of,
    negate,
    tostring,
)

MAX_CALL_DEPTH = 220


@dataclass
class JsFunction:
    code: JsFunctionCode

    def __str__(self) -> str:
        return f"function: {self.code.name}"


@dataclass
class JsBuiltin:
    name: str

    def __str__(self) -> str:
        return f"builtin: {self.name}"


class _Frame:
    __slots__ = ("fn", "locals", "stack", "pc", "want_result")

    def __init__(self, fn: JsFunctionCode, locals_: list):
        self.fn = fn
        self.locals = locals_
        self.stack: list = []
        self.pc = 0


class JsVM:
    """One stack-VM interpreter instance.

    Args:
        module: compiled functions.
        max_steps: executed-bytecode budget.
    """

    def __init__(self, module: JsModule, max_steps: int = 100_000_000):
        self.module = module
        self.max_steps = max_steps
        self.globals: dict = {}
        self.output: list[str] = []
        self.steps = 0
        self.addr = AddressSpace()
        for name in BUILTINS:
            self.globals[name] = JsBuiltin(name)
        for name, fn in module.functions.items():
            self.globals[name] = JsFunction(fn)

    @classmethod
    def from_source(cls, source: str, max_steps: int = 100_000_000) -> "JsVM":
        from repro.lang import parse

        return cls(compile_module_js(parse(source)), max_steps=max_steps)

    def run(self, trace=None) -> list[str]:
        """Execute the main script to completion; returns captured output."""
        main = self.module.main
        frames = [_Frame(main, [None] * max(main.nlocals, 1))]
        addr = self.addr
        globals_ = self.globals
        max_steps = self.max_steps
        site = int(Site.MAIN)

        while frames:
            frame = frames[-1]
            code = frame.fn.decoded
            atoms = frame.fn.atoms
            locals_ = frame.locals
            stack = frame.stack
            pc = frame.pc
            depth = len(frames) - 1
            reload = False

            while not reload:
                op, arg = code[pc]
                pc += 1
                self.steps += 1
                if self.steps > max_steps:
                    raise VmError(f"step limit exceeded ({max_steps})")

                taken = TAKEN_NONE
                callee_kind = CALLEE_NONE
                daddrs: tuple = ()
                builtin_name = None
                cost = None

                if op == JsOp.GETLOCAL:
                    stack.append(locals_[arg])
                    if trace is not None:
                        daddrs = (
                            addr.frame_slot(depth, arg),
                            addr.stack_slot(len(stack)),
                        )
                elif op == JsOp.SETLOCAL:
                    locals_[arg] = stack[-1]
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, arg),)
                elif op == JsOp.POP:
                    stack.pop()
                elif op == JsOp.DUP:
                    stack.append(stack[-1])
                elif op == JsOp.SWAP:
                    stack[-1], stack[-2] = stack[-2], stack[-1]
                elif op == JsOp.ZERO:
                    stack.append(0)
                elif op == JsOp.ONE:
                    stack.append(1)
                elif op == JsOp.INT8 or op == JsOp.INT32:
                    stack.append(arg)
                elif op == JsOp.DOUBLE or op == JsOp.STRING:
                    stack.append(atoms[arg])
                    if trace is not None:
                        daddrs = (addr.const_slot(frame.fn.index, arg),)
                elif op == JsOp.TRUE:
                    stack.append(True)
                elif op == JsOp.FALSE:
                    stack.append(False)
                elif op == JsOp.UNDEFINED:
                    stack.append(None)
                elif JsOp.EQ <= op <= JsOp.GE:
                    right = stack.pop()
                    left = stack.pop()
                    stack.append(compare(_COMPARE_SYMBOL[op], left, right))
                elif op == JsOp.ADD:
                    right = stack.pop()
                    left = stack.pop()
                    if isinstance(left, str) or isinstance(right, str):
                        stack.append(concat_values(left, right))
                    else:
                        stack.append(arith("+", left, right))
                elif JsOp.SUB <= op <= JsOp.MOD:
                    right = stack.pop()
                    left = stack.pop()
                    stack.append(arith(_ARITH_SYMBOL[op], left, right))
                elif op == JsOp.INTDIV:
                    right = stack.pop()
                    left = stack.pop()
                    stack.append(arith("//", left, right))
                elif op == JsOp.CONCAT:
                    right = stack.pop()
                    left = stack.pop()
                    stack.append(concat_values(left, right))
                    if trace is not None:
                        text = stack[-1]
                        cost = (8 + len(text) // 4, 3, 1)
                elif op == JsOp.NEG:
                    stack.append(negate(stack.pop()))
                elif op == JsOp.NOT:
                    stack.append(not is_truthy(stack.pop()))
                elif op == JsOp.GOTO:
                    pc = arg
                elif op == JsOp.IFEQ:
                    condition = is_truthy(stack.pop())
                    if not condition:
                        pc = arg
                        taken = TAKEN_TRUE
                    else:
                        taken = TAKEN_FALSE
                elif op == JsOp.IFNE:
                    condition = is_truthy(stack.pop())
                    if condition:
                        pc = arg
                        taken = TAKEN_TRUE
                    else:
                        taken = TAKEN_FALSE
                elif op == JsOp.AND:
                    if not is_truthy(stack[-1]):
                        pc = arg
                        taken = TAKEN_TRUE
                    else:
                        taken = TAKEN_FALSE
                elif op == JsOp.OR:
                    if is_truthy(stack[-1]):
                        pc = arg
                        taken = TAKEN_TRUE
                    else:
                        taken = TAKEN_FALSE
                elif op == JsOp.GETGNAME:
                    name = atoms[arg]
                    stack.append(globals_.get(name))
                    if trace is not None:
                        daddrs = (addr.global_slot(name),)
                elif op == JsOp.SETGNAME:
                    name = atoms[arg]
                    globals_[name] = stack[-1]
                    if trace is not None:
                        daddrs = (addr.global_slot(name),)
                elif op == JsOp.CALLGNAME:
                    name = atoms[arg]
                    stack.append(globals_.get(name))
                    if trace is not None:
                        daddrs = (addr.global_slot(name),)
                elif op == JsOp.GETELEM:
                    key = stack.pop()
                    obj = stack.pop()
                    stack.append(index_get(obj, key))
                    if trace is not None:
                        daddrs = (self._container_addr(obj, key),)
                elif op == JsOp.SETELEM:
                    value = stack.pop()
                    key = stack.pop()
                    obj = stack.pop()
                    index_set(obj, key, value)
                    stack.append(value)
                    if trace is not None:
                        daddrs = (self._container_addr(obj, key),)
                elif op == JsOp.LENGTH:
                    stack.append(length_of(stack.pop()))
                elif op == JsOp.NEWARRAY:
                    items = stack[len(stack) - arg :] if arg else []
                    del stack[len(stack) - arg :]
                    array = list(items)
                    stack.append(array)
                    if trace is not None:
                        daddrs = (addr.object_base(array),)
                        cost = (6 + 4 * arg, arg, arg)
                elif op == JsOp.NEWOBJECT:
                    stack.append({})
                    if trace is not None:
                        daddrs = (addr.object_base(stack[-1]),)
                elif op == JsOp.INITELEM:
                    value = stack.pop()
                    key = stack.pop()
                    obj = stack[-1]
                    index_set(obj, key, value)
                    if trace is not None:
                        daddrs = (self._container_addr(obj, key),)
                elif op == JsOp.CALL:
                    argc = arg
                    args = stack[len(stack) - argc :]
                    del stack[len(stack) - argc :]
                    callee = stack.pop()
                    if isinstance(callee, JsBuiltin):
                        callee_kind = CALLEE_BUILTIN
                        builtin_name = callee.name
                        fn = BUILTINS[callee.name][0]
                        result = fn(self, args)
                        stack.append(result)
                        if trace is not None:
                            cost = builtin_cost(callee.name, tuple(args), result)
                            daddrs = (addr.stack_slot(len(stack)),)
                    elif isinstance(callee, JsFunction):
                        if len(frames) >= MAX_CALL_DEPTH:
                            raise VmError("guest call stack overflow")
                        callee_kind = CALLEE_SCRIPT
                        child = callee.code
                        child_locals = [None] * max(child.nlocals, 1)
                        for position in range(min(child.nparams, len(args))):
                            child_locals[position] = args[position]
                        frame.pc = pc
                        frames.append(_Frame(child, child_locals))
                        reload = True
                    else:
                        raise VmError(
                            f"attempt to call a non-function ({tostring(callee)})"
                        )
                elif op == JsOp.RETURN:
                    callee_kind = CALLEE_RETURN
                    result = stack.pop()
                    frames.pop()
                    if frames:
                        frames[-1].stack.append(result)
                    reload = True
                elif op == JsOp.STOP:
                    frames.pop()
                    reload = True
                elif op == JsOp.LOOPHEAD or op == JsOp.NOP:
                    pass
                else:
                    raise VmError(
                        f"opcode {JsOp(op).name} is defined but not generated "
                        "by this compiler"
                    )

                if trace is not None:
                    trace(op, site, taken, callee_kind, daddrs, builtin_name, cost)
                site = int(_EXIT_SITES[op])
                if reload:
                    break
            else:
                continue
        return self.output

    def _container_addr(self, obj: object, key: object) -> int:
        if isinstance(obj, list) and isinstance(key, int) and not isinstance(key, bool):
            return self.addr.element(obj, key)
        if isinstance(obj, (dict, str)):
            return self.addr.map_slot(
                obj, key if not isinstance(key, (list, dict)) else 0
            )
        return 0


_COMPARE_SYMBOL = {
    JsOp.EQ: "==",
    JsOp.NE: "!=",
    JsOp.LT: "<",
    JsOp.LE: "<=",
    JsOp.GT: ">",
    JsOp.GE: ">=",
}

_ARITH_SYMBOL = {
    JsOp.SUB: "-",
    JsOp.MUL: "*",
    JsOp.DIV: "/",
    JsOp.MOD: "%",
}

from repro.vm.js.opcodes import _EXIT_SITES  # noqa: E402  (hot-loop lookup table)
