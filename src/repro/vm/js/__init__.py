"""Stack-based guest VM modelled on SpiderMonkey 17.

229 opcodes with variable-length encoding: a 1-byte opcode followed by 0-4
operand bytes (so the SCD ``Rmask`` for this interpreter is ``0xFF``).  The
interpreter reaches its dispatcher through *multiple paths* — the main loop,
the FUNCALL tail and the common END_CASE macro, which SCD covers, plus
slow-path handler exits it does not (Section III-C / VI-A1's explanation of
the smaller JavaScript speedups).

Public API mirrors :mod:`repro.vm.lua`::

    from repro.vm.js import JsVM
    vm = JsVM.from_source("print(1 + 2);")
    output = vm.run()
"""

from repro.vm.js.opcodes import (
    JsOp,
    NUM_OPCODES,
    OPCODE_MASK,
    operand_bytes,
    exit_site,
    disassemble,
)
from repro.vm.js.compiler import compile_module_js, JsFunctionCode, JsCompileError
from repro.vm.js.interp import JsVM

__all__ = [
    "JsOp",
    "NUM_OPCODES",
    "OPCODE_MASK",
    "operand_bytes",
    "exit_site",
    "disassemble",
    "compile_module_js",
    "JsFunctionCode",
    "JsCompileError",
    "JsVM",
]
