"""AST -> stack bytecode compiler for the JS-like VM.

Emits SpiderMonkey-shaped code: short constant forms (``ZERO``/``ONE``/
``INT8``/``INT32``), atom-indexed names, ``IFEQ``/``IFNE``/``GOTO`` with
2-byte relative offsets, value-preserving ``AND``/``OR`` short-circuit
jumps, ``SETLOCAL; POP`` statement endings and a ``LOOPHEAD`` marker at
loop tops.

Numeric ``for`` loops lower to explicit local/limit/step locals with an
``ADD``/``SETLOCAL`` increment, mirroring what a JS compiler emits for
``for (;;)`` — there is no FORLOOP-style fused opcode in a stack VM, which
is one reason the two interpreters' bytecode mixes differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.vm.builtins import BUILTINS
from repro.vm.js.opcodes import JsOp, operand_bytes


class JsCompileError(ValueError):
    """Raised on semantic errors while compiling for the stack VM."""

    def __init__(self, message: str, line: int = 0):
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


@dataclass
class JsFunctionCode:
    """One compiled function: encoded bytes plus decode acceleration.

    Attributes:
        name: function name ("main" for the top-level script).
        nparams: parameter count (parameters occupy the first local slots).
        code: the variable-length encoded bytecode.
        atoms: constant/atom table (names, strings, doubles, big ints).
        nlocals: local-slot count including parameters.
        index: position in the module list (address-model base).
        decoded: ``(op, arg)`` per instruction; jump args are converted to
            *instruction indices* at finalize time.
        lengths: encoded byte length per instruction (I-cache model input).
    """

    name: str
    nparams: int
    code: bytearray = field(default_factory=bytearray)
    atoms: list = field(default_factory=list)
    nlocals: int = 0
    index: int = 0
    decoded: list = field(default_factory=list)
    lengths: list = field(default_factory=list)

    def finalize(self) -> None:
        offset_to_index: dict[int, int] = {}
        raw: list[tuple[int, int | None, int]] = []
        offset = 0
        while offset < len(self.code):
            op = self.code[offset]
            width = operand_bytes(op)
            arg = (
                int.from_bytes(self.code[offset + 1 : offset + 1 + width],
                               "little", signed=True)
                if width
                else None
            )
            offset_to_index[offset] = len(raw)
            raw.append((op, arg, offset))
            offset += 1 + width
        jumps = {JsOp.GOTO, JsOp.IFEQ, JsOp.IFNE, JsOp.AND, JsOp.OR}
        self.decoded = []
        self.lengths = []
        for op, arg, at in raw:
            if op in jumps:
                arg = offset_to_index[at + arg]
            self.decoded.append((op, arg))
            self.lengths.append(1 + operand_bytes(op))


@dataclass
class JsModule:
    """All compiled functions; ``functions_list[0]`` is the main script."""

    functions_list: list
    functions: dict

    @property
    def main(self) -> JsFunctionCode:
        return self.functions_list[0]


@dataclass
class _Loop:
    break_positions: list = field(default_factory=list)
    continue_positions: list = field(default_factory=list)
    continue_target: int | None = None


class _JsFunctionCompiler:
    def __init__(self, name: str, params: list, is_main: bool, module_functions: set):
        self.fn = JsFunctionCode(name=name, nparams=len(params))
        self.is_main = is_main
        self.module_functions = module_functions
        self._atom_index: dict = {}
        self.scopes: list[dict] = [{}]
        self.nlocals = 0
        self.loops: list[_Loop] = []
        for param in params:
            self._declare(param, 0)

    # -- locals / atoms ----------------------------------------------------

    def _declare(self, name: str, line: int) -> int:
        scope = self.scopes[-1]
        if name in scope:
            raise JsCompileError(f"duplicate declaration of {name!r}", line)
        slot = self.nlocals
        self.nlocals += 1
        if self.nlocals > 0xFFF:
            raise JsCompileError("too many locals")
        scope[name] = slot
        self.fn.nlocals = max(self.fn.nlocals, self.nlocals)
        return slot

    def _lookup(self, name: str) -> int | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def atom(self, value: object) -> int:
        key = (type(value).__name__, value)
        index = self._atom_index.get(key)
        if index is None:
            index = len(self.fn.atoms)
            self.fn.atoms.append(value)
            self._atom_index[key] = index
            if index > 0x7FFF:
                raise JsCompileError("atom table overflow")
        return index

    # -- emission -----------------------------------------------------------

    def emit(self, op: JsOp, arg: int | None = None) -> int:
        """Append one instruction; returns its byte offset."""
        at = len(self.fn.code)
        width = operand_bytes(op)
        self.fn.code.append(int(op))
        if width:
            if arg is None:
                raise JsCompileError(f"{op.name} requires an operand")
            self.fn.code.extend(arg.to_bytes(width, "little", signed=True))
        elif arg is not None:
            raise JsCompileError(f"{op.name} takes no operand")
        return at

    def emit_jump(self, op: JsOp) -> int:
        """Emit a forward jump with placeholder offset; returns its offset."""
        return self.emit(op, 0)

    def patch_jump(self, at: int, target: int | None = None) -> None:
        """Point the jump at byte offset *at* to *target* (default: here)."""
        if target is None:
            target = len(self.fn.code)
        relative = target - at
        self.fn.code[at + 1 : at + 3] = relative.to_bytes(2, "little", signed=True)

    def here(self) -> int:
        return len(self.fn.code)

    # == statements ============================================================

    def compile_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        saved = self.nlocals
        for statement in block.statements:
            self.compile_statement(statement)
        self.scopes.pop()
        self.nlocals = saved

    def compile_statement(self, node: ast.Node) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__.lower()}", None)
        if method is None:
            raise JsCompileError(
                f"cannot compile statement {type(node).__name__}", node.line
            )
        method(node)

    def _stmt_vardecl(self, node: ast.VarDecl) -> None:
        if self.is_main and len(self.scopes) == 1:
            self.compile_expr(node.value)
            self.emit(JsOp.SETGNAME, self.atom(node.name))
            self.emit(JsOp.POP)
            return
        slot = self._declare(node.name, node.line)
        self.compile_expr(node.value)
        self.emit(JsOp.SETLOCAL, slot)
        self.emit(JsOp.POP)

    def _stmt_assign(self, node: ast.Assign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            self.compile_expr(node.value)
            slot = self._lookup(target.id)
            if slot is not None:
                self.emit(JsOp.SETLOCAL, slot)
            else:
                self.emit(JsOp.SETGNAME, self.atom(target.id))
            self.emit(JsOp.POP)
            return
        if isinstance(target, ast.Index):
            self.compile_expr(target.obj)
            self.compile_expr(target.key)
            self.compile_expr(node.value)
            self.emit(JsOp.SETELEM)
            self.emit(JsOp.POP)
            return
        raise JsCompileError("invalid assignment target", node.line)

    def _stmt_exprstmt(self, node: ast.ExprStmt) -> None:
        self.compile_expr(node.expr)
        self.emit(JsOp.POP)

    def _stmt_if(self, node: ast.If) -> None:
        self.compile_expr(node.cond)
        else_jump = self.emit_jump(JsOp.IFEQ)
        self.compile_block(node.then)
        if node.orelse is not None:
            end_jump = self.emit_jump(JsOp.GOTO)
            self.patch_jump(else_jump)
            if isinstance(node.orelse, ast.If):
                self._stmt_if(node.orelse)
            else:
                self.compile_block(node.orelse)
            self.patch_jump(end_jump)
        else:
            self.patch_jump(else_jump)

    def _stmt_while(self, node: ast.While) -> None:
        top = self.here()
        self.emit(JsOp.LOOPHEAD)
        self.compile_expr(node.cond)
        exit_jump = self.emit_jump(JsOp.IFEQ)
        loop = _Loop(continue_target=top)
        self.loops.append(loop)
        self.compile_block(node.body)
        back = self.emit_jump(JsOp.GOTO)
        self.patch_jump(back, top)
        self.patch_jump(exit_jump)
        for position in loop.break_positions:
            self.patch_jump(position)
        self.loops.pop()

    def _stmt_fornum(self, node: ast.ForNum) -> None:
        self.scopes.append({})
        saved = self.nlocals
        var_slot = self._declare(node.var, node.line)
        limit_slot = self._declare(f".limit{len(self.loops)}", node.line)
        step_slot = self._declare(f".step{len(self.loops)}", node.line)

        step_value = 1
        if node.step is not None:
            if not (isinstance(node.step, ast.Literal)
                    and isinstance(node.step.value, (int, float))
                    and not isinstance(node.step.value, bool)):
                raise JsCompileError(
                    "the stack VM requires a literal 'for' step", node.line
                )
            step_value = node.step.value
        if step_value == 0:
            raise JsCompileError("'for' step must be non-zero", node.line)

        for slot, expr in ((var_slot, node.start), (limit_slot, node.stop)):
            self.compile_expr(expr)
            self.emit(JsOp.SETLOCAL, slot)
            self.emit(JsOp.POP)
        self._push_number(step_value)
        self.emit(JsOp.SETLOCAL, step_slot)
        self.emit(JsOp.POP)

        top = self.here()
        self.emit(JsOp.LOOPHEAD)
        self.emit(JsOp.GETLOCAL, var_slot)
        self.emit(JsOp.GETLOCAL, limit_slot)
        self.emit(JsOp.LE if step_value > 0 else JsOp.GE)
        exit_jump = self.emit_jump(JsOp.IFEQ)

        loop = _Loop()
        self.loops.append(loop)
        self.compile_block(node.body)
        for position in loop.continue_positions:
            self.patch_jump(position)
        self.emit(JsOp.GETLOCAL, var_slot)
        self.emit(JsOp.GETLOCAL, step_slot)
        self.emit(JsOp.ADD)
        self.emit(JsOp.SETLOCAL, var_slot)
        self.emit(JsOp.POP)
        back = self.emit_jump(JsOp.GOTO)
        self.patch_jump(back, top)
        self.patch_jump(exit_jump)
        for position in loop.break_positions:
            self.patch_jump(position)
        self.loops.pop()
        self.scopes.pop()
        self.nlocals = saved

    def _stmt_break(self, node: ast.Break) -> None:
        if not self.loops:
            raise JsCompileError("'break' outside a loop", node.line)
        self.loops[-1].break_positions.append(self.emit_jump(JsOp.GOTO))

    def _stmt_continue(self, node: ast.Continue) -> None:
        if not self.loops:
            raise JsCompileError("'continue' outside a loop", node.line)
        loop = self.loops[-1]
        position = self.emit_jump(JsOp.GOTO)
        if loop.continue_target is not None:
            self.patch_jump(position, loop.continue_target)
        else:
            loop.continue_positions.append(position)

    def _stmt_return(self, node: ast.Return) -> None:
        if node.value is None:
            self.emit(JsOp.UNDEFINED)
        else:
            self.compile_expr(node.value)
        self.emit(JsOp.RETURN)

    def _stmt_block(self, node: ast.Block) -> None:
        self.compile_block(node)

    # == expressions =============================================================

    def compile_expr(self, node: ast.Node) -> None:
        method = getattr(self, f"_expr_{type(node).__name__.lower()}", None)
        if method is None:
            raise JsCompileError(
                f"cannot compile expression {type(node).__name__}", node.line
            )
        method(node)

    def _push_number(self, value: int | float) -> None:
        if isinstance(value, int) and not isinstance(value, bool):
            if value == 0:
                self.emit(JsOp.ZERO)
            elif value == 1:
                self.emit(JsOp.ONE)
            elif -128 <= value <= 127:
                self.emit(JsOp.INT8, value)
            elif -(2**31) <= value < 2**31:
                self.emit(JsOp.INT32, value)
            else:
                self.emit(JsOp.DOUBLE, self.atom(value))
        else:
            self.emit(JsOp.DOUBLE, self.atom(value))

    def _expr_literal(self, node: ast.Literal) -> None:
        value = node.value
        if value is None:
            self.emit(JsOp.UNDEFINED)
        elif value is True:
            self.emit(JsOp.TRUE)
        elif value is False:
            self.emit(JsOp.FALSE)
        elif isinstance(value, str):
            self.emit(JsOp.STRING, self.atom(value))
        else:
            self._push_number(value)

    def _expr_name(self, node: ast.Name) -> None:
        slot = self._lookup(node.id)
        if slot is not None:
            self.emit(JsOp.GETLOCAL, slot)
        else:
            self.emit(JsOp.GETGNAME, self.atom(node.id))

    _BINOPS = {
        "+": JsOp.ADD,
        "-": JsOp.SUB,
        "*": JsOp.MUL,
        "/": JsOp.DIV,
        "//": JsOp.INTDIV,
        "%": JsOp.MOD,
        "..": JsOp.CONCAT,
        "==": JsOp.EQ,
        "!=": JsOp.NE,
        "<": JsOp.LT,
        "<=": JsOp.LE,
        ">": JsOp.GT,
        ">=": JsOp.GE,
    }

    def _expr_binop(self, node: ast.BinOp) -> None:
        try:
            op = self._BINOPS[node.op]
        except KeyError:
            raise JsCompileError(f"unknown operator {node.op!r}", node.line) from None
        self.compile_expr(node.left)
        self.compile_expr(node.right)
        self.emit(op)

    def _expr_unop(self, node: ast.UnOp) -> None:
        self.compile_expr(node.operand)
        if node.op == "-":
            self.emit(JsOp.NEG)
        elif node.op == "not":
            self.emit(JsOp.NOT)
        else:
            raise JsCompileError(f"unknown unary operator {node.op!r}", node.line)

    def _expr_logical(self, node: ast.Logical) -> None:
        # SpiderMonkey's value-preserving short-circuit: AND jumps past the
        # right operand when the left is falsey (keeping it on the stack),
        # otherwise pops and evaluates the right operand.
        self.compile_expr(node.left)
        jump = self.emit_jump(JsOp.AND if node.op == "and" else JsOp.OR)
        self.emit(JsOp.POP)
        self.compile_expr(node.right)
        self.patch_jump(jump)

    def _expr_index(self, node: ast.Index) -> None:
        self.compile_expr(node.obj)
        self.compile_expr(node.key)
        self.emit(JsOp.GETELEM)

    def _expr_arraylit(self, node: ast.ArrayLit) -> None:
        for item in node.items:
            self.compile_expr(item)
        if len(node.items) > 0x7FFF:
            raise JsCompileError("array literal too long", node.line)
        self.emit(JsOp.NEWARRAY, len(node.items))

    def _expr_maplit(self, node: ast.MapLit) -> None:
        self.emit(JsOp.NEWOBJECT, min(len(node.pairs), 0x7FFF))
        for key_node, value_node in node.pairs:
            self.compile_expr(key_node)
            self.compile_expr(value_node)
            self.emit(JsOp.INITELEM)

    def _expr_call(self, node: ast.Call) -> None:
        if node.callee == "len" and len(node.args) == 1:
            self.compile_expr(node.args[0])
            self.emit(JsOp.LENGTH, self.atom("length"))
            return
        if (
            node.callee not in self.module_functions
            and node.callee not in BUILTINS
            and self._lookup(node.callee) is None
        ):
            raise JsCompileError(
                f"call to undefined function {node.callee!r}", node.line
            )
        self.emit(JsOp.CALLGNAME, self.atom(node.callee))
        for arg in node.args:
            self.compile_expr(arg)
        self.emit(JsOp.CALL, len(node.args))


def _compile_one(
    node: ast.FuncDecl | None, module: ast.Module, module_functions: set
) -> JsFunctionCode:
    if node is None:
        compiler = _JsFunctionCompiler("main", [], True, module_functions)
        for statement in module.top_level():
            compiler.compile_statement(statement)
        compiler.emit(JsOp.STOP)
    else:
        compiler = _JsFunctionCompiler(node.name, node.params, False, module_functions)
        for statement in node.body.statements:
            compiler.compile_statement(statement)
        compiler.emit(JsOp.UNDEFINED)
        compiler.emit(JsOp.RETURN)
    compiler.fn.finalize()
    return compiler.fn


def compile_module_js(module: ast.Module) -> JsModule:
    """Compile a parsed module for :class:`repro.vm.js.interp.JsVM`."""
    function_names = {fn.name for fn in module.functions()}
    for fn in module.functions():
        if fn.name in BUILTINS:
            raise JsCompileError(f"function {fn.name!r} shadows a builtin", fn.line)
    main = _compile_one(None, module, function_names)
    functions_list = [main]
    functions: dict[str, JsFunctionCode] = {}
    for fn in module.functions():
        code = _compile_one(fn, module, function_names)
        code.index = len(functions_list)
        functions_list.append(code)
        functions[fn.name] = code
    return JsModule(functions_list=functions_list, functions=functions)
