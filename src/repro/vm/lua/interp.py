"""Functional interpreter for the Lua-like register VM.

Executes the bytecode produced by :mod:`repro.vm.lua.compiler` with Lua 5.3
semantics and optionally emits one trace event per executed bytecode.  The
trace callback drives the native interpreter model::

    trace(op, site, taken, callee, daddrs, builtin, cost)

* ``op`` — the 6-bit opcode (the JTE key under SCD).
* ``site`` — dispatch site; always ``Site.MAIN`` for Lua (single dispatcher).
* ``taken`` — handler-internal guest-conditional branch outcome
  (``TAKEN_NONE`` for straight-line handlers).
* ``callee`` — ``CALLEE_SCRIPT`` / ``CALLEE_BUILTIN`` / ``CALLEE_RETURN``
  for control opcodes, else ``CALLEE_NONE``.
* ``daddrs`` — synthetic guest data addresses for the D-cache model.
* ``builtin`` — builtin name on builtin calls.
* ``cost`` — (insts, loads, stores) extra work for size-dependent builtins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.builtins import BUILTINS, builtin_cost
from repro.vm.lua.compiler import CompiledModule, LuaProto, compile_module
from repro.vm.lua.opcodes import Op, RK_CONST_BIT
from repro.vm.trace import (
    AddressSpace,
    CALLEE_BUILTIN,
    CALLEE_NONE,
    CALLEE_RETURN,
    CALLEE_SCRIPT,
    Site,
    TAKEN_FALSE,
    TAKEN_NONE,
    TAKEN_TRUE,
)
from repro.vm.values import (
    VmError,
    arith,
    compare,
    concat_values,
    index_get,
    index_set,
    is_truthy,
    length_of,
    negate,
    tostring,
)

#: Maximum guest call depth (the paper's scripts recurse modestly).
MAX_CALL_DEPTH = 220


@dataclass
class LuaFunction:
    """A first-class script function (prototype, no upvalues)."""

    proto: LuaProto

    def __str__(self) -> str:
        return f"function: {self.proto.name}"


@dataclass
class Builtin:
    """A native builtin bound into the globals table."""

    name: str

    def __str__(self) -> str:
        return f"builtin: {self.name}"


class _Frame:
    __slots__ = ("proto", "regs", "pc", "ret_reg", "want_result")

    def __init__(self, proto: LuaProto, regs: list, ret_reg: int, want_result: bool):
        self.proto = proto
        self.regs = regs
        self.pc = 0
        self.ret_reg = ret_reg
        self.want_result = want_result


class LuaVM:
    """One interpreter instance: globals, output buffer and step budget.

    Args:
        module: compiled prototypes.
        max_steps: executed-bytecode budget; exceeded -> :class:`VmError`.
    """

    def __init__(self, module: CompiledModule, max_steps: int = 100_000_000):
        self.module = module
        self.max_steps = max_steps
        self.globals: dict = {}
        self.output: list[str] = []
        self.steps = 0
        self.addr = AddressSpace()
        for name in BUILTINS:
            self.globals[name] = Builtin(name)
        for name, proto in module.functions.items():
            self.globals[name] = LuaFunction(proto)

    @classmethod
    def from_source(cls, source: str, max_steps: int = 100_000_000) -> "LuaVM":
        from repro.lang import parse

        return cls(compile_module(parse(source)), max_steps=max_steps)

    # -- execution --------------------------------------------------------

    def run(self, trace=None) -> list[str]:
        """Execute the main chunk to completion; returns captured output."""
        main = self.module.main
        frames = [_Frame(main, [None] * max(main.max_regs, 2), -1, False)]
        addr = self.addr
        globals_ = self.globals
        max_steps = self.max_steps

        while frames:
            frame = frames[-1]
            proto = frame.proto
            code = proto.decoded
            consts = proto.constants
            regs = frame.regs
            pc = frame.pc
            depth = len(frames) - 1
            reload = False

            while not reload:
                op, a, b, c, bx, sbx = code[pc]
                pc += 1
                self.steps += 1
                if self.steps > max_steps:
                    raise VmError(f"step limit exceeded ({max_steps})")

                taken = TAKEN_NONE
                callee_kind = CALLEE_NONE
                daddrs: tuple = ()
                builtin_name = None
                cost = None

                if op == Op.MOVE:
                    regs[a] = regs[b]
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, b), addr.frame_slot(depth, a))
                elif op == Op.LOADK:
                    regs[a] = consts[bx]
                    if trace is not None:
                        daddrs = (
                            addr.const_slot(proto.index, bx),
                            addr.frame_slot(depth, a),
                        )
                elif op == Op.LOADBOOL:
                    regs[a] = bool(b)
                    if c:
                        pc += 1
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, a),)
                elif op == Op.LOADNIL:
                    for offset in range(b + 1):
                        regs[a + offset] = None
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, a),)
                elif op == Op.GETTABUP:
                    key = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    regs[a] = globals_.get(key)
                    if trace is not None:
                        daddrs = (addr.global_slot(str(key)), addr.frame_slot(depth, a))
                elif op == Op.SETTABUP:
                    key = consts[b & 0xFF] if b & RK_CONST_BIT else regs[b]
                    value = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    globals_[key] = value
                    if trace is not None:
                        daddrs = (addr.global_slot(str(key)),)
                elif op == Op.GETTABLE:
                    obj = regs[b]
                    key = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    regs[a] = index_get(obj, key)
                    if trace is not None:
                        daddrs = (
                            addr.frame_slot(depth, b),
                            self._container_addr(obj, key),
                            addr.frame_slot(depth, a),
                        )
                elif op == Op.SETTABLE:
                    obj = regs[a]
                    key = consts[b & 0xFF] if b & RK_CONST_BIT else regs[b]
                    value = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    index_set(obj, key, value)
                    if trace is not None:
                        daddrs = (
                            addr.frame_slot(depth, a),
                            self._container_addr(obj, key),
                        )
                elif op == Op.NEWTABLE:
                    # C (hash-size hint) > 0 marks a map; arrays use B only.
                    regs[a] = {} if c else []
                    if trace is not None:
                        daddrs = (
                            addr.frame_slot(depth, a),
                            addr.object_base(regs[a]),
                        )
                elif Op.ADD <= op <= Op.IDIV and op != Op.POW:
                    left = consts[b & 0xFF] if b & RK_CONST_BIT else regs[b]
                    right = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    regs[a] = arith(_ARITH_SYMBOL[op], left, right)
                    if trace is not None:
                        daddrs = (
                            self._rk_addr(depth, proto.index, b),
                            self._rk_addr(depth, proto.index, c),
                            addr.frame_slot(depth, a),
                        )
                elif op == Op.POW:
                    left = consts[b & 0xFF] if b & RK_CONST_BIT else regs[b]
                    right = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    regs[a] = float(left) ** float(right)
                elif Op.BAND <= op <= Op.SHR:
                    left = consts[b & 0xFF] if b & RK_CONST_BIT else regs[b]
                    right = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    regs[a] = _int_bitop(op, left, right)
                elif op == Op.UNM:
                    regs[a] = negate(regs[b])
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, b), addr.frame_slot(depth, a))
                elif op == Op.BNOT:
                    regs[a] = ~_require_int(regs[b])
                elif op == Op.NOT:
                    regs[a] = not is_truthy(regs[b])
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, b), addr.frame_slot(depth, a))
                elif op == Op.LEN:
                    regs[a] = length_of(regs[b])
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, b), addr.frame_slot(depth, a))
                elif op == Op.CONCAT:
                    text = regs[b]
                    for slot in range(b + 1, c + 1):
                        text = concat_values(text, regs[slot])
                    regs[a] = text
                    if trace is not None:
                        daddrs = tuple(
                            addr.frame_slot(depth, slot) for slot in range(b, c + 1)
                        )
                        cost = (6 * (c - b) + len(text) // 4, c - b + 1, 1)
                elif op == Op.JMP:
                    pc += sbx
                elif op == Op.EQ or op == Op.LT or op == Op.LE:
                    left = consts[b & 0xFF] if b & RK_CONST_BIT else regs[b]
                    right = consts[c & 0xFF] if c & RK_CONST_BIT else regs[c]
                    result = compare(_COMPARE_SYMBOL[op], left, right)
                    if result != bool(a):
                        pc += 1
                        taken = TAKEN_TRUE
                    else:
                        taken = TAKEN_FALSE
                    if trace is not None:
                        daddrs = (
                            self._rk_addr(depth, proto.index, b),
                            self._rk_addr(depth, proto.index, c),
                        )
                elif op == Op.TEST:
                    if is_truthy(regs[a]) != bool(c):
                        pc += 1
                        taken = TAKEN_TRUE
                    else:
                        taken = TAKEN_FALSE
                    if trace is not None:
                        daddrs = (addr.frame_slot(depth, a),)
                elif op == Op.TESTSET:
                    if is_truthy(regs[b]) == bool(c):
                        regs[a] = regs[b]
                        taken = TAKEN_FALSE
                    else:
                        pc += 1
                        taken = TAKEN_TRUE
                elif op == Op.CALL:
                    callee = regs[a]
                    args = regs[a + 1 : a + b]
                    if isinstance(callee, Builtin):
                        callee_kind = CALLEE_BUILTIN
                        builtin_name = callee.name
                        fn = BUILTINS[callee.name][0]
                        result = fn(self, args)
                        if c >= 2:
                            regs[a] = result
                        if trace is not None:
                            cost = builtin_cost(callee.name, tuple(args), result)
                            daddrs = (addr.frame_slot(depth, a),)
                    elif isinstance(callee, LuaFunction):
                        if len(frames) >= MAX_CALL_DEPTH:
                            raise VmError("guest call stack overflow")
                        callee_kind = CALLEE_SCRIPT
                        child = callee.proto
                        child_regs = [None] * max(child.max_regs, 2)
                        for position in range(child.nparams):
                            if position < len(args):
                                child_regs[position] = args[position]
                        frame.pc = pc
                        frames.append(_Frame(child, child_regs, a, c >= 2))
                        reload = True
                        if trace is not None:
                            daddrs = (addr.frame_slot(depth, a),)
                    else:
                        raise VmError(
                            f"attempt to call a non-function ({tostring(callee)})"
                        )
                elif op == Op.RETURN:
                    callee_kind = CALLEE_RETURN
                    result = regs[a] if b >= 2 else None
                    frames.pop()
                    if frames:
                        caller = frames[-1]
                        if frame.want_result:
                            caller.regs[frame.ret_reg] = result
                        reload = True
                        if trace is not None:
                            daddrs = (addr.frame_slot(depth, a),) if b >= 2 else ()
                    else:
                        reload = True
                elif op == Op.FORPREP:
                    start = _require_number(regs[a])
                    step = _require_number(regs[a + 2])
                    _require_number(regs[a + 1])
                    regs[a] = start - step
                    pc += sbx
                    if trace is not None:
                        daddrs = (
                            addr.frame_slot(depth, a),
                            addr.frame_slot(depth, a + 2),
                        )
                elif op == Op.FORLOOP:
                    step = regs[a + 2]
                    value = regs[a] + step
                    regs[a] = value
                    limit = regs[a + 1]
                    if (value <= limit) if step > 0 else (value >= limit):
                        pc += sbx
                        regs[a + 3] = value
                        taken = TAKEN_TRUE
                    else:
                        taken = TAKEN_FALSE
                    if trace is not None:
                        daddrs = (
                            addr.frame_slot(depth, a),
                            addr.frame_slot(depth, a + 1),
                            addr.frame_slot(depth, a + 3),
                        )
                elif op == Op.SETLIST:
                    table = regs[a]
                    if not isinstance(table, list):
                        raise VmError("SETLIST target is not an array")
                    start = (c - 1) * 50
                    for offset in range(b):
                        index_set(table, start + offset, regs[a + 1 + offset])
                    if trace is not None:
                        daddrs = (
                            addr.frame_slot(depth, a),
                            addr.element(table, start),
                        )
                        cost = (4 * b, b, b)
                else:
                    raise VmError(
                        f"opcode {Op(op).name} is defined but not generated "
                        "by this compiler"
                    )

                if trace is not None:
                    trace(op, Site.MAIN, taken, callee_kind, daddrs, builtin_name, cost)
                if reload:
                    break
            else:
                continue
        return self.output

    # -- address helpers -------------------------------------------------------

    def _rk_addr(self, depth: int, proto_index: int, rk: int) -> int:
        if rk & RK_CONST_BIT:
            return self.addr.const_slot(proto_index, rk & 0xFF)
        return self.addr.frame_slot(depth, rk)

    def _container_addr(self, obj: object, key: object) -> int:
        if isinstance(obj, list) and isinstance(key, int) and not isinstance(key, bool):
            return self.addr.element(obj, key)
        if isinstance(obj, (dict, str)):
            return self.addr.map_slot(obj, key if not isinstance(key, (list, dict)) else 0)
        return self.addr.object_base(obj) if isinstance(obj, (list, dict)) else 0


_ARITH_SYMBOL = {
    Op.ADD: "+",
    Op.SUB: "-",
    Op.MUL: "*",
    Op.MOD: "%",
    Op.DIV: "/",
    Op.IDIV: "//",
}

_COMPARE_SYMBOL = {Op.EQ: "==", Op.LT: "<", Op.LE: "<="}


def _require_number(value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise VmError("'for' initial value must be a number")
    return value


def _require_int(value):
    if isinstance(value, bool) or not isinstance(value, int):
        raise VmError("bitwise operand must be an integer")
    return value


def _int_bitop(op: int, left, right):
    left = _require_int(left)
    right = _require_int(right)
    if op == Op.BAND:
        return left & right
    if op == Op.BOR:
        return left | right
    if op == Op.BXOR:
        return left ^ right
    if op == Op.SHL:
        return left << right
    if op == Op.SHR:
        return left >> right
    raise VmError("bad bitop")
