"""Lua 5.3 opcode set and 32-bit instruction encoding.

Layout (Lua 5.3's ``lopcodes.h``)::

    31        23        14  13    6  5      0
    +----------+----------+--------+--------+
    |    B     |    C     |   A    | opcode |   iABC
    |         Bx          |   A    | opcode |   iABx
    |        sBx          |   A    | opcode |   iAsBx
    +---------------------+--------+--------+

The opcode sits in the 6 least-significant bits, so the dispatcher extracts
it with ``bytecode & 0x3F`` — the exact mask the paper programs into
``Rmask`` for Lua.  B and C are 9-bit RK operands: values with bit 8 set
(``RK_CONST_BIT``) index the constant table.
"""

from __future__ import annotations

import enum

#: Number of distinct Lua 5.3 bytecodes (Section V: "Lua has 47 distinct
#: bytecodes").
NUM_OPCODES = 47

#: The dispatcher's opcode-extraction mask (``setmask`` value for Lua).
OPCODE_MASK = 0x3F

#: Bit marking a 9-bit RK operand as a constant-table index.
RK_CONST_BIT = 0x100

#: Maximum register index encodable in an RK operand.
RK_MAX_REG = 0xFF

#: Bias of the signed sBx field (18 bits).
SBX_BIAS = (1 << 17) - 1

_A_SHIFT, _C_SHIFT, _B_SHIFT = 6, 14, 23
_A_MAX, _BC_MAX, _BX_MAX = 0xFF, 0x1FF, 0x3FFFF


class Op(enum.IntEnum):
    """The 47 Lua 5.3 opcodes, numbered as in ``lopcodes.h``."""

    MOVE = 0
    LOADK = 1
    LOADKX = 2
    LOADBOOL = 3
    LOADNIL = 4
    GETUPVAL = 5
    GETTABUP = 6
    GETTABLE = 7
    SETTABUP = 8
    SETUPVAL = 9
    SETTABLE = 10
    NEWTABLE = 11
    SELF = 12
    ADD = 13
    SUB = 14
    MUL = 15
    MOD = 16
    POW = 17
    DIV = 18
    IDIV = 19
    BAND = 20
    BOR = 21
    BXOR = 22
    SHL = 23
    SHR = 24
    UNM = 25
    BNOT = 26
    NOT = 27
    LEN = 28
    CONCAT = 29
    JMP = 30
    EQ = 31
    LT = 32
    LE = 33
    TEST = 34
    TESTSET = 35
    CALL = 36
    TAILCALL = 37
    RETURN = 38
    FORLOOP = 39
    FORPREP = 40
    TFORCALL = 41
    TFORLOOP = 42
    SETLIST = 43
    CLOSURE = 44
    VARARG = 45
    EXTRAARG = 46


assert len(Op) == NUM_OPCODES

#: Opcodes encoded iABx (18-bit unsigned Bx).
ABX_OPCODES = frozenset({Op.LOADK, Op.LOADKX, Op.CLOSURE, Op.EXTRAARG})

#: Opcodes encoded iAsBx (18-bit signed sBx).
ASBX_OPCODES = frozenset({Op.JMP, Op.FORLOOP, Op.FORPREP, Op.TFORLOOP})


def _check_range(value: int, maximum: int, what: str) -> int:
    if not 0 <= value <= maximum:
        raise ValueError(f"{what} {value} out of range 0..{maximum}")
    return value


def encode_abc(op: Op, a: int, b: int, c: int) -> int:
    """Encode an iABC instruction word."""
    _check_range(a, _A_MAX, "A")
    _check_range(b, _BC_MAX, "B")
    _check_range(c, _BC_MAX, "C")
    return int(op) | (a << _A_SHIFT) | (c << _C_SHIFT) | (b << _B_SHIFT)


def encode_abx(op: Op, a: int, bx: int) -> int:
    """Encode an iABx instruction word."""
    _check_range(a, _A_MAX, "A")
    _check_range(bx, _BX_MAX, "Bx")
    return int(op) | (a << _A_SHIFT) | (bx << _C_SHIFT)


def encode_asbx(op: Op, a: int, sbx: int) -> int:
    """Encode an iAsBx instruction word (signed 18-bit sBx)."""
    bx = sbx + SBX_BIAS
    _check_range(bx, _BX_MAX, "sBx+bias")
    return encode_abx(op, a, bx)


def decode(word: int) -> tuple[int, int, int, int, int, int]:
    """Decode an instruction word to ``(op, a, b, c, bx, sbx)``.

    All five operand views are returned; the interpreter picks the ones the
    opcode's format defines.
    """
    op = word & OPCODE_MASK
    a = (word >> _A_SHIFT) & _A_MAX
    c = (word >> _C_SHIFT) & _BC_MAX
    b = (word >> _B_SHIFT) & _BC_MAX
    bx = (word >> _C_SHIFT) & _BX_MAX
    return op, a, b, c, bx, bx - SBX_BIAS


def _rk_str(value: int) -> str:
    if value & RK_CONST_BIT:
        return f"K{value & ~RK_CONST_BIT}"
    return f"R{value}"


def disassemble(word: int) -> str:
    """Human-readable rendering of one instruction word."""
    op, a, b, c, bx, sbx = decode(word)
    try:
        name = Op(op).name
    except ValueError:
        return f"<bad opcode {op}>"
    if op in ABX_OPCODES:
        return f"{name} R{a} {bx}"
    if op in ASBX_OPCODES:
        return f"{name} R{a} {sbx:+d}"
    return f"{name} R{a} {_rk_str(b)} {_rk_str(c)}"
