"""Register-based guest VM modelled on Lua 5.3.

47 opcodes (the exact Lua 5.3 set), iABC/iABx/iAsBx 32-bit instruction
encoding with the opcode in the 6 least-significant bits — which is why the
paper's Lua dispatcher masks with ``0x0000003F`` (Section III-A's ``setmask``
example).

Public API::

    from repro.vm.lua import LuaVM, compile_module
    vm = LuaVM.from_source("print(1 + 2);")
    output = vm.run()            # functional execution
    vm2 = LuaVM.from_source(src)
    vm2.run(trace=callback)      # emits one event per executed bytecode
"""

from repro.vm.lua.opcodes import (
    Op,
    NUM_OPCODES,
    OPCODE_MASK,
    encode_abc,
    encode_abx,
    encode_asbx,
    decode,
    disassemble,
    RK_CONST_BIT,
)
from repro.vm.lua.compiler import compile_module, LuaProto, CompileError
from repro.vm.lua.interp import LuaVM

__all__ = [
    "Op",
    "NUM_OPCODES",
    "OPCODE_MASK",
    "encode_abc",
    "encode_abx",
    "encode_asbx",
    "decode",
    "disassemble",
    "RK_CONST_BIT",
    "compile_module",
    "LuaProto",
    "CompileError",
    "LuaVM",
]
