"""AST -> Lua 5.3 bytecode compiler.

Follows the code shapes of the reference Lua compiler: RK operands for
constants, skip-next-JMP comparison idiom (``EQ``/``LT``/``LE`` with an A
flag), ``TEST``/``JMP`` for truthiness, ``FORPREP``/``FORLOOP`` numeric
loops, consecutive-register ``CONCAT`` chains and ``SETLIST`` array
construction.

Scoping model: function parameters and ``var`` declarations inside functions
are register locals with block scoping; ``var`` at the top level of a script
declares a *global* (script-language idiom), accessed via
``GETTABUP``/``SETTABUP`` against the globals table (upvalue 0, ``_ENV``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.vm.builtins import BUILTINS
from repro.vm.lua.opcodes import (
    Op,
    RK_CONST_BIT,
    RK_MAX_REG,
    decode,
    encode_abc,
    encode_abx,
    encode_asbx,
)

#: Register-file ceiling per function (Lua's MAXSTACK is 250).
MAX_REGISTERS = 200


class CompileError(ValueError):
    """Raised on semantic errors (bad targets, register overflow, ...)."""

    def __init__(self, message: str, line: int = 0):
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


@dataclass
class LuaProto:
    """A compiled function prototype.

    Attributes:
        name: function name ("main" for the top-level chunk).
        nparams: declared parameter count.
        code: raw 32-bit instruction words.
        constants: constant table.
        max_regs: high-water register usage (frame size).
        index: position in the module's proto list (stable address base).
        decoded: pre-decoded ``(op, a, b, c, bx, sbx)`` tuples.
    """

    name: str
    nparams: int
    code: list = field(default_factory=list)
    constants: list = field(default_factory=list)
    max_regs: int = 2
    index: int = 0
    decoded: list = field(default_factory=list)

    def finalize(self) -> None:
        self.decoded = [decode(word) for word in self.code]


@dataclass
class CompiledModule:
    """All prototypes of one script: ``protos[0]`` is the main chunk."""

    protos: list
    functions: dict  # name -> LuaProto

    @property
    def main(self) -> LuaProto:
        return self.protos[0]


@dataclass
class _Loop:
    break_jumps: list = field(default_factory=list)
    continue_jumps: list = field(default_factory=list)
    continue_target: int | None = None  # set for while loops (top of cond)


class _FunctionCompiler:
    def __init__(self, name: str, params: list, is_main: bool, module_functions: set):
        self.proto = LuaProto(name=name, nparams=len(params))
        self.is_main = is_main
        self.module_functions = module_functions
        self._const_index: dict = {}
        self.scopes: list[dict] = [{}]
        self.free_reg = 0
        self.loops: list[_Loop] = []
        for param in params:
            self.scopes[0][param] = self._reserve(1)

    # -- registers ---------------------------------------------------------

    def _reserve(self, count: int) -> int:
        base = self.free_reg
        self.free_reg += count
        if self.free_reg > MAX_REGISTERS:
            raise CompileError(
                f"function {self.proto.name!r} needs more than "
                f"{MAX_REGISTERS} registers"
            )
        self.proto.max_regs = max(self.proto.max_regs, self.free_reg)
        return base

    def _release_to(self, mark: int) -> None:
        self.free_reg = mark

    # -- scopes ------------------------------------------------------------

    def _push_scope(self) -> int:
        self.scopes.append({})
        return self.free_reg

    def _pop_scope(self, mark: int) -> None:
        self.scopes.pop()
        self._release_to(mark)

    def _declare_local(self, name: str, line: int) -> int:
        scope = self.scopes[-1]
        if name in scope:
            raise CompileError(f"duplicate declaration of {name!r}", line)
        register = self._reserve(1)
        scope[name] = register
        return register

    def _lookup_local(self, name: str) -> int | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- emission -----------------------------------------------------------

    def emit(self, op: Op, a: int, b: int = 0, c: int = 0) -> int:
        self.proto.code.append(encode_abc(op, a, b, c))
        return len(self.proto.code) - 1

    def emit_abx(self, op: Op, a: int, bx: int) -> int:
        self.proto.code.append(encode_abx(op, a, bx))
        return len(self.proto.code) - 1

    def emit_asbx(self, op: Op, a: int, sbx: int) -> int:
        self.proto.code.append(encode_asbx(op, a, sbx))
        return len(self.proto.code) - 1

    def emit_jump(self) -> int:
        """Emit a JMP with a placeholder offset, to be patched."""
        return self.emit_asbx(Op.JMP, 0, 0)

    def patch_jump(self, index: int, target: int | None = None) -> None:
        """Point the JMP/FORPREP at *index* to *target* (default: here)."""
        if target is None:
            target = len(self.proto.code)
        op, a, _b, _c, _bx, _sbx = decode(self.proto.code[index])
        self.proto.code[index] = encode_asbx(Op(op), a, target - (index + 1))

    def here(self) -> int:
        return len(self.proto.code)

    # -- constants ------------------------------------------------------------

    def add_const(self, value: object) -> int:
        key = (type(value).__name__, value)
        index = self._const_index.get(key)
        if index is None:
            index = len(self.proto.constants)
            self.proto.constants.append(value)
            self._const_index[key] = index
        return index

    def _name_rk(self, name: str, scratch: int | None = None) -> int:
        """RK operand for the global-name constant *name*.

        An RK field holds 8 bits of constant index; ORing a larger index
        with ``RK_CONST_BIT`` would silently alias a low-index constant
        (reading or clobbering the wrong global).  Indices above 0xFF are
        spilled to a register with LOADK (whose Bx field is 18 bits) and
        the register form is returned instead — *scratch* names the
        register to use, or one is reserved (caller releases it).
        """
        index = self.add_const(name)
        if index <= 0xFF:
            return RK_CONST_BIT | index
        if scratch is None:
            scratch = self._reserve(1)
        self.emit_abx(Op.LOADK, scratch, index)
        return scratch

    def rk(self, node: ast.Node) -> int | None:
        """RK operand for *node* if it is a small-index constant."""
        if isinstance(node, ast.Literal):
            index = self.add_const(node.value)
            if index <= 0xFF:
                return RK_CONST_BIT | index
        return None

    def _rk_or_reg(self, node: ast.Node) -> tuple[int, int]:
        """Return (rk_operand, register_mark_to_release)."""
        rk = self.rk(node)
        if rk is not None:
            return rk, self.free_reg
        mark = self.free_reg
        register = self.expr_any(node)
        if register > RK_MAX_REG:
            raise CompileError("expression register exceeds RK range")
        return register, mark

    # == statements ============================================================

    def compile_block(self, block: ast.Block) -> None:
        mark = self._push_scope()
        for statement in block.statements:
            self.compile_statement(statement)
        self._pop_scope(mark)

    def compile_statement(self, node: ast.Node) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__.lower()}", None)
        if method is None:
            raise CompileError(f"cannot compile statement {type(node).__name__}", node.line)
        method(node)

    def _stmt_vardecl(self, node: ast.VarDecl) -> None:
        if self.is_main and len(self.scopes) == 1:
            # Top-level var declares a global.
            self._assign_global(node.name, node.value)
            return
        register = self._declare_local(node.name, node.line)
        self.expr_to_reg(node.value, register)

    def _assign_global(self, name: str, value: ast.Node) -> None:
        mark = self.free_reg
        value_rk, _ = self._rk_or_reg(value)
        key_rk = self._name_rk(name)
        self.emit(Op.SETTABUP, 0, key_rk, value_rk)
        self._release_to(mark)

    def _stmt_assign(self, node: ast.Assign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            register = self._lookup_local(target.id)
            if register is not None:
                self.expr_to_reg(node.value, register)
            else:
                self._assign_global(target.id, node.value)
            return
        if isinstance(target, ast.Index):
            mark = self.free_reg
            obj_reg = self.expr_any(target.obj)
            key_rk, _ = self._rk_or_reg(target.key)
            value_rk, _ = self._rk_or_reg(node.value)
            self.emit(Op.SETTABLE, obj_reg, key_rk, value_rk)
            self._release_to(mark)
            return
        raise CompileError("invalid assignment target", node.line)

    def _stmt_exprstmt(self, node: ast.ExprStmt) -> None:
        mark = self.free_reg
        if isinstance(node.expr, ast.Call):
            self.compile_call(node.expr, want_result=False)
        else:
            self.expr_any(node.expr)
        self._release_to(mark)

    def _stmt_if(self, node: ast.If) -> None:
        else_jumps = self.cond_jump(node.cond, jump_if=False)
        self.compile_block(node.then)
        if node.orelse is not None:
            end_jump = self.emit_jump()
            for jump in else_jumps:
                self.patch_jump(jump)
            if isinstance(node.orelse, ast.If):
                self._stmt_if(node.orelse)
            else:
                self.compile_block(node.orelse)
            self.patch_jump(end_jump)
        else:
            for jump in else_jumps:
                self.patch_jump(jump)

    def _stmt_while(self, node: ast.While) -> None:
        top = self.here()
        exit_jumps = self.cond_jump(node.cond, jump_if=False)
        loop = _Loop(continue_target=top)
        self.loops.append(loop)
        self.compile_block(node.body)
        back = self.emit_jump()
        self.patch_jump(back, top)
        for jump in exit_jumps + loop.break_jumps:
            self.patch_jump(jump)
        self.loops.pop()

    def _stmt_fornum(self, node: ast.ForNum) -> None:
        mark = self._push_scope()
        base = self._reserve(4)  # internal index, limit, step, visible var
        self.expr_to_reg(node.start, base)
        self.expr_to_reg(node.stop, base + 1)
        if node.step is None:
            self.emit_abx(Op.LOADK, base + 2, self.add_const(1))
        else:
            self.expr_to_reg(node.step, base + 2)
        self.scopes[-1][node.var] = base + 3
        prep = self.emit_asbx(Op.FORPREP, base, 0)
        body_start = self.here()
        loop = _Loop()
        self.loops.append(loop)
        self.compile_block(node.body)
        for jump in loop.continue_jumps:
            self.patch_jump(jump)
        forloop = self.emit_asbx(Op.FORLOOP, base, body_start - (self.here() + 1))
        self.patch_jump(prep, forloop)
        for jump in loop.break_jumps:
            self.patch_jump(jump)
        self.loops.pop()
        self._pop_scope(mark)

    def _stmt_break(self, node: ast.Break) -> None:
        if not self.loops:
            raise CompileError("'break' outside a loop", node.line)
        self.loops[-1].break_jumps.append(self.emit_jump())

    def _stmt_continue(self, node: ast.Continue) -> None:
        if not self.loops:
            raise CompileError("'continue' outside a loop", node.line)
        loop = self.loops[-1]
        if loop.continue_target is not None:
            jump = self.emit_jump()
            self.patch_jump(jump, loop.continue_target)
        else:
            loop.continue_jumps.append(self.emit_jump())

    def _stmt_return(self, node: ast.Return) -> None:
        if node.value is None:
            self.emit(Op.RETURN, 0, 1, 0)
            return
        mark = self.free_reg
        register = self.expr_any(node.value)
        self.emit(Op.RETURN, register, 2, 0)
        self._release_to(mark)

    def _stmt_block(self, node: ast.Block) -> None:
        self.compile_block(node)

    # == conditions =============================================================

    #: comparison -> (opcode, swap_operands, a_flag_for_skip_on_true)
    _COMPARE_OPS = {
        "==": (Op.EQ, False, 0),
        "!=": (Op.EQ, False, 1),
        "<": (Op.LT, False, 0),
        "<=": (Op.LE, False, 0),
        ">": (Op.LT, True, 0),
        ">=": (Op.LE, True, 0),
    }

    def cond_jump(self, node: ast.Node, jump_if: bool) -> list[int]:
        """Emit a test for *node*; the returned JMP indices fire when the
        condition evaluates to *jump_if*.

        Skip-next semantics: ``EQ/LT/LE A B C`` advances the virtual PC by
        one (skipping the following JMP) when the raw comparison result
        differs from A; ``TEST A _ C`` skips when ``bool(R(A)) != C``.
        """
        if isinstance(node, ast.UnOp) and node.op == "not":
            return self.cond_jump(node.operand, not jump_if)

        if isinstance(node, ast.BinOp) and node.op in self._COMPARE_OPS:
            op, swap, a_flag = self._COMPARE_OPS[node.op]
            if jump_if:
                a_flag ^= 1
            mark = self.free_reg
            left, right = (node.right, node.left) if swap else (node.left, node.right)
            b_rk, _ = self._rk_or_reg(left)
            c_rk, _ = self._rk_or_reg(right)
            self.emit(op, a_flag, b_rk, c_rk)
            self._release_to(mark)
            return [self.emit_jump()]

        if isinstance(node, ast.Logical):
            if (node.op == "and") == (not jump_if):
                # and/jump-false, or/jump-true: both operands feed the exit.
                jumps = self.cond_jump(node.left, jump_if)
                jumps += self.cond_jump(node.right, jump_if)
                return jumps
            # and/jump-true, or/jump-false: left short-circuits past right.
            skip = self.cond_jump(node.left, not jump_if)
            jumps = self.cond_jump(node.right, jump_if)
            for jump in skip:
                self.patch_jump(jump)
            return jumps

        if isinstance(node, ast.Literal):
            truthy = node.value is not None and node.value is not False
            if truthy == jump_if:
                return [self.emit_jump()]
            return []

        mark = self.free_reg
        register = self.expr_any(node)
        self._release_to(mark)
        self.emit(Op.TEST, register, 0, 0 if not jump_if else 1)
        return [self.emit_jump()]

    # == expressions =============================================================

    def expr_any(self, node: ast.Node) -> int:
        """Compile *node*, returning the register holding its value.

        Locals are returned in place (no copy); everything else lands in a
        fresh temporary.
        """
        if isinstance(node, ast.Name):
            register = self._lookup_local(node.id)
            if register is not None:
                return register
        register = self._reserve(1)
        self.expr_to_reg(node, register)
        return register

    def expr_to_reg(self, node: ast.Node, dest: int) -> None:
        """Compile *node*, leaving its value in register *dest*."""
        method = getattr(self, f"_expr_{type(node).__name__.lower()}", None)
        if method is None:
            raise CompileError(f"cannot compile expression {type(node).__name__}", node.line)
        method(node, dest)

    def _expr_literal(self, node: ast.Literal, dest: int) -> None:
        value = node.value
        if value is None:
            self.emit(Op.LOADNIL, dest, 0, 0)
        elif value is True:
            self.emit(Op.LOADBOOL, dest, 1, 0)
        elif value is False:
            self.emit(Op.LOADBOOL, dest, 0, 0)
        else:
            self.emit_abx(Op.LOADK, dest, self.add_const(value))

    def _expr_name(self, node: ast.Name, dest: int) -> None:
        register = self._lookup_local(node.id)
        if register is not None:
            if register != dest:
                self.emit(Op.MOVE, dest, register, 0)
            return
        key_rk = self._name_rk(node.id, scratch=dest)
        self.emit(Op.GETTABUP, dest, 0, key_rk)

    _ARITH_OPS = {
        "+": Op.ADD,
        "-": Op.SUB,
        "*": Op.MUL,
        "/": Op.DIV,
        "//": Op.IDIV,
        "%": Op.MOD,
    }

    def _expr_binop(self, node: ast.BinOp, dest: int) -> None:
        if node.op in self._ARITH_OPS:
            mark = self.free_reg
            b_rk, _ = self._rk_or_reg(node.left)
            c_rk, _ = self._rk_or_reg(node.right)
            self.emit(self._ARITH_OPS[node.op], dest, b_rk, c_rk)
            self._release_to(mark)
            return
        if node.op == "..":
            # Flatten the right-associative chain into consecutive registers.
            items: list[ast.Node] = []
            cursor: ast.Node = node
            while isinstance(cursor, ast.BinOp) and cursor.op == "..":
                items.append(cursor.left)
                cursor = cursor.right
            items.append(cursor)
            mark = self.free_reg
            base = self._reserve(len(items))
            for offset, item in enumerate(items):
                self.expr_to_reg(item, base + offset)
            self.emit(Op.CONCAT, dest, base, base + len(items) - 1)
            self._release_to(mark)
            return
        if node.op in self._COMPARE_OPS:
            # Value-producing comparison: the LOADBOOL skip idiom.
            true_jumps = self.cond_jump(node, jump_if=True)
            self.emit(Op.LOADBOOL, dest, 0, 1)  # C=1: skip the next one
            for jump in true_jumps:
                self.patch_jump(jump)
            self.emit(Op.LOADBOOL, dest, 1, 0)
            return
        raise CompileError(f"unknown binary operator {node.op!r}", node.line)

    def _expr_unop(self, node: ast.UnOp, dest: int) -> None:
        mark = self.free_reg
        operand = self.expr_any(node.operand)
        self._release_to(mark)
        if node.op == "-":
            self.emit(Op.UNM, dest, operand, 0)
        elif node.op == "not":
            self.emit(Op.NOT, dest, operand, 0)
        else:
            raise CompileError(f"unknown unary operator {node.op!r}", node.line)

    def _expr_logical(self, node: ast.Logical, dest: int) -> None:
        # a and b -> eval a into dest; if falsey keep it, else eval b.
        # a or b  -> eval a into dest; if truthy keep it, else eval b.
        self.expr_to_reg(node.left, dest)
        # TEST skips the JMP when bool(R[dest]) != C.  For "or" we fall into
        # b when a is falsey (skip when false -> C=1); for "and" when a is
        # truthy (skip when true -> C=0).
        self.emit(Op.TEST, dest, 0, 1 if node.op == "or" else 0)
        end_jump = self.emit_jump()
        self.expr_to_reg(node.right, dest)
        self.patch_jump(end_jump)

    def _expr_index(self, node: ast.Index, dest: int) -> None:
        mark = self.free_reg
        obj_reg = self.expr_any(node.obj)
        key_rk, _ = self._rk_or_reg(node.key)
        self.emit(Op.GETTABLE, dest, obj_reg, key_rk)
        self._release_to(mark)

    def _expr_arraylit(self, node: ast.ArrayLit, dest: int) -> None:
        # SETLIST A B C reads the batch from R[A+1..A+B], so the table must
        # sit at the top of the register stack while batches are built.  If
        # dest is not top-of-stack (e.g. re-assigning an older local), build
        # in a fresh temporary and MOVE.
        if self.free_reg != dest + 1:
            mark = self.free_reg
            temp = self._reserve(1)
            self._expr_arraylit(node, temp)
            self.emit(Op.MOVE, dest, temp, 0)
            self._release_to(mark)
            return
        self.emit(Op.NEWTABLE, dest, min(len(node.items), 0x1FF), 0)
        batch = 50  # Lua's LFIELDS_PER_FLUSH
        for start in range(0, len(node.items), batch):
            chunk = node.items[start : start + batch]
            base = self._reserve(len(chunk))
            for offset, item in enumerate(chunk):
                self.expr_to_reg(item, base + offset)
            self.emit(Op.SETLIST, dest, len(chunk), start // batch + 1)
            self._release_to(dest + 1)

    def _expr_maplit(self, node: ast.MapLit, dest: int) -> None:
        # C > 0 marks the new table as a map (hash part only).
        self.emit(Op.NEWTABLE, dest, 0, min(max(len(node.pairs), 1), 0x1FF))
        for key_node, value_node in node.pairs:
            mark = self.free_reg
            key_rk, _ = self._rk_or_reg(key_node)
            value_rk, _ = self._rk_or_reg(value_node)
            self.emit(Op.SETTABLE, dest, key_rk, value_rk)
            self._release_to(mark)

    def _expr_call(self, node: ast.Call, dest: int) -> None:
        result = self.compile_call(node, want_result=True)
        if result != dest:
            self.emit(Op.MOVE, dest, result, 0)

    def compile_call(self, node: ast.Call, want_result: bool) -> int:
        """Compile a call; returns the register holding the result."""
        if node.callee == "len" and len(node.args) == 1:
            mark = self.free_reg
            operand = self.expr_any(node.args[0])
            self._release_to(mark)
            dest = self._reserve(1)
            self.emit(Op.LEN, dest, operand, 0)
            return dest
        if (
            node.callee not in self.module_functions
            and node.callee not in BUILTINS
            and self._lookup_local(node.callee) is None
        ):
            raise CompileError(f"call to undefined function {node.callee!r}", node.line)
        base = self._reserve(1)
        key_rk = self._name_rk(node.callee, scratch=base)
        self.emit(Op.GETTABUP, base, 0, key_rk)
        for offset, arg in enumerate(node.args):
            register = self._reserve(1)
            if register != base + 1 + offset:
                raise CompileError("call argument registers not consecutive")
            self.expr_to_reg(arg, register)
        self.emit(Op.CALL, base, len(node.args) + 1, 2 if want_result else 1)
        self._release_to(base + 1)
        return base


def compile_function(
    node: ast.FuncDecl | None,
    module: ast.Module,
    is_main: bool,
    module_functions: set,
) -> LuaProto:
    """Compile one function (or the main chunk when *node* is None)."""
    if node is None:
        compiler = _FunctionCompiler("main", [], True, module_functions)
        for statement in module.top_level():
            compiler.compile_statement(statement)
    else:
        compiler = _FunctionCompiler(node.name, node.params, False, module_functions)
        for statement in node.body.statements:
            compiler.compile_statement(statement)
    compiler.emit(Op.RETURN, 0, 1, 0)
    return compiler.proto


def compile_module(module: ast.Module) -> CompiledModule:
    """Compile a parsed module into prototypes for :class:`LuaVM`."""
    function_names = {fn.name for fn in module.functions()}
    for fn in module.functions():
        if fn.name in BUILTINS:
            raise CompileError(f"function {fn.name!r} shadows a builtin", fn.line)
    main = compile_function(None, module, True, function_names)
    protos = [main]
    functions: dict[str, LuaProto] = {}
    for fn in module.functions():
        proto = compile_function(fn, module, False, function_names)
        proto.index = len(protos)
        protos.append(proto)
        functions[fn.name] = proto
    for proto in protos:
        proto.finalize()
    return CompiledModule(protos=protos, functions=functions)
