"""Trace event vocabulary shared by the guest VMs and the native model.

A functional VM run optionally emits one event per executed bytecode.  The
native interpreter model (:mod:`repro.native`) turns each event into the
host-instruction blocks the real interpreter would execute: a dispatch
sequence (depending on the strategy under test) plus the opcode's handler
blocks.

Events are plain tuples in the hot path; :class:`TraceEvent` is the
documented facade used by tests and tools.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Site(enum.IntEnum):
    """Which dispatch site fetched the next bytecode (Section III-C).

    The Lua interpreter has a single dispatcher; SpiderMonkey fetches at the
    main loop, after FUNCALL-style opcodes, and in the common END_CASE
    macro, and additionally reaches the dispatcher through slow paths SCD
    does not cover.
    """

    MAIN = 0
    FUNCALL = 1
    END_CASE = 2
    UNCOVERED = 3


# Positional order of the trace-hook arguments / TraceEvent fields.  The
# columnar capture format (repro.vm.capture) serializes one column (or one
# interned id column) per field, in this order.
EVENT_FIELDS = ("op", "site", "taken", "callee", "daddrs", "builtin", "cost")

# Callee / control-transfer classes carried in an event's `callee` slot.
CALLEE_NONE = 0      #: ordinary opcode
CALLEE_SCRIPT = 1    #: guest call into a script function (frame push)
CALLEE_BUILTIN = 2   #: guest call into a native builtin (host call/ret)
CALLEE_RETURN = 3    #: guest return (frame pop)

# `taken` slot values for opcodes containing a guest-conditional host branch.
TAKEN_NONE = -1
TAKEN_FALSE = 0
TAKEN_TRUE = 1


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One executed guest bytecode.

    Attributes:
        op: numeric opcode (key for the jump table / JTE).
        site: dispatch site that fetched this bytecode.
        taken: guest-conditional branch outcome inside the handler
            (``TAKEN_NONE`` when the handler is straight-line).
        callee: ``CALLEE_*`` class for call/return opcodes.
        daddrs: guest data addresses touched (drives the D-cache model).
        builtin: builtin name for ``CALLEE_BUILTIN`` events, else ``None``.
        cost: optional (insts, loads, stores) extra work hint, used for
            size-dependent builtins.
    """

    op: int
    site: int = Site.MAIN
    taken: int = TAKEN_NONE
    callee: int = CALLEE_NONE
    daddrs: tuple = ()
    builtin: str | None = None
    cost: tuple | None = None


class AddressSpace:
    """Synthetic guest data-address allocator.

    The D-cache model needs addresses with realistic locality, not real
    pointers.  Frames, constants, globals and heap objects live in disjoint
    regions; heap objects get bump-allocated 64 KiB regions so distinct
    tables map to distinct cache sets while elements of one table stay
    local.
    """

    FRAME_BASE = 0x0100_0000
    CONST_BASE = 0x0200_0000
    GLOBAL_BASE = 0x0300_0000
    HEAP_BASE = 0x0400_0000
    STACK_BASE = 0x0500_0000  # JS operand stack
    VALUE_SIZE = 16           # a boxed TValue: payload + type tag
    HEAP_REGION = 64 * 1024

    def __init__(self):
        self._heap_next = self.HEAP_BASE
        self._object_bases: dict[int, int] = {}
        # Pin every object we have handed a region to.  ``id()`` is only
        # unique among *live* objects: without the pin, a dead table's id
        # can be recycled for a new one, aliasing it onto the old region —
        # and whether that happens depends on allocator history, making
        # the data-address stream nondeterministic across runs in one
        # process (found by ``repro.harness verify``).
        self._pins: list = []

    def frame_slot(self, depth: int, slot: int) -> int:
        """Address of register/local *slot* of the frame at *depth*."""
        return self.FRAME_BASE + ((depth & 0xFF) * 256 + slot) * self.VALUE_SIZE

    def const_slot(self, proto_index: int, index: int) -> int:
        return self.CONST_BASE + (proto_index & 0xFF) * 0x1000 + index * self.VALUE_SIZE

    def global_slot(self, name: str) -> int:
        # Stable across runs (Python's str hash is randomized; use a simple
        # deterministic fold instead).
        digest = 0
        for ch in name:
            digest = (digest * 131 + ord(ch)) & 0xFFFF
        return self.GLOBAL_BASE + (digest & 0xFFF) * self.VALUE_SIZE

    def stack_slot(self, depth: int) -> int:
        """JS operand-stack slot address."""
        return self.STACK_BASE + (depth & 0x3FF) * self.VALUE_SIZE

    def object_base(self, obj: object) -> int:
        """Base address of a heap object (table/array/string buffer)."""
        key = id(obj)
        base = self._object_bases.get(key)
        if base is None:
            base = self._heap_next
            self._heap_next += self.HEAP_REGION
            self._object_bases[key] = base
            self._pins.append(obj)
        return base

    def element(self, obj: object, index: int) -> int:
        """Address of array element *index* of *obj*."""
        return self.object_base(obj) + (index % 4096) * self.VALUE_SIZE

    def map_slot(self, obj: object, key: object) -> int:
        """Address of the hash slot for *key* in map *obj*."""
        if isinstance(key, str):
            digest = 0
            for ch in key:
                digest = (digest * 131 + ord(ch)) & 0xFFFF_FFFF
        elif isinstance(key, float):
            digest = int(key * 2654435761) & 0xFFFF_FFFF
        else:
            digest = int(key) & 0xFFFF_FFFF
        return self.object_base(obj) + (digest % 1024) * self.VALUE_SIZE
