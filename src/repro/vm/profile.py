"""Guest bytecode profiling utilities.

The tools a VM engineer reaches for before applying dispatch optimisations:
dynamic opcode histograms, adjacent-pair histograms (the input to
superinstruction selection), and dispatch-site mixes for the stack VM.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.vm.js import JsOp, JsVM
from repro.vm.lua import LuaVM
from repro.vm.lua.opcodes import Op as LuaOp
from repro.vm.trace import Site


@dataclass
class BytecodeProfile:
    """Dynamic execution profile of one VM run.

    Attributes:
        vm: ``"lua"`` or ``"js"``.
        steps: total bytecodes executed.
        opcodes: opcode -> dynamic count.
        pairs: (opcode, next_opcode) -> dynamic count.
        sites: dispatch site -> dynamic count.
    """

    vm: str
    steps: int = 0
    opcodes: Counter = field(default_factory=Counter)
    pairs: Counter = field(default_factory=Counter)
    sites: Counter = field(default_factory=Counter)

    def _name(self, op: int) -> str:
        enum_type = LuaOp if self.vm == "lua" else JsOp
        return enum_type(op).name

    def top_opcodes(self, count: int = 10) -> list[tuple[str, int]]:
        """Most-executed opcodes as (name, count) pairs."""
        return [(self._name(op), n) for op, n in self.opcodes.most_common(count)]

    def top_pairs(self, count: int = 10) -> list[tuple[str, int]]:
        """Most-frequent adjacent opcode pairs (superinstruction candidates)."""
        return [
            (f"{self._name(a)}+{self._name(b)}", n)
            for (a, b), n in self.pairs.most_common(count)
        ]

    def site_mix(self) -> dict[str, float]:
        """Dispatch-site shares (sums to 1.0)."""
        total = sum(self.sites.values()) or 1
        return {
            Site(site).name: self.sites[site] / total for site in sorted(self.sites)
        }

    def to_dict(self, top: int = 10) -> dict:
        """JSON-ready summary (``scd-repro profile --json``)."""
        return {
            "vm": self.vm,
            "steps": self.steps,
            "top_opcodes": [
                {"op": name, "count": count}
                for name, count in self.top_opcodes(top)
            ],
            "top_pairs": [
                {"pair": name, "count": count}
                for name, count in self.top_pairs(top)
            ],
            "site_mix": {
                name: round(share, 6) for name, share in self.site_mix().items()
            },
        }

    def pair_coverage(self, pairs) -> float:
        """Fraction of dynamic steps covered by fusing *pairs* greedily.

        An upper bound on superinstruction benefit: each fused occurrence
        removes one dispatch.  Overlapping occurrences are counted
        conservatively (a step participates in at most one fusion).
        """
        if not self.steps:
            return 0.0
        covered = sum(self.pairs.get(tuple(pair), 0) for pair in pairs)
        return min(1.0, 2 * covered / self.steps)


def profile_source(source: str, vm: str = "lua", max_steps: int = 50_000_000) -> BytecodeProfile:
    """Run *source* on the chosen VM and collect its dynamic profile."""
    profile = BytecodeProfile(vm=vm)
    previous: list = [None]

    def trace(op, site, taken, callee, daddrs, builtin, cost):
        profile.opcodes[op] += 1
        profile.sites[site] += 1
        if previous[0] is not None:
            profile.pairs[(previous[0], op)] += 1
        previous[0] = op

    guest = (LuaVM if vm == "lua" else JsVM).from_source(source, max_steps=max_steps)
    guest.run(trace=trace)
    profile.steps = guest.steps
    return profile


def profile_workload(name: str, vm: str = "lua", scale: str = "sim") -> BytecodeProfile:
    """Profile one Table III workload."""
    from repro.workloads import workload

    return profile_source(workload(name).source(scale=scale), vm=vm)


def suggest_fusion(profile: BytecodeProfile, count: int = 16) -> list[dict]:
    """Rank fusible adjacent opcode pairs for the superinst scheme.

    Candidates are restricted the same way the model assembler restricts
    ``FUSED_PAIRS``: both opcodes must be straight-line handlers (no guest
    branch, no work loop, no call-out) — anything else cannot be fused
    without duplicating continuation logic.  Rows come back ordered by
    dynamic pair count with a running :meth:`BytecodeProfile.pair_coverage`
    upper bound, and flag whether the pair is already in the model's
    current table (``scd-repro profile --suggest-fusion`` renders them in
    the ``FUSED_PAIRS`` source format for pasting into the backend).
    """
    from repro.native import js_model, lua_model

    backend = lua_model if profile.vm == "lua" else js_model
    specs = backend.HANDLER_SPECS

    def fusible(op) -> bool:
        spec = specs.get(op)
        return spec is not None and not (
            spec.guest_branch or spec.has_work_loop or spec.calls_out
        )

    current = {tuple(pair) for pair in backend.FUSED_PAIRS}
    rows: list[dict] = []
    chosen: list[tuple] = []
    for (first, second), n in profile.pairs.most_common():
        if len(rows) >= count:
            break
        if not (fusible(first) and fusible(second)):
            continue
        chosen.append((first, second))
        rows.append({
            "first": profile._name(first),
            "second": profile._name(second),
            "count": n,
            "in_table": (first, second) in current,
            "coverage": profile.pair_coverage(chosen),
        })
    return rows
