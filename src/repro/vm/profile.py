"""Guest bytecode profiling utilities.

The tools a VM engineer reaches for before applying dispatch optimisations:
dynamic opcode histograms, adjacent-pair histograms (the input to
superinstruction selection), and dispatch-site mixes for the stack VM.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.vm.js import JsOp, JsVM
from repro.vm.lua import LuaVM
from repro.vm.lua.opcodes import Op as LuaOp
from repro.vm.trace import Site


#: Loop-body lengths tracked as superblock candidates: the batch
#: segmenter (:func:`repro.native.batch.find_periodic_runs`) compiles
#: periodic kernel-key runs; profile-side we count back-to-back repeats
#: of the last ``n`` keys for ``n`` in this inclusive range.
SEQ_MIN_LEN = 3
SEQ_MAX_LEN = 8


def _canonical_rotation(seq: tuple) -> tuple:
    """The lexicographically smallest rotation — different phases of the
    same loop body aggregate under one counter key."""
    return min(seq[i:] + seq[:i] for i in range(len(seq)))


def _is_primitive(seq: tuple) -> bool:
    """True when *seq* is not itself a repetition of a shorter body (a
    period-3 loop also matches every length-6 window; count it once)."""
    n = len(seq)
    return not any(
        n % p == 0 and seq == seq[p:] + seq[:p] for p in range(1, n)
    )


@dataclass
class BytecodeProfile:
    """Dynamic execution profile of one VM run.

    Attributes:
        vm: ``"lua"`` or ``"js"``.
        steps: total bytecodes executed.
        opcodes: opcode -> dynamic count.
        pairs: (opcode, next_opcode) -> dynamic count.
        sites: dispatch site -> dynamic count.
        sequences: canonical ``(opcode, site)`` kernel-key sequence ->
            dynamic events spent repeating it back-to-back (steady-state
            loop bodies; the batch segmenter's superblock candidates).
    """

    vm: str
    steps: int = 0
    opcodes: Counter = field(default_factory=Counter)
    pairs: Counter = field(default_factory=Counter)
    sites: Counter = field(default_factory=Counter)
    sequences: Counter = field(default_factory=Counter)

    def _name(self, op: int) -> str:
        enum_type = LuaOp if self.vm == "lua" else JsOp
        return enum_type(op).name

    def top_opcodes(self, count: int = 10) -> list[tuple[str, int]]:
        """Most-executed opcodes as (name, count) pairs."""
        return [(self._name(op), n) for op, n in self.opcodes.most_common(count)]

    def top_pairs(self, count: int = 10) -> list[tuple[str, int]]:
        """Most-frequent adjacent opcode pairs (superinstruction candidates)."""
        return [
            (f"{self._name(a)}+{self._name(b)}", n)
            for (a, b), n in self.pairs.most_common(count)
        ]

    def top_sequences(self, count: int = 10) -> list[tuple[str, int]]:
        """Most-repeated kernel-key sequences as (rendered, events)."""
        return [
            (
                " ".join(
                    f"{self._name(op)}@{Site(site).name}" for op, site in keys
                ),
                n,
            )
            for keys, n in self.sequences.most_common(count)
        ]

    def site_mix(self) -> dict[str, float]:
        """Dispatch-site shares (sums to 1.0)."""
        total = sum(self.sites.values()) or 1
        return {
            Site(site).name: self.sites[site] / total for site in sorted(self.sites)
        }

    def to_dict(self, top: int = 10) -> dict:
        """JSON-ready summary (``scd-repro profile --json``)."""
        return {
            "vm": self.vm,
            "steps": self.steps,
            "top_opcodes": [
                {"op": name, "count": count}
                for name, count in self.top_opcodes(top)
            ],
            "top_pairs": [
                {"pair": name, "count": count}
                for name, count in self.top_pairs(top)
            ],
            "top_sequences": [
                {"sequence": name, "events": count}
                for name, count in self.top_sequences(top)
            ],
            "site_mix": {
                name: round(share, 6) for name, share in self.site_mix().items()
            },
        }

    def pair_coverage(self, pairs) -> float:
        """Fraction of dynamic steps covered by fusing *pairs* greedily.

        An upper bound on superinstruction benefit: each fused occurrence
        removes one dispatch.  Overlapping occurrences are counted
        conservatively (a step participates in at most one fusion).
        """
        if not self.steps:
            return 0.0
        covered = sum(self.pairs.get(tuple(pair), 0) for pair in pairs)
        return min(1.0, 2 * covered / self.steps)


#: Opcode class membership per VM, by opcode *name*.  These are the
#: classes the corpus strata target (arithmetic, calls, branches,
#: table/string traffic); anything unlisted counts as "other".
OPCODE_CLASSES = {
    "lua": {
        "arith": (
            "ADD", "SUB", "MUL", "DIV", "MOD", "POW", "UNM", "IDIV",
        ),
        "call": ("CALL", "TAILCALL", "RETURN", "CLOSURE", "SELF", "VARARG"),
        "branch": (
            "JMP", "EQ", "LT", "LE", "TEST", "TESTSET",
            "FORLOOP", "FORPREP", "TFORLOOP",
        ),
        "table_str": (
            "GETTABLE", "SETTABLE", "NEWTABLE", "SETLIST",
            "CONCAT", "LEN",
        ),
    },
    "js": {
        "arith": ("ADD", "SUB", "MUL", "DIV", "MOD", "NEG", "INTDIV"),
        "call": ("CALL", "CALLGNAME", "RETURN"),
        "branch": (
            "GOTO", "IFEQ", "IFNE", "EQ", "NE", "LT", "LE", "GT", "GE",
            "AND", "OR", "NOT", "LOOPHEAD",
        ),
        "table_str": (
            "GETELEM", "SETELEM", "INITELEM", "NEWARRAY", "NEWOBJECT",
            "LENGTH", "CONCAT", "STRING",
        ),
    },
}


def class_mix(profile: BytecodeProfile) -> dict[str, float]:
    """Dynamic opcode-class shares of a profile (sums to 1.0).

    Buckets every executed opcode into the :data:`OPCODE_CLASSES` classes
    (plus ``other``) — the measurement side of corpus stratification: a
    stratum claiming to be arithmetic-heavy should move the ``arith``
    share, and :mod:`tests.test_corpus_pipeline` asserts it does.
    """
    classes = OPCODE_CLASSES[profile.vm]
    enum_type = LuaOp if profile.vm == "lua" else JsOp
    by_name = {enum_type(op).name: n for op, n in profile.opcodes.items()}
    total = sum(by_name.values()) or 1
    mix = {}
    seen = 0
    for cls, names in classes.items():
        count = sum(by_name.get(name, 0) for name in names)
        mix[cls] = count / total
        seen += count
    mix["other"] = (total - seen) / total
    return mix


def profile_source(source: str, vm: str = "lua", max_steps: int = 50_000_000) -> BytecodeProfile:
    """Run *source* on the chosen VM and collect its dynamic profile."""
    profile = BytecodeProfile(vm=vm)
    previous: list = [None]
    # Sliding window of the last 2 * SEQ_MAX_LEN (opcode, site) kernel
    # keys: a step extends a steady-state body of length n when the last
    # n keys equal the n before them (the same back-to-back periodicity
    # the batch segmenter verifies on the recorded columns).
    window: list = []

    def trace(op, site, taken, callee, daddrs, builtin, cost):
        profile.opcodes[op] += 1
        profile.sites[site] += 1
        if previous[0] is not None:
            profile.pairs[(previous[0], op)] += 1
        previous[0] = op
        window.append((op, site))
        if len(window) > 2 * SEQ_MAX_LEN:
            del window[0]
        for n in range(SEQ_MIN_LEN, SEQ_MAX_LEN + 1):
            if len(window) < 2 * n:
                break
            gram = tuple(window[-n:])
            if gram != tuple(window[-2 * n:-n]) or not _is_primitive(gram):
                continue
            profile.sequences[_canonical_rotation(gram)] += 1

    guest = (LuaVM if vm == "lua" else JsVM).from_source(source, max_steps=max_steps)
    guest.run(trace=trace)
    profile.steps = guest.steps
    return profile


def profile_workload(name: str, vm: str = "lua", scale: str = "sim") -> BytecodeProfile:
    """Profile one Table III workload."""
    from repro.workloads import workload

    return profile_source(workload(name).source(scale=scale), vm=vm)


def suggest_fusion(profile: BytecodeProfile, count: int = 16) -> list[dict]:
    """Rank fusible adjacent opcode pairs for the superinst scheme.

    Candidates are restricted the same way the model assembler restricts
    ``FUSED_PAIRS``: both opcodes must be straight-line handlers (no guest
    branch, no work loop, no call-out) — anything else cannot be fused
    without duplicating continuation logic.  Rows come back ordered by
    dynamic pair count with a running :meth:`BytecodeProfile.pair_coverage`
    upper bound, and flag whether the pair is already in the model's
    current table (``scd-repro profile --suggest-fusion`` renders them in
    the ``FUSED_PAIRS`` source format for pasting into the backend).
    """
    from repro.native import js_model, lua_model

    backend = lua_model if profile.vm == "lua" else js_model
    specs = backend.HANDLER_SPECS

    def fusible(op) -> bool:
        spec = specs.get(op)
        return spec is not None and not (
            spec.guest_branch or spec.has_work_loop or spec.calls_out
        )

    current = {tuple(pair) for pair in backend.FUSED_PAIRS}
    rows: list[dict] = []
    chosen: list[tuple] = []
    for (first, second), n in profile.pairs.most_common():
        if len(rows) >= count:
            break
        if not (fusible(first) and fusible(second)):
            continue
        chosen.append((first, second))
        rows.append({
            "first": profile._name(first),
            "second": profile._name(second),
            "count": n,
            "in_table": (first, second) in current,
            "coverage": profile.pair_coverage(chosen),
        })
    return rows


def suggest_superblocks(profile: BytecodeProfile, count: int = 16) -> list[dict]:
    """Rank recurring kernel-key sequences (batch superblock candidates).

    The profile-side analogue of the batch segmenter
    (:func:`repro.native.batch.find_periodic_runs`): each row is one
    steady-state loop body — a canonical-rotation ``(opcode, site)``
    kernel-key sequence of length :data:`SEQ_MIN_LEN` to
    :data:`SEQ_MAX_LEN` — ranked by the dynamic events spent repeating
    it back-to-back.  ``keys`` carries the numeric ``(op, site)`` pairs
    the segmenter keys runs on, so rows paste directly into
    segmenter-shaped fixtures; ``share`` approximates the trace coverage
    a compiled superblock for that body would claim.
    """
    rows: list[dict] = []
    for keys, events in profile.sequences.most_common(count):
        rows.append({
            "keys": [[int(op), int(site)] for op, site in keys],
            "names": [
                f"{profile._name(op)}@{Site(site).name}" for op, site in keys
            ],
            "period": len(keys),
            "events": events,
            "share": events / max(profile.steps, 1),
        })
    return rows
