"""Guest virtual machines.

Two production-interpreter stand-ins, mirroring the paper's evaluation
targets:

* :mod:`repro.vm.lua` — a register-based VM with Lua 5.3's 47 opcodes and
  iABC instruction encoding (6-bit opcode in the low bits, masked out by the
  dispatcher exactly as in Figure 1(b)).
* :mod:`repro.vm.js` — a stack-based VM with SpiderMonkey-17-style
  variable-length bytecodes and *multiple dispatch sites* (main loop,
  FUNCALL tail, END_CASE macro), the property that limits SCD coverage in
  Section III-C.

Both compile the same scriptlet AST, so a benchmark runs identically on
either VM while producing its own characteristic bytecode stream.
"""

from repro.vm.values import (
    VmError,
    VmTypeError,
    is_truthy,
    arith,
    compare,
    concat_values,
    tostring,
)
from repro.vm.trace import TraceEvent, Site

__all__ = [
    "VmError",
    "VmTypeError",
    "is_truthy",
    "arith",
    "compare",
    "concat_values",
    "tostring",
    "TraceEvent",
    "Site",
]
