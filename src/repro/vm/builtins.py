"""Builtin (native) functions callable from guest code.

Builtins model a script interpreter's C library: the functional side runs in
Python here, and the native model charges each call a host-instruction cost
via :func:`builtin_cost` so builtin-heavy scripts keep a realistic
dispatch-to-work ratio.

Every builtin takes ``(vm, args)`` where *vm* exposes at least an ``output``
list (for ``print``).
"""

from __future__ import annotations

import math

from repro.vm.values import (
    VmError,
    VmTypeError,
    length_of,
    tostring,
    type_name,
)


def _number(value, name, position):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise VmTypeError(
            f"bad argument #{position} to '{name}' "
            f"(number expected, got {type_name(value)})"
        )
    return value


def _int(value, name, position):
    value = _number(value, name, position)
    if isinstance(value, float):
        if value != int(value):
            raise VmTypeError(
                f"bad argument #{position} to '{name}' "
                "(number has no integer representation)"
            )
        value = int(value)
    return value


def _arity(args, name, minimum, maximum=None):
    maximum = minimum if maximum is None else maximum
    if not minimum <= len(args) <= maximum:
        raise VmError(
            f"wrong number of arguments to '{name}' "
            f"(expected {minimum}..{maximum}, got {len(args)})"
        )


def bi_print(vm, args):
    vm.output.append("\t".join(tostring(a) for a in args))
    return None


def bi_len(vm, args):
    _arity(args, "len", 1)
    return length_of(args[0])


def bi_push(vm, args):
    _arity(args, "push", 2)
    array = args[0]
    if not isinstance(array, list):
        raise VmTypeError(f"bad argument #1 to 'push' (array expected)")
    array.append(args[1])
    return None


def bi_pop(vm, args):
    _arity(args, "pop", 1)
    array = args[0]
    if not isinstance(array, list):
        raise VmTypeError(f"bad argument #1 to 'pop' (array expected)")
    if not array:
        raise VmError("pop from empty array")
    return array.pop()


def bi_floor(vm, args):
    _arity(args, "floor", 1)
    return math.floor(_number(args[0], "floor", 1))


def bi_ceil(vm, args):
    _arity(args, "ceil", 1)
    return math.ceil(_number(args[0], "ceil", 1))


def bi_sqrt(vm, args):
    _arity(args, "sqrt", 1)
    value = _number(args[0], "sqrt", 1)
    if value < 0:
        raise VmError("sqrt of negative number")
    return math.sqrt(value)


def bi_abs(vm, args):
    _arity(args, "abs", 1)
    return abs(_number(args[0], "abs", 1))


def bi_min(vm, args):
    _arity(args, "min", 2)
    return min(_number(args[0], "min", 1), _number(args[1], "min", 2))


def bi_max(vm, args):
    _arity(args, "max", 2)
    return max(_number(args[0], "max", 1), _number(args[1], "max", 2))


def bi_chr(vm, args):
    _arity(args, "chr", 1)
    return chr(_int(args[0], "chr", 1))


def bi_ord(vm, args):
    _arity(args, "ord", 1)
    value = args[0]
    if not isinstance(value, str) or not value:
        raise VmTypeError("bad argument #1 to 'ord' (non-empty string expected)")
    return ord(value[0])


def bi_substr(vm, args):
    """substr(s, start, length): 0-based slice, clamped like Lua's sub."""
    _arity(args, "substr", 3)
    text = args[0]
    if not isinstance(text, str):
        raise VmTypeError("bad argument #1 to 'substr' (string expected)")
    start = _int(args[1], "substr", 2)
    count = _int(args[2], "substr", 3)
    if start < 0 or count < 0:
        raise VmError("substr start/length must be non-negative")
    return text[start : start + count]


def bi_tostring(vm, args):
    _arity(args, "tostring", 1)
    return tostring(args[0])


def bi_tonumber(vm, args):
    _arity(args, "tonumber", 1)
    value = args[0]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


def bi_keys(vm, args):
    """Sorted key array of a map (deterministic iteration order)."""
    _arity(args, "keys", 1)
    mapping = args[0]
    if not isinstance(mapping, dict):
        raise VmTypeError("bad argument #1 to 'keys' (map expected)")
    return sorted(mapping.keys(), key=lambda k: (str(type(k)), str(k)))


def bi_clock(vm, args):
    """Deterministic pseudo-clock: guest step count (for benchmarks that
    print elapsed work; never wall time, so runs are reproducible)."""
    return vm.steps


#: name -> (callable, cost_class).  Cost classes are interpreted by
#: :func:`builtin_cost`.
BUILTINS = {
    "print": (bi_print, "io"),
    "len": (bi_len, "tiny"),
    "push": (bi_push, "small"),
    "pop": (bi_pop, "small"),
    "floor": (bi_floor, "tiny"),
    "ceil": (bi_ceil, "tiny"),
    "sqrt": (bi_sqrt, "fp"),
    "abs": (bi_abs, "tiny"),
    "min": (bi_min, "tiny"),
    "max": (bi_max, "tiny"),
    "chr": (bi_chr, "tiny"),
    "ord": (bi_ord, "tiny"),
    "substr": (bi_substr, "string"),
    "tostring": (bi_tostring, "string"),
    "tonumber": (bi_tonumber, "string"),
    "keys": (bi_keys, "heavy"),
    "clock": (bi_clock, "tiny"),
}


def builtin_names() -> tuple[str, ...]:
    return tuple(BUILTINS)


def builtin_cost(name: str, args: tuple, result: object) -> tuple[int, int, int]:
    """Host-instruction cost (insts, loads, stores) of one builtin call.

    Sizes follow the C code such a builtin would run: a fixed
    prologue/epilogue plus per-element work for string and aggregate
    operations.
    """
    cost_class = BUILTINS[name][1]
    if cost_class == "tiny":
        return (12, 2, 1)
    if cost_class == "small":
        return (18, 4, 3)
    if cost_class == "fp":
        return (24, 3, 1)
    if cost_class == "io":
        size = sum(len(tostring(a)) for a in args) if args else 1
        return (30 + 2 * size, 6 + size // 4, 4 + size // 4)
    if cost_class == "string":
        size = len(result) if isinstance(result, str) else 8
        return (20 + size, 4 + size // 8, 2 + size // 8)
    if cost_class == "heavy":
        size = len(result) if isinstance(result, list) else 8
        return (40 + 6 * size, 8 + 2 * size, 4 + size)
    raise VmError(f"unknown builtin cost class {cost_class!r}")
