"""Columnar capture and replay of guest-VM trace streams.

A functional VM run is a pure function of (vm, source): the event stream it
emits is identical no matter which dispatch scheme or machine configuration
is being timed.  Recording that stream once and replaying it for every
other grid point removes the dominant repeated cost of an experiment sweep
— re-interpreting the guest program — and gives every scheme exactly the
same event stream to time.

Format (version :data:`TRACE_FORMAT_VERSION`): seven parallel ``array``
columns, one entry per event — ``ops``/``sites``/``takens``/``callees``
plus three id columns indexing interned side tables for the
variable-length fields (``daddrs`` tuples, builtin names, cost triples).
``to_bytes`` frames the columns behind a JSON header, zlib-compresses the
payload and prefixes magic, format version and a CRC-32 of the compressed
bytes; any torn, truncated or version-mismatched file raises
:class:`TraceFormatError`, which :class:`repro.harness.cache.TraceStore`
reads back as a cache miss (the same contract as v3 result entries).

Replay drives :class:`repro.native.model.ModelRunner.on_event` straight
from the columns (:func:`replay_events`), optionally through the
steady-state timing memo (:func:`replay_events_memo`, see
:class:`repro.uarch.pipeline.SteadyStateMemo`) which skips re-simulating
event chunks whose machine state has reached a fixed point.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
import warnings
import zlib
from array import array

#: Bump whenever the columnar layout, the event vocabulary or the replay
#: semantics change.  The version is baked into both the on-disk frame and
#: the :func:`trace_key`, so a bump invalidates stale traces instead of
#: misreading them.
TRACE_FORMAT_VERSION = 1

#: Events per replay chunk for the steady-state memo.  Equal to the
#: guest-code cursor period (``0x4000 / 4 = 4096`` events, see
#: :class:`repro.native.model.ModelRunner`): the cursor advances 4 bytes
#: per event and wraps at 0x4000, so after exactly 4096 events it — and
#: the D-cache/D-TLB recency footprint of the guest-code fetch addresses
#: it generates — returns to the same value at every chunk boundary.
#: Smaller chunks would leave a cursor phase in every begin digest that
#: only recurs every ``4096 / chunk`` chunks, deferring memo hits far
#: past the end of realistic traces.
MEMO_CHUNK_EVENTS = 4096

#: Trace-store usage modes (see :func:`resolve_trace_mode`).
TRACE_MODES = ("auto", "record", "replay", "off")

_MAGIC = b"SCDTRC"
_FRAME = struct.Struct("<6sHI")  # magic, format version, crc32(payload)

#: (name, array typecode) of the per-event columns, in serialization order.
EVENT_COLUMNS = (
    ("ops", "h"),
    ("sites", "b"),
    ("takens", "b"),
    ("callees", "b"),
    ("daddr_ids", "i"),
    ("builtin_ids", "h"),
    ("cost_ids", "i"),
)

#: (name, array typecode) of the interned side-table segments.
_POOL_SEGMENTS = (
    ("daddr_offsets", "I"),
    ("daddr_values", "q"),
    ("cost_values", "q"),
)


class TraceFormatError(ValueError):
    """A recorded trace is corrupt, truncated or of another format version.

    Stores treat this as a cache miss, never as fatal."""


class TraceMissError(LookupError):
    """``trace_mode="replay"`` found no recorded trace for the run."""


def trace_key(vm: str, source: str, max_steps: int) -> str:
    """Canonical trace-store key of one functional VM run.

    The key hashes the *actual compiled source text* (robust against
    workload-registry edits), and embeds the VM kind, the guest-step
    budget (a truncated run records a different stream) and
    :data:`TRACE_FORMAT_VERSION` so a format bump invalidates every stale
    trace.  Scheme and machine configuration are deliberately absent: the
    functional run does not depend on them.
    """
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:32]
    return f"trace|fmt{TRACE_FORMAT_VERSION}|{vm}|steps{max_steps}|src:{digest}"


# -- trace-mode resolution ---------------------------------------------------

_DEFAULT_MODE: str | None = None


def _check_mode(mode: str) -> str:
    if mode not in TRACE_MODES:
        raise ValueError(
            f"unknown trace mode {mode!r}; expected one of {TRACE_MODES}"
        )
    return mode


def set_default_trace_mode(mode: str | None) -> None:
    """Install *mode* as the process-wide default (the CLI's trace flags)."""
    global _DEFAULT_MODE
    _DEFAULT_MODE = _check_mode(mode) if mode is not None else None


def resolve_trace_mode(mode: str | None = None) -> str:
    """Resolve the effective trace mode.

    Priority: explicit argument, :func:`set_default_trace_mode` (the CLI
    ``--record/--replay/--no-trace-cache`` flags), the ``SCD_REPRO_TRACE``
    environment variable, then ``"auto"`` (replay when a trace exists,
    record otherwise).  An explicit or CLI-installed mode must be valid
    (:class:`ValueError` otherwise); an unrecognised *environment* value
    is reported with a one-line warning and ignored — a typo in
    ``SCD_REPRO_TRACE`` should not abort a whole sweep.
    """
    if mode is None:
        mode = _DEFAULT_MODE
    if mode is None:
        env = os.environ.get("SCD_REPRO_TRACE") or None
        if env is not None:
            if env in TRACE_MODES:
                return env
            warnings.warn(
                f"ignoring SCD_REPRO_TRACE={env!r}: expected one of "
                f"{TRACE_MODES}",
                RuntimeWarning,
                stacklevel=2,
            )
        return "auto"
    return _check_mode(mode)


# -- the recorded artifact ---------------------------------------------------


class RecordedTrace:
    """One recorded event stream plus the run's functional outcome.

    Attributes:
        n_events: number of recorded events.
        columns: the seven parallel :data:`EVENT_COLUMNS` arrays.
        daddr_pool / builtin_pool / cost_pool: interned side tables the id
            columns index; ``builtin_ids``/``cost_ids`` use ``-1`` for
            ``None`` (replay appends a ``None`` sentinel so ``pool[-1]``
            resolves it without a branch).
        output: the functional run's output lines.
        guest_steps: the VM's guest-step count (replay has no VM to ask).
        key: the trace-store key the artifact was serialized under
            (hash-collision guard, mirrors the v3 result-entry contract).
    """

    __slots__ = (
        "n_events",
        "columns",
        "daddr_pool",
        "builtin_pool",
        "cost_pool",
        "output",
        "guest_steps",
        "key",
        "_chunk_cache",
        "_batch_plan",
    )

    def __init__(
        self,
        columns: dict,
        daddr_pool: list,
        builtin_pool: list,
        cost_pool: list,
        output: tuple,
        guest_steps: int,
        key: str = "",
    ):
        self.n_events = len(columns["ops"])
        self.columns = columns
        self.daddr_pool = daddr_pool
        self.builtin_pool = builtin_pool
        self.cost_pool = cost_pool
        self.output = tuple(output)
        self.guest_steps = guest_steps
        self.key = key
        self._chunk_cache: tuple | None = None
        self._batch_plan: tuple | None = None

    # -- serialization ----------------------------------------------------

    def to_bytes(self, key: str | None = None) -> bytes:
        """Serialize to the framed, compressed wire format."""
        if key is not None:
            self.key = key
        daddr_offsets = array("I")
        daddr_values = array("q")
        offset = 0
        for addrs in self.daddr_pool:
            daddr_offsets.append(offset)
            daddr_values.extend(addrs)
            offset += len(addrs)
        daddr_offsets.append(offset)
        cost_values = array("q")
        for cost in self.cost_pool:
            cost_values.extend(cost)
        segments = [
            (name, typecode, self.columns[name].tobytes())
            for name, typecode in EVENT_COLUMNS
        ]
        for name, typecode in _POOL_SEGMENTS:
            data = {"daddr_offsets": daddr_offsets,
                    "daddr_values": daddr_values,
                    "cost_values": cost_values}[name]
            segments.append((name, typecode, data.tobytes()))
        header = {
            "version": TRACE_FORMAT_VERSION,
            "endian": sys.byteorder,
            "key": self.key,
            "n_events": self.n_events,
            "segments": [
                [name, typecode, len(data)] for name, typecode, data in segments
            ],
            "builtins": list(self.builtin_pool),
            "output": list(self.output),
            "guest_steps": self.guest_steps,
        }
        header_blob = json.dumps(header).encode("utf-8")
        payload = zlib.compress(
            struct.pack("<I", len(header_blob))
            + header_blob
            + b"".join(data for _, _, data in segments),
            6,
        )
        return (
            _FRAME.pack(_MAGIC, TRACE_FORMAT_VERSION, zlib.crc32(payload))
            + payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RecordedTrace":
        """Parse the wire format; any defect raises :class:`TraceFormatError`."""
        try:
            magic, version, crc = _FRAME.unpack_from(data, 0)
        except struct.error as exc:
            raise TraceFormatError(f"short frame: {exc}") from exc
        if magic != _MAGIC:
            raise TraceFormatError("bad magic")
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"format version {version} != {TRACE_FORMAT_VERSION}"
            )
        payload = data[_FRAME.size:]
        if zlib.crc32(payload) != crc:
            raise TraceFormatError("CRC mismatch (torn or corrupt trace)")
        try:
            raw = zlib.decompress(payload)
            (header_len,) = struct.unpack_from("<I", raw, 0)
            header = json.loads(raw[4:4 + header_len].decode("utf-8"))
            if header["endian"] != sys.byteorder:
                raise TraceFormatError("byte-order mismatch")
            n_events = int(header["n_events"])
            columns: dict = {}
            cursor = 4 + header_len
            segments = {}
            declared = {name: typecode for name, typecode in EVENT_COLUMNS}
            declared.update(dict(_POOL_SEGMENTS))
            for name, typecode, nbytes in header["segments"]:
                if declared.get(name) != typecode:
                    raise TraceFormatError(f"unexpected segment {name!r}")
                segment = array(typecode)
                segment.frombytes(raw[cursor:cursor + nbytes])
                cursor += nbytes
                segments[name] = segment
            if cursor != len(raw):
                raise TraceFormatError("trailing bytes after last segment")
            for name, _ in EVENT_COLUMNS:
                column = segments[name]
                if len(column) != n_events:
                    raise TraceFormatError(f"column {name!r} length mismatch")
                columns[name] = column
            offsets = segments["daddr_offsets"]
            values = segments["daddr_values"]
            if len(offsets) == 0 or offsets[-1] != len(values):
                raise TraceFormatError("daddr pool offsets inconsistent")
            daddr_pool = [
                tuple(values[offsets[i]:offsets[i + 1]])
                for i in range(len(offsets) - 1)
            ]
            cost_values = segments["cost_values"]
            if len(cost_values) % 3:
                raise TraceFormatError("cost pool not a multiple of 3")
            cost_pool = [
                (cost_values[i], cost_values[i + 1], cost_values[i + 2])
                for i in range(0, len(cost_values), 3)
            ]
            builtin_pool = list(header["builtins"])
            trace = cls(
                columns,
                daddr_pool,
                builtin_pool,
                cost_pool,
                tuple(header["output"]),
                int(header["guest_steps"]),
                key=str(header.get("key", "")),
            )
        except TraceFormatError:
            raise
        except (KeyError, ValueError, TypeError, IndexError, zlib.error,
                struct.error, UnicodeDecodeError) as exc:
            raise TraceFormatError(f"malformed trace: {exc}") from exc
        trace._validate_ids()
        return trace

    def _validate_ids(self) -> None:
        """Bounds-check the id columns so replay cannot index garbage."""
        checks = (
            ("daddr_ids", len(self.daddr_pool), 0),
            ("builtin_ids", len(self.builtin_pool), -1),
            ("cost_ids", len(self.cost_pool), -1),
        )
        for name, pool_len, minimum in checks:
            column = self.columns[name]
            if column and (min(column) < minimum or max(column) >= pool_len):
                raise TraceFormatError(f"column {name!r} indexes out of range")

    # -- inspection --------------------------------------------------------

    def iter_events(self):
        """Yield every event as the 7-tuple the trace hook receives.

        Resolves the interned id columns back to their pooled values —
        ``(op, site, taken, callee, daddrs, builtin, cost)`` — so
        inspection code (e.g. :mod:`repro.verify.invariants`) can walk a
        recorded stream without driving a runner.
        """
        daddr_pool, builtin_pool, cost_pool = _replay_pools(self)
        columns = self.columns
        for op, site, taken, callee, daddr_id, builtin_id, cost_id in zip(
            columns["ops"],
            columns["sites"],
            columns["takens"],
            columns["callees"],
            columns["daddr_ids"],
            columns["builtin_ids"],
            columns["cost_ids"],
        ):
            yield (
                op,
                site,
                taken,
                callee,
                daddr_pool[daddr_id],
                builtin_pool[builtin_id],
                cost_pool[cost_id],
            )

    # -- memo support ------------------------------------------------------

    def chunk_keys(self, chunk_events: int = MEMO_CHUNK_EVENTS) -> list:
        """Content digest of every *chunk_events*-sized event chunk.

        Two equal keys mean two byte-identical event sub-sequences (ids
        are consistent within one trace), which is what lets the
        steady-state memo recognise a repeated chunk.  Cached per chunk
        size.
        """
        cached = self._chunk_cache
        if cached is not None and cached[0] == chunk_events:
            return cached[1]
        columns = [self.columns[name] for name, _ in EVENT_COLUMNS]
        keys = []
        for start in range(0, self.n_events, chunk_events):
            stop = min(self.n_events, start + chunk_events)
            digest = hashlib.blake2b(digest_size=16)
            for column in columns:
                digest.update(column[start:stop].tobytes())
            keys.append(digest.digest())
        self._chunk_cache = (chunk_events, keys)
        return keys


# -- recording ---------------------------------------------------------------


class TraceRecorder:
    """Tee trace hook: buffers every event columnar-style while forwarding
    it to a downstream consumer (usually ``ModelRunner.on_event``), so the
    recording run still produces its own timing result.

    Usage::

        recorder = TraceRecorder(runner.on_event)
        output = vm.run(trace=recorder.hook)
        store.put(key, recorder.seal(output, vm.steps))
    """

    def __init__(self, downstream=None):
        self.downstream = downstream
        self._ops = array("h")
        self._sites = array("b")
        self._takens = array("b")
        self._callees = array("b")
        self._daddr_ids = array("i")
        self._builtin_ids = array("h")
        self._cost_ids = array("i")
        self._daddr_pool: list = []
        self._daddr_index: dict = {}
        self._builtin_pool: list = []
        self._builtin_index: dict = {}
        self._cost_pool: list = []
        self._cost_index: dict = {}

    def hook(self, op, site, taken, callee, daddrs, builtin, cost) -> None:
        # Hot path: called once per guest bytecode during a recording run.
        daddr_id = self._daddr_index.get(daddrs)
        if daddr_id is None:
            daddr_id = len(self._daddr_pool)
            self._daddr_index[daddrs] = daddr_id
            self._daddr_pool.append(tuple(daddrs))
        if builtin is None:
            builtin_id = -1
        else:
            builtin_id = self._builtin_index.get(builtin)
            if builtin_id is None:
                builtin_id = len(self._builtin_pool)
                self._builtin_index[builtin] = builtin_id
                self._builtin_pool.append(builtin)
        if cost is None:
            cost_id = -1
        else:
            cost_id = self._cost_index.get(cost)
            if cost_id is None:
                cost_id = len(self._cost_pool)
                self._cost_index[cost] = cost_id
                self._cost_pool.append(tuple(cost))
        self._ops.append(op)
        self._sites.append(site)
        self._takens.append(taken)
        self._callees.append(callee)
        self._daddr_ids.append(daddr_id)
        self._builtin_ids.append(builtin_id)
        self._cost_ids.append(cost_id)
        downstream = self.downstream
        if downstream is not None:
            downstream(op, site, taken, callee, daddrs, builtin, cost)

    @property
    def events(self) -> int:
        return len(self._ops)

    def seal(self, output, guest_steps: int) -> RecordedTrace:
        """Freeze the buffers into a :class:`RecordedTrace`."""
        columns = {
            "ops": self._ops,
            "sites": self._sites,
            "takens": self._takens,
            "callees": self._callees,
            "daddr_ids": self._daddr_ids,
            "builtin_ids": self._builtin_ids,
            "cost_ids": self._cost_ids,
        }
        return RecordedTrace(
            columns,
            self._daddr_pool,
            self._builtin_pool,
            self._cost_pool,
            tuple(output),
            guest_steps,
        )


# -- replay ------------------------------------------------------------------


def _replay_pools(trace: RecordedTrace) -> tuple:
    # A trailing None sentinel makes the -1 "no value" id resolve through
    # plain indexing (pool[-1]) with no per-event branch.
    daddr_pool = trace.daddr_pool
    builtin_pool = list(trace.builtin_pool) + [None]
    cost_pool = list(trace.cost_pool) + [None]
    return daddr_pool, builtin_pool, cost_pool


def replay_events(trace: RecordedTrace, on_event, runner=None) -> int:
    """Drive every recorded event through *on_event*.  Returns the count.

    When *runner* carries a direct-dispatch replay kernel (see
    :class:`repro.native.kernel.BoundKernel`), events index its kernel
    table straight from the columns — same semantics as *on_event*,
    minus one call per event.  When batch replay is enabled on top, the
    steady-state regions of the trace run through chunk-compiled
    superblocks instead (see :mod:`repro.native.batch`).
    """
    kernel = getattr(runner, "kernel", None)
    if kernel is not None and kernel.direct and kernel.batch_enabled:
        from repro.native.batch import batch_replay_for

        batch = batch_replay_for(runner, trace)
        if batch is not None:
            batch.run_range(0, trace.n_events)
            return trace.n_events
    daddr_pool, builtin_pool, cost_pool = _replay_pools(trace)
    columns = trace.columns
    stream = zip(
        columns["ops"],
        columns["sites"],
        columns["takens"],
        columns["callees"],
        columns["daddr_ids"],
        columns["builtin_ids"],
        columns["cost_ids"],
    )
    if kernel is not None and kernel.direct:
        table = kernel.table
        for op, site, taken, callee, daddr_id, builtin_id, cost_id in stream:
            table[op, site](
                taken,
                callee,
                daddr_pool[daddr_id],
                builtin_pool[builtin_id],
                cost_pool[cost_id],
            )
        return trace.n_events
    for op, site, taken, callee, daddr_id, builtin_id, cost_id in stream:
        on_event(
            op,
            site,
            taken,
            callee,
            daddr_pool[daddr_id],
            builtin_pool[builtin_id],
            cost_pool[cost_id],
        )
    return trace.n_events


def replay_events_memo(
    trace: RecordedTrace,
    runner,
    memo,
    chunk_events: int = MEMO_CHUNK_EVENTS,
) -> int:
    """Replay through the steady-state memo, chunk by chunk.

    Chunks whose content key and full machine/runner begin state match a
    memoized transition are applied as a batched counter delta plus an
    end-state install instead of being re-simulated (see
    :class:`repro.uarch.pipeline.SteadyStateMemo`); every other chunk runs
    event by event and is offered to the memo.  Returns the event count.
    """
    n_events = trace.n_events
    if n_events == 0:
        return 0
    daddr_pool, builtin_pool, cost_pool = _replay_pools(trace)
    columns = trace.columns
    ops = columns["ops"]
    sites = columns["sites"]
    takens = columns["takens"]
    callees = columns["callees"]
    daddr_ids = columns["daddr_ids"]
    builtin_ids = columns["builtin_ids"]
    cost_ids = columns["cost_ids"]
    on_event = runner.on_event
    kernel = getattr(runner, "kernel", None)
    table = kernel.table if kernel is not None and kernel.direct else None
    batch = None
    if table is not None and kernel.batch_enabled:
        from repro.native.batch import batch_replay_for

        batch = batch_replay_for(runner, trace)
    for chunk, key in enumerate(trace.chunk_keys(chunk_events)):
        start = chunk * chunk_events
        stop = min(n_events, start + chunk_events)
        if memo.try_apply(key, stop - start):
            continue
        memo.begin()
        if batch is not None:
            batch.run_range(start, stop)
        elif table is not None:
            for index in range(start, stop):
                table[ops[index], sites[index]](
                    takens[index],
                    callees[index],
                    daddr_pool[daddr_ids[index]],
                    builtin_pool[builtin_ids[index]],
                    cost_pool[cost_ids[index]],
                )
        else:
            for index in range(start, stop):
                on_event(
                    ops[index],
                    sites[index],
                    takens[index],
                    callees[index],
                    daddr_pool[daddr_ids[index]],
                    builtin_pool[builtin_ids[index]],
                    cost_pool[cost_ids[index]],
                )
        memo.commit(key)
    return n_events
