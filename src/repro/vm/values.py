"""Dynamic value semantics shared by both guest VMs.

Guest values map onto Python values: ``int`` (arbitrary precision, like a
bignum-equipped Lua), ``float``, ``str``, ``bool``, ``None`` (nil), ``list``
(array) and ``dict`` (map).  Semantics follow Lua 5.3 where the two source
languages differ: ``/`` always yields a float, ``//`` floors, ``..``
concatenates with number-to-string coercion, and only ``nil``/``false`` are
falsey.
"""

from __future__ import annotations

import math


class VmError(RuntimeError):
    """Guest-visible runtime error."""


class VmTypeError(VmError):
    """Operation applied to operands of the wrong guest type."""


def type_name(value: object) -> str:
    """Guest-facing type name of *value*."""
    if value is None:
        return "nil"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "map"
    return type(value).__name__


def is_truthy(value: object) -> bool:
    """Lua truthiness: only nil and false are falsey (0 and "" are true)."""
    return value is not None and value is not False


def _require_number(value: object, op: str) -> int | float:
    # bool is an int subclass in Python; guests must not treat it as one.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise VmTypeError(f"attempt to perform '{op}' on a {type_name(value)}")
    return value


def arith(op: str, left: object, right: object):
    """Binary arithmetic: one of ``+ - * / // %``.

    ``/`` always produces a float; ``//`` and ``%`` follow Lua's
    floored-division semantics (Python's happen to match).
    """
    a = _require_number(left, op)
    b = _require_number(right, op)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0 and isinstance(a, int) and isinstance(b, int):
            raise VmError("attempt to divide by zero")
        return a / b
    if op == "//":
        if b == 0:
            raise VmError("attempt to perform 'n//0'")
        result = a // b
        return result if isinstance(a, int) and isinstance(b, int) else float(result)
    if op == "%":
        if b == 0:
            raise VmError("attempt to perform 'n%%0'")
        return a % b
    raise VmError(f"unknown arithmetic operator {op!r}")


def negate(value: object):
    """Unary minus."""
    return -_require_number(value, "unm")


def compare(op: str, left: object, right: object) -> bool:
    """Comparison: ``== != < <= > >=``.

    Equality never raises (mixed types compare unequal); ordering requires
    two numbers or two strings, like Lua.
    """
    if op == "==":
        return _raw_equal(left, right)
    if op == "!=":
        return not _raw_equal(left, right)
    ordered = (
        (isinstance(left, (int, float)) and not isinstance(left, bool)
         and isinstance(right, (int, float)) and not isinstance(right, bool))
        or (isinstance(left, str) and isinstance(right, str))
    )
    if not ordered:
        raise VmTypeError(
            f"attempt to compare {type_name(left)} with {type_name(right)}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise VmError(f"unknown comparison operator {op!r}")


def _raw_equal(left: object, right: object) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    if left is None or right is None:
        return left is right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    if type(left) is not type(right):
        return False
    if isinstance(left, (list, dict)):
        return left is right  # reference equality, like Lua tables
    return left == right


def tostring(value: object) -> str:
    """Guest string conversion (used by ``print``, ``..`` and tostring)."""
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e16 and not math.isinf(value):
            return f"{value:.1f}"
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    if isinstance(value, list):
        return f"array: 0x{id(value):x}"
    if isinstance(value, dict):
        return f"map: 0x{id(value):x}"
    return str(value)


def concat_values(left: object, right: object) -> str:
    """The ``..`` operator: string/number operands only."""
    for value in (left, right):
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            raise VmTypeError(f"attempt to concatenate a {type_name(value)}")
    return tostring(left) + tostring(right)


def index_get(obj: object, key: object):
    """``obj[key]`` read.  Arrays are 0-indexed; missing map keys give nil."""
    if isinstance(obj, list):
        if isinstance(key, bool) or not isinstance(key, int):
            raise VmTypeError(f"array index must be an integer, got {type_name(key)}")
        if 0 <= key < len(obj):
            return obj[key]
        return None
    if isinstance(obj, dict):
        if isinstance(key, (list, dict)):
            raise VmTypeError("map key must be immutable")
        return obj.get(key)
    if isinstance(obj, str):
        if isinstance(key, bool) or not isinstance(key, int):
            raise VmTypeError("string index must be an integer")
        if 0 <= key < len(obj):
            return obj[key]
        return None
    raise VmTypeError(f"attempt to index a {type_name(obj)}")


def index_set(obj: object, key: object, value: object) -> None:
    """``obj[key] = value`` write.  Arrays auto-extend by one (push-like)."""
    if isinstance(obj, list):
        if isinstance(key, bool) or not isinstance(key, int):
            raise VmTypeError(f"array index must be an integer, got {type_name(key)}")
        if 0 <= key < len(obj):
            obj[key] = value
        elif key == len(obj):
            obj.append(value)
        else:
            raise VmError(f"array index {key} out of range (len {len(obj)})")
        return
    if isinstance(obj, dict):
        if isinstance(key, (list, dict)):
            raise VmTypeError("map key must be immutable")
        obj[key] = value
        return
    raise VmTypeError(f"attempt to index a {type_name(obj)}")


def length_of(value: object) -> int:
    """The ``len`` builtin / Lua LEN opcode."""
    if isinstance(value, (list, dict, str)):
        return len(value)
    raise VmTypeError(f"attempt to get length of a {type_name(value)}")
