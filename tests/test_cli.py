"""CLI behavior: trace flags, -j parsing, fault flags, verify, telemetry."""

from __future__ import annotations

import json
import os

import pytest

import repro.verify
from repro import obs
from repro.harness import faults, parallel
from repro.harness.cli import main
from repro.harness.parallel import METRICS
from repro.vm import capture


@pytest.fixture(autouse=True)
def _reset_cli_globals(monkeypatch):
    """The CLI installs process-wide defaults; undo them after each test."""
    monkeypatch.delenv(faults.FAULT_ENV, raising=False)
    monkeypatch.delenv(obs.TRACE_ENV, raising=False)
    faults.reset_plan_cache()
    yield
    parallel.set_default_workers(None)
    parallel.set_default_retries(None)
    parallel.set_default_job_timeout(None)
    capture.set_default_trace_mode(None)
    os.environ.pop(faults.FAULT_ENV, None)
    os.environ.pop(obs.TRACE_ENV, None)
    faults.reset_plan_cache()
    obs.close()
    METRICS.reset()


class TestTraceFlags:
    def test_record_sets_process_default(self):
        assert main(["--record", "list"]) == 0
        assert capture.resolve_trace_mode() == "record"

    def test_replay_sets_process_default(self):
        assert main(["--replay", "list"]) == 0
        assert capture.resolve_trace_mode() == "replay"

    def test_no_trace_cache_disables_tracing(self):
        assert main(["--no-trace-cache", "list"]) == 0
        assert capture.resolve_trace_mode() == "off"

    def test_default_mode_is_auto(self):
        assert main(["list"]) == 0
        assert capture.resolve_trace_mode() == "auto"

    @pytest.mark.parametrize(
        "flags",
        [
            ["--record", "--replay"],
            ["--record", "--no-trace-cache"],
            ["--replay", "--no-trace-cache"],
        ],
    )
    def test_trace_flags_mutually_exclusive(self, flags):
        with pytest.raises(SystemExit) as excinfo:
            main(flags + ["list"])
        assert excinfo.value.code == 2


class TestJobsFlag:
    def test_j_installs_default_worker_count(self):
        assert main(["-j", "2", "list"]) == 0
        assert parallel.DEFAULT_WORKERS == 2
        assert parallel.resolve_workers() == min(2, os.cpu_count())

    def test_workers_capped_at_cpu_count(self):
        assert main(["-j", "99999", "list"]) == 0
        assert parallel.resolve_workers() == os.cpu_count()

    def test_workers_floor_is_one(self):
        assert parallel.resolve_workers(0) == 1
        assert parallel.resolve_workers(-3) == 1

    def test_non_integer_j_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["-j", "two", "list"])
        assert excinfo.value.code == 2


class TestFaultToleranceFlags:
    def test_retries_installs_process_default(self):
        assert main(["--retries", "5", "list"]) == 0
        assert parallel.resolve_retries() == 5

    def test_job_timeout_installs_process_default(self):
        assert main(["--job-timeout", "1.5", "list"]) == 0
        assert parallel.resolve_job_timeout() == 1.5

    def test_fault_flag_exports_env_spec(self):
        assert main(
            ["--fault", "kill-worker:2", "--fault", "corrupt-shard:0", "list"]
        ) == 0
        assert os.environ[faults.FAULT_ENV] == "kill-worker:2,corrupt-shard:0"
        plan = faults.get_plan()
        assert plan is not None
        assert {s.kind for s in plan.specs} == {"kill-worker", "corrupt-shard"}

    def test_malformed_fault_spec_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--fault", "explode:1", "list"])
        assert excinfo.value.code == 2


class TestVerifySubcommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(
            ["verify", "--seed", "3", "--iters", "1", "--pool-every", "0",
             "--no-shrink"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verify seed=3" in out
        assert "OK" in out

    def test_discrepancies_exit_nonzero(self, monkeypatch, capsys):
        class FakeReport:
            ok = False
            discrepancies = [
                type(
                    "D",
                    (),
                    {"describe": lambda self: "seed=1 fake failure",
                     "source": "print(1);", "seed": 1,
                     "kind": "path-mismatch", "detail": "x"},
                )()
            ]

            def summary(self):
                return "verify seed=1: 1 DISCREPANCIES"

        class FakeRunner:
            def __init__(self, **kwargs):
                pass

            def run(self):
                return FakeReport()

        recorded = []
        monkeypatch.setattr(repro.verify, "DifferentialRunner", FakeRunner)
        monkeypatch.setattr(
            repro.verify, "minimize_and_record",
            lambda discrepancies: recorded.extend(discrepancies) or [],
        )
        code = main(["verify", "--iters", "1"])
        assert code == 1
        assert "fake failure" in capsys.readouterr().err
        assert recorded  # the shrinker was invoked on the failures

    def test_no_shrink_skips_minimizer(self, monkeypatch):
        class FakeReport:
            ok = False
            discrepancies = [
                type("D", (), {"describe": lambda self: "d"})()
            ]

            def summary(self):
                return "summary"

        monkeypatch.setattr(
            repro.verify, "DifferentialRunner",
            lambda **kwargs: type("R", (), {"run": lambda self: FakeReport()})(),
        )

        def exploding(discrepancies):
            raise AssertionError("minimizer must not run under --no-shrink")

        monkeypatch.setattr(repro.verify, "minimize_and_record", exploding)
        assert main(["verify", "--iters", "1", "--no-shrink"]) == 1

    def test_rejects_unknown_arguments(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--bogus"])
        assert excinfo.value.code == 2


class TestListCommand:
    def test_lists_schemes_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "scd" in out


class TestTraceLogFlag:
    def test_writes_valid_trace_with_sweep_span(self, tmp_path):
        from repro.obs.schema import validate_file

        path = tmp_path / "trace.jsonl"
        assert main(["--trace-log", str(path), "list"]) == 0
        log = validate_file(path)
        assert log.ok, log.errors
        (sweep,) = log.by_name("sweep")
        assert sweep.attrs["command"] == "list"
        assert sweep.attrs["exit_code"] == 0
        # The sweep close carries every throughput/fault counter.
        assert "retries" in sweep.attrs
        assert "sims" in sweep.attrs

    def test_env_var_equivalent(self, tmp_path, monkeypatch):
        from repro.obs.schema import validate_file

        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(path))
        assert main(["list"]) == 0
        assert validate_file(path).ok

    def test_tracer_closed_after_invocation(self, tmp_path):
        assert main(["--trace-log", str(tmp_path / "t.jsonl"), "list"]) == 0
        assert not obs.active()
        assert obs.TRACE_ENV not in os.environ


class TestFooterReset:
    def test_footer_clean_across_back_to_back_invocations(
        self, monkeypatch, capsys
    ):
        """Counters left over from one invocation must not leak into the
        next footer (the hand-written reset() used to miss the fault
        counters)."""

        class StubResult:
            text = "stub experiment output"

        monkeypatch.setattr(
            "repro.harness.cli.run_experiment", lambda name: StubResult()
        )
        for _ in range(2):
            # Simulate a previous run's stale degraded-path counters.
            METRICS.retries = 3
            METRICS.timeouts = 2
            METRICS.worker_deaths = 1
            METRICS.quarantined = 4
            assert main(["figure3"]) == 0
            err = capsys.readouterr().err
            assert "faults:" not in err
            for label in ("retried", "timed out", "worker deaths",
                          "quarantined"):
                assert label not in err


class TestProfileSubcommand:
    def test_text_output_sections(self, capsys):
        assert main(["profile", "fibo", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top opcodes:" in out
        assert "superinstruction candidates" in out
        assert "dispatch-site mix:" in out
        assert "uarch counters (scd on cortex-a5):" in out
        assert "branch_mpki" in out

    def test_json_output_parses(self, capsys):
        assert main(["profile", "fibo", "--json", "--scheme", "baseline"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vm"] == "lua"
        assert payload["scheme"] == "baseline"
        assert payload["steps"] > 0
        assert payload["top_opcodes"]
        assert set(payload["uarch"]) >= {"pipeline", "predictors", "btb",
                                         "caches"}

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "not-a-workload"])
        assert excinfo.value.code == 2
