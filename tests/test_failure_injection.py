"""Failure-injection tests: the stack must fail loudly and recover cleanly."""

import pytest

from repro.core.simulation import simulate
from repro.native.model import ModelRunner, get_model
from repro.uarch import Machine, cortex_a5
from repro.vm.lua import LuaVM
from repro.vm.values import VmError


class TestGuestFaults:
    def test_guest_error_propagates_through_simulation(self):
        with pytest.raises(VmError, match="divide by zero"):
            simulate("crash", vm="lua", scheme="scd", source="print(1 / 0);")

    def test_step_limit_respected_under_full_stack(self):
        with pytest.raises(VmError, match="step limit"):
            simulate(
                "spin", vm="lua", scheme="scd",
                source="while (true) { }", max_steps=2_000,
            )

    def test_machine_state_usable_after_guest_fault(self):
        """A guest fault mid-run leaves the machine consistent (finalize
        still balances its books)."""
        model = get_model("lua", "scd")
        machine = Machine(cortex_a5())
        runner = ModelRunner(model, machine)
        runner.start()
        vm = LuaVM.from_source("var i = 0; while (true) { i = i + 1; }",
                               max_steps=500)
        with pytest.raises(VmError):
            vm.run(trace=runner.on_event)
        runner.finish()
        stats = machine.finalize()
        assert stats.instructions > 0
        assert stats.cycles >= stats.instructions
        breakdown_total = sum(stats.cycle_breakdown.values())
        assert breakdown_total == stats.cycles


class TestHostFaults:
    def test_trace_callback_exception_propagates(self):
        calls = [0]

        def bomb(*_args):
            calls[0] += 1
            if calls[0] == 10:
                raise RuntimeError("injected")

        vm = LuaVM.from_source("var s = 0; for i = 1, 100 { s = s + i; }")
        with pytest.raises(RuntimeError, match="injected"):
            vm.run(trace=bomb)

    def test_unknown_opcode_event_rejected(self):
        model = get_model("lua", "baseline")
        machine = Machine(cortex_a5())
        runner = ModelRunner(model, machine)
        runner.start()
        with pytest.raises(KeyError):
            runner.on_event(99, 0, -1, 0, (), None, None)  # no opcode 99

    def test_reference_mismatch_detected(self):
        """check_output catches functional regressions loudly."""
        from repro.workloads import workload

        bench = workload("fibo")
        original = bench.reference
        try:
            object.__setattr__(bench, "reference", lambda n: ["wrong"])
            with pytest.raises(AssertionError, match="diverged"):
                simulate("fibo", vm="lua", scheme="baseline")
        finally:
            object.__setattr__(bench, "reference", original)


class TestCacheFaults:
    def test_cache_poisoning_is_contained(self, tmp_cache):
        """A corrupted cache entry falls back to recomputation-compatible
        behaviour (returns None rather than a broken object)."""
        import json

        from repro.harness.experiments import cached_simulate

        cached_simulate(
            "fibo", "lua", "scd", cache=tmp_cache, n=8, check_output=False
        )
        entries = list(tmp_cache.path.glob("*.json"))
        assert entries, "simulation should have written a sharded entry"
        key = json.loads(entries[0].read_text())["key"]
        entries[0].write_text('{"garbage": tru')  # torn mid-write
        fresh = type(tmp_cache)(tmp_cache.name)  # no memo carried over
        assert fresh.get(key) is None

    def test_entry_key_mismatch_reads_as_miss(self, tmp_cache):
        """A hash-collided (or hand-edited) entry whose embedded key does
        not match the probe key is ignored rather than served."""
        from repro.core.simulation import simulate

        result = simulate("fibo", "lua", "scd", n=8, check_output=False)
        tmp_cache.put("key-a", result)
        path = tmp_cache.entry_path("key-a")
        # Graft key-a's entry file onto key-b's shard slot.
        tmp_cache.entry_path("key-b").write_text(path.read_text())
        fresh = type(tmp_cache)(tmp_cache.name)
        assert fresh.get("key-b") is None
        assert fresh.get("key-a") == result

    def test_interrupted_write_leaves_no_partial_file(self, tmp_cache):
        from repro.harness.experiments import cached_simulate

        cached_simulate("fibo", "lua", "scd", cache=tmp_cache, n=8,
                        check_output=False)
        # The temp-file + rename protocol leaves no .tmp droppings.
        leftovers = list(tmp_cache.path.glob("*.tmp"))
        assert leftovers == []
