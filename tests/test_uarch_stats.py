"""Unit tests for the statistics container."""

import pytest

from repro.uarch.stats import MachineStats


class TestMpki:
    def test_zero_instructions(self):
        stats = MachineStats()
        assert stats.mpki(100) == 0.0
        assert stats.branch_mpki == 0.0

    def test_mpki_scale(self):
        stats = MachineStats()
        stats.instructions = 10_000
        assert stats.mpki(10) == 1.0

    def test_branch_mpki_sums_all_redirect_sources(self):
        stats = MachineStats()
        stats.instructions = 1_000
        stats.branch_mispredicts = 2
        stats.indirect_mispredicts = 3
        stats.btb_target_misses = 4
        stats.ras_mispredicts = 1
        assert stats.branch_mpki == pytest.approx(10.0)

    def test_cache_mpkis(self):
        stats = MachineStats()
        stats.instructions = 2_000
        stats.icache_misses = 4
        stats.dcache_misses = 6
        assert stats.icache_mpki == pytest.approx(2.0)
        assert stats.dcache_mpki == pytest.approx(3.0)


class TestRates:
    def test_ipc_cpi(self):
        stats = MachineStats()
        stats.instructions = 100
        stats.cycles = 200
        assert stats.ipc == 0.5
        assert stats.cpi == 2.0

    def test_empty_rates(self):
        stats = MachineStats()
        assert stats.ipc == 0.0
        assert stats.cpi == 0.0


class TestDispatchFraction:
    def test_counts_dispatch_prefixed_categories(self):
        stats = MachineStats()
        stats.instructions = 100
        stats.insts_by_category["dispatch"] = 20
        stats.insts_by_category["dispatch_tail"] = 10
        stats.insts_by_category["handler"] = 70
        assert stats.dispatch_fraction() == pytest.approx(0.30)

    def test_zero(self):
        assert MachineStats().dispatch_fraction() == 0.0


class TestSnapshot:
    def test_plain_types(self):
        stats = MachineStats()
        stats.instructions = 10
        stats.cycles = 20
        stats.insts_by_category["handler"] = 10
        stats.cycle_breakdown["base"] = 20
        snap = stats.snapshot()
        assert snap["instructions"] == 10
        assert isinstance(snap["insts_by_category"], dict)
        assert isinstance(snap["cycle_breakdown"], dict)
        assert snap["cpi"] == 2.0
