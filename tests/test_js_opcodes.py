"""Unit tests for the JS-like VM's opcode table and encoding."""

import pytest

from repro.vm.js.opcodes import (
    NUM_OPCODES,
    OPCODE_MASK,
    JsOp,
    disassemble,
    exit_site,
    instruction_length,
    operand_bytes,
)
from repro.vm.trace import Site


def test_exactly_229_opcodes():
    # Section V: SpiderMonkey 17 "has 229 distinct bytecodes".
    assert NUM_OPCODES == 229
    assert len(JsOp) == 229


def test_mask_is_one_byte():
    assert OPCODE_MASK == 0xFF


def test_contiguous_numbering():
    codes = sorted(int(op) for op in JsOp)
    assert codes == list(range(229))


class TestOperandWidths:
    def test_zero_operand(self):
        assert operand_bytes(JsOp.POP) == 0
        assert operand_bytes(JsOp.ADD) == 0

    def test_one_byte(self):
        assert operand_bytes(JsOp.INT8) == 1

    def test_two_bytes(self):
        assert operand_bytes(JsOp.GOTO) == 2
        assert operand_bytes(JsOp.GETLOCAL) == 2
        assert operand_bytes(JsOp.STRING) == 2

    def test_four_bytes(self):
        assert operand_bytes(JsOp.INT32) == 4

    def test_instruction_length(self):
        assert instruction_length(JsOp.POP) == 1
        assert instruction_length(JsOp.INT32) == 5

    def test_variable_length_encoding_exists(self):
        # The whole point: bytecodes are variable length (unlike Lua).
        widths = {operand_bytes(op) for op in JsOp}
        assert {0, 1, 2, 4} <= widths


class TestExitSites:
    def test_call_ops_exit_via_funcall_site(self):
        assert exit_site(JsOp.CALL) is Site.FUNCALL
        assert exit_site(JsOp.FUNCALL) is Site.FUNCALL
        assert exit_site(JsOp.NEW) is Site.FUNCALL

    def test_short_ops_exit_via_end_case(self):
        assert exit_site(JsOp.ZERO) is Site.END_CASE
        assert exit_site(JsOp.POP) is Site.END_CASE
        assert exit_site(JsOp.GETLOCAL) is Site.END_CASE

    def test_slow_ops_are_uncovered(self):
        assert exit_site(JsOp.NEWARRAY) is Site.UNCOVERED
        assert exit_site(JsOp.INITELEM) is Site.UNCOVERED

    def test_main_loop_ops(self):
        assert exit_site(JsOp.ADD) is Site.MAIN
        assert exit_site(JsOp.GOTO) is Site.MAIN

    def test_all_sites_used(self):
        sites = {exit_site(op) for op in JsOp}
        assert sites == {Site.MAIN, Site.FUNCALL, Site.END_CASE, Site.UNCOVERED}


class TestDisassemble:
    def test_simple_sequence(self):
        code = bytes([JsOp.ZERO, JsOp.ONE, JsOp.ADD])
        lines = disassemble(code)
        assert len(lines) == 3
        assert "ZERO" in lines[0] and "ADD" in lines[2]

    def test_operand_rendering(self):
        code = bytes([JsOp.INT8, 0x2A])
        (line,) = disassemble(code)
        assert "INT8 42" in line

    def test_signed_operand(self):
        code = bytes([JsOp.INT8]) + (-5).to_bytes(1, "little", signed=True)
        (line,) = disassemble(code)
        assert "INT8 -5" in line

    def test_atom_annotation(self):
        code = bytes([JsOp.STRING, 0, 0])
        (line,) = disassemble(code, atoms=["hello"])
        assert "'hello'" in line

    def test_offsets_advance_by_length(self):
        code = bytes([JsOp.INT32, 0, 0, 0, 0, JsOp.POP])
        lines = disassemble(code)
        assert lines[1].strip().startswith("5")
