"""Unit tests for guest value semantics."""

import pytest

from repro.vm.values import (
    VmError,
    VmTypeError,
    arith,
    compare,
    concat_values,
    index_get,
    index_set,
    is_truthy,
    length_of,
    negate,
    tostring,
    type_name,
)


class TestTruthiness:
    def test_nil_false_are_falsey(self):
        assert not is_truthy(None)
        assert not is_truthy(False)

    def test_zero_and_empty_are_truthy(self):
        # Lua semantics: only nil and false are falsey.
        assert is_truthy(0)
        assert is_truthy("")
        assert is_truthy(0.0)
        assert is_truthy([])
        assert is_truthy({})


class TestArith:
    def test_int_add(self):
        assert arith("+", 2, 3) == 5

    def test_div_always_float(self):
        result = arith("/", 6, 3)
        assert result == 2.0
        assert isinstance(result, float)

    def test_idiv_floors(self):
        assert arith("//", 7, 2) == 3
        assert arith("//", -7, 2) == -4

    def test_idiv_float_operand_gives_float(self):
        assert arith("//", 7.0, 2) == 3.0
        assert isinstance(arith("//", 7.0, 2), float)

    def test_mod_floored(self):
        assert arith("%", 7, 3) == 1
        assert arith("%", -7, 3) == 2  # Lua floored modulo

    def test_div_by_zero_int(self):
        with pytest.raises(VmError, match="divide by zero"):
            arith("/", 1, 0)

    def test_idiv_by_zero(self):
        with pytest.raises(VmError):
            arith("//", 1, 0)

    def test_mod_by_zero(self):
        with pytest.raises(VmError):
            arith("%", 1, 0)

    def test_arith_on_string_raises(self):
        with pytest.raises(VmTypeError, match="string"):
            arith("+", "a", 1)

    def test_arith_on_bool_raises(self):
        # bool is not a number in the guest, despite Python subclassing.
        with pytest.raises(VmTypeError, match="boolean"):
            arith("+", True, 1)

    def test_bignum(self):
        assert arith("*", 10**30, 10**30) == 10**60

    def test_negate(self):
        assert negate(5) == -5
        with pytest.raises(VmTypeError):
            negate("x")


class TestCompare:
    def test_numeric_ordering(self):
        assert compare("<", 1, 2)
        assert compare("<=", 2, 2)
        assert compare(">", 3, 2)
        assert compare(">=", 2, 2)

    def test_mixed_int_float(self):
        assert compare("==", 1, 1.0)
        assert compare("<", 1, 1.5)

    def test_string_ordering(self):
        assert compare("<", "abc", "abd")

    def test_equality_across_types_is_false(self):
        assert not compare("==", 1, "1")
        assert compare("!=", 1, "1")

    def test_nil_equality(self):
        assert compare("==", None, None)
        assert not compare("==", None, 0)

    def test_bool_not_equal_to_one(self):
        assert not compare("==", True, 1)
        assert not compare("==", False, 0)

    def test_reference_equality_for_aggregates(self):
        a = [1]
        assert compare("==", a, a)
        assert not compare("==", [1], [1])

    def test_ordering_mixed_types_raises(self):
        with pytest.raises(VmTypeError, match="compare"):
            compare("<", 1, "a")

    def test_ordering_nil_raises(self):
        with pytest.raises(VmTypeError):
            compare("<", None, None)


class TestToString:
    def test_nil(self):
        assert tostring(None) == "nil"

    def test_bools(self):
        assert tostring(True) == "true"
        assert tostring(False) == "false"

    def test_integral_float_gets_decimal(self):
        assert tostring(2.0) == "2.0"

    def test_non_integral_float_repr(self):
        assert tostring(0.5) == "0.5"

    def test_int(self):
        assert tostring(123) == "123"

    def test_aggregates_show_identity(self):
        assert tostring([]).startswith("array: 0x")
        assert tostring({}).startswith("map: 0x")

    def test_nan(self):
        assert tostring(float("nan")) == "nan"


class TestConcat:
    def test_strings(self):
        assert concat_values("a", "b") == "ab"

    def test_number_coercion(self):
        assert concat_values("x=", 5) == "x=5"
        assert concat_values(1, 2) == "12"

    def test_bool_raises(self):
        with pytest.raises(VmTypeError, match="concatenate"):
            concat_values("a", True)

    def test_nil_raises(self):
        with pytest.raises(VmTypeError):
            concat_values(None, "a")


class TestIndexing:
    def test_array_read(self):
        assert index_get([10, 20], 1) == 20

    def test_array_out_of_range_is_nil(self):
        assert index_get([10], 5) is None

    def test_array_write(self):
        a = [1, 2]
        index_set(a, 0, 9)
        assert a == [9, 2]

    def test_array_append_at_len(self):
        a = [1]
        index_set(a, 1, 2)
        assert a == [1, 2]

    def test_array_write_beyond_len_raises(self):
        with pytest.raises(VmError, match="out of range"):
            index_set([1], 5, 0)

    def test_array_non_int_key_raises(self):
        with pytest.raises(VmTypeError, match="integer"):
            index_get([1], "a")
        with pytest.raises(VmTypeError):
            index_get([1], True)

    def test_map_read_missing_is_nil(self):
        assert index_get({"a": 1}, "b") is None

    def test_map_write(self):
        m = {}
        index_set(m, "k", 7)
        assert m == {"k": 7}

    def test_map_mutable_key_raises(self):
        with pytest.raises(VmTypeError, match="immutable"):
            index_set({}, [], 1)

    def test_string_indexing(self):
        assert index_get("abc", 1) == "b"
        assert index_get("abc", 9) is None

    def test_index_non_container_raises(self):
        with pytest.raises(VmTypeError, match="index"):
            index_get(5, 0)
        with pytest.raises(VmTypeError):
            index_set(5, 0, 1)


class TestLength:
    def test_lengths(self):
        assert length_of([1, 2]) == 2
        assert length_of({"a": 1}) == 1
        assert length_of("abc") == 3

    def test_length_of_number_raises(self):
        with pytest.raises(VmTypeError, match="length"):
            length_of(5)


class TestTypeName:
    @pytest.mark.parametrize(
        "value,name",
        [
            (None, "nil"),
            (True, "boolean"),
            (1, "number"),
            (1.5, "number"),
            ("s", "string"),
            ([], "array"),
            ({}, "map"),
        ],
    )
    def test_names(self, value, name):
        assert type_name(value) == name
