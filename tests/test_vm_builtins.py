"""Unit tests for the builtin library."""

import pytest

from repro.vm.builtins import BUILTINS, builtin_cost, builtin_names
from repro.vm.values import VmError, VmTypeError


class _FakeVM:
    def __init__(self):
        self.output = []
        self.steps = 7


def call(name, *args):
    return BUILTINS[name][0](_FakeVM(), list(args))


class TestPrint:
    def test_print_joins_with_tab(self):
        vm = _FakeVM()
        BUILTINS["print"][0](vm, [1, "a", None])
        assert vm.output == ["1\ta\tnil"]

    def test_print_empty(self):
        vm = _FakeVM()
        BUILTINS["print"][0](vm, [])
        assert vm.output == [""]


class TestCollections:
    def test_len(self):
        assert call("len", [1, 2, 3]) == 3

    def test_push_appends(self):
        array = [1]
        BUILTINS["push"][0](_FakeVM(), [array, 2])
        assert array == [1, 2]

    def test_push_non_array(self):
        with pytest.raises(VmTypeError):
            call("push", {}, 1)

    def test_pop(self):
        array = [1, 2]
        assert BUILTINS["pop"][0](_FakeVM(), [array]) == 2
        assert array == [1]

    def test_pop_empty(self):
        with pytest.raises(VmError, match="empty"):
            call("pop", [])

    def test_keys_sorted_deterministically(self):
        keys = call("keys", {"b": 1, "a": 2, "c": 3})
        assert keys == ["a", "b", "c"]

    def test_keys_non_map(self):
        with pytest.raises(VmTypeError):
            call("keys", [1])


class TestMath:
    def test_floor_ceil(self):
        assert call("floor", 2.7) == 2
        assert call("ceil", 2.1) == 3
        assert call("floor", -2.5) == -3

    def test_sqrt(self):
        assert call("sqrt", 9) == 3.0

    def test_sqrt_negative(self):
        with pytest.raises(VmError, match="negative"):
            call("sqrt", -1)

    def test_abs_min_max(self):
        assert call("abs", -4) == 4
        assert call("min", 2, 5) == 2
        assert call("max", 2, 5) == 5

    def test_number_required(self):
        with pytest.raises(VmTypeError, match="number expected"):
            call("floor", "x")

    def test_arity_checked(self):
        with pytest.raises(VmError, match="wrong number of arguments"):
            call("sqrt", 1, 2)


class TestStrings:
    def test_chr_ord(self):
        assert call("chr", 65) == "A"
        assert call("ord", "A") == 65

    def test_ord_empty(self):
        with pytest.raises(VmTypeError):
            call("ord", "")

    def test_substr(self):
        assert call("substr", "hello", 1, 3) == "ell"

    def test_substr_clamps(self):
        assert call("substr", "hi", 1, 100) == "i"

    def test_substr_negative(self):
        with pytest.raises(VmError):
            call("substr", "hi", -1, 2)

    def test_substr_float_integral(self):
        assert call("substr", "hello", 1.0, 2.0) == "el"

    def test_substr_float_fractional(self):
        with pytest.raises(VmTypeError, match="integer"):
            call("substr", "hello", 1.5, 2)

    def test_tostring(self):
        assert call("tostring", None) == "nil"
        assert call("tostring", 2.0) == "2.0"

    def test_tonumber(self):
        assert call("tonumber", "42") == 42
        assert call("tonumber", "2.5") == 2.5
        assert call("tonumber", "zzz") is None
        assert call("tonumber", 7) == 7
        assert call("tonumber", []) is None


class TestClock:
    def test_clock_returns_steps(self):
        assert call("clock") == 7


class TestCostModel:
    def test_every_builtin_has_cost(self):
        for name in builtin_names():
            insts, loads, stores = builtin_cost(name, (1,), 1)
            assert insts > 0
            assert loads >= 0
            assert stores >= 0

    def test_io_cost_scales_with_output(self):
        small = builtin_cost("print", ("x",), None)
        large = builtin_cost("print", ("x" * 500,), None)
        assert large[0] > small[0]

    def test_string_cost_scales_with_result(self):
        small = builtin_cost("substr", ("abc", 0, 1), "a")
        large = builtin_cost("substr", ("abc" * 100, 0, 250), "a" * 250)
        assert large[0] > small[0]

    def test_heavy_cost_scales_with_keys(self):
        small = builtin_cost("keys", ({},), [])
        large = builtin_cost("keys", ({},), list(range(50)))
        assert large[0] > small[0]
