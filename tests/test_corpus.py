"""Replay the committed regression corpus through the differential checks.

Every program under ``tests/corpus/`` once exposed a cross-path
discrepancy or invariant violation (see the ``#`` header of each file).
This test re-runs each through the full differential sweep — every
scheme, every execution path, both VMs — and demands a clean bill.
"""

from __future__ import annotations

import pytest

from repro.verify import CORPUS_DIR, DifferentialRunner, load_corpus

_ENTRIES = list(load_corpus())


def test_corpus_is_not_empty():
    assert _ENTRIES, f"no corpus entries found under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path,source", _ENTRIES, ids=[path.stem for path, _ in _ENTRIES]
)
def test_corpus_program_passes_all_differential_checks(path, source):
    found = DifferentialRunner().check_source(source)
    assert not found, [d.describe() for d in found]
