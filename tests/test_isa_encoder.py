"""Tests for binary encoding of host instructions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Kind, assemble
from repro.isa.encoder import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import Instruction


class TestInstructionRoundtrip:
    def test_alu(self):
        inst = Instruction("add", Kind.ALU, "r1, r2, r3", pc=0x1000)
        decoded = decode_instruction(encode_instruction(inst), 0x1000)
        assert decoded.mnemonic == "add"
        assert decoded.kind is Kind.ALU

    def test_op_suffix_preserved(self):
        inst = Instruction("ldl", Kind.LOAD, pc=0x1000, op_suffix=True)
        decoded = decode_instruction(encode_instruction(inst), 0x1000)
        assert decoded.op_suffix

    def test_branch_target_relative(self):
        inst = Instruction(
            "beq", Kind.BRANCH, pc=0x1000, target=0x1040, target_label="X"
        )
        word = encode_instruction(inst)
        # Decoding at a different PC keeps the displacement relative.
        decoded = decode_instruction(word, 0x2000)
        assert decoded.target == 0x2040

    def test_backward_branch(self):
        inst = Instruction("br", Kind.JUMP, pc=0x1040, target=0x1000)
        decoded = decode_instruction(encode_instruction(inst), 0x1040)
        assert decoded.target == 0x1000

    def test_displacement_overflow(self):
        inst = Instruction("br", Kind.JUMP, pc=0, target=4 * (1 << 13))
        with pytest.raises(EncodingError, match="displacement"):
            encode_instruction(inst)

    def test_scd_instructions(self):
        for mnemonic, kind in (
            ("bop", Kind.BOP),
            ("jru", Kind.JRU),
            ("jte.flush", Kind.JTE_FLUSH),
            ("setmask", Kind.SETMASK),
        ):
            inst = Instruction(mnemonic, kind, pc=0)
            decoded = decode_instruction(encode_instruction(inst), 0)
            assert decoded.mnemonic == mnemonic
            assert decoded.kind is kind


class TestProgramRoundtrip:
    SOURCE = """
    Loop:
        ldq r5, 40(r14)
        ldl.op r9, 0(r5)
        bop
        and r9, 63, r2
        cmpule r2, 45, r1
        beq r1, Loop
        jru (r1)
        ret
    """

    def test_roundtrip_structure(self):
        program = assemble(self.SOURCE)
        decoded = decode_program(encode_program(program), base=program.base)
        assert len(decoded) == len(program)
        for original, restored in zip(program.instructions, decoded.instructions):
            assert original.mnemonic == restored.mnemonic
            assert original.kind == restored.kind
            assert original.op_suffix == restored.op_suffix
            assert original.target == restored.target

    def test_blocks_reconstructed(self):
        program = assemble(self.SOURCE)
        decoded = decode_program(encode_program(program), base=program.base)
        # Control-flow structure survives: same number of basic blocks.
        assert len(decoded.blocks) == len(program.blocks)

    def test_four_bytes_per_instruction(self):
        program = assemble(self.SOURCE)
        assert len(encode_program(program)) == 4 * len(program)

    def test_bad_length(self):
        with pytest.raises(EncodingError, match="multiple of 4"):
            decode_program(b"\x00" * 6)


_MNEMONICS = st.sampled_from(
    ["add", "sub", "ldq", "stq", "and", "sll", "cmpeq", "nop", "lda"]
)


@given(st.lists(_MNEMONICS, min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_straightline_roundtrip_property(mnemonics):
    text = "\n".join(f"{m} r1, r2, r3" if m not in ("ldq", "stq")
                     else f"{m} r1, 0(r2)" for m in mnemonics)
    program = assemble(text)
    decoded = decode_program(encode_program(program), base=program.base)
    assert [i.mnemonic for i in decoded.instructions] == [
        i.mnemonic for i in program.instructions
    ]
    assert [i.kind for i in decoded.instructions] == [
        i.kind for i in program.instructions
    ]
