"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.vm.js import JsVM
from repro.vm.lua import LuaVM

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:
    pass
else:
    # One deterministic profile for the whole suite: examples are derived
    # from the test function itself rather than a random seed, so a green
    # run is reproducible and a red run fails identically on re-run.
    _hypothesis_settings.register_profile(
        "deterministic", derandomize=True, deadline=None
    )
    _hypothesis_settings.load_profile("deterministic")


def run_lua(source: str, max_steps: int = 5_000_000) -> list[str]:
    """Run scriptlet *source* on the Lua-like VM, returning output lines."""
    return LuaVM.from_source(source, max_steps=max_steps).run()


def run_js(source: str, max_steps: int = 5_000_000) -> list[str]:
    """Run scriptlet *source* on the JS-like VM, returning output lines."""
    return JsVM.from_source(source, max_steps=max_steps).run()


def run_both(source: str, max_steps: int = 5_000_000) -> list[str]:
    """Run on both VMs, assert identical output, return it."""
    lua_out = run_lua(source, max_steps)
    js_out = run_js(source, max_steps)
    assert lua_out == js_out, f"VM divergence:\nlua={lua_out}\njs ={js_out}"
    return lua_out


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    """A ResultCache isolated to the test's tmp directory."""
    monkeypatch.setenv("SCD_REPRO_CACHE_DIR", str(tmp_path))
    from repro.harness.cache import ResultCache

    return ResultCache("test")
